//! # distributed-string-sorting
//!
//! A Rust reproduction of **"Communication-Efficient String Sorting"**
//! (Bingmann, Sanders, Schimek; IPDPS 2020, arXiv:2001.08516): the MS and
//! PDMS distributed string sorters, the hQuick and FKmerge baselines, and
//! every substrate they need — an SPMD message-passing runtime with exact
//! communication accounting, sequential LCP string sorting, LCP-aware
//! multiway merging, Golomb-coded distributed duplicate detection, and
//! the paper's workload generators.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quick start
//!
//! ```
//! use distributed_string_sorting::prelude::*;
//!
//! // Sort strings scattered over 4 simulated PEs with PDMS.
//! let result = run_spmd(4, RunConfig::default(), |comm| {
//!     let shard = StringSet::from_strs(match comm.rank() {
//!         0 => &["tokyo", "lima", "cairo"],
//!         1 => &["paris", "accra", "quito"],
//!         2 => &["delhi", "seoul", "hanoi"],
//!         _ => &["oslo", "berlin", "dakar"],
//!     });
//!     let out = Algorithm::Pdms.instance().sort(comm, shard);
//!     out.set.to_vecs()
//! });
//! let all: Vec<Vec<u8>> = result.values.into_iter().flatten().collect();
//! assert!(all.windows(2).all(|w| w[0] <= w[1]));
//! println!("bytes on the wire: {}", result.stats.total_bytes_sent());
//! ```

pub use dss_codec as codec;
pub use dss_dedup as dedup;
pub use dss_gen as gen;
pub use dss_net as net;
pub use dss_sort as sort;
pub use dss_strkit as strkit;

/// The commonly needed surface in one import.
pub mod prelude {
    pub use dss_gen::Workload;
    pub use dss_net::runner::{run_spmd, RunConfig, SpmdResult};
    pub use dss_net::{Comm, CostModel, NetStats};
    pub use dss_sort::checker::check_distributed_sort;
    pub use dss_sort::{
        Algorithm, DistSorter, ExchangeCodec, ExchangeMode, ExchangePayload, FkMerge, HQuick, Ms,
        Ms2l, Ms2lConfig, MsConfig, Msml, MsmlConfig, PdMs2l, PdMs2lConfig, PdMsml, PdMsmlConfig,
        Pdms, PdmsConfig, SortedRun, StringAllToAll,
    };
    pub use dss_strkit::sort::sort_with_lcp;
    pub use dss_strkit::StringSet;
}
