//! Pipelined vs blocking equivalence: for every algorithm, the pipelined
//! exchange must produce *byte-identical* per-PE output — strings, LCP
//! arrays and origin tags alike — and, for the acceptance pin, identical
//! wire accounting on the MS2L 4×4 grid.

use distributed_string_sorting::prelude::*;
use proptest::prelude::*;
use std::time::Duration;

fn cfg() -> RunConfig {
    RunConfig {
        recv_timeout: Duration::from_secs(60),
        ..RunConfig::default()
    }
}

/// Runs `alg` over the given shards in the given mode and returns every
/// observable output component per PE.
type PeOutput = (
    Vec<Vec<u8>>,
    Option<Vec<u32>>,
    Option<Vec<u64>>,
    Option<Vec<Vec<u8>>>,
);

fn run_mode(alg: Algorithm, shards: &[Vec<Vec<u8>>], mode: ExchangeMode) -> Vec<PeOutput> {
    let res = run_spmd(shards.len(), cfg(), move |comm| {
        let set = StringSet::from_iter_bytes(shards[comm.rank()].iter().map(|s| s.as_slice()));
        let input = set.clone();
        let out = alg.instance_with_mode(mode).sort(comm, set);
        check_distributed_sort(comm, &input, &out)
            .unwrap_or_else(|e| panic!("{} ({}) checker: {e}", alg.label(), mode.label()));
        (
            out.set.to_vecs(),
            out.lcps,
            out.origins,
            out.local_store.map(|s| s.to_vecs()),
        )
    });
    res.values
}

fn assert_equivalent(alg: Algorithm, shards: &[Vec<Vec<u8>>]) {
    let blocking = run_mode(alg, shards, ExchangeMode::Blocking);
    let pipelined = run_mode(alg, shards, ExchangeMode::Pipelined);
    for (pe, (b, p)) in blocking.iter().zip(&pipelined).enumerate() {
        assert_eq!(b.0, p.0, "{}: strings differ on PE {pe}", alg.label());
        assert_eq!(b.1, p.1, "{}: LCP arrays differ on PE {pe}", alg.label());
        assert_eq!(b.2, p.2, "{}: origins differ on PE {pe}", alg.label());
        assert_eq!(b.3, p.3, "{}: local stores differ on PE {pe}", alg.label());
    }
}

/// Deterministic shard builder driven by a proptest-drawn seed, covering
/// duplicates, empties and shared prefixes.
fn build_shards(p: usize, n_per_pe: usize, seed: u64) -> Vec<Vec<Vec<u8>>> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..p)
        .map(|_| {
            (0..n_per_pe)
                .map(|_| {
                    let kind = next() % 10;
                    if kind < 2 {
                        // Duplicate-heavy hot strings (tie-break stress).
                        format!("dup{}", next() % 3).into_bytes()
                    } else if kind < 3 {
                        Vec::new()
                    } else {
                        let len = (next() % 12) as usize;
                        (0..len).map(|_| b'a' + (next() % 5) as u8).collect()
                    }
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every algorithm that supports the mode switch (all ten) yields
    /// identical output in both modes, on random duplicate- and
    /// empty-laden shard sets over several PE counts.
    #[test]
    fn pipelined_output_equals_blocking_for_every_algorithm(
        seed in any::<u64>(),
        p in 2usize..7,
        n_per_pe in 10usize..40,
    ) {
        let shards = build_shards(p, n_per_pe, seed);
        for alg in Algorithm::all_extended() {
            assert_equivalent(alg, &shards);
        }
    }
}

#[test]
fn equivalence_holds_on_degenerate_inputs() {
    // All-duplicate and all-empty inputs, the classic tie-break traps.
    let dup: Vec<Vec<Vec<u8>>> = (0..4).map(|_| vec![b"boiler".to_vec(); 40]).collect();
    let empty: Vec<Vec<Vec<u8>>> = (0..4).map(|_| Vec::new()).collect();
    for alg in Algorithm::all_extended() {
        assert_equivalent(alg, &dup);
        assert_equivalent(alg, &empty);
    }
}

/// The acceptance pin: a pipelined MS2L run on a 4×4 grid still contacts
/// exactly (r − 1) + (c − 1) = 6 exchange partners per PE and puts the
/// identical number of bytes on the wire as the blocking run.
#[test]
fn pipelined_ms2l_4x4_keeps_partner_count_and_total_bytes() {
    let p = 16usize;
    let (r, c) = distributed_string_sorting::net::grid_dims(p).expect("16 has a grid");
    assert_eq!((r, c), (4, 4));
    let shards = build_shards(p, 50, 0xA11_70A11);

    let stats_of = |mode: ExchangeMode| {
        let shards = shards.clone();
        let res = run_spmd(p, cfg(), move |comm| {
            let set = StringSet::from_iter_bytes(shards[comm.rank()].iter().map(|s| s.as_slice()));
            let _ = Algorithm::Ms2l.instance_with_mode(mode).sort(comm, set);
        });
        res.stats
    };
    let blocking = stats_of(ExchangeMode::Blocking);
    let pipelined = stats_of(ExchangeMode::Pipelined);

    let exchange_partners = |stats: &NetStats| -> u64 {
        stats
            .phases
            .iter()
            .filter(|ph| matches!(ph.name.as_str(), "exchange_row" | "exchange_col"))
            .map(|ph| ph.max.msgs_sent)
            .sum()
    };
    assert_eq!(
        exchange_partners(&pipelined),
        (r as u64 - 1) + (c as u64 - 1),
        "pipelined MS2L exchange partners per PE"
    );
    assert_eq!(
        exchange_partners(&pipelined),
        exchange_partners(&blocking),
        "partner count must not depend on the mode"
    );
    assert_eq!(
        pipelined.total_bytes_sent(),
        blocking.total_bytes_sent(),
        "pipelining must not change a single wire byte"
    );
    // Latency-round accounting matches phase by phase, too.
    for (bp, pp) in blocking.phases.iter().zip(&pipelined.phases) {
        assert_eq!(bp.name, pp.name, "phase order");
        assert_eq!(bp.max.rounds, pp.max.rounds, "rounds in {}", bp.name);
        assert_eq!(bp.max.bytes_sent, pp.max.bytes_sent, "bytes in {}", bp.name);
    }
}

/// The PD grid pins: prefix truncation changes neither the exchange
/// topology nor the mode equivalence — a pipelined PD-MS2L run on the
/// 4×4 grid and a pipelined PD-MSML run on the 2×2×2 grid keep the grid
/// partner counts and byte-for-byte wire accounting of their blocking
/// runs, phase by phase (prefix_doubling and grid_setup included).
#[test]
fn pipelined_pd_grids_keep_partner_counts_and_total_bytes() {
    for (alg, p, expect_partners) in [
        (Algorithm::PdMs2l, 16usize, 6u64),
        (Algorithm::PdMsml, 8, 3),
    ] {
        let shards = build_shards(p, 50, 0xD15_7DE ^ p as u64);
        let stats_of = |mode: ExchangeMode| {
            let shards = shards.clone();
            let res = run_spmd(p, cfg(), move |comm| {
                let set =
                    StringSet::from_iter_bytes(shards[comm.rank()].iter().map(|s| s.as_slice()));
                let _ = alg.instance_with_mode(mode).sort(comm, set);
            });
            res.stats
        };
        let blocking = stats_of(ExchangeMode::Blocking);
        let pipelined = stats_of(ExchangeMode::Pipelined);

        let exchange_partners = |stats: &NetStats| -> u64 {
            stats
                .phases
                .iter()
                .filter(|ph| ph.name.starts_with("exchange"))
                .map(|ph| ph.max.msgs_sent)
                .sum()
        };
        assert_eq!(
            exchange_partners(&pipelined),
            expect_partners,
            "pipelined {} exchange partners per PE",
            alg.label()
        );
        assert_eq!(
            exchange_partners(&pipelined),
            exchange_partners(&blocking),
            "{}: partner count must not depend on the mode",
            alg.label()
        );
        assert_eq!(
            pipelined.total_bytes_sent(),
            blocking.total_bytes_sent(),
            "{}: pipelining must not change a single wire byte",
            alg.label()
        );
        for (bp, pp) in blocking.phases.iter().zip(&pipelined.phases) {
            assert_eq!(bp.name, pp.name, "{}: phase order", alg.label());
            assert_eq!(bp.max.rounds, pp.max.rounds, "rounds in {}", bp.name);
            assert_eq!(bp.max.bytes_sent, pp.max.bytes_sent, "bytes in {}", bp.name);
        }
    }
}

/// The MSML acceptance pin: a pipelined run on the 2×2×2 grid of p = 8
/// still contacts exactly Σ(dᵢ − 1) = 3 exchange partners per PE across
/// its three levels, with wire accounting identical to the blocking run
/// phase by phase.
#[test]
fn pipelined_msml_2x2x2_keeps_partner_count_and_total_bytes() {
    let p = 8usize;
    assert_eq!(
        distributed_string_sorting::net::multi_grid_dims(p, 0).as_deref(),
        Some(&[2usize, 2, 2][..]),
        "8 factors into three levels"
    );
    let shards = build_shards(p, 50, 0x3_1337);

    let stats_of = |mode: ExchangeMode| {
        let shards = shards.clone();
        let res = run_spmd(p, cfg(), move |comm| {
            let set = StringSet::from_iter_bytes(shards[comm.rank()].iter().map(|s| s.as_slice()));
            let _ = Algorithm::Msml.instance_with_mode(mode).sort(comm, set);
        });
        res.stats
    };
    let blocking = stats_of(ExchangeMode::Blocking);
    let pipelined = stats_of(ExchangeMode::Pipelined);

    let exchange_partners = |stats: &NetStats| -> u64 {
        stats
            .phases
            .iter()
            .filter(|ph| {
                matches!(
                    ph.name.as_str(),
                    "exchange_l0" | "exchange_l1" | "exchange_l2"
                )
            })
            .map(|ph| ph.max.msgs_sent)
            .sum()
    };
    assert_eq!(
        exchange_partners(&pipelined),
        3,
        "pipelined MSML exchange partners per PE"
    );
    assert_eq!(
        exchange_partners(&pipelined),
        exchange_partners(&blocking),
        "partner count must not depend on the mode"
    );
    assert_eq!(
        pipelined.total_bytes_sent(),
        blocking.total_bytes_sent(),
        "pipelining must not change a single wire byte"
    );
    for (bp, pp) in blocking.phases.iter().zip(&pipelined.phases) {
        assert_eq!(bp.name, pp.name, "phase order");
        assert_eq!(bp.max.rounds, pp.max.rounds, "rounds in {}", bp.name);
        assert_eq!(bp.max.bytes_sent, pp.max.bytes_sent, "bytes in {}", bp.name);
    }
}
