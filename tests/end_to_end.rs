//! End-to-end matrix: every algorithm × every workload family × several
//! PE counts, validated two ways — the communication-efficient
//! distributed checker *and* a central oracle (gather everything, compare
//! against a sequential sort; PDMS outputs are resolved through their
//! origin tags first).

use distributed_string_sorting::prelude::*;
use distributed_string_sorting::sort::output::origin_parts;

fn oracle_check(alg: Algorithm, workload: &Workload, p: usize, seed: u64) {
    // Expected: sequential sort of all shards.
    let mut expect: Vec<Vec<u8>> = (0..p)
        .flat_map(|r| workload.generate(r, p, seed).to_vecs())
        .collect();
    expect.sort();

    let result = run_spmd(p, RunConfig::default(), move |comm| {
        let shard = workload.generate(comm.rank(), comm.size(), seed);
        let input = shard.clone();
        let out = alg.instance().sort(comm, shard);
        check_distributed_sort(comm, &input, &out)
            .unwrap_or_else(|e| panic!("{} checker: {e}", alg.label()));
        (
            out.set.to_vecs(),
            out.origins,
            out.local_store.map(|s| s.to_vecs()),
        )
    });

    let got: Vec<Vec<u8>> = match result.values[0].1 {
        None => result
            .values
            .iter()
            .flat_map(|(s, _, _)| s.clone())
            .collect(),
        Some(_) => {
            // PDMS: map origins back to full strings.
            let stores: Vec<&Vec<Vec<u8>>> = result
                .values
                .iter()
                .map(|(_, _, st)| st.as_ref().expect("pdms keeps store"))
                .collect();
            result
                .values
                .iter()
                .flat_map(|(prefixes, origins, _)| {
                    let origins = origins.as_ref().expect("pdms origins");
                    prefixes.iter().zip(origins).map(|(pref, &tag)| {
                        let (pe, idx) = origin_parts(tag);
                        let full = stores[pe][idx].clone();
                        assert!(
                            full.starts_with(pref),
                            "{}: prefix/origin mismatch",
                            alg.label()
                        );
                        full
                    })
                })
                .collect()
        }
    };
    assert_eq!(
        got,
        expect,
        "{} on {} with p={p} does not sort",
        alg.label(),
        workload.label()
    );
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload::DnRatio {
            n_per_pe: 80,
            len: 60,
            r: 0.5,
            sigma: 8,
        },
        Workload::Web { n_per_pe: 70 },
        Workload::Dna { n_per_pe: 70 },
        Workload::Suffix {
            text_len: 240,
            cap: 60,
        },
    ]
}

#[test]
fn all_algorithms_sort_all_workloads_p4() {
    for alg in Algorithm::all_extended() {
        for w in workloads() {
            oracle_check(alg, &w, 4, 1);
        }
    }
}

#[test]
fn all_algorithms_sort_on_odd_pe_counts() {
    // 3 and 5 are prime: MS2L exercises its single-level fallback here.
    for alg in Algorithm::all_extended() {
        oracle_check(alg, &Workload::Web { n_per_pe: 50 }, 3, 2);
        oracle_check(
            alg,
            &Workload::DnRatio {
                n_per_pe: 40,
                len: 40,
                r: 0.25,
                sigma: 8,
            },
            5,
            3,
        );
    }
}

#[test]
fn all_algorithms_sort_on_single_pe() {
    for alg in Algorithm::all_extended() {
        oracle_check(alg, &Workload::Dna { n_per_pe: 60 }, 1, 4);
    }
}

#[test]
fn skewed_instances_sort() {
    let w = Workload::SkewedDnRatio {
        n_per_pe: 60,
        len: 80,
        r: 0.5,
        sigma: 8,
    };
    for alg in Algorithm::all_extended() {
        oracle_check(alg, &w, 4, 5);
    }
}

#[test]
fn ms2l_sorts_non_square_grids_on_every_workload() {
    // p = 6 → the 2×3 grid (non-square); all workload families.
    for w in workloads() {
        oracle_check(Algorithm::Ms2l, &w, 6, 6);
    }
}

/// Deterministic duplicate- and empty-laden shard builder for the MSML
/// acceptance matrix (xorshift, independent of the workload generators).
fn mixed_shards(p: usize, n_per_pe: usize, seed: u64) -> Vec<Vec<Vec<u8>>> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..p)
        .map(|_| {
            (0..n_per_pe)
                .map(|_| {
                    let kind = next() % 10;
                    if kind < 2 {
                        format!("dup{}", next() % 3).into_bytes()
                    } else if kind < 3 {
                        Vec::new()
                    } else {
                        let len = (next() % 12) as usize;
                        (0..len).map(|_| b'a' + (next() % 5) as u8).collect()
                    }
                })
                .collect()
        })
        .collect()
}

/// Runs MSML and the MS oracle over identical shards and pins MSML's
/// output byte for byte: the globally sorted sequence must match MS
/// exactly, every PE's LCP array must be valid for its shard, and the
/// origin tags must agree (both sorters leave them absent).
fn msml_vs_ms_oracle(p: usize, shards: Vec<Vec<Vec<u8>>>) {
    use std::time::Duration;
    let cfg = RunConfig {
        recv_timeout: Duration::from_secs(120),
        ..RunConfig::default()
    };
    let run = |alg: Algorithm| {
        let shards = shards.clone();
        let cfg = cfg.clone();
        run_spmd(p, cfg, move |comm| {
            let set = StringSet::from_iter_bytes(shards[comm.rank()].iter().map(|s| s.as_slice()));
            let input = set.clone();
            let out = alg.instance().sort(comm, set);
            check_distributed_sort(comm, &input, &out)
                .unwrap_or_else(|e| panic!("{} checker: {e}", alg.label()));
            let lcps = out.lcps.as_ref().expect("LCP merge yields LCPs");
            distributed_string_sorting::strkit::lcp::verify_lcp_array(&out.set, lcps)
                .unwrap_or_else(|e| panic!("{} LCP array: {e}", alg.label()));
            (out.set.to_vecs(), out.origins)
        })
        .values
    };
    let oracle = run(Algorithm::Ms);
    let msml = run(Algorithm::Msml);
    type PeOut = (Vec<Vec<u8>>, Option<Vec<u64>>);
    let cat = |v: &[PeOut]| -> Vec<Vec<u8>> { v.iter().flat_map(|(s, _)| s.clone()).collect() };
    assert_eq!(
        cat(&msml),
        cat(&oracle),
        "p={p}: MSML's global order deviates from the MS oracle"
    );
    for (pe, (m, o)) in msml.iter().zip(&oracle).enumerate() {
        assert_eq!(m.1, o.1, "p={p} PE {pe}: origin tags differ from MS");
    }
}

#[test]
fn msml_matches_ms_oracle_across_grid_depths() {
    // The acceptance matrix: 4 = 2·2, 6 = 3·2, 8 = 2·2·2, 12 = 3·2·2,
    // 16 = 2·2·2·2, 27 = 3·3·3 — two-, three- and four-level grids.
    for &p in &[4usize, 6, 8, 12, 16, 27] {
        let n = (360 / p).max(10);
        msml_vs_ms_oracle(p, mixed_shards(p, n, p as u64));
    }
}

#[test]
fn msml_matches_ms_oracle_on_prime_fallback_and_degenerate_inputs() {
    // p = 7 is prime: MSML falls back to single-level MS, so the oracle
    // match is trivially exact — the pin guards the fallback wiring.
    msml_vs_ms_oracle(7, mixed_shards(7, 30, 7));
    // Duplicate-only shards at three-level depth (tie-break through
    // every level) and all-empty shards (splitter padding per group).
    msml_vs_ms_oracle(8, (0..8).map(|_| vec![b"dup".to_vec(); 40]).collect());
    msml_vs_ms_oracle(12, (0..12).map(|_| Vec::new()).collect());
}

/// Runs flat PDMS and a PD grid variant over identical shards and pins
/// the permutation contract byte for byte:
///
/// * the world-rank-ordered concatenation of output *prefixes* is
///   identical — both sorters truncate with the same (collectively
///   computed) Step-1+ε lengths, and the sorted sequence of a fixed
///   multiset is unique;
/// * the origin tags across all PEs form a permutation of every
///   `(pe, idx)` pair, and resolving them through the local stores
///   reconstructs the sorted global input exactly (equal truncated
///   prefixes imply equal full strings, so tie order cannot leak);
/// * every PE's local store is its own shard, locally sorted.
fn pd_grid_vs_pdms_oracle(p: usize, shards: Vec<Vec<Vec<u8>>>) {
    use std::time::Duration;
    let cfg = RunConfig {
        recv_timeout: Duration::from_secs(120),
        ..RunConfig::default()
    };
    let run = |alg: Algorithm| {
        let shards = shards.clone();
        let cfg = cfg.clone();
        run_spmd(p, cfg, move |comm| {
            let set = StringSet::from_iter_bytes(shards[comm.rank()].iter().map(|s| s.as_slice()));
            let input = set.clone();
            let out = alg.instance().sort(comm, set);
            check_distributed_sort(comm, &input, &out)
                .unwrap_or_else(|e| panic!("{} checker: {e}", alg.label()));
            (
                out.set.to_vecs(),
                out.origins.expect("permutation output carries origins"),
                out.local_store.expect("full strings stay home").to_vecs(),
            )
        })
        .values
    };
    let mut expect: Vec<Vec<u8>> = shards.iter().flatten().cloned().collect();
    expect.sort();
    type PeOut = (Vec<Vec<u8>>, Vec<u64>, Vec<Vec<u8>>);
    let flat = run(Algorithm::Pdms);
    let cat = |v: &[PeOut]| -> Vec<Vec<u8>> { v.iter().flat_map(|(s, _, _)| s.clone()).collect() };
    for alg in [Algorithm::PdMs2l, Algorithm::PdMsml] {
        let grid = run(alg);
        assert_eq!(
            cat(&grid),
            cat(&flat),
            "p={p}: {} prefix stream deviates from flat PDMS",
            alg.label()
        );
        // Origins form a permutation and resolve to the sorted input.
        let stores: Vec<&Vec<Vec<u8>>> = grid.iter().map(|(_, _, st)| st).collect();
        for (pe, (_, _, store)) in grid.iter().enumerate() {
            let mut local = shards[pe].clone();
            local.sort();
            assert_eq!(
                store, &local,
                "p={p} PE {pe}: local store not the sorted shard"
            );
        }
        let mut seen: Vec<(usize, usize)> = Vec::new();
        let mut reconstructed: Vec<Vec<u8>> = Vec::new();
        for (prefixes, origins, _) in &grid {
            assert_eq!(prefixes.len(), origins.len());
            for (pref, &tag) in prefixes.iter().zip(origins) {
                let (pe, idx) = origin_parts(tag);
                seen.push((pe, idx));
                let full = &stores[pe][idx];
                assert!(
                    full.starts_with(pref),
                    "{}: prefix/origin mismatch",
                    alg.label()
                );
                reconstructed.push(full.clone());
            }
        }
        seen.sort_unstable();
        let all_slots: Vec<(usize, usize)> = (0..p)
            .flat_map(|pe| (0..shards[pe].len()).map(move |i| (pe, i)))
            .collect();
        assert_eq!(
            seen,
            all_slots,
            "{}: origins are not a permutation",
            alg.label()
        );
        assert_eq!(
            reconstructed,
            expect,
            "p={p}: {} origin permutation does not sort the input",
            alg.label()
        );
    }
}

#[test]
fn pd_grid_variants_match_pdms_oracle_across_grid_depths() {
    // Same acceptance matrix as MSML-vs-MS: 4 = 2·2, 6 = 3·2, 8 = 2·2·2,
    // 12 = 3·2·2, 16 = 2·2·2·2, 27 = 3·3·3.
    for &p in &[4usize, 6, 8, 12, 16, 27] {
        let n = (360 / p).max(10);
        pd_grid_vs_pdms_oracle(p, mixed_shards(p, n, 100 + p as u64));
    }
}

#[test]
fn pd_grid_variants_match_pdms_on_prime_fallback_and_degenerate_inputs() {
    // p = 7 is prime: both grid variants fall back to flat PDMS, so the
    // pin guards the fallback wiring (including origins + local store).
    pd_grid_vs_pdms_oracle(7, mixed_shards(7, 30, 107));
    // Duplicate-only shards (every prefix ships whole, tie-break through
    // every level) and all-empty shards (splitter padding per group).
    pd_grid_vs_pdms_oracle(8, (0..8).map(|_| vec![b"dup".to_vec(); 40]).collect());
    pd_grid_vs_pdms_oracle(12, (0..12).map(|_| Vec::new()).collect());
}

#[test]
fn degenerate_duplicate_only_input() {
    // Every string identical across all PEs — the FKmerge-crash trigger.
    #[derive(Clone)]
    struct AllDup;
    let result = run_spmd(4, RunConfig::default(), |comm| {
        let _ = AllDup;
        let shard = StringSet::from_strs(&["boiler"; 100]);
        let input = shard.clone();
        for alg in Algorithm::all_extended() {
            let out = alg.instance().sort(comm, shard.clone());
            check_distributed_sort(comm, &input, &out)
                .unwrap_or_else(|e| panic!("{}: {e}", alg.label()));
        }
    });
    assert_eq!(result.values.len(), 4);
}

#[test]
fn empty_and_near_empty_inputs() {
    for alg in Algorithm::all_extended() {
        let result = run_spmd(3, RunConfig::default(), move |comm| {
            // PE1 holds everything; others are empty.
            let shard = if comm.rank() == 1 {
                StringSet::from_strs(&["x", "a", "m", "q", "b"])
            } else {
                StringSet::new()
            };
            let input = shard.clone();
            let out = alg.instance().sort(comm, shard);
            check_distributed_sort(comm, &input, &out)
                .unwrap_or_else(|e| panic!("{}: {e}", alg.label()));
            out.set.len()
        });
        assert_eq!(result.values.iter().sum::<usize>(), 5, "{}", alg.label());
    }
}

#[test]
fn fully_empty_inputs_survive_splitter_padding() {
    // Every PE empty: the global sample is empty, so splitter selection
    // pads to full width and the exchange still sees well-shaped buckets.
    for alg in Algorithm::all_extended() {
        let result = run_spmd(4, RunConfig::default(), move |comm| {
            let out = alg.instance().sort(comm, StringSet::new());
            check_distributed_sort(comm, &StringSet::new(), &out)
                .unwrap_or_else(|e| panic!("{}: {e}", alg.label()));
            out.set.len()
        });
        assert_eq!(result.values.iter().sum::<usize>(), 0, "{}", alg.label());
    }
}
