//! Qualitative claims of the paper's analysis and evaluation, asserted on
//! the simulator's exact communication accounting. These are the
//! invariants behind the *shape* of Figures 4 and 5.

use distributed_string_sorting::prelude::*;

fn total_bytes(alg: Algorithm, w: &Workload, p: usize) -> u64 {
    let result = run_spmd(p, RunConfig::default(), move |comm| {
        let shard = w.generate(comm.rank(), comm.size(), 9);
        let _ = alg.instance().sort(comm, shard);
    });
    result.stats.total_bytes_sent()
}

fn phase_bytes(alg: Algorithm, w: &Workload, p: usize, phase: &str) -> u64 {
    let result = run_spmd(p, RunConfig::default(), move |comm| {
        let shard = w.generate(comm.rank(), comm.size(), 9);
        let _ = alg.instance().sort(comm, shard);
    });
    result
        .stats
        .phases
        .iter()
        .filter(|ph| ph.name == phase)
        .map(|ph| ph.total.bytes_sent)
        .sum()
}

/// Bottleneck (max per-PE) received bytes of one phase — the `h` of the
/// paper's cost model.
fn phase_bottleneck_recv(alg: Algorithm, w: &Workload, p: usize, phase: &str) -> u64 {
    let result = run_spmd(p, RunConfig::default(), move |comm| {
        let shard = w.generate(comm.rank(), comm.size(), 9);
        let _ = alg.instance().sort(comm, shard);
    });
    result
        .stats
        .phases
        .iter()
        .filter(|ph| ph.name == phase)
        .map(|ph| ph.max.bytes_recv)
        .sum()
}

/// Long strings, tiny distinguishing prefixes (the D ≪ N regime, §VI):
/// PDMS must transmit a small fraction of MS's volume.
#[test]
fn pdms_wins_big_when_d_much_smaller_than_n() {
    let w = Workload::DnRatio {
        n_per_pe: 300,
        len: 300,
        r: 0.05,
        sigma: 16,
    };
    let pdms = total_bytes(Algorithm::Pdms, &w, 4);
    let ms = total_bytes(Algorithm::Ms, &w, 4);
    let simple = total_bytes(Algorithm::MsSimple, &w, 4);
    assert!(pdms * 4 < ms, "PDMS {pdms} vs MS {ms}");
    assert!(pdms * 4 < simple, "PDMS {pdms} vs MS-simple {simple}");
}

/// High D/N: prefix doubling cannot help; its overhead must stay moderate
/// (the paper: "slightly slower than MS", not catastrophically). String
/// length matches the paper's 500 so the per-string fingerprint overhead
/// amortizes as it does there.
#[test]
fn pdms_overhead_stays_moderate_at_high_dn() {
    let w = Workload::DnRatio {
        n_per_pe: 200,
        len: 500,
        r: 1.0,
        sigma: 16,
    };
    let pdms = total_bytes(Algorithm::Pdms, &w, 4);
    let ms = total_bytes(Algorithm::Ms, &w, 4);
    assert!(
        pdms < ms * 2,
        "PDMS {pdms} should be within 2x of MS {ms} even at D/N=1"
    );
}

/// LCP compression: MS sends less than MS-simple whenever LCPs are long,
/// and the gap grows with D/N (Fig. 4's bottom panels).
#[test]
fn lcp_compression_gap_grows_with_dn_ratio() {
    let gap = |r: f64| -> f64 {
        let w = Workload::DnRatio {
            n_per_pe: 300,
            len: 100,
            r,
            sigma: 16,
        };
        let ms = total_bytes(Algorithm::Ms, &w, 4) as f64;
        let simple = total_bytes(Algorithm::MsSimple, &w, 4) as f64;
        simple / ms
    };
    let low = gap(0.1);
    let high = gap(0.9);
    assert!(
        high > low,
        "gap at r=0.9 ({high:.2}) must exceed r=0.1 ({low:.2})"
    );
    assert!(high > 1.5, "high-LCP input must compress well ({high:.2})");
}

/// hQuick moves all data a logarithmic number of times: its volume is the
/// largest of all algorithms and grows with log p (Theorem 1).
#[test]
fn hquick_volume_largest_and_grows_with_log_p() {
    let w = Workload::Web { n_per_pe: 200 };
    let hq4 = total_bytes(Algorithm::HQuick, &w, 4);
    let strong_w8 = Workload::Web { n_per_pe: 100 }; // same total at p=8
    let hq8 = total_bytes(Algorithm::HQuick, &strong_w8, 8);
    assert!(hq8 > hq4, "volume grows with p: {hq4} -> {hq8}");
    for alg in [Algorithm::Ms, Algorithm::MsSimple, Algorithm::Pdms] {
        let other = total_bytes(alg, &w, 4);
        assert!(
            hq4 > other,
            "hQuick {hq4} must exceed {} {other}",
            alg.label()
        );
    }
}

/// FKmerge's quadratic sample is sorted *centrally*: the bottleneck PE
/// receives Θ(p²·ℓ̂) sample characters, while MS's distributed hQuick
/// sample sort spreads the same sample across all PEs. The bottleneck
/// received volume of the partition phase must therefore blow up with p
/// much faster for FKmerge (the paper's explanation of Fig. 4's FKmerge
/// collapse: "a bottleneck due to centralized sorting of samples").
#[test]
fn fkmerge_partition_bottleneck_explodes_with_p() {
    let w = Workload::DnRatio {
        n_per_pe: 64,
        len: 100,
        r: 0.5,
        sigma: 16,
    };
    let fk = |p: usize| phase_bottleneck_recv(Algorithm::FkMerge, &w, p, "partition") as f64;
    let ms = |p: usize| phase_bottleneck_recv(Algorithm::Ms, &w, p, "partition") as f64;
    let fk_growth = fk(8) / fk(2);
    let ms_growth = ms(8) / ms(2);
    assert!(
        fk_growth > 1.5 * ms_growth,
        "FKmerge bottleneck growth {fk_growth:.1} should dwarf MS's {ms_growth:.1}"
    );
    // In absolute terms the Θ(p²·ℓ̂) root load overtakes MS's distributed
    // sample sort once p is large enough (p = 16 suffices here; the paper
    // sees the collapse beyond 320 cores).
    assert!(
        fk(16) > ms(16),
        "FKmerge bottleneck {} vs MS {} at p=16",
        fk(16),
        ms(16)
    );
}

/// Golomb coding shrinks the duplicate-detection traffic (PDMS-Golomb vs
/// PDMS in the prefix_doubling phase).
#[test]
fn golomb_shrinks_dedup_traffic() {
    let w = Workload::Dna { n_per_pe: 400 };
    let raw = phase_bytes(Algorithm::Pdms, &w, 4, "prefix_doubling");
    let gol = phase_bytes(Algorithm::PdmsGolomb, &w, 4, "prefix_doubling");
    assert!(gol < raw, "golomb {gol} must be below raw {raw}");
}

/// The distinguishing-prefix cap: on data where every string is a
/// duplicate, PDMS degenerates gracefully to full strings.
#[test]
fn pdms_on_pure_duplicates_ships_full_strings_once_each_pe() {
    let result = run_spmd(2, RunConfig::default(), |comm| {
        let shard = StringSet::from_strs(&["copy"; 50]);
        let out = Pdms::default().sort(comm, shard);
        out.set.iter().map(|s| s.len()).sum::<usize>()
    });
    // Every output prefix is the full 4-char string.
    let total: usize = result.values.iter().sum();
    assert_eq!(total, 100 * 4);
}

/// Weak scaling shape: in Fig. 4's volume panels all curves rise with p,
/// but hQuick's rises fastest (every string moves log p times) while the
/// merge-based algorithms' per-string volume grows only through the
/// splitter machinery. Assert the *relative* growth ordering.
#[test]
fn ms_volume_grows_slower_than_hquick_in_weak_scaling() {
    let per_string = |alg: Algorithm, p: usize| -> f64 {
        let w = Workload::DnRatio {
            n_per_pe: 600,
            len: 100,
            r: 0.5,
            sigma: 16,
        };
        total_bytes(alg, &w, p) as f64 / (600.0 * p as f64)
    };
    let ms_growth = per_string(Algorithm::Ms, 8) / per_string(Algorithm::Ms, 2);
    let hq_growth = per_string(Algorithm::HQuick, 8) / per_string(Algorithm::HQuick, 2);
    assert!(
        ms_growth < hq_growth,
        "MS growth {ms_growth:.2} must stay below hQuick's {hq_growth:.2}"
    );
    assert!(
        ms_growth < 3.0,
        "MS per-string volume growth {ms_growth:.2} should stay mild at this scale"
    );
}
