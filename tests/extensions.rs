//! End-to-end tests for the §VIII future-work extensions implemented on
//! top of the paper's algorithms: random splitter sampling, duplicate tie
//! breaking, delta-coded LCPs, latency-optimal fingerprint routing, and
//! the D/n estimators.

use distributed_string_sorting::dedup::prefix_doubling::PrefixDoublingConfig;
use distributed_string_sorting::prelude::*;
use distributed_string_sorting::sort::partition::{PartitionConfig, SamplingPolicy};

fn sort_and_check(sorter: &dyn DistSorter, shards: &[Vec<Vec<u8>>]) -> Vec<usize> {
    let p = shards.len();
    let mut expect: Vec<Vec<u8>> = shards.iter().flatten().cloned().collect();
    expect.sort();
    let res = run_spmd(p, RunConfig::default(), move |comm| {
        let set = StringSet::from_iter_bytes(shards[comm.rank()].iter().map(|s| s.as_slice()));
        let input = set.clone();
        let out = sorter.sort(comm, set);
        check_distributed_sort(comm, &input, &out).expect("distributed check");
        (out.set.to_vecs(), out.set.len())
    });
    let got: Vec<Vec<u8>> = res.values.iter().flat_map(|(v, _)| v.clone()).collect();
    // PDMS outputs prefixes; only compare full contents for plain sorters.
    if got.iter().map(|s| s.len()).sum::<usize>() == expect.iter().map(|s| s.len()).sum::<usize>() {
        assert_eq!(got, expect);
    }
    res.values.iter().map(|(_, n)| *n).collect()
}

fn duplicate_flood(p: usize) -> Vec<Vec<Vec<u8>>> {
    (0..p)
        .map(|r| {
            (0..200)
                .map(|i| {
                    if i % 10 == 0 {
                        format!("rare-{r}-{i}").into_bytes()
                    } else {
                        b"megadup".to_vec()
                    }
                })
                .collect()
        })
        .collect()
}

#[test]
fn tie_break_balances_duplicate_floods() {
    let shards = duplicate_flood(4);
    let plain = Ms::default();
    let tie = Ms::with_config(MsConfig {
        partition: PartitionConfig {
            duplicate_tie_break: true,
            ..PartitionConfig::default()
        },
        ..MsConfig::default()
    });
    let plain_sizes = sort_and_check(&plain, &shards);
    let tie_sizes = sort_and_check(&tie, &shards);
    let imbalance = |sizes: &[usize]| -> usize {
        sizes.iter().copied().max().unwrap_or(0) - sizes.iter().copied().min().unwrap_or(0)
    };
    assert!(
        imbalance(&tie_sizes) < imbalance(&plain_sizes),
        "tie breaking must reduce imbalance: plain {plain_sizes:?} vs tie {tie_sizes:?}"
    );
}

#[test]
fn random_sampling_sorts_correctly() {
    let shards: Vec<Vec<Vec<u8>>> = (0..4)
        .map(|r| {
            (0..150)
                .map(|i| format!("{:03}-{r}", (i * 13 + r * 29) % 600).into_bytes())
                .collect()
        })
        .collect();
    let sorter = Ms::with_config(MsConfig {
        partition: PartitionConfig {
            random_sampling: true,
            oversampling: 12,
            ..PartitionConfig::default()
        },
        ..MsConfig::default()
    });
    sort_and_check(&sorter, &shards);
}

#[test]
fn pdms_with_all_extensions_sorts() {
    let shards = duplicate_flood(4);
    let sorter = Pdms::with_config(PdmsConfig {
        pd: PrefixDoublingConfig {
            golomb: true,
            latency_optimal: true,
            growth_num: 3,
            growth_den: 2,
            ..PrefixDoublingConfig::default()
        },
        partition: PartitionConfig {
            policy: SamplingPolicy::DistPrefix,
            duplicate_tie_break: true,
            random_sampling: true,
            ..PartitionConfig::default()
        },
        delta_lcps: true,
        ..PdmsConfig::default()
    });
    sort_and_check(&sorter, &shards);
}

#[test]
fn ms_delta_lcp_volume_not_worse_on_smooth_lcps() {
    // Sorted runs with slowly varying LCPs: delta coding should not cost
    // more than raw varint LCPs.
    let run = |delta: bool| -> u64 {
        let res = run_spmd(2, RunConfig::default(), move |comm| {
            let mut set = StringSet::new();
            for i in 0..2000u32 {
                set.push(format!("prefix-{:06}-{}", i, comm.rank()).as_bytes());
            }
            let sorter = Ms::with_config(MsConfig {
                delta_lcps: delta,
                ..MsConfig::default()
            });
            let _ = sorter.sort(comm, set);
        });
        res.stats.total_bytes_sent()
    };
    let raw = run(false);
    let delta = run(true);
    assert!(
        delta <= raw + raw / 20,
        "delta-coded LCPs {delta} should not exceed raw {raw} by >5%"
    );
}

#[test]
fn estimators_run_inside_full_pipeline() {
    use distributed_string_sorting::dedup::{
        estimate_dist_by_gossip, estimate_dist_by_prefix_sampling,
    };
    let res = run_spmd(4, RunConfig::default(), |comm| {
        let w = Workload::Suffix {
            text_len: 1200,
            cap: 200,
        };
        let set = w.generate(comm.rank(), comm.size(), 5);
        let gossip = estimate_dist_by_gossip(comm, &set, 40);
        let (prefix, _) = estimate_dist_by_prefix_sampling(comm, &set, 0.5);
        (gossip.mean_dist, prefix.mean_dist)
    });
    for (g, pfx) in &res.values {
        // Suffix instances: DIST is tiny relative to the 200-char cap.
        assert!(*g < 100.0, "gossip estimate {g}");
        assert!(*pfx < 100.0, "prefix-sampling estimate {pfx}");
        assert!(*g > 1.0 && *pfx > 1.0);
    }
}
