//! Multi-threaded-PE end-to-end matrix: every algorithm with 4
//! shared-memory threads per PE, in both exchange modes, against a
//! sequential oracle. The `DSS_THREADS`-style configuration is set
//! explicitly through [`Algorithm::instance_with`] so the test is immune
//! to env-var races and runs the same everywhere.
//!
//! The load-bearing claim: the thread count must never change any output
//! byte — the work-stealing local sort and the range-split parallel
//! merges are deterministic, so `threads = 4` output equals `threads = 1`
//! output equals the oracle.

use distributed_string_sorting::prelude::*;
use distributed_string_sorting::sort::output::origin_parts;
use distributed_string_sorting::sort::ExchangeMode;

const THREADS: usize = 4;

fn oracle_check_threads(alg: Algorithm, mode: ExchangeMode, w: &Workload, p: usize, seed: u64) {
    let mut expect: Vec<Vec<u8>> = (0..p)
        .flat_map(|r| w.generate(r, p, seed).to_vecs())
        .collect();
    expect.sort();

    let result = run_spmd(p, RunConfig::default(), move |comm| {
        let shard = w.generate(comm.rank(), comm.size(), seed);
        let input = shard.clone();
        let out = alg.instance_with(mode, THREADS).sort(comm, shard);
        check_distributed_sort(comm, &input, &out)
            .unwrap_or_else(|e| panic!("{} ({}) checker: {e}", alg.label(), mode.label()));
        (
            out.set.to_vecs(),
            out.origins,
            out.local_store.map(|s| s.to_vecs()),
        )
    });

    let got: Vec<Vec<u8>> = match result.values[0].1 {
        None => result
            .values
            .iter()
            .flat_map(|(s, _, _)| s.clone())
            .collect(),
        Some(_) => {
            // PDMS: map origins back to full strings.
            let stores: Vec<&Vec<Vec<u8>>> = result
                .values
                .iter()
                .map(|(_, _, st)| st.as_ref().expect("pdms keeps store"))
                .collect();
            result
                .values
                .iter()
                .flat_map(|(prefixes, origins, _)| {
                    let origins = origins.as_ref().expect("pdms origins");
                    prefixes.iter().zip(origins).map(|(pref, &tag)| {
                        let (pe, idx) = origin_parts(tag);
                        let full = stores[pe][idx].clone();
                        assert!(
                            full.starts_with(pref),
                            "{}: prefix/origin mismatch",
                            alg.label()
                        );
                        full
                    })
                })
                .collect()
        }
    };
    assert_eq!(
        got,
        expect,
        "{} ({}) with {THREADS} threads/PE on {} p={p} does not sort",
        alg.label(),
        mode.label(),
        w.label()
    );
}

/// Big enough shards that the parallel local sort genuinely engages
/// (above `PAR_TASK_MIN = 2048` strings per PE).
fn workload() -> Workload {
    Workload::DnRatio {
        n_per_pe: 3000,
        len: 24,
        r: 0.5,
        sigma: 6,
    }
}

#[test]
fn all_algorithms_sort_with_threads_blocking() {
    for alg in Algorithm::all_extended() {
        oracle_check_threads(alg, ExchangeMode::Blocking, &workload(), 4, 11);
    }
}

#[test]
fn all_algorithms_sort_with_threads_pipelined() {
    for alg in Algorithm::all_extended() {
        oracle_check_threads(alg, ExchangeMode::Pipelined, &workload(), 4, 12);
    }
}

/// Byte-for-byte: the threaded run's per-PE outputs (including LCP
/// arrays) must equal the single-threaded run's, for every algorithm and
/// both modes.
#[test]
fn threaded_output_identical_to_single_threaded() {
    let w = workload();
    for alg in Algorithm::all_extended() {
        for mode in [ExchangeMode::Blocking, ExchangeMode::Pipelined] {
            let run = |threads: usize| {
                let w = &w;
                run_spmd(4, RunConfig::default(), move |comm| {
                    let shard = w.generate(comm.rank(), comm.size(), 13);
                    let out = alg.instance_with(mode, threads).sort(comm, shard);
                    (out.set.to_vecs(), out.lcps, out.origins)
                })
                .values
            };
            let single = run(1);
            let threaded = run(THREADS);
            assert_eq!(
                single,
                threaded,
                "{} ({}) per-PE outputs differ between 1 and {THREADS} threads",
                alg.label(),
                mode.label()
            );
        }
    }
}

/// PD-MSML on a genuine three-level grid (p = 8 = 2×2×2): the full
/// permutation output — truncated prefixes, LCP arrays, origin tags and
/// local stores — must be byte-identical across threads × modes, and the
/// wire accounting must match byte for byte too (Step 1+ε and all three
/// levels included).
#[test]
fn pd_msml_three_level_output_and_wire_identical_across_threads_and_modes() {
    let w = Workload::DnRatio {
        n_per_pe: 2500,
        len: 24,
        r: 0.5,
        sigma: 6,
    };
    let run = |mode: ExchangeMode, threads: usize| {
        let w = &w;
        run_spmd(8, RunConfig::default(), move |comm| {
            let shard = w.generate(comm.rank(), comm.size(), 15);
            let input = shard.clone();
            let out = Algorithm::PdMsml
                .instance_with(mode, threads)
                .sort(comm, shard);
            check_distributed_sort(comm, &input, &out)
                .unwrap_or_else(|e| panic!("PD-MSML ({}) checker: {e}", mode.label()));
            (
                out.set.to_vecs(),
                out.lcps,
                out.origins,
                out.local_store.map(|s| s.to_vecs()),
            )
        })
    };
    let reference = run(ExchangeMode::Blocking, 1);
    for mode in [ExchangeMode::Blocking, ExchangeMode::Pipelined] {
        for threads in [1, THREADS] {
            let res = run(mode, threads);
            assert_eq!(
                res.values,
                reference.values,
                "PD-MSML ({}, {threads} threads) deviates on the 2x2x2 grid",
                mode.label()
            );
            assert_eq!(
                res.stats.total_bytes_sent(),
                reference.stats.total_bytes_sent(),
                "PD-MSML ({}, {threads} threads) wire accounting deviates",
                mode.label()
            );
        }
    }
}

/// MSML on a genuine three-level grid (p = 8 = 2×2×2, so every level's
/// merge runs threaded): byte-identical per-PE output across
/// threads × modes — the matrix above only reaches two-level grids at
/// p = 4.
#[test]
fn msml_three_level_output_identical_across_threads_and_modes() {
    let w = Workload::DnRatio {
        n_per_pe: 2500,
        len: 24,
        r: 0.5,
        sigma: 6,
    };
    let run = |mode: ExchangeMode, threads: usize| {
        let w = &w;
        run_spmd(8, RunConfig::default(), move |comm| {
            let shard = w.generate(comm.rank(), comm.size(), 14);
            let input = shard.clone();
            let out = Algorithm::Msml
                .instance_with(mode, threads)
                .sort(comm, shard);
            check_distributed_sort(comm, &input, &out)
                .unwrap_or_else(|e| panic!("MSML ({}) checker: {e}", mode.label()));
            (out.set.to_vecs(), out.lcps, out.origins)
        })
        .values
    };
    let reference = run(ExchangeMode::Blocking, 1);
    for mode in [ExchangeMode::Blocking, ExchangeMode::Pipelined] {
        for threads in [1, THREADS] {
            assert_eq!(
                run(mode, threads),
                reference,
                "MSML ({}, {threads} threads) deviates on the 2x2x2 grid",
                mode.label()
            );
        }
    }
}
