//! Exact reproduction of the paper's worked example (Figures 2 and 3):
//! the twelve strings alpha…organ on three PEs, with every published
//! intermediate value asserted. The `paper_walkthrough` example prints
//! the same states; this test keeps them pinned in CI.

use distributed_string_sorting::dedup::prefix_doubling::{
    approx_dist_prefixes, PrefixDoublingConfig,
};
use distributed_string_sorting::prelude::*;
use std::collections::HashMap;

const PE_INPUTS: [[&str; 4]; 3] = [
    ["alpha", "order", "alps", "algae"],
    ["sorter", "snow", "algo", "sorbet"],
    ["sorted", "orange", "soul", "organ"],
];

#[test]
fn figure2_step1_local_sort_and_lcps() {
    let expected_sorted: [&[&str]; 3] = [
        &["algae", "alpha", "alps", "order"],
        &["algo", "snow", "sorbet", "sorter"],
        &["orange", "organ", "sorted", "soul"],
    ];
    let expected_lcps: [&[u32]; 3] = [&[0, 2, 3, 0], &[0, 0, 1, 3], &[0, 2, 0, 2]];
    for pe in 0..3 {
        let mut set = StringSet::from_strs(&PE_INPUTS[pe]);
        let (lcps, _) = sort_with_lcp(&mut set);
        let got: Vec<&str> = set
            .iter()
            .map(|s| std::str::from_utf8(s).expect("ascii"))
            .map(|s| Box::leak(s.to_string().into_boxed_str()) as &str)
            .collect();
        assert_eq!(got, expected_sorted[pe], "PE{}", pe + 1);
        assert_eq!(lcps.as_slice(), expected_lcps[pe], "PE{}", pe + 1);
    }
}

#[test]
fn figure2_step2_samples_and_splitters() {
    // v = 1: each PE samples its ω·1−1 = 1st (0-based) sorted string:
    // alpha, snow, organ; sorted sample {alpha, organ, snow} yields
    // splitters f1 = alpha, f2 = organ.
    use distributed_string_sorting::sort::partition::{partition, PartitionConfig, SamplingPolicy};
    let result = run_spmd(3, RunConfig::default(), |comm| {
        let mut set = StringSet::from_strs(&PE_INPUTS[comm.rank()]);
        let (_, _) = sort_with_lcp(&mut set);
        let cfg = PartitionConfig {
            policy: SamplingPolicy::Strings,
            oversampling: 1,
            central_sample_sort: false,
            ..PartitionConfig::default()
        };
        partition(comm, &set, &cfg, None, None)
    });
    // Buckets by f1=alpha, f2=organ:
    // PE1 sorted: algae alpha | alps order |        → bounds 0,2,4,4
    // PE2 sorted: algo |              | snow sorbet sorter → 0,1,1,4
    // PE3 sorted:      | orange organ | sorted soul → 0,0,2,4
    assert_eq!(result.values[0], vec![0, 2, 4, 4]);
    assert_eq!(result.values[1], vec![0, 1, 1, 4]);
    assert_eq!(result.values[2], vec![0, 0, 2, 4]);
}

#[test]
fn figure2_full_ms_result() {
    let result = run_spmd(3, RunConfig::default(), |comm| {
        let out = Ms::default().sort(comm, StringSet::from_strs(&PE_INPUTS[comm.rank()]));
        (out.set.to_vecs(), out.lcps.expect("MS emits LCPs"))
    });
    let all: Vec<String> = result
        .values
        .iter()
        .flat_map(|(v, _)| v.iter().map(|s| String::from_utf8_lossy(s).into_owned()))
        .collect();
    assert_eq!(
        all,
        [
            "algae", "algo", "alpha", "alps", "orange", "order", "organ", "snow", "sorbet",
            "sorted", "sorter", "soul"
        ]
    );
    // Fig. 2's final LCP values, re-segmented per PE boundary (⊥ → 0):
    // paper shows the merged column 0,3,2,3 | 0,2,2 | 0,1,3,5,2 for the
    // partition the algorithm's bucket rule actually produces.
    let lcps: Vec<Vec<u32>> = result.values.iter().map(|(_, l)| l.clone()).collect();
    assert_eq!(lcps[0], vec![0, 3, 2]);
    assert_eq!(lcps[1], vec![0, 0, 2, 2]);
    assert_eq!(lcps[2], vec![0, 1, 3, 5, 2]);
}

#[test]
fn figure3_prefix_doubling_depths() {
    let cfg = PrefixDoublingConfig {
        initial: Some(1),
        ..PrefixDoublingConfig::default()
    };
    let result = run_spmd(3, RunConfig::default(), move |comm| {
        let mut set = StringSet::from_strs(&PE_INPUTS[comm.rank()]);
        let (lcps, _) = sort_with_lcp(&mut set);
        let (approx, stats) = approx_dist_prefixes(comm, &set, &lcps, &cfg);
        let pairs: Vec<(String, u32)> = set
            .iter()
            .zip(&approx)
            .map(|(s, &a)| (String::from_utf8_lossy(s).into_owned(), a))
            .collect();
        (pairs, stats.iterations)
    });
    let mut approx_of: HashMap<String, u32> = HashMap::new();
    for (pairs, iters) in &result.values {
        assert_eq!(*iters, 4, "depths 1, 2, 4, 8 as in the figure");
        for (s, a) in pairs {
            approx_of.insert(s.clone(), *a);
        }
    }
    // Fig. 3's verdicts: snow's 2-prefix is unique at depth 2 (red);
    // everything else resolves at depth 4 except sorter/sorted, whose
    // 4-prefix "sort" stays duplicated (blue) until the length cap.
    assert_eq!(approx_of["snow"], 2);
    for s in [
        "algae", "algo", "alpha", "alps", "orange", "order", "organ", "sorbet", "soul",
    ] {
        assert_eq!(approx_of[s], 4, "{s}");
    }
    assert_eq!(approx_of["sorter"], 7);
    assert_eq!(approx_of["sorted"], 7);
}

#[test]
fn figure3_pdms_transmits_prefixes_only() {
    let result = run_spmd(3, RunConfig::default(), |comm| {
        let pdms = Pdms::with_config(PdmsConfig {
            pd: PrefixDoublingConfig {
                initial: Some(1),
                ..PrefixDoublingConfig::default()
            },
            ..PdmsConfig::default()
        });
        let out = pdms.sort(comm, StringSet::from_strs(&PE_INPUTS[comm.rank()]));
        out.set.to_vecs()
    });
    let all: Vec<String> = result
        .values
        .iter()
        .flatten()
        .map(|s| String::from_utf8_lossy(s).into_owned())
        .collect();
    // The globally sorted *distinguishing prefixes* (gray characters of
    // the figure never travel; sorter/sorted need their full strings).
    assert_eq!(
        all,
        [
            "alga", "algo", "alph", "alps", "oran", "orde", "orga", "sn", "sorb", "sorted",
            "sorter", "soul"
        ]
    );
}
