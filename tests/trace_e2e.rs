//! End-to-end trace pins over full sorter runs: the pipelined exchange
//! must show strictly positive send-window overlap (receive-side decode
//! and merge work landing inside the send window) where the blocking
//! exchange shows exactly zero — the overlap ratio is the observable
//! the exchange engine's pipelining exists to move.
//!
//! The recorder is process-global; tests serialize on one lock.

use distributed_string_sorting::net::trace::{self, cat};
use distributed_string_sorting::prelude::*;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn cfg() -> RunConfig {
    RunConfig {
        recv_timeout: Duration::from_secs(60),
        ..RunConfig::default()
    }
}

/// Deterministic shards with shared prefixes and duplicates, heavy
/// enough that per-bucket decode/merge work takes measurable time.
fn build_shards(p: usize, n_per_pe: usize) -> Vec<Vec<Vec<u8>>> {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..p)
        .map(|_| {
            (0..n_per_pe)
                .map(|_| {
                    let len = 8 + (next() % 24) as usize;
                    let mut s = b"prefix/".to_vec();
                    s.extend((0..len).map(|_| b'a' + (next() % 8) as u8));
                    s
                })
                .collect()
        })
        .collect()
}

/// Runs `alg` in `mode` with tracing on; returns the paired spans and
/// the per-PE output strings.
fn traced_run(
    alg: Algorithm,
    mode: ExchangeMode,
    threads: usize,
    shards: &[Vec<Vec<u8>>],
) -> (Vec<trace::Span>, Vec<Vec<Vec<u8>>>) {
    trace::reset();
    trace::enable(trace::DEFAULT_SPAN_CAP);
    let shards = shards.to_vec();
    let res = run_spmd(shards.len(), cfg(), move |comm| {
        let set = StringSet::from_iter_bytes(shards[comm.rank()].iter().map(|s| s.as_slice()));
        let out = alg.instance_with(mode, threads).sort(comm, set);
        out.set.to_vecs()
    });
    trace::disable();
    let trace = trace::take();
    let spans = trace::pair_spans(&trace).expect("traced sorter run must pair cleanly");
    (spans, res.values)
}

fn overlap_of(spans: &[trace::Span]) -> f64 {
    let windows = spans.iter().filter(|s| s.cat == cat::SEND_WINDOW);
    let work = spans
        .iter()
        .filter(|s| s.cat == cat::DECODE || s.cat == cat::MERGE);
    trace::overlap_ratio(windows, work)
}

#[test]
fn pipelined_overlaps_where_blocking_cannot() {
    let _g = lock();
    let shards = build_shards(4, 1500);
    let (blocking, out_b) = traced_run(Algorithm::Ms, ExchangeMode::Blocking, 1, &shards);
    let (pipelined, out_p) = traced_run(Algorithm::Ms, ExchangeMode::Pipelined, 1, &shards);
    // Same bytes either way — tracing must not perturb the sort.
    assert_eq!(out_b, out_p, "traced modes must stay byte-identical");

    // Every layer shows up in both traces.
    for cat in [
        cat::RUN,
        cat::PHASE,
        cat::COLL,
        cat::ALGO,
        cat::ENCODE,
        cat::DECODE,
        cat::MERGE,
        cat::SEND_WINDOW,
    ] {
        assert!(
            blocking.iter().any(|s| s.cat == cat),
            "blocking trace missing '{cat}'"
        );
        assert!(
            pipelined.iter().any(|s| s.cat == cat),
            "pipelined trace missing '{cat}'"
        );
    }

    // Blocking: the send window is the alltoallv itself; decode starts
    // strictly after, so the overlap ratio is zero by construction.
    assert_eq!(overlap_of(&blocking), 0.0, "blocking overlap must be 0");

    // Pipelined: at least the self-bucket decodes inside the window, so
    // the ratio is strictly positive.
    let ratio = overlap_of(&pipelined);
    assert!(ratio > 0.0, "pipelined overlap ratio was {ratio}");

    // And explicitly: on some PE track a decode begins before that
    // track's last in-window send ends — receive work is interleaved
    // with sending, not deferred past it.
    let interleaved = pipelined
        .iter()
        .filter(|w| w.cat == cat::SEND_WINDOW)
        .any(|w| {
            let last_send_end = pipelined
                .iter()
                .filter(|s| s.cat == cat::SEND && s.tid == w.tid)
                .filter(|s| s.start_ns >= w.start_ns && s.end_ns() <= w.end_ns())
                .map(|s| s.end_ns())
                .max();
            let Some(last_send_end) = last_send_end else {
                return false;
            };
            pipelined
                .iter()
                .filter(|s| s.tid == w.tid && (s.cat == cat::DECODE || s.cat == cat::MERGE))
                .any(|d| d.start_ns < last_send_end)
        });
    assert!(
        interleaved,
        "no decode/merge began before the final in-window send ended"
    );
}

/// Span counts for structural categories must not depend on the
/// shared-memory worker count: phases, collectives, exchange buckets and
/// merges are algorithmic, only `sort-task` granularity may change.
#[test]
fn structural_span_counts_are_thread_count_invariant() {
    let _g = lock();
    const STRUCTURAL: &[&str] = &[
        cat::ALGO,
        cat::PHASE,
        cat::COLL,
        cat::ENCODE,
        cat::DECODE,
        cat::MERGE,
        cat::SEND,
        cat::SEND_WINDOW,
    ];
    let shards = build_shards(4, 800);
    let counts = |threads: usize| -> BTreeMap<&'static str, usize> {
        let (spans, _) = traced_run(Algorithm::Ms, ExchangeMode::Pipelined, threads, &shards);
        let mut m = BTreeMap::new();
        for s in spans {
            if STRUCTURAL.contains(&s.cat) {
                *m.entry(s.cat).or_insert(0) += 1;
            }
        }
        m
    };
    let one = counts(1);
    let two = counts(2);
    assert!(!one.is_empty());
    assert_eq!(one, two, "structural span counts changed with threads");
}
