//! Smoke tests for the public entry points a new user hits first: the
//! `src/lib.rs` quick start (4-PE PDMS; also exercised as a doc-test by
//! `cargo test`) and the `examples/suffix_sorting.rs` pipeline, scaled
//! down but structurally identical — suffix shards round-robin over PEs,
//! PDMS's (prefix, origin) output reassembled into a suffix array and
//! verified against a direct sequential construction.

use distributed_string_sorting::gen::text::generate_text;
use distributed_string_sorting::prelude::*;
use distributed_string_sorting::sort::output::origin_parts;
use std::collections::HashMap;
use std::time::Duration;

fn cfg_run() -> RunConfig {
    RunConfig {
        recv_timeout: Duration::from_secs(60),
        ..RunConfig::default()
    }
}

#[test]
fn quickstart_4pe_pdms_produces_sorted_output() {
    // The same program as the src/lib.rs doc-test.
    let result = run_spmd(4, cfg_run(), |comm| {
        let shard = StringSet::from_strs(match comm.rank() {
            0 => &["tokyo", "lima", "cairo"],
            1 => &["paris", "accra", "quito"],
            2 => &["delhi", "seoul", "hanoi"],
            _ => &["oslo", "berlin", "dakar"],
        });
        let input = shard.clone();
        let out = Algorithm::Pdms.instance().sort(comm, shard);
        check_distributed_sort(comm, &input, &out).expect("distributed check passes");
        out.set.to_vecs()
    });

    // Concatenated per-PE outputs are globally sorted and complete: PDMS
    // emits distinguishing *prefixes*, so each output entry must prefix
    // the corresponding input string and the prefix sequence must be
    // globally ordered.
    let all: Vec<Vec<u8>> = result.values.into_iter().flatten().collect();
    assert_eq!(all.len(), 12, "one output per input string");
    assert!(all.windows(2).all(|w| w[0] <= w[1]), "globally sorted");
    let mut inputs: Vec<&str> = vec![
        "tokyo", "lima", "cairo", "paris", "accra", "quito", "delhi", "seoul", "hanoi", "oslo",
        "berlin", "dakar",
    ];
    inputs.sort_unstable();
    for (prefix, full) in all.iter().zip(&inputs) {
        assert!(
            full.as_bytes().starts_with(prefix),
            "{:?} prefixes {full}",
            String::from_utf8_lossy(prefix)
        );
    }
}

#[test]
fn suffix_sorting_example_pipeline_matches_sequential_oracle() {
    // examples/suffix_sorting.rs at reduced scale (the example itself
    // runs 4000 chars on 8 PEs; the structure below is identical).
    // CAP exceeds the generator's salt spacing (~85 chars), so every
    // capped window contains a position-dependent salt and the capped
    // suffixes are pairwise distinct (asserted below).
    const TEXT_LEN: usize = 600;
    const CAP: usize = 120;
    let p = 4;

    let result = run_spmd(p, cfg_run(), |comm| {
        let shard = Workload::Suffix {
            text_len: TEXT_LEN,
            cap: CAP,
        }
        .generate(comm.rank(), comm.size(), 5);
        let mut sorted_local = shard.clone();
        let (_, _) = sort_with_lcp(&mut sorted_local);
        let out = Pdms::default().sort(comm, shard);
        let origins = out.origins.clone().expect("PDMS reports origins");
        (sorted_local.to_vecs(), origins)
    });
    assert!(
        result.stats.total_bytes_sent() > 0,
        "distributed run communicated"
    );

    // Reconstruct the suffix array from the origin tags.
    let text = generate_text(TEXT_LEN, 5);
    let mut pos_of_content: HashMap<&[u8], usize> = HashMap::with_capacity(TEXT_LEN);
    for pos in 0..TEXT_LEN {
        let end = (pos + CAP).min(TEXT_LEN);
        pos_of_content.insert(&text[pos..end], pos);
    }
    assert_eq!(
        pos_of_content.len(),
        TEXT_LEN,
        "capped suffixes are pairwise distinct"
    );
    let start_of: Vec<Vec<usize>> = result
        .values
        .iter()
        .map(|(local, _)| {
            local
                .iter()
                .map(|suffix| pos_of_content[suffix.as_slice()])
                .collect()
        })
        .collect();
    let mut suffix_array: Vec<usize> = Vec::with_capacity(TEXT_LEN);
    for (_, origins) in &result.values {
        for &tag in origins {
            let (pe, idx) = origin_parts(tag);
            suffix_array.push(start_of[pe][idx]);
        }
    }
    assert_eq!(suffix_array.len(), TEXT_LEN);

    // Sequential oracle: sorted output means sorted capped suffixes.
    let mut expect: Vec<usize> = (0..TEXT_LEN).collect();
    expect.sort_by(|&a, &b| {
        let ea = (a + CAP).min(TEXT_LEN);
        let eb = (b + CAP).min(TEXT_LEN);
        text[a..ea].cmp(&text[b..eb])
    });
    assert_eq!(suffix_array, expect, "distributed SA equals sequential SA");
}
