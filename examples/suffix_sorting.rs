//! Suffix sorting via distributed string sorting — the paper's §VII-E
//! experiment and its original motivation (string sorting as the workhorse
//! inside suffix array construction, e.g. the difference-cover algorithm).
//!
//! All suffixes of one generated text are sorted as strings. The instance
//! has D ≪ N (the text's repeats are much shorter than the suffixes), so
//! PDMS transmits a tiny fraction of the characters; the other algorithms
//! pay for the full suffix lengths. The example builds the suffix array,
//! verifies it against a direct sequential construction, and prints the
//! communication-volume contrast.
//!
//! Run with: `cargo run --release --example suffix_sorting`

use distributed_string_sorting::gen::text::generate_text;
use distributed_string_sorting::prelude::*;
use distributed_string_sorting::sort::output::origin_parts;

const TEXT_LEN: usize = 4000;
const CAP: usize = 400;

fn main() {
    let p = 8;
    println!("suffix-sorting a {TEXT_LEN}-char text on {p} simulated PEs\n");

    // Distributed: suffixes round-robin over PEs, sorted with PDMS.
    // PDMS's (prefix, origin) output *is* the suffix array: origin tags
    // identify (PE, local index) → suffix start position.
    let result = run_spmd(p, RunConfig::default(), |comm| {
        let shard = Workload::Suffix {
            text_len: TEXT_LEN,
            cap: CAP,
        }
        .generate(comm.rank(), comm.size(), 5);
        // Remember each local suffix's start position, in the local
        // *sorted* order PDMS indexes into. Local sort is deterministic,
        // so recompute it the same way the algorithm does.
        let mut sorted_local = shard.clone();
        let (_, _) = sort_with_lcp(&mut sorted_local);
        let out = Pdms::default().sort(comm, shard);
        let origins = out.origins.clone().expect("PDMS reports origins");
        (sorted_local.to_vecs(), origins)
    });
    let pdms_bytes = result.stats.total_bytes_sent();

    // Reconstruct the global suffix array from the origin tags.
    let text = generate_text(TEXT_LEN, 5);
    let locals: Vec<&Vec<Vec<u8>>> = result.values.iter().map(|(l, _)| l).collect();
    // Map (pe, local sorted index) → suffix start position: capped
    // suffixes are pairwise distinct (the generator salts the text), so
    // content identifies the position.
    let mut pos_of_content: std::collections::HashMap<&[u8], usize> =
        std::collections::HashMap::with_capacity(TEXT_LEN);
    for pos in 0..TEXT_LEN {
        let end = (pos + CAP).min(TEXT_LEN);
        pos_of_content.insert(&text[pos..end], pos);
    }
    let mut start_of: Vec<Vec<usize>> = Vec::with_capacity(p);
    for local in &locals {
        start_of.push(
            local
                .iter()
                .map(|suffix| pos_of_content[suffix.as_slice()])
                .collect(),
        );
    }
    let mut suffix_array: Vec<usize> = Vec::with_capacity(TEXT_LEN);
    for (_, origins) in &result.values {
        for &tag in origins {
            let (pe, idx) = origin_parts(tag);
            suffix_array.push(start_of[pe][idx]);
        }
    }
    assert_eq!(suffix_array.len(), TEXT_LEN);

    // Sequential oracle.
    let mut expect: Vec<usize> = (0..TEXT_LEN).collect();
    expect.sort_by(|&a, &b| text[a..].cmp(&text[b..]));
    assert_eq!(suffix_array, expect, "distributed SA equals sequential SA");
    println!("suffix array of length {TEXT_LEN} verified against sequential construction ✓");

    // Contrast with MS (which must ship whole suffixes).
    let ms = run_spmd(p, RunConfig::default(), |comm| {
        let shard = Workload::Suffix {
            text_len: TEXT_LEN,
            cap: CAP,
        }
        .generate(comm.rank(), comm.size(), 5);
        let out = Ms::default().sort(comm, shard);
        out.set.len()
    });
    let ms_bytes = ms.stats.total_bytes_sent();
    println!("\ncommunication volume:");
    println!("  PDMS (dist prefixes only): {:>12} bytes", pdms_bytes);
    println!("  MS   (full suffixes):      {:>12} bytes", ms_bytes);
    println!(
        "  → prefix doubling saved {:.0}x (paper: ~30x runtime gap on its suffix instance)",
        ms_bytes as f64 / pdms_bytes as f64
    );
}
