//! Building a searchable sorted index over web-text lines — the paper's
//! motivating use case ("sorted arrays of strings that facilitate fast
//! binary search", prefix B-trees, §I).
//!
//! The COMMONCRAWL stand-in workload is sorted with Algorithm MS; every
//! PE ends up with a sorted shard *plus its LCP array*, which this
//! example uses for the application the paper cites: prefix queries
//! answered from local information only (count + first match), using the
//! LCP array to skip re-comparisons in the binary search.
//!
//! Run with: `cargo run --release --example web_index`

use distributed_string_sorting::prelude::*;

/// Counts strings starting with `prefix` in a sorted set (binary search
/// for both boundaries).
fn prefix_count(set: &StringSet, prefix: &[u8]) -> usize {
    let lower = partition_point(set, |s| s < prefix);
    let upper = partition_point(set, |s| {
        s.len() >= prefix.len() && &s[..prefix.len()] <= prefix || s < prefix
    });
    upper - lower
}

fn partition_point(set: &StringSet, pred: impl Fn(&[u8]) -> bool) -> usize {
    let (mut lo, mut hi) = (0, set.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if pred(set.get(mid)) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() {
    let p = 8;
    let queries: &[&[u8]] = &[b"a", b"the", b"s", b"win", b"zz"];
    let result = run_spmd(p, RunConfig::default(), |comm| {
        let shard = Workload::Web { n_per_pe: 2000 }.generate(comm.rank(), comm.size(), 7);
        let input = shard.clone();
        let out = Ms::default().sort(comm, shard);
        check_distributed_sort(comm, &input, &out).expect("index is valid");

        // The LCP array comes for free and is exactly what a prefix
        // B-tree / string search tree wants as input (§II).
        let lcps = out.lcps.as_ref().expect("MS emits LCP arrays");
        let avg_lcp = if out.set.is_empty() {
            0.0
        } else {
            lcps.iter().map(|&h| h as f64).sum::<f64>() / out.set.len() as f64
        };

        // Answer the queries on the local shard; a driver would sum the
        // per-PE counts (counting queries need no further communication).
        let counts: Vec<usize> = queries.iter().map(|q| prefix_count(&out.set, q)).collect();
        (out.set.len(), avg_lcp, counts)
    });

    println!("distributed web index over {p} PEs");
    for (pe, (n, avg_lcp, _)) in result.values.iter().enumerate() {
        println!("  PE{pe}: {n:>6} lines, avg output LCP {avg_lcp:.1} chars");
    }
    println!("\nprefix query results (summed over PEs):");
    for (qi, q) in queries.iter().enumerate() {
        let total: usize = result.values.iter().map(|(_, _, c)| c[qi]).sum();
        println!("  {:<6} -> {total} lines", String::from_utf8_lossy(q));
    }
    let n_total: usize = result.values.iter().map(|(n, _, _)| n).sum();
    println!(
        "\nsorted {n_total} lines; {} bytes crossed the simulated wire ({:.1}/line)",
        result.stats.total_bytes_sent(),
        result.stats.total_bytes_sent() as f64 / n_total as f64
    );
}
