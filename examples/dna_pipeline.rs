//! DNA read preprocessing — the paper's bioinformatics motivation
//! ("sorting such inputs is relevant as preprocessing for genome assembly
//! or for building indices on the raw data", §VII-A).
//!
//! Pipeline on the DNAREADS stand-in:
//! 1. sort all reads across PEs with PDMS (σ = 4 makes distinguishing
//!    prefixes short, the PDMS sweet spot);
//! 2. use the output LCP array to collapse exact duplicate reads
//!    (coverage artefacts) into (read, multiplicity) pairs;
//! 3. report the deduplication factor and communication cost, comparing
//!    PDMS against MS-simple to show what prefix doubling saves.
//!
//! Run with: `cargo run --release --example dna_pipeline`

use distributed_string_sorting::prelude::*;

fn run_with(alg: Algorithm, p: usize) -> (usize, usize, u64) {
    let result = run_spmd(p, RunConfig::default(), move |comm| {
        let shard = Workload::Dna { n_per_pe: 2500 }.generate(comm.rank(), comm.size(), 11);
        let input = shard.clone();
        let out = alg.instance().sort(comm, shard);
        check_distributed_sort(comm, &input, &out).expect("valid sort");

        // Duplicate collapse: identical neighbours have LCP == len. For
        // PDMS the output holds distinguishing prefixes — exact duplicate
        // reads keep their full length (DIST = len+1 capped), so the
        // same rule applies.
        let n = out.set.len();
        let mut distinct = 0usize;
        for i in 0..n {
            let dup_of_prev = i > 0 && out.set.get(i) == out.set.get(i - 1);
            if !dup_of_prev {
                distinct += 1;
            }
        }
        (n, distinct)
    });
    let n: usize = result.values.iter().map(|(n, _)| n).sum();
    let distinct: usize = result.values.iter().map(|(_, d)| d).sum();
    (n, distinct, result.stats.total_bytes_sent())
}

fn main() {
    let p = 8;
    println!("DNA read pipeline on {p} simulated PEs (reads of 100 bp, sigma = 4)\n");
    let (n, distinct, pdms_bytes) = run_with(Algorithm::Pdms, p);
    println!("reads:            {n}");
    println!(
        "distinct reads:   {distinct} ({:.1}% duplicates removed)",
        100.0 * (n - distinct) as f64 / n as f64
    );
    println!(
        "PDMS volume:      {pdms_bytes} bytes ({:.1}/read)",
        pdms_bytes as f64 / n as f64
    );

    let (_, _, simple_bytes) = run_with(Algorithm::MsSimple, p);
    println!(
        "MS-simple volume: {simple_bytes} bytes ({:.1}/read)",
        simple_bytes as f64 / n as f64
    );
    println!(
        "\nprefix doubling sent {:.1}x fewer bytes than the plain exchange",
        simple_bytes as f64 / pdms_bytes as f64
    );
}
