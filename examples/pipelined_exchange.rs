//! Pipelined vs blocking exchange, side by side.
//!
//! Runs MS2L over a 4×4 grid twice — once with the classic blocking
//! all-to-all, once with the non-blocking pipelined exchange that
//! overlaps encode/transfer/decode/merge — and shows that the two runs
//! put the *identical* bytes on the wire, contact the identical number
//! of exchange partners per PE, and produce the identical output.
//!
//! ```bash
//! cargo run --release --example pipelined_exchange
//! # or force a mode process-wide for any harness:
//! DSS_EXCHANGE_MODE=pipelined cargo test -q
//! ```

use distributed_string_sorting::prelude::*;

fn run(mode: ExchangeMode) -> (Vec<Vec<u8>>, NetStats) {
    let p = 16;
    let res = run_spmd(p, RunConfig::default(), move |comm| {
        let mut shard = StringSet::new();
        let mut x = comm.rank() as u64 + 7;
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let len = 4 + (x % 10) as usize;
            let s: Vec<u8> = (0..len)
                .map(|i| b'a' + ((x >> (i % 8)) % 6) as u8)
                .collect();
            shard.push(&s);
        }
        let out = Algorithm::Ms2l.instance_with_mode(mode).sort(comm, shard);
        out.set.to_vecs()
    });
    (res.values.into_iter().flatten().collect(), res.stats)
}

fn main() {
    let (out_blocking, stats_blocking) = run(ExchangeMode::Blocking);
    let (out_pipelined, stats_pipelined) = run(ExchangeMode::Pipelined);

    assert_eq!(out_blocking, out_pipelined, "outputs must be identical");
    assert!(out_blocking.windows(2).all(|w| w[0] <= w[1]));

    let partners = |stats: &NetStats| -> u64 {
        stats
            .phases
            .iter()
            .filter(|ph| matches!(ph.name.as_str(), "exchange_row" | "exchange_col"))
            .map(|ph| ph.max.msgs_sent)
            .sum()
    };
    println!("MS2L on a 4x4 grid, {} strings:", out_blocking.len());
    for (name, stats) in [
        ("blocking ", &stats_blocking),
        ("pipelined", &stats_pipelined),
    ] {
        println!(
            "  {name}: {:>8} bytes on the wire, {} exchange partners/PE, {} rounds",
            stats.total_bytes_sent(),
            partners(stats),
            stats.bottleneck().rounds,
        );
    }
    assert_eq!(
        stats_blocking.total_bytes_sent(),
        stats_pipelined.total_bytes_sent(),
        "pipelining must not change a single wire byte"
    );
    assert_eq!(partners(&stats_blocking), partners(&stats_pipelined));
    println!("identical volume, identical partners, overlapped phases.");
}
