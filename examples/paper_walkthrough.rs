//! Walks through Figures 2 and 3 of the paper on its own 12 example
//! strings, printing (and asserting) every intermediate state:
//!
//! * Fig. 2 — Algorithm MS: local sort with LCP arrays, regular sampling
//!   {alpha, snow, organ}, splitters {alpha, organ}, LCP-compressed
//!   exchange ("- - p h a" characters omitted), loser-tree merge.
//! * Fig. 3 — Algorithm PDMS: prefix doubling at depths 1, 2, 4, 8
//!   (snow's prefix becomes unique at depth 2; sorter/sorted only cap at
//!   their full length), truncated sampling {alph, sn, orga}, prefix-only
//!   exchange.
//!
//! One honest deviation is flagged inline: the hand-drawn split lines of
//! Fig. 2 place "alps" in the first bucket although "alps" > the splitter
//! "alpha"; the algorithm as *defined* in §V (bucket bᵢ = {s | fᵢ < s ≤
//! fᵢ₊₁}) sends it to PE 2, which is what this implementation does.
//!
//! Run with: `cargo run --release --example paper_walkthrough`

use distributed_string_sorting::dedup::prefix_doubling::{
    approx_dist_prefixes, PrefixDoublingConfig,
};
use distributed_string_sorting::prelude::*;

const PE_INPUTS: [[&str; 4]; 3] = [
    ["alpha", "order", "alps", "algae"],
    ["sorter", "snow", "algo", "sorbet"],
    ["sorted", "orange", "soul", "organ"],
];

fn show(title: &str, pe: usize, set: &StringSet, lcps: Option<&[u32]>) {
    print!("  PE{} {title:<18}", pe + 1);
    for (i, s) in set.iter().enumerate() {
        match lcps {
            Some(l) if i > 0 => print!(" {}({})", String::from_utf8_lossy(s), l[i]),
            _ => print!(" {}", String::from_utf8_lossy(s)),
        }
    }
    println!();
}

fn figure2() {
    println!("=== Fig. 2 — Algorithm MS on the example strings ===\n");
    let result = run_spmd(3, RunConfig::default(), |comm| {
        let mut set = StringSet::from_strs(&PE_INPUTS[comm.rank()]);
        let (lcps, _) = sort_with_lcp(&mut set);
        // Step 2+3+4 all happen inside MS; run it for the final state.
        let out = Ms::default().sort(comm, StringSet::from_strs(&PE_INPUTS[comm.rank()]));
        (
            set.to_vecs(),
            lcps,
            out.set.to_vecs(),
            out.lcps.expect("MS emits LCPs"),
        )
    });

    println!("Step 1: sort locally with LCP array output");
    let expected_lcps: [&[u32]; 3] = [&[0, 2, 3, 0], &[0, 0, 1, 3], &[0, 2, 0, 2]];
    for (pe, (sorted, lcps, _, _)) in result.values.iter().enumerate() {
        let set = StringSet::from_iter_bytes(sorted.iter().map(|s| s.as_slice()));
        show("after local sort:", pe, &set, Some(lcps));
        assert_eq!(lcps.as_slice(), expected_lcps[pe], "paper's LCP values");
    }

    println!("\nStep 2: sample regularly {{alpha, snow, organ}}, splitters {{alpha, organ}}");
    println!("  (asserted inside the partitioner; v = 1 sample per PE)");

    println!("\nSteps 3+4: exchange with LCP compression, merge with LCP loser tree");
    let expected_out: [&[&str]; 3] = [
        &["algae", "algo", "alpha"],
        &["alps", "orange", "order", "organ"],
        &["snow", "sorbet", "sorted", "sorter", "soul"],
    ];
    for (pe, (_, _, out, out_lcps)) in result.values.iter().enumerate() {
        let set = StringSet::from_iter_bytes(out.iter().map(|s| s.as_slice()));
        show("final output:", pe, &set, Some(out_lcps));
        let got: Vec<&str> = out
            .iter()
            .map(|s| std::str::from_utf8(s).expect("ascii"))
            .collect();
        assert_eq!(got, expected_out[pe]);
    }
    println!(
        "\n  note: the figure's hand-drawn split keeps \"alps\" on PE 1, but by the\n  \
         paper's own bucket rule (f1 = \"alpha\" < \"alps\") it belongs to PE 2."
    );

    // The union is the paper's final sorted sequence.
    let all: Vec<String> = result
        .values
        .iter()
        .flat_map(|(_, _, out, _)| out.iter().map(|s| String::from_utf8_lossy(s).into_owned()))
        .collect();
    assert_eq!(
        all,
        [
            "algae", "algo", "alpha", "alps", "orange", "order", "organ", "snow", "sorbet",
            "sorted", "sorter", "soul"
        ]
    );
}

fn figure3() {
    println!("\n=== Fig. 3 — Algorithm PDMS: Step 1+ε prefix doubling ===\n");
    let cfg = PrefixDoublingConfig {
        initial: Some(1), // the figure starts at depth 1
        ..PrefixDoublingConfig::default()
    };
    let result = run_spmd(3, RunConfig::default(), move |comm| {
        let mut set = StringSet::from_strs(&PE_INPUTS[comm.rank()]);
        let (lcps, _) = sort_with_lcp(&mut set);
        let (approx, stats) = approx_dist_prefixes(comm, &set, &lcps, &cfg);
        let pdms = Pdms::with_config(PdmsConfig {
            pd: cfg,
            ..PdmsConfig::default()
        });
        let out = pdms.sort(comm, StringSet::from_strs(&PE_INPUTS[comm.rank()]));
        (set.to_vecs(), approx, stats.iterations, out.set.to_vecs())
    });

    println!("Step 1+ε: approximate distinguishing prefixes (depths 1, 2, 4, 8):");
    let mut approx_of = std::collections::HashMap::new();
    for (pe, (strs, approx, iters, _)) in result.values.iter().enumerate() {
        print!("  PE{}:", pe + 1);
        for (s, &a) in strs.iter().zip(approx) {
            let s = String::from_utf8_lossy(s).into_owned();
            print!(" {s}→{a}");
            approx_of.insert(s, a);
        }
        println!("   ({iters} doubling rounds)");
        assert_eq!(*iters, 4, "depths 1,2,4,8 as in the figure");
    }
    // The figure's verdicts: snow unique at depth 2; the al*/or*/sor* group
    // resolves at depth 4; sorter/sorted only at their full length.
    assert_eq!(approx_of["snow"], 2);
    for s in [
        "algae", "algo", "alpha", "alps", "order", "orange", "organ", "sorbet", "soul",
    ] {
        assert_eq!(approx_of[s], 4, "{s} resolves at depth 4");
    }
    for s in ["sorter", "sorted"] {
        assert_eq!(approx_of[s], 7, "{s} caps at len+1 (share a 6-prefix)");
    }

    println!("\nSteps 2–4: truncated sampling {{alph, sn, orga}}, prefix-only exchange, merge:");
    for (pe, (_, _, _, out)) in result.values.iter().enumerate() {
        let set = StringSet::from_iter_bytes(out.iter().map(|s| s.as_slice()));
        show("sorted prefixes:", pe, &set, None);
    }
    let all: Vec<String> = result
        .values
        .iter()
        .flat_map(|(_, _, _, out)| out.iter().map(|s| String::from_utf8_lossy(s).into_owned()))
        .collect();
    // Only distinguishing prefixes travel; "sorte*" keeps 6 chars + cap.
    assert_eq!(
        all,
        [
            "alga", "algo", "alph", "alps", "oran", "orde", "orga", "sn", "sorb", "sorted",
            "sorter", "soul"
        ]
    );
    println!("\n  every string travelled as its distinguishing prefix only — the");
    println!("  omitted gray characters of the figure never crossed the simulated wire.");
}

fn main() {
    figure2();
    figure3();
    println!("\nAll intermediate states match the paper's figures (see notes above).");
}
