//! Quickstart: sort a scattered string set on a simulated 8-PE machine
//! with each of the paper's algorithms and compare their communication
//! volumes.
//!
//! Run with: `cargo run --release --example quickstart`

use distributed_string_sorting::prelude::*;

fn main() {
    let p = 8;
    let words = [
        "merge",
        "sort",
        "string",
        "prefix",
        "doubling",
        "distinguishing",
        "communication",
        "efficient",
        "hypercube",
        "quicksort",
        "splitter",
        "sample",
        "loser",
        "tree",
        "golomb",
        "fingerprint",
        "bucket",
        "exchange",
        "radix",
        "insertion",
    ];

    println!(
        "sorting {} word variants on {p} simulated PEs\n",
        words.len() * 40
    );
    println!(
        "{:<12} {:>10} {:>14} {:>12}",
        "algorithm", "strings", "bytes sent", "bytes/string"
    );
    for alg in Algorithm::all_extended() {
        let result = run_spmd(p, RunConfig::default(), |comm| {
            // Each PE contributes a deterministic shard of word variants.
            let mut shard = StringSet::new();
            for (i, w) in words.iter().enumerate() {
                for k in 0..5 {
                    let s = format!("{w}-{:02}", (i + k * 7 + comm.rank() * 3) % 40);
                    shard.push(s.as_bytes());
                }
            }
            let input = shard.clone();
            let out = alg.instance().sort(comm, shard);
            // Validate collectively: sorted globally, nothing lost.
            check_distributed_sort(comm, &input, &out).expect("valid sort");
            out.set.len()
        });
        let n: usize = result.values.iter().sum();
        let bytes = result.stats.total_bytes_sent();
        println!(
            "{:<12} {:>10} {:>14} {:>12.1}",
            alg.label(),
            n,
            bytes,
            bytes as f64 / n as f64
        );
    }

    println!("\nFirst strings of the globally sorted output (via MS):");
    let result = run_spmd(p, RunConfig::default(), |comm| {
        let mut shard = StringSet::new();
        for (i, w) in words.iter().enumerate() {
            for k in 0..5 {
                let s = format!("{w}-{:02}", (i + k * 7 + comm.rank() * 3) % 40);
                shard.push(s.as_bytes());
            }
        }
        let out = Algorithm::Ms.instance().sort(comm, shard);
        out.set.to_vecs()
    });
    let all: Vec<Vec<u8>> = result.values.into_iter().flatten().collect();
    assert!(all.windows(2).all(|w| w[0] <= w[1]), "globally sorted");
    for s in all.iter().take(8) {
        println!("  {}", String::from_utf8_lossy(s));
    }
    println!("  … ({} strings total)", all.len());
}
