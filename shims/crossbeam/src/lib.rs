//! Minimal offline stand-in for the `crossbeam` facade crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the two pieces `dss_net` uses, both delegating to
//! `std`:
//!
//! * [`channel`] — unbounded MPSC channels (`unbounded`, `Sender`,
//!   `Receiver`, `RecvTimeoutError`) over `std::sync::mpsc`. The real
//!   crossbeam channel is MPMC; `dss_net` gives each PE exactly one
//!   receiver, so MPSC suffices.
//! * [`thread`] — scoped threads with a builder (`scope`,
//!   `Scope::builder`, name + stack size) over `std::thread::scope`.
//!   Matching crossbeam, the spawn closure receives the scope as an
//!   argument and `scope` returns a `Result` (always `Ok` here: panics
//!   from joined child threads propagate exactly as with `std`).

#![forbid(unsafe_code)]

pub mod channel {
    //! Unbounded channels over `std::sync::mpsc`.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

pub mod thread {
    //! Scoped threads over `std::thread::scope`.

    use std::io;

    /// Handle to a scope; lets spawned closures spawn further threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread with default settings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }

        /// Starts configuring a thread (name, stack size) before spawning.
        pub fn builder(&self) -> ScopedThreadBuilder<'scope, 'env> {
            ScopedThreadBuilder {
                scope: *self,
                builder: std::thread::Builder::new(),
            }
        }
    }

    /// Thread configuration within a scope.
    pub struct ScopedThreadBuilder<'scope, 'env: 'scope> {
        scope: Scope<'scope, 'env>,
        builder: std::thread::Builder,
    }

    impl<'scope, 'env> ScopedThreadBuilder<'scope, 'env> {
        /// Names the thread.
        pub fn name(mut self, name: String) -> Self {
            self.builder = self.builder.name(name);
            self
        }

        /// Sets the thread's stack size in bytes.
        pub fn stack_size(mut self, size: usize) -> Self {
            self.builder = self.builder.stack_size(size);
            self
        }

        /// Spawns the configured thread.
        pub fn spawn<F, T>(self, f: F) -> io::Result<ScopedJoinHandle<'scope, T>>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = self.scope;
            let inner = self.builder.spawn_scoped(scope.inner, move || f(&scope))?;
            Ok(ScopedJoinHandle { inner })
        }
    }

    /// Owned permission to join a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or panic.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned.
    ///
    /// Returns `Ok` with the closure's value; panics from joined child
    /// threads propagate as panics (matching how `dss_net` re-raises them).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use super::thread;
    use std::time::Duration;

    #[test]
    fn channel_roundtrip_and_timeout() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3];
        let sum = thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    let data = &data;
                    scope
                        .builder()
                        .name(format!("w{i}"))
                        .stack_size(1 << 20)
                        .spawn(move |_| data[i])
                        .unwrap()
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v = thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21u32).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
