//! Minimal offline stand-in for the `crossbeam` facade crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the three pieces `dss_net`/`dss_strkit` use, all
//! delegating to `std`:
//!
//! * [`channel`] — unbounded MPSC channels (`unbounded`, `Sender`,
//!   `Receiver`, `RecvTimeoutError`) over `std::sync::mpsc`. The real
//!   crossbeam channel is MPMC; `dss_net` gives each PE exactly one
//!   receiver, so MPSC suffices.
//! * [`thread`] — scoped threads with a builder (`scope`,
//!   `Scope::builder`, name + stack size) over `std::thread::scope`.
//!   Matching crossbeam, the spawn closure receives the scope as an
//!   argument and `scope` returns a `Result` (always `Ok` here: panics
//!   from joined child threads propagate exactly as with `std`).
//! * [`deque`] — the work-stealing `Worker`/`Stealer`/`Injector` trio of
//!   `crossbeam-deque`, backed by mutex-guarded `VecDeque`s instead of
//!   the lock-free Chase–Lev deque (this crate forbids `unsafe`). The
//!   semantics match: workers push/pop at one end, stealers and the
//!   injector take from the other, and `steal` returns the three-valued
//!   [`deque::Steal`] verdict.

#![forbid(unsafe_code)]

pub mod channel {
    //! Unbounded channels over `std::sync::mpsc`.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

pub mod thread {
    //! Scoped threads over `std::thread::scope`.

    use std::io;

    /// Handle to a scope; lets spawned closures spawn further threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread with default settings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }

        /// Starts configuring a thread (name, stack size) before spawning.
        pub fn builder(&self) -> ScopedThreadBuilder<'scope, 'env> {
            ScopedThreadBuilder {
                scope: *self,
                builder: std::thread::Builder::new(),
            }
        }
    }

    /// Thread configuration within a scope.
    pub struct ScopedThreadBuilder<'scope, 'env: 'scope> {
        scope: Scope<'scope, 'env>,
        builder: std::thread::Builder,
    }

    impl<'scope, 'env> ScopedThreadBuilder<'scope, 'env> {
        /// Names the thread.
        pub fn name(mut self, name: String) -> Self {
            self.builder = self.builder.name(name);
            self
        }

        /// Sets the thread's stack size in bytes.
        pub fn stack_size(mut self, size: usize) -> Self {
            self.builder = self.builder.stack_size(size);
            self
        }

        /// Spawns the configured thread.
        pub fn spawn<F, T>(self, f: F) -> io::Result<ScopedJoinHandle<'scope, T>>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = self.scope;
            let inner = self.builder.spawn_scoped(scope.inner, move || f(&scope))?;
            Ok(ScopedJoinHandle { inner })
        }
    }

    /// Owned permission to join a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or panic.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned.
    ///
    /// Returns `Ok` with the closure's value; panics from joined child
    /// threads propagate as panics (matching how `dss_net` re-raises them).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod deque {
    //! Work-stealing deques over mutex-guarded `VecDeque`s.
    //!
    //! API-compatible subset of `crossbeam-deque`: a [`Worker`] owns one
    //! end of a deque (LIFO or FIFO pops), hands out [`Stealer`] handles
    //! that take single items from the opposite end, and an [`Injector`]
    //! is a shared FIFO queue for seeding and overflow. The real crate's
    //! lock-free implementation can observe transient contention and
    //! reports it as [`Steal::Retry`]; the mutex version never does, but
    //! callers must still handle the variant to stay source-compatible.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// True if the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// True if a task was stolen.
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        /// True if the attempt should be retried.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// Extracts the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    enum Flavor {
        Lifo,
        Fifo,
    }

    /// Owner side of a work-stealing deque. Pushes go to the back;
    /// `pop` takes from the back (LIFO flavor) or front (FIFO flavor),
    /// while stealers always take from the front.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
        flavor: Flavor,
    }

    impl<T> Worker<T> {
        /// Creates a deque whose owner pops most-recently-pushed first.
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Lifo,
            }
        }

        /// Creates a deque whose owner pops oldest-first.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Fifo,
            }
        }

        /// Enqueues a task on the owner's end.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Dequeues the owner's next task.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.queue.lock().unwrap();
            match self.flavor {
                Flavor::Lifo => q.pop_back(),
                Flavor::Fifo => q.pop_front(),
            }
        }

        /// Creates a handle other threads can steal through.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// True if the deque holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap().len()
        }
    }

    /// Thief side of a [`Worker`]'s deque; steals oldest tasks first.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal one task from the front of the deque.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True if the deque holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }

    /// Shared FIFO injector queue: any thread may push or steal.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Attempts to steal the oldest task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True if the injector holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap().len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use super::deque::{Injector, Steal, Worker};
    use super::thread;
    use std::time::Duration;

    #[test]
    fn channel_roundtrip_and_timeout() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3];
        let sum = thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    let data = &data;
                    scope
                        .builder()
                        .name(format!("w{i}"))
                        .stack_size(1 << 20)
                        .spawn(move |_| data[i])
                        .unwrap()
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn worker_lifo_pop_and_fifo_steal_order() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.len(), 3);
        // Owner pops newest first; stealer takes oldest first.
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
        assert!(w.is_empty());
    }

    #[test]
    fn worker_fifo_pops_oldest_first() {
        let w = Worker::new_fifo();
        w.push(10);
        w.push(20);
        assert_eq!(w.pop(), Some(10));
        assert_eq!(w.pop(), Some(20));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn injector_is_shared_fifo() {
        let inj = Injector::new();
        inj.push(7u32);
        inj.push(8);
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal().success(), Some(7));
        assert_eq!(inj.steal().success(), Some(8));
        assert!(inj.steal().is_empty());
        assert!(inj.is_empty());
    }

    #[test]
    fn stealing_across_threads_drains_everything() {
        let inj = Injector::new();
        let workers: Vec<Worker<u64>> = (0..3).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<_> = workers.iter().map(|w| w.stealer()).collect();
        for v in 0..300u64 {
            inj.push(v);
        }
        let total: u64 = thread::scope(|scope| {
            let handles: Vec<_> = workers
                .iter()
                .map(|w| {
                    let inj = &inj;
                    let stealers = &stealers;
                    scope.spawn(move |_| {
                        let mut sum = 0u64;
                        loop {
                            let task = w.pop().or_else(|| {
                                inj.steal()
                                    .success()
                                    .or_else(|| stealers.iter().find_map(|s| s.steal().success()))
                            });
                            match task {
                                Some(v) => sum += v,
                                None => break,
                            }
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, (0..300u64).sum());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v = thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21u32).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
