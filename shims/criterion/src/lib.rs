//! Minimal offline stand-in for the `criterion` bench harness.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the surface its four bench targets use: `Criterion`,
//! `benchmark_group` with `sample_size` / `throughput` / `bench_function`
//! / `bench_with_input` / `finish`, `BenchmarkId`, `Throughput`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Statistics are deliberately simple — one warm-up call, then
//! `sample_size` timed iterations reported as mean ns/iter plus derived
//! throughput. No plots, no outlier analysis; the point is that
//! `cargo bench` runs every bench body and prints comparable numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export of `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput basis for a benchmark's per-iteration work.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Iteration processes this many elements.
    Elements(u64),
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `new("algo", "web")` displays as `algo/web`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display form.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, and guarantees the body runs even with samples=0
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        let total = start.elapsed().as_nanos() as f64;
        self.mean_ns = total / self.samples.max(1) as f64;
    }
}

/// Collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        self.report(&id, b.mean_ns);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        self.report(&id, b.mean_ns);
        self
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}

    fn report(&mut self, id: &str, mean_ns: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / (mean_ns * 1e-9))
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / (mean_ns * 1e-9))
            }
            _ => String::new(),
        };
        println!("{}/{:<40} {:>14.0} ns/iter{}", self.name, id, mean_ns, rate);
    }
}

/// Entry point handed to bench functions by `criterion_group!`.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the default sample count for subsequent groups.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n as u64;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            sample_size,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declares a group function running each target with a shared `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_body_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(calls >= 4, "warm-up + samples, got {calls}");
    }
}
