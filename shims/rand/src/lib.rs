//! Minimal offline stand-in for the `rand` crate (0.8-era API).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors exactly the surface it uses:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit generator (splitmix64; the
//!   real `StdRng` is ChaCha12, but callers here only rely on *seeded
//!   determinism*, not on any particular stream),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`], [`Rng::gen_range`] over integer `Range` /
//!   `RangeInclusive`, and [`Rng::gen_bool`],
//! * the [`prelude`].
//!
//! All sampling is deterministic in the seed, which is what the workload
//! generators and tests require.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit values.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform value in `[0, bound)` via Lemire's multiply-shift reduction.
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}

// The two's-complement span arithmetic is sign-agnostic, so signed types
// share the macro body.
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value of an inferred type (only the types in [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value from an integer range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use crate::{RngCore, SeedableRng};

    /// Deterministic seeded generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

pub mod prelude {
    //! The usual glob-import surface.
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: u8 = rng.gen_range(b'a'..=b'z');
            assert!(v.is_ascii_lowercase());
            let w: usize = rng.gen_range(0..17);
            assert!(w < 17);
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }
}
