//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the surface its property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`Strategy`] with [`Strategy::prop_map`],
//! * integer `Range` / `RangeInclusive` strategies, [`any`], and
//!   [`collection::vec`],
//! * [`ProptestConfig::with_cases`].
//!
//! Semantics are simplified relative to real proptest: inputs are sampled
//! from a deterministic per-case RNG (seeded by the case index, so runs
//! are reproducible), and failures panic with the ordinary assert message
//! instead of shrinking to a minimal counterexample.

#![forbid(unsafe_code)]

/// Deterministic RNG handed to strategies (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// How inputs of one type are generated.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample_one(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample_one(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample_one(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample_one(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample_one(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a default whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy for `T` (see [`any`]).
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample_one(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_one(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample_one(rng)).collect()
        }
    }

    /// Vector strategy: elements from `element`, length uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Per-block test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` sampled inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Macro plumbing: runs `f` once per case with a per-case deterministic RNG.
#[doc(hidden)]
pub fn __run_cases<F: FnMut(&mut TestRng)>(config: ProptestConfig, mut f: F) {
    for case in 0..config.cases as u64 {
        let mut rng = TestRng::new(0x5eed_cafe ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        f(&mut rng);
    }
}

/// Asserts inside a property test (no shrinking; plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property test (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property test (plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $name:ident in $strat:expr) => {
        let mut $name = $crate::Strategy::sample_one(&($strat), $rng);
    };
    ($rng:ident, mut $name:ident in $strat:expr, $($rest:tt)*) => {
        let mut $name = $crate::Strategy::sample_one(&($strat), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::sample_one(&($strat), $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample_one(&($strat), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__run_cases($config, |__rng| {
                $crate::__proptest_bind!(__rng, $($args)*);
                $body
            });
        }
        $crate::__proptest_fns!(config = $config; $($rest)*);
    };
}

/// Declares property tests; see module docs for supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(config = $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            config = $crate::ProptestConfig::default();
            $($rest)*
        );
    };
}

pub mod prelude {
    //! The usual glob-import surface.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vec_sample_in_bounds() {
        let mut seen_nonempty = false;
        super::__run_cases(ProptestConfig::with_cases(100), |rng| {
            let v = super::collection::vec(b'a'..=b'c', 0..10).sample_one(rng);
            assert!(v.len() < 10);
            assert!(v.iter().all(|b| (b'a'..=b'c').contains(b)));
            seen_nonempty |= !v.is_empty();
        });
        assert!(seen_nonempty);
    }

    #[test]
    fn prop_map_applies() {
        super::__run_cases(ProptestConfig::default(), |rng| {
            let v = super::collection::vec(0u64..50, 1..20)
                .prop_map(|mut v| {
                    v.sort_unstable();
                    v
                })
                .sample_one(rng);
            assert!(v.windows(2).all(|w| w[0] <= w[1]));
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_mut_and_plain(mut xs in super::collection::vec(any::<u8>(), 0..8),
                                     flag in any::<bool>()) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
            let _ = flag;
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(v in 3u32..10) {
            prop_assert!((3..10).contains(&v));
        }
    }
}
