//! Wikipedia stand-in text, its line instance, and the suffix instance.
//!
//! §VII-E: "we also tried an instance consisting of 71 GB of Wikipedia
//! pages. The results are similar to the COMMONCRAWL instance" — and, as
//! a first attempt at suffix sorting, "the first 3000 lines of the above
//! Wikipedia instance as a single string, using all their suffixes as
//! input. This instance has N ≈ 104·10⁹ and D ≈ 10.4·10⁶, i.e.
//! D/N ≈ 0.0001 — a very easy instance for algorithm PDMS and a fairly
//! difficult instance for all the other algorithms."
//!
//! The text is a word-salad with wiki-flavoured markup tokens. For the
//! suffix instance, suffix *i* is the text from position *i* truncated to
//! `cap` characters; as long as the text has no repeated substring of
//! length ≥ cap, the truncation preserves the exact sorting order while
//! keeping N = text_len·cap/… simulator-sized. We append a tiny unique
//! tail to each suffix block boundary — not needed in practice because the
//! generator sprinkles position-dependent salt words, which the tests
//! verify by checking that truncated suffixes are pairwise distinct.

use dss_strkit::StringSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WIKI_TOKENS: [&[u8]; 8] = [b"[[", b"]]", b"==", b"{{", b"}}", b"''", b"<ref>", b"|"];

fn push_word(out: &mut Vec<u8>, rng: &mut StdRng) {
    if rng.gen_bool(0.08) {
        out.extend_from_slice(WIKI_TOKENS[rng.gen_range(0..WIKI_TOKENS.len())]);
        return;
    }
    let len = 2 + rng.gen_range(0..9);
    for _ in 0..len {
        out.push(rng.gen_range(b'a'..=b'z'));
    }
}

/// Generates a Wikipedia-ish text of exactly `len` characters.
pub fn generate_text(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x717);
    let mut text = Vec::with_capacity(len + 16);
    let mut since_salt = 0usize;
    while text.len() < len {
        if !text.is_empty() {
            text.push(b' ');
        }
        push_word(&mut text, &mut rng);
        since_salt += 1;
        if since_salt >= 12 {
            // Position-dependent salt word: bounds the longest repeated
            // substring, so capped suffixes stay pairwise distinct.
            since_salt = 0;
            text.push(b' ');
            let mut v = text.len() as u64;
            for _ in 0..6 {
                text.push(b'0' + (v % 10) as u8);
                v /= 10;
            }
        }
    }
    text.truncate(len);
    text
}

/// Generates PE `rank`'s shard of the line instance (lines of ≈ 60 chars).
pub fn generate_lines(n_per_pe: usize, rank: usize, seed: u64) -> StringSet {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x11A ^ (rank as u64) << 24);
    // Reuse the web-like duplication structure but milder: 35 % of lines
    // come from a hot template pool (section headers, infobox rows, …).
    let mut global_rng = StdRng::seed_from_u64(seed ^ 0x11B);
    let hot: Vec<Vec<u8>> = (0..300)
        .map(|_| {
            let mut l = Vec::new();
            while l.len() < 60 {
                if !l.is_empty() {
                    l.push(b' ');
                }
                push_word(&mut l, &mut global_rng);
            }
            l
        })
        .collect();
    let mut set = StringSet::with_capacity(n_per_pe, n_per_pe * 64);
    for _ in 0..n_per_pe {
        if rng.gen_bool(0.35) {
            set.push(&hot[rng.gen_range(0..hot.len())]);
        } else {
            let mut l = Vec::new();
            while l.len() < 60 {
                if !l.is_empty() {
                    l.push(b' ');
                }
                push_word(&mut l, &mut rng);
            }
            set.push(&l);
        }
    }
    set
}

/// Generates PE `rank`'s shard of the suffix instance: suffixes starting
/// at positions ≡ rank (mod p), truncated to `cap` characters.
pub fn generate_suffixes(
    text_len: usize,
    cap: usize,
    rank: usize,
    p: usize,
    seed: u64,
) -> StringSet {
    let text = generate_text(text_len, seed);
    let count = (text_len - rank).div_ceil(p).min(text_len);
    let mut set = StringSet::with_capacity(count, count * cap.min(text_len));
    let mut pos = rank;
    while pos < text_len {
        let end = (pos + cap).min(text_len);
        set.push(&text[pos..end]);
        pos += p;
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_is_exact_length_and_nul_free() {
        let t = generate_text(5000, 3);
        assert_eq!(t.len(), 5000);
        assert!(!t.contains(&0));
    }

    #[test]
    fn capped_suffixes_are_distinct() {
        let p = 4;
        let cap = 200;
        let mut all: Vec<Vec<u8>> = Vec::new();
        for rank in 0..p {
            let shard = generate_suffixes(3000, cap, rank, p, 9);
            all.extend(shard.to_vecs());
        }
        assert_eq!(all.len(), 3000);
        all.sort();
        let before = all.len();
        all.dedup();
        assert_eq!(all.len(), before, "capped suffixes must stay distinct");
    }

    #[test]
    fn suffix_shards_partition_positions() {
        let p = 3;
        let counts: usize = (0..p)
            .map(|r| generate_suffixes(1000, 50, r, p, 1).len())
            .sum();
        assert_eq!(counts, 1000);
    }

    #[test]
    fn suffix_instance_has_tiny_dn_ratio() {
        use dss_strkit::lcp::total_dist_prefix;
        use dss_strkit::sort::sort_with_lcp;
        let mut set = generate_suffixes(4000, 300, 0, 1, 7);
        let n_chars = set.num_chars() as f64;
        let (lcps, _) = sort_with_lcp(&mut set);
        let d = total_dist_prefix(&lcps, &set.lens()) as f64;
        assert!(
            d / n_chars < 0.2,
            "suffix instance D/N = {} should be ≪ 1",
            d / n_chars
        );
    }

    #[test]
    fn lines_have_duplicates() {
        let set = generate_lines(400, 0, 11);
        let mut v = set.to_vecs();
        v.sort();
        let before = v.len();
        v.dedup();
        assert!(v.len() < before);
    }
}
