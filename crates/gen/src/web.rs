//! COMMONCRAWL stand-in: web-text lines.
//!
//! The paper characterises the real 82 GB instance by four aggregates:
//! average line ≈ 40 characters, alphabet ≈ 242 symbols, average LCP
//! ≈ 23.9 (60 % of a line), D/N = 0.68, and "many repeated input strings"
//! (the property that crashes FKmerge). Those statistics — not the
//! actual crawl bytes — are what the sorting algorithms respond to, so we
//! synthesize lines that match them:
//!
//! * a Zipf-weighted vocabulary provides natural-language-like shared
//!   word prefixes;
//! * a hot pool of boilerplate lines is sampled with high probability,
//!   yielding exact duplicates and near-duplicates (long LCPs);
//! * fresh lines fill the remainder.
//!
//! The mix (55 % hot pool, 45 % fresh) lands D/N in the 0.55–0.8 band;
//! `stats::instance_stats` in the tests pins the realised values.

use dss_strkit::StringSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VOCAB_SIZE: usize = 4000;
const HOT_POOL: usize = 400;
const HOT_FRACTION: f64 = 0.55;
const TARGET_LEN: usize = 40;

/// Deterministic pseudo-word for vocabulary rank `r` (2–12 chars,
/// letters + occasional punctuation/digits to widen the alphabet).
fn word(r: usize, rng: &mut StdRng) -> Vec<u8> {
    let len = 2 + rng.gen_range(0..11usize);
    let mut w = Vec::with_capacity(len);
    for k in 0..len {
        let c = if k == 0 && r.is_multiple_of(17) {
            rng.gen_range(b'A'..=b'Z')
        } else if r.is_multiple_of(31) && k == len - 1 {
            *[b'.', b',', b';', b':', b'!', b'-', b'/', b'0', b'7']
                .get(rng.gen_range(0..9usize))
                .expect("in range")
        } else {
            rng.gen_range(b'a'..=b'z')
        };
        w.push(c);
    }
    w
}

/// Zipf-ish rank sampler: rank ∝ 1/(k+1) via inverse-CDF on a harmonic
/// approximation (cheap, no aux tables).
fn zipf_rank(rng: &mut StdRng, n: usize) -> usize {
    // H(n) ≈ ln(n) + γ; invert u·H(n) ≈ ln(k) ⇒ k ≈ e^{u·ln n}.
    let u: f64 = rng.gen();
    let k = (n as f64).powf(u) as usize;
    k.min(n - 1)
}

fn make_line(vocab: &[Vec<u8>], rng: &mut StdRng) -> Vec<u8> {
    let mut line = Vec::with_capacity(TARGET_LEN + 12);
    while line.len() < TARGET_LEN {
        if !line.is_empty() {
            line.push(b' ');
        }
        line.extend_from_slice(&vocab[zipf_rank(rng, vocab.len())]);
    }
    line
}

/// Generates PE `rank`'s shard: `n_per_pe` lines.
pub fn generate(n_per_pe: usize, rank: usize, seed: u64) -> StringSet {
    // Vocabulary and hot pool are global (same seed on every PE).
    let mut global_rng = StdRng::seed_from_u64(seed ^ 0x0857_0CC5);
    let vocab: Vec<Vec<u8>> = (0..VOCAB_SIZE).map(|r| word(r, &mut global_rng)).collect();
    let hot: Vec<Vec<u8>> = (0..HOT_POOL)
        .map(|_| make_line(&vocab, &mut global_rng))
        .collect();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x3B ^ (rank as u64) << 24);
    let mut set = StringSet::with_capacity(n_per_pe, n_per_pe * (TARGET_LEN + 8));
    for _ in 0..n_per_pe {
        if rng.gen_bool(HOT_FRACTION) {
            // Boilerplate: exact duplicate or near-duplicate with a tiny
            // varied suffix (e.g. an id in a repeated template).
            let base = &hot[zipf_rank(&mut rng, HOT_POOL)];
            if rng.gen_bool(0.6) {
                set.push(base);
            } else {
                let mut line = base.clone();
                line.push(b'/');
                for _ in 0..4 {
                    line.push(rng.gen_range(b'0'..=b'9'));
                }
                set.push(&line);
            }
        } else {
            set.push(&make_line(&vocab, &mut rng));
        }
    }
    set
}
