//! # dss-gen — workload generators for the evaluation (§VII-A, §VII-E)
//!
//! Reproduces the paper's instances, scaled to simulator sizes:
//!
//! * [`dn_ratio`] — the synthetic **D/N** family with tunable ratio
//!   `r = D/N`: string *i* is `pad` repetitions of the first alphabet
//!   character, then the base-σ encoding of *i*, then random filler to the
//!   target length. `r = 0` puts *i* first, `r = 1` puts it last.
//! * [`dn_ratio` (skewed)] — §VII-E's skewed variant: the 20 % smallest
//!   strings get padded to 4× length without growing their distinguishing
//!   prefix.
//! * [`web`] — stand-in for COMMONCRAWL: Zipf-weighted word soup with a
//!   hot pool of exactly repeated lines, tuned to the paper's measured
//!   statistics (avg line ≈ 40 chars, avg LCP ≈ 60 %, D/N ≈ 0.68, many
//!   repeated strings — the property that crashed FKmerge).
//! * [`dna`] — stand-in for DNAREADS: reads over {A,C,G,T} sampled from a
//!   synthetic genome with coverage-induced duplicate starts and a small
//!   mutation rate (read ≈ 100 bp, avg LCP ≈ 30 %, D/N ≈ 0.38).
//! * [`text`] — Markov-flavoured word text (the Wikipedia stand-in) and
//!   its **suffix instance**: all suffixes of one text, the D/N ≪ 1
//!   extreme where PDMS shines (§VII-E).
//!
//! All generators are deterministic in `(workload, seed, rank, p)` and
//! generate each PE's shard independently — no communication needed.

pub mod dn_ratio;
pub mod dna;
pub mod stats;
pub mod text;
pub mod web;

use dss_strkit::StringSet;

/// A named, shardable workload.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// The D/N family (per-PE string count, string length, ratio, σ).
    DnRatio {
        n_per_pe: usize,
        len: usize,
        r: f64,
        sigma: u8,
    },
    /// Skewed D/N: 20 % smallest strings padded to 4× length.
    SkewedDnRatio {
        n_per_pe: usize,
        len: usize,
        r: f64,
        sigma: u8,
    },
    /// COMMONCRAWL stand-in.
    Web { n_per_pe: usize },
    /// DNAREADS stand-in.
    Dna { n_per_pe: usize },
    /// Wikipedia-lines stand-in.
    TextLines { n_per_pe: usize },
    /// Suffix instance: all suffixes of a text of `text_len` chars,
    /// truncated to `cap` characters.
    Suffix { text_len: usize, cap: usize },
}

impl Workload {
    /// Generates the shard of PE `rank` of `p`.
    pub fn generate(&self, rank: usize, p: usize, seed: u64) -> StringSet {
        match *self {
            Workload::DnRatio {
                n_per_pe,
                len,
                r,
                sigma,
            } => dn_ratio::generate(n_per_pe, len, r, sigma, false, rank, p, seed),
            Workload::SkewedDnRatio {
                n_per_pe,
                len,
                r,
                sigma,
            } => dn_ratio::generate(n_per_pe, len, r, sigma, true, rank, p, seed),
            Workload::Web { n_per_pe } => web::generate(n_per_pe, rank, seed),
            Workload::Dna { n_per_pe } => dna::generate(n_per_pe, rank, seed),
            Workload::TextLines { n_per_pe } => text::generate_lines(n_per_pe, rank, seed),
            Workload::Suffix { text_len, cap } => {
                text::generate_suffixes(text_len, cap, rank, p, seed)
            }
        }
    }

    /// Short label for tables and CSV output.
    pub fn label(&self) -> String {
        match *self {
            Workload::DnRatio { r, .. } => format!("D/N={r}"),
            Workload::SkewedDnRatio { r, .. } => format!("skewed-D/N={r}"),
            Workload::Web { .. } => "COMMONCRAWL".into(),
            Workload::Dna { .. } => "DNAREADS".into(),
            Workload::TextLines { .. } => "WIKI".into(),
            Workload::Suffix { .. } => "SUFFIX".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_are_deterministic() {
        let w = Workload::Web { n_per_pe: 50 };
        let a = w.generate(1, 4, 7).to_vecs();
        let b = w.generate(1, 4, 7).to_vecs();
        assert_eq!(a, b);
        let c = w.generate(2, 4, 7).to_vecs();
        assert_ne!(a, c);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            Workload::DnRatio {
                n_per_pe: 1,
                len: 10,
                r: 0.5,
                sigma: 16
            }
            .label(),
            "D/N=0.5"
        );
        assert_eq!(Workload::Dna { n_per_pe: 1 }.label(), "DNAREADS");
    }
}
