//! Instance statistics: the aggregates the paper uses to characterise its
//! inputs (n, N, D/N, average length, average LCP, duplicate fraction).
//!
//! Used by the generator tests to pin the synthetic stand-ins to the
//! published statistics, and by the bench harness to label experiment
//! output.

use dss_strkit::lcp::total_dist_prefix;
use dss_strkit::sort::sort_with_lcp;
use dss_strkit::StringSet;

/// Aggregate statistics of one instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceStats {
    /// Number of strings.
    pub n: usize,
    /// Number of characters.
    pub n_chars: usize,
    /// Total distinguishing prefix size D.
    pub d: u64,
    /// D/N.
    pub dn_ratio: f64,
    /// Average string length.
    pub avg_len: f64,
    /// Average LCP between sorted neighbours.
    pub avg_lcp: f64,
    /// Fraction of strings that are exact duplicates of another string.
    pub dup_fraction: f64,
}

/// Computes statistics over the union of per-PE shards (sorts a copy).
pub fn instance_stats(shards: &[StringSet]) -> InstanceStats {
    let mut all = StringSet::new();
    for s in shards {
        all.extend_from(s);
    }
    let n = all.len();
    let n_chars = all.num_chars();
    if n == 0 {
        return InstanceStats {
            n,
            n_chars,
            d: 0,
            dn_ratio: 0.0,
            avg_len: 0.0,
            avg_lcp: 0.0,
            dup_fraction: 0.0,
        };
    }
    let (lcps, _) = sort_with_lcp(&mut all);
    let lens = all.lens();
    let d = total_dist_prefix(&lcps, &lens);
    let sum_lcp: u64 = lcps.iter().map(|&h| h as u64).sum();
    let mut dups = 0usize;
    for (i, &l) in lcps.iter().enumerate().skip(1) {
        if l as usize == all.get(i).len() && all.get(i - 1).len() == all.get(i).len() {
            dups += 1;
        }
    }
    InstanceStats {
        n,
        n_chars,
        d,
        dn_ratio: d as f64 / n_chars.max(1) as f64,
        avg_len: n_chars as f64 / n as f64,
        avg_lcp: sum_lcp as f64 / n as f64,
        dup_fraction: dups as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    fn shards_of(w: &Workload, p: usize) -> Vec<StringSet> {
        (0..p).map(|r| w.generate(r, p, 20260611)).collect()
    }

    #[test]
    fn web_instance_matches_paper_statistics() {
        let s = instance_stats(&shards_of(&Workload::Web { n_per_pe: 1500 }, 4));
        assert!(
            s.avg_len > 30.0 && s.avg_len < 60.0,
            "avg_len {}",
            s.avg_len
        );
        assert!(
            s.dn_ratio > 0.5 && s.dn_ratio < 0.85,
            "D/N {} (paper: 0.68)",
            s.dn_ratio
        );
        assert!(
            s.avg_lcp / s.avg_len > 0.4,
            "avg LCP fraction {} (paper: 0.60)",
            s.avg_lcp / s.avg_len
        );
        assert!(
            s.dup_fraction > 0.1,
            "needs repeated strings (FKmerge trigger)"
        );
    }

    #[test]
    fn dna_instance_matches_paper_statistics() {
        let s = instance_stats(&shards_of(&Workload::Dna { n_per_pe: 1500 }, 4));
        assert_eq!(s.avg_len, 100.0);
        assert!(
            s.dn_ratio > 0.2 && s.dn_ratio < 0.55,
            "D/N {} (paper: 0.38)",
            s.dn_ratio
        );
        assert!(
            s.avg_lcp / s.avg_len > 0.15 && s.avg_lcp / s.avg_len < 0.55,
            "avg LCP fraction {} (paper: 0.30)",
            s.avg_lcp / s.avg_len
        );
        // DNA must have *lower* LCP fraction than web (paper's contrast).
        let web = instance_stats(&shards_of(&Workload::Web { n_per_pe: 1500 }, 4));
        assert!(s.avg_lcp / s.avg_len < web.avg_lcp / web.avg_len);
    }

    #[test]
    fn dn_family_spans_the_ratio_axis() {
        for r in [0.0f64, 0.5, 1.0] {
            let w = Workload::DnRatio {
                n_per_pe: 500,
                len: 100,
                r,
                sigma: 16,
            };
            let s = instance_stats(&shards_of(&w, 4));
            assert!(
                (s.dn_ratio - r.max(0.04)).abs() < 0.08,
                "requested {r}, measured {}",
                s.dn_ratio
            );
        }
    }

    #[test]
    fn suffix_instance_is_the_low_dn_extreme() {
        let s = instance_stats(&shards_of(
            &Workload::Suffix {
                text_len: 4000,
                cap: 400,
            },
            4,
        ));
        assert!(s.dn_ratio < 0.1, "suffix D/N {}", s.dn_ratio);
        assert_eq!(s.n, 4000);
    }

    #[test]
    fn empty_stats() {
        let s = instance_stats(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.dn_ratio, 0.0);
    }
}
