//! The D/N instance family (§VII-A) and its skewed variant (§VII-E).
//!
//! "The i-th string from the D/N input consists of an appropriate number
//! of repetitions of the first character of Σ followed by a base σ
//! encoding of i followed by further characters to achieve the desired
//! string length. Value r = 0 means that i begins immediately and r = 1
//! means that i stands at the end of the string."
//!
//! The distinguishing prefix of string *i* ends within its digit block,
//! so `DIST ≈ pad + digits` and `D/N ≈ (pad + digits)/len = r`. Strings
//! are distributed round-robin over the PEs (a deterministic stand-in for
//! the paper's random distribution with exactly balanced shard sizes).
//!
//! Skewed variant: the 20 % smallest strings (lowest *i*, since the
//! encoding makes lexicographic order equal index order) are padded with
//! trailing filler to 4× length; the filler sits beyond the distinguishing
//! prefix, so D is unchanged while output lengths skew heavily.

use dss_strkit::StringSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of base-σ digits needed for values `0..n`.
fn digits_for(n: usize, sigma: u8) -> usize {
    let base = sigma.max(2) as usize;
    let mut d = 1;
    let mut cap = base;
    while cap < n {
        d += 1;
        cap = cap.saturating_mul(base);
    }
    d
}

/// Writes the fixed-width base-σ encoding of `i` using alphabet
/// `'a'..'a'+σ`, most-significant digit first.
fn encode_base_sigma(mut i: usize, digits: usize, sigma: u8, out: &mut Vec<u8>) {
    let base = sigma.max(2) as usize;
    let start = out.len();
    out.resize(start + digits, b'a');
    for k in (0..digits).rev() {
        out[start + k] = b'a' + (i % base) as u8;
        i /= base;
    }
    debug_assert_eq!(i, 0, "index exceeds digit capacity");
}

/// Generates PE `rank`'s shard of the D/N instance.
///
/// Global string count is `n_per_pe · p`; PE `rank` holds the strings with
/// index ≡ rank (mod p). `r` is clamped to `[0, 1]`.
#[allow(clippy::too_many_arguments)]
pub fn generate(
    n_per_pe: usize,
    len: usize,
    r: f64,
    sigma: u8,
    skewed: bool,
    rank: usize,
    p: usize,
    seed: u64,
) -> StringSet {
    let n_total = n_per_pe * p;
    let digits = digits_for(n_total.max(1), sigma);
    let r = r.clamp(0.0, 1.0);
    let target_dist = ((r * len as f64).round() as usize).clamp(digits.min(len), len);
    let pad = target_dist - digits.min(target_dist);
    let filler_len = len.saturating_sub(pad + digits);
    let mut set = StringSet::with_capacity(n_per_pe, n_per_pe * len);
    let mut rng = StdRng::seed_from_u64(seed ^ (rank as u64) << 20 ^ 0xD4);
    let mut buf = Vec::with_capacity(len * 4);
    for j in 0..n_per_pe {
        let i = j * p + rank; // round-robin global index
        buf.clear();
        buf.resize(pad, b'a');
        encode_base_sigma(i, digits, sigma, &mut buf);
        for _ in 0..filler_len {
            buf.push(b'a' + rng.gen_range(0..sigma.max(2)));
        }
        if skewed && i < n_total / 5 {
            // 4× total length, all beyond the distinguishing prefix.
            for _ in 0..3 * len {
                buf.push(b'a' + rng.gen_range(0..sigma.max(2)));
            }
        }
        set.push(&buf);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_strkit::lcp::{lcp_array_naive, total_dist_prefix};
    use dss_strkit::sort::sort_with_lcp;

    fn gather(n_per_pe: usize, len: usize, r: f64, sigma: u8, skewed: bool, p: usize) -> StringSet {
        let mut all = StringSet::new();
        for rank in 0..p {
            let shard = generate(n_per_pe, len, r, sigma, skewed, rank, p, 42);
            all.extend_from(&shard);
        }
        all
    }

    fn measured_ratio(set: &mut StringSet) -> f64 {
        let n_chars = set.num_chars() as f64;
        let (lcps, _) = sort_with_lcp(set);
        let lens = set.lens();
        total_dist_prefix(&lcps, &lens) as f64 / n_chars
    }

    #[test]
    fn strings_have_exact_length_and_count() {
        let set = gather(50, 100, 0.5, 16, false, 4);
        assert_eq!(set.len(), 200);
        assert!(set.iter().all(|s| s.len() == 100));
    }

    #[test]
    fn all_strings_globally_distinct() {
        let set = gather(100, 60, 0.25, 16, false, 3);
        let mut v = set.to_vecs();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 300);
    }

    #[test]
    fn ratio_matches_request() {
        for r in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let mut set = gather(200, 100, r, 16, false, 4);
            let measured = measured_ratio(&mut set);
            // digits consume a few chars even at r=0; allow ±0.08.
            assert!(
                (measured - r.max(0.04)).abs() < 0.08,
                "r={r} measured={measured}"
            );
        }
    }

    #[test]
    fn r1_puts_index_at_the_end() {
        let set = generate(4, 50, 1.0, 16, false, 0, 1, 1);
        for s in set.iter() {
            // Everything except the final digits is the pad character.
            let digits = digits_for(4, 16);
            assert!(s[..50 - digits].iter().all(|&c| c == b'a'));
        }
    }

    #[test]
    fn r0_puts_index_first() {
        let n = 300usize;
        let set = generate(n, 50, 0.0, 16, false, 0, 1, 1);
        let digits = digits_for(n, 16);
        // First digit varies across strings right away.
        let firsts: std::collections::HashSet<u8> = set.iter().map(|s| s[digits - 2]).collect();
        assert!(firsts.len() > 1);
    }

    #[test]
    fn sorted_order_equals_index_order() {
        // Fixed-width big-endian digits with identical pads sort by index.
        let p = 3;
        let mut labeled: Vec<(usize, Vec<u8>)> = Vec::new();
        for rank in 0..p {
            let shard = generate(20, 40, 0.5, 8, false, rank, p, 9);
            for (j, s) in shard.iter().enumerate() {
                labeled.push((j * p + rank, s.to_vec()));
            }
        }
        labeled.sort_by(|a, b| a.1.cmp(&b.1));
        let idxs: Vec<usize> = labeled.iter().map(|(i, _)| *i).collect();
        assert_eq!(idxs, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn skewed_pads_smallest_fifth() {
        let set = gather(100, 100, 0.5, 16, true, 2);
        let long = set.iter().filter(|s| s.len() == 400).count();
        let short = set.iter().filter(|s| s.len() == 100).count();
        assert_eq!(long, 40); // 20 % of 200
        assert_eq!(short, 160);
    }

    #[test]
    fn skew_does_not_change_d() {
        let mut plain = gather(100, 100, 0.5, 16, false, 2);
        let mut skewed = gather(100, 100, 0.5, 16, true, 2);
        let (lp, _) = sort_with_lcp(&mut plain);
        let (ls, _) = sort_with_lcp(&mut skewed);
        let dp = total_dist_prefix(&lp, &plain.lens());
        let ds = total_dist_prefix(&ls, &skewed.lens());
        assert_eq!(dp, ds, "padding must not contribute to D");
        let _ = lcp_array_naive(&plain);
    }
}
