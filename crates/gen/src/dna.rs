//! DNAREADS stand-in: sequencing reads over {A, C, G, T}.
//!
//! The paper's real instance (1000 Genomes WGS reads): alphabet size 4,
//! read ≈ 98.7 bp, average LCP ≈ 29.2 (30 % of a read), D/N = 0.38 —
//! "the DNA base pair sequences being more random than text on web
//! pages". We reproduce the statistics with reads sampled from a random
//! synthetic genome:
//!
//! * purely random start positions over a random genome would give
//!   neighbour LCPs of only ≈ log₄ n ≈ 10 bp; real data has duplicate and
//!   near-duplicate reads from coverage, PCR artefacts and genomic
//!   repeats. We therefore draw start positions from a *restricted pool*
//!   (≈ n/3 distinct starts), giving coverage-style duplicates, and apply
//!   a 1 % per-base mutation rate so many duplicates become long-LCP
//!   near-duplicates instead of exact copies.

use dss_strkit::StringSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const READ_LEN: usize = 100;
const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];
/// Genome length per 1000 reads (controls how often starts collide).
const GENOME_PER_KREAD: usize = 30_000;

/// Generates PE `rank`'s shard: `n_per_pe` reads.
pub fn generate(n_per_pe: usize, rank: usize, seed: u64) -> StringSet {
    // One shared genome, generated identically on every PE.
    let genome_len = (GENOME_PER_KREAD * n_per_pe.max(1000) / 1000).max(4 * READ_LEN);
    let mut genome_rng = StdRng::seed_from_u64(seed ^ 0xD7A);
    let genome: Vec<u8> = (0..genome_len)
        .map(|_| BASES[genome_rng.gen_range(0..4usize)])
        .collect();
    // Start-position pool: fewer distinct starts than reads ⇒ duplicates.
    let pool_size = (n_per_pe / 3).max(1);
    let starts: Vec<usize> = (0..pool_size)
        .map(|_| genome_rng.gen_range(0..genome_len - READ_LEN))
        .collect();

    let mut rng = StdRng::seed_from_u64(seed ^ 0xAC67 ^ (rank as u64) << 24);
    let mut set = StringSet::with_capacity(n_per_pe, n_per_pe * READ_LEN);
    let mut read = Vec::with_capacity(READ_LEN);
    for _ in 0..n_per_pe {
        let start = if rng.gen_bool(0.45) {
            starts[rng.gen_range(0..pool_size)]
        } else {
            rng.gen_range(0..genome_len - READ_LEN)
        };
        read.clear();
        read.extend_from_slice(&genome[start..start + READ_LEN]);
        // 1 % per-base sequencing "errors".
        for b in read.iter_mut() {
            if rng.gen_bool(0.01) {
                *b = BASES[rng.gen_range(0..4usize)];
            }
        }
        set.push(&read);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_have_dna_alphabet_and_length() {
        let set = generate(200, 0, 5);
        assert_eq!(set.len(), 200);
        for s in set.iter() {
            assert_eq!(s.len(), READ_LEN);
            assert!(s.iter().all(|c| BASES.contains(c)));
        }
    }

    #[test]
    fn shards_differ_but_share_genome() {
        let a = generate(100, 0, 5);
        let b = generate(100, 1, 5);
        assert_ne!(a.to_vecs(), b.to_vecs());
        // Coverage duplicates appear *across* shards too.
        let mut all: Vec<Vec<u8>> = a.to_vecs();
        all.extend(b.to_vecs());
        all.sort();
        let before = all.len();
        all.dedup();
        assert!(all.len() < before, "expected cross-shard duplicate reads");
    }
}
