//! Exporters and analysis over drained traces: begin/end pairing,
//! Chrome trace-event (Perfetto) JSON, and send-window overlap.

use crate::{json_escape, EventKind, Trace};

/// A paired begin/end span, produced by [`pair_spans`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Track (thread) id the span was recorded on.
    pub tid: u64,
    /// Span name.
    pub name: String,
    /// Category from [`crate::cat`].
    pub cat: &'static str,
    /// Numeric arguments; `("", 0)` entries are unused.
    pub args: [(&'static str, u64); 2],
    /// Begin timestamp, ns since the trace epoch.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Nesting depth on its thread (0 = top level).
    pub depth: usize,
}

impl Span {
    /// End timestamp, ns since the trace epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// Pairs every thread's begin/end events into [`Span`]s, verifying
/// balance as it goes: an `End` with no open `Begin`, or a `Begin` left
/// open at the end of a stream, is an error naming the offending thread.
/// This is the trace-integrity check the tests pin — a drained trace
/// from a quiescent run must always pair cleanly.
pub fn pair_spans(trace: &Trace) -> Result<Vec<Span>, String> {
    let mut spans = Vec::new();
    for t in &trace.threads {
        let mut stack: Vec<Span> = Vec::new();
        for ev in &t.events {
            match &ev.kind {
                EventKind::Begin { name, cat, args } => stack.push(Span {
                    tid: t.tid,
                    name: name.clone(),
                    cat,
                    args: *args,
                    start_ns: ev.ts_ns,
                    dur_ns: 0,
                    depth: stack.len(),
                }),
                EventKind::End => {
                    let mut s = stack.pop().ok_or_else(|| {
                        format!(
                            "thread '{}' (tid {}): End at {} ns with no open Begin",
                            t.thread, t.tid, ev.ts_ns
                        )
                    })?;
                    s.dur_ns = ev.ts_ns.saturating_sub(s.start_ns);
                    spans.push(s);
                }
            }
        }
        if let Some(open) = stack.last() {
            return Err(format!(
                "thread '{}' (tid {}): {} span(s) still open at drain, innermost '{}'",
                t.thread,
                t.tid,
                stack.len(),
                open.name
            ));
        }
    }
    spans.sort_by_key(|s| (s.tid, s.start_ns, std::cmp::Reverse(s.dur_ns)));
    Ok(spans)
}

fn push_args_json(args: &[(&'static str, u64); 2], out: &mut String) {
    out.push_str(",\"args\":{");
    let mut first = true;
    for (k, v) in args.iter().filter(|(k, _)| !k.is_empty()) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        json_escape(k, out);
        out.push_str(&format!("\":{v}"));
    }
    out.push('}');
}

/// Renders a drained trace as Chrome trace-event JSON, loadable in
/// [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`. One track
/// per recorded thread (named via `thread_name` metadata events), each
/// span a complete (`"ph":"X"`) event with microsecond timestamps;
/// nesting falls out of the begin/end pairing. Returns an error if any
/// stream is unbalanced, same as [`pair_spans`].
pub fn chrome_trace_json(trace: &Trace) -> Result<String, String> {
    let spans = pair_spans(trace)?;
    let mut out = String::with_capacity(128 + spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for t in &trace.threads {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"",
            t.tid
        ));
        json_escape(&t.thread, &mut out);
        out.push_str("\"}}");
    }
    for s in &spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"cat\":\"",
            s.tid,
            s.start_ns as f64 / 1000.0,
            s.dur_ns as f64 / 1000.0
        ));
        json_escape(s.cat, &mut out);
        out.push_str("\",\"name\":\"");
        json_escape(&s.name, &mut out);
        out.push('"');
        push_args_json(&s.args, &mut out);
        out.push('}');
    }
    out.push_str("]}");
    Ok(out)
}

/// Measures how much of a set of window spans is covered by a set of
/// work spans, per thread: for each window, work intervals *on the same
/// track* are clipped to the window and their union length accumulated.
/// Returns `(covered_ns, window_ns)` totals.
///
/// This is the engine behind the exchange overlap ratio: windows are
/// [`crate::cat::SEND_WINDOW`] spans, work is decode + merge, and the
/// ratio says how much of the send section was spent doing useful
/// receive-side work instead of just shipping bytes.
pub fn overlap<'a>(
    windows: impl IntoIterator<Item = &'a Span>,
    work: impl IntoIterator<Item = &'a Span>,
) -> (u64, u64) {
    let windows: Vec<&Span> = windows.into_iter().collect();
    let work: Vec<&Span> = work.into_iter().collect();
    let mut covered = 0u64;
    let mut total = 0u64;
    for w in &windows {
        total += w.dur_ns;
        // Clip work intervals on this track to the window, then take the
        // union length (work spans can nest, e.g. merge inside decode).
        let mut clipped: Vec<(u64, u64)> = work
            .iter()
            .filter(|s| s.tid == w.tid)
            .map(|s| (s.start_ns.max(w.start_ns), s.end_ns().min(w.end_ns())))
            .filter(|(a, b)| a < b)
            .collect();
        clipped.sort_unstable();
        let mut cursor = 0u64;
        let mut started = false;
        let mut run_end = 0u64;
        for (a, b) in clipped {
            if started && a <= run_end {
                run_end = run_end.max(b);
            } else {
                if started {
                    covered += run_end - cursor;
                }
                cursor = a;
                run_end = b;
                started = true;
            }
        }
        if started {
            covered += run_end - cursor;
        }
    }
    total = total.max(covered);
    (covered, total)
}

/// [`overlap`] as a ratio in `[0, 1]`; `0.0` when there are no windows.
pub fn overlap_ratio<'a>(
    windows: impl IntoIterator<Item = &'a Span>,
    work: impl IntoIterator<Item = &'a Span>,
) -> f64 {
    let (covered, total) = overlap(windows, work);
    if total == 0 {
        0.0
    } else {
        covered as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cat, Event, EventKind, ThreadTrace, Trace};

    fn begin(ts: u64, name: &str, cat: &'static str) -> Event {
        Event {
            ts_ns: ts,
            kind: EventKind::Begin {
                name: name.into(),
                cat,
                args: [("", 0), ("", 0)],
            },
        }
    }

    fn end(ts: u64) -> Event {
        Event {
            ts_ns: ts,
            kind: EventKind::End,
        }
    }

    fn trace_of(events: Vec<Event>) -> Trace {
        Trace {
            threads: vec![ThreadTrace {
                tid: 0,
                thread: "pe0".into(),
                events,
            }],
            dropped: 0,
        }
    }

    #[test]
    fn pairing_recovers_nesting() {
        let trace = trace_of(vec![
            begin(0, "phase", cat::PHASE),
            begin(10, "coll", cat::COLL),
            end(30),
            begin(40, "coll2", cat::COLL),
            end(70),
            end(100),
        ]);
        let spans = pair_spans(&trace).expect("balanced");
        assert_eq!(spans.len(), 3);
        let phase = spans.iter().find(|s| s.name == "phase").unwrap();
        assert_eq!((phase.start_ns, phase.dur_ns, phase.depth), (0, 100, 0));
        let coll = spans.iter().find(|s| s.name == "coll").unwrap();
        assert_eq!((coll.start_ns, coll.dur_ns, coll.depth), (10, 20, 1));
    }

    #[test]
    fn pairing_rejects_stray_end() {
        let err = pair_spans(&trace_of(vec![end(5)])).expect_err("unbalanced");
        assert!(err.contains("no open Begin"), "{err}");
        assert!(err.contains("pe0"), "{err}");
    }

    #[test]
    fn pairing_rejects_unclosed_begin() {
        let err =
            pair_spans(&trace_of(vec![begin(0, "left-open", cat::WAIT)])).expect_err("unbalanced");
        assert!(err.contains("still open"), "{err}");
        assert!(err.contains("left-open"), "{err}");
    }

    /// Minimal structural JSON check: braces/brackets balance outside
    /// string literals and close in order. Catches the classic
    /// extra-brace emission bug without a JSON parser dependency.
    fn assert_balanced_json(s: &str) {
        let mut stack = Vec::new();
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            match c {
                '"' => loop {
                    match chars.next() {
                        Some('\\') => {
                            chars.next();
                        }
                        Some('"') => break,
                        Some(_) => {}
                        None => panic!("unterminated string"),
                    }
                },
                '{' | '[' => stack.push(c),
                '}' => assert_eq!(stack.pop(), Some('{'), "stray '}}' in {s}"),
                ']' => assert_eq!(stack.pop(), Some('['), "stray ']' in {s}"),
                _ => {}
            }
        }
        assert!(stack.is_empty(), "unclosed {stack:?} in {s}");
    }

    #[test]
    fn chrome_json_has_metadata_and_complete_events() {
        let trace = trace_of(vec![
            begin(1000, "alltoallv", cat::COLL),
            end(3500),
            Event {
                ts_ns: 4000,
                kind: EventKind::Begin {
                    name: "send".into(),
                    cat: cat::SEND,
                    args: [("dst", 3), ("bytes", 128)],
                },
            },
            end(5000),
        ]);
        let json = chrome_trace_json(&trace).expect("balanced");
        assert_balanced_json(&json);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"args\":{\"dst\":3,\"bytes\":128}"));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"pe0\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.500"));
        assert!(json.contains("\"cat\":\"coll\""));
    }

    #[test]
    fn chrome_json_escapes_names() {
        let trace = trace_of(vec![begin(0, "we\"ird\\name", cat::PHASE), end(1)]);
        let json = chrome_trace_json(&trace).expect("balanced");
        assert!(json.contains("we\\\"ird\\\\name"));
    }

    #[test]
    fn chrome_json_propagates_imbalance() {
        let err =
            chrome_trace_json(&trace_of(vec![begin(0, "open", cat::RUN)])).expect_err("unbalanced");
        assert!(err.contains("still open"));
    }

    fn span(tid: u64, start: u64, dur: u64, cat: &'static str) -> Span {
        Span {
            tid,
            name: cat.into(),
            cat,
            args: [("", 0), ("", 0)],
            start_ns: start,
            dur_ns: dur,
            depth: 0,
        }
    }

    #[test]
    fn overlap_unions_and_clips() {
        let windows = [span(0, 100, 100, cat::SEND_WINDOW)];
        let work = [
            // Overlapping pair inside the window: union 110..160.
            span(0, 110, 30, cat::DECODE),
            span(0, 120, 40, cat::MERGE),
            // Extends past the window end: clipped at 200.
            span(0, 190, 50, cat::DECODE),
            // Entirely outside: ignored.
            span(0, 300, 20, cat::MERGE),
            // Other track: ignored.
            span(1, 110, 80, cat::DECODE),
        ];
        let (covered, total) = overlap(windows.iter(), work.iter());
        assert_eq!(total, 100);
        assert_eq!(covered, 50 + 10);
        let ratio = overlap_ratio(windows.iter(), work.iter());
        assert!((ratio - 0.6).abs() < 1e-12);
    }

    #[test]
    fn overlap_with_no_windows_is_zero() {
        let work = [span(0, 0, 100, cat::DECODE)];
        assert_eq!(overlap([].iter(), work.iter()), (0, 0));
        assert_eq!(overlap_ratio([].iter(), work.iter()), 0.0);
    }
}
