//! Span-level tracing core: the flight recorder behind `dss_net::trace`.
//!
//! The workspace's [`NetStats`] aggregates answer *how much* each phase
//! cost; this crate answers *when* things happened — which is the only
//! way to see the pipelined exchange's encode/transfer/decode overlap,
//! work-stealing balance, or where a PE sat stalled waiting for a
//! message. It lives below `dss-net` and `dss-strkit` in the dependency
//! graph so both the comm runtime and the parallel sort driver can emit
//! spans; `dss_net::trace` re-exports the whole API.
//!
//! ## Design
//!
//! * **Per-thread buffers of begin/end events.** Every recording thread
//!   lazily registers a buffer in a process-wide registry (keyed by a
//!   stable `tid` and the OS thread name — `pe3`, `dss-sort1`, …). A
//!   span is a [`SpanGuard`]: `Begin` on creation, `End` on drop, on the
//!   same thread (guards are `!Send`), so nesting is a per-thread stack
//!   by construction.
//! * **Zero cost when off.** [`span`] checks one relaxed atomic and
//!   returns an inert guard before doing *any* other work — no
//!   timestamp, no allocation, no lock. Recording is enabled by the
//!   `DSS_TRACE` knob ([`init_from_env`]) or programmatically
//!   ([`enable`]).
//! * **Bounded buffers.** `DSS_TRACE=spans=N` caps recorded spans per
//!   thread (default [`DEFAULT_SPAN_CAP`]), with a process-global cap of
//!   16·N as a backstop for long test runs that never drain. When a
//!   `Begin` is dropped at the cap its `End` is suppressed too, so
//!   drained buffers stay balanced; drops are counted, never silent.
//! * **Exporters.** [`chrome_trace_json`] writes Chrome trace-event JSON
//!   loadable in [Perfetto](https://ui.perfetto.dev) (one track per
//!   recorded thread, spans nested by begin/end pairing);
//!   [`pair_spans`]/[`overlap`] turn raw events into analyzable
//!   [`Span`]s — e.g. the send-window overlap ratio that makes the
//!   pipelined exchange's logical overlap a measured number even on a
//!   1-core host.
//!
//! Drain with [`take`] only at quiescent points (after `run_spmd`
//! returns): a thread mid-span at drain time would surface an unclosed
//! `Begin`, which [`pair_spans`] reports as an error.
//!
//! [`NetStats`]: ../dss_net/metrics/struct.NetStats.html

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

mod export;

pub use export::{chrome_trace_json, overlap, overlap_ratio, pair_spans, Span};

/// Span categories used across the instrumented stack. Using these
/// constants (instead of ad-hoc strings) keeps the exporters' filters —
/// overlap analysis, determinism tests, CI layer-coverage asserts — in
/// one namespace.
pub mod cat {
    /// PE / run lifetime roots (`run_spmd`, one `pe` span per PE thread).
    pub const RUN: &str = "run";
    /// One span per metrics phase, driven by `Comm::set_phase`.
    pub const PHASE: &str = "phase";
    /// Collective operations (barrier, broadcast, alltoallv, …).
    pub const COLL: &str = "coll";
    /// Blocking completion calls (`recv`, `wait`, `wait_any`, `test`).
    pub const WAIT: &str = "wait";
    /// Time blocked with no matching message ready. Timing-dependent:
    /// emitted only when a wait actually blocks, so span counts in this
    /// category are *not* deterministic across runs.
    pub const STALL: &str = "stall";
    /// Point-to-point sends (`send`, `isend`).
    pub const SEND: &str = "send";
    /// The exchange engine's send section: from the first bucket encode
    /// until the last bucket has been shipped (the blocking mode's
    /// `alltoallv` call). The denominator of the overlap ratio.
    pub const SEND_WINDOW: &str = "send-window";
    /// Per-bucket wire encoding in the exchange engine.
    pub const ENCODE: &str = "encode";
    /// Per-source wire decoding in the exchange engine.
    pub const DECODE: &str = "decode";
    /// Merge work: cascade level merges, final materialization, and the
    /// blocking path's k-way merge.
    pub const MERGE: &str = "merge";
    /// Work-stealing local-sort tasks (args: worker id, task size).
    /// Scheduling-dependent when `DSS_THREADS` differs; the task *tree*
    /// (and hence the span count) is deterministic for any fixed
    /// `threads >= 2`.
    pub const SORT_TASK: &str = "sort-task";
    /// One span per distributed-sorter invocation (MS, MS2L, MSML, …).
    pub const ALGO: &str = "algo";
}

/// Default per-thread span cap (≈ 262 k spans), overridden by
/// `DSS_TRACE=spans=N`.
pub const DEFAULT_SPAN_CAP: usize = 1 << 18;

/// Parsed value of the `DSS_TRACE` knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether span recording is on.
    pub enabled: bool,
    /// Per-thread span cap (the process-global backstop is 16× this).
    pub span_cap: usize,
}

/// Parses a `DSS_TRACE` value: `off` (or unset) disables, `on` enables
/// with [`DEFAULT_SPAN_CAP`], `spans=N` enables with a per-thread cap of
/// `N` spans. Anything else **panics** with the offending value — same
/// policy as `DSS_EXCHANGE_MODE` / `DSS_THREADS`: a typo'd knob must not
/// silently run untraced while CI believes it captured a trace.
pub fn parse_dss_trace(raw: Option<&str>) -> TraceConfig {
    let off = TraceConfig {
        enabled: false,
        span_cap: DEFAULT_SPAN_CAP,
    };
    match raw {
        None => off,
        Some(v) if v.eq_ignore_ascii_case("off") => off,
        Some(v) if v.eq_ignore_ascii_case("on") => TraceConfig {
            enabled: true,
            span_cap: DEFAULT_SPAN_CAP,
        },
        Some(v) => match v.strip_prefix("spans=") {
            Some(n) => match n.trim().parse::<usize>() {
                Ok(cap) if cap >= 1 => TraceConfig {
                    enabled: true,
                    span_cap: cap,
                },
                _ => panic!("DSS_TRACE spans=N needs a positive integer, got '{v}'"),
            },
            None => panic!("DSS_TRACE must be 'off', 'on' or 'spans=N', got '{v}'"),
        },
    }
}

/// Applies the `DSS_TRACE` environment knob, once per process (cached
/// like `ExchangeMode::from_env`; later calls are no-ops so programmatic
/// [`enable`]/[`disable`] — used by tests and `perfsnap --trace` — is
/// not stomped by subsequent `run_spmd` calls). Panics on an invalid
/// value, per [`parse_dss_trace`].
pub fn init_from_env() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        let cfg = match std::env::var("DSS_TRACE") {
            Ok(v) => parse_dss_trace(Some(&v)),
            Err(std::env::VarError::NotPresent) => parse_dss_trace(None),
            Err(e) => panic!("DSS_TRACE must be valid unicode: {e}"),
        };
        if cfg.enabled {
            enable(cfg.span_cap);
        }
    });
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SPAN_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_SPAN_CAP);
static GLOBAL_CAP: AtomicUsize = AtomicUsize::new(16 * DEFAULT_SPAN_CAP);
static GLOBAL_SPANS: AtomicUsize = AtomicUsize::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// Turns recording on with a per-thread cap of `span_cap` spans (and a
/// process-global backstop of 16× that).
pub fn enable(span_cap: usize) {
    let cap = span_cap.max(1);
    epoch(); // pin the common timestamp origin before the first event
    SPAN_CAP.store(cap, Ordering::Relaxed);
    GLOBAL_CAP.store(cap.saturating_mul(16), Ordering::Relaxed);
    ENABLED.store(true, Ordering::Release);
}

/// Turns recording off. Spans already begun still record their `End`
/// (balance over speed); buffered events stay until [`take`].
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether recording is currently on (one relaxed load — the check every
/// instrumentation site performs first).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch — the common clock all
/// tracks share, so spans from different threads align in Perfetto.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// One timestamped begin/end record in a thread's buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Begin (with the span's identity) or End (pairs with the innermost
    /// open Begin of the same thread).
    pub kind: EventKind,
}

/// Payload of an [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// Opens a span.
    Begin {
        /// Span name (phase label, collective name, …).
        name: String,
        /// Category from [`cat`].
        cat: &'static str,
        /// Up to two numeric arguments; `("", 0)` entries are unused.
        args: [(&'static str, u64); 2],
    },
    /// Closes the innermost open span of the recording thread.
    End,
}

struct BufState {
    events: Vec<Event>,
    /// Spans recorded since the last drain (the per-thread cap counts
    /// these, not raw events).
    begins: usize,
}

struct ThreadBuf {
    tid: u64,
    name: String,
    state: Mutex<BufState>,
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&ThreadBuf) -> R) -> R {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let buf = l.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{tid}"));
            let buf = Arc::new(ThreadBuf {
                tid,
                name,
                state: Mutex::new(BufState {
                    events: Vec::new(),
                    begins: 0,
                }),
            });
            registry()
                .lock()
                .expect("trace registry")
                .push(Arc::clone(&buf));
            buf
        });
        f(buf)
    })
}

/// RAII span: records `Begin` on creation and `End` on drop. `!Send` on
/// purpose — begin and end must land in the same thread's buffer for
/// per-thread nesting to hold.
#[must_use = "the span ends when this guard drops"]
#[derive(Debug)]
pub struct SpanGuard {
    live: bool,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// A guard that records nothing — what [`span`] returns when tracing
    /// is off, and the idle value for fields that hold the current span.
    pub fn inert() -> Self {
        Self {
            live: false,
            _not_send: PhantomData,
        }
    }
}

impl Default for SpanGuard {
    fn default() -> Self {
        Self::inert()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        // Deliberately not gated on `enabled()`: a span begun while
        // tracing was on must close even if tracing was switched off
        // mid-span, or the buffer drains unbalanced.
        let ts_ns = now_ns();
        with_local(|buf| {
            buf.state.lock().expect("trace buffer").events.push(Event {
                ts_ns,
                kind: EventKind::End,
            });
        });
    }
}

/// Opens a span of `cat` named `name` on the calling thread. When
/// tracing is off this is a single relaxed atomic load returning an
/// inert guard.
#[inline]
pub fn span(cat: &'static str, name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    span_slow(cat, name, [("", 0), ("", 0)])
}

/// [`span`] with up to two numeric arguments (worker id, byte count, …);
/// unused entries are `("", 0)`.
#[inline]
pub fn span_args(cat: &'static str, name: &str, args: [(&'static str, u64); 2]) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    span_slow(cat, name, args)
}

#[cold]
fn span_slow(cat: &'static str, name: &str, args: [(&'static str, u64); 2]) -> SpanGuard {
    let ts_ns = now_ns();
    let live = with_local(|buf| {
        let mut st = buf.state.lock().expect("trace buffer");
        let over_thread = st.begins >= SPAN_CAP.load(Ordering::Relaxed);
        let over_global =
            GLOBAL_SPANS.load(Ordering::Relaxed) >= GLOBAL_CAP.load(Ordering::Relaxed);
        if over_thread || over_global {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        st.begins += 1;
        GLOBAL_SPANS.fetch_add(1, Ordering::Relaxed);
        st.events.push(Event {
            ts_ns,
            kind: EventKind::Begin {
                name: name.to_string(),
                cat,
                args,
            },
        });
        true
    });
    SpanGuard {
        live,
        _not_send: PhantomData,
    }
}

/// Events of one recorded thread, as drained by [`take`].
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// Stable registration id (the Perfetto track id).
    pub tid: u64,
    /// OS thread name at registration (`pe0`, `dss-sort1`, `main`, …).
    pub thread: String,
    /// Begin/end events in record order.
    pub events: Vec<Event>,
}

/// A drained trace: per-thread event streams plus the drop counter.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Per-thread streams, ordered by `tid`.
    pub threads: Vec<ThreadTrace>,
    /// Spans dropped at the buffer caps since the last drain.
    pub dropped: u64,
}

impl Trace {
    /// Total number of events across all threads.
    pub fn len(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Whether no thread recorded anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Thread name for a `tid` (empty if unknown).
    pub fn thread_name(&self, tid: u64) -> &str {
        self.threads
            .iter()
            .find(|t| t.tid == tid)
            .map(|t| t.thread.as_str())
            .unwrap_or("")
    }
}

/// Drains every thread buffer into a [`Trace`] and resets the caps'
/// accounting. Buffers of threads that have exited are removed from the
/// registry; live threads keep recording into their (now empty) buffer.
///
/// Call at a quiescent point — after `run_spmd` has joined its PE
/// threads — so no drained stream ends mid-span.
pub fn take() -> Trace {
    let mut reg = registry().lock().expect("trace registry");
    let mut threads = Vec::new();
    reg.retain(|buf| {
        let (events, begins) = {
            let mut st = buf.state.lock().expect("trace buffer");
            let begins = st.begins;
            st.begins = 0;
            (std::mem::take(&mut st.events), begins)
        };
        if begins > 0 {
            GLOBAL_SPANS.fetch_sub(begins, Ordering::Relaxed);
        }
        if !events.is_empty() {
            threads.push(ThreadTrace {
                tid: buf.tid,
                thread: buf.name.clone(),
                events,
            });
        }
        // An Arc held only by the registry means the thread (and its
        // thread-local handle) is gone; prune so long test runs do not
        // accumulate dead buffers.
        Arc::strong_count(buf) > 1
    });
    threads.sort_by_key(|t| t.tid);
    Trace {
        threads,
        dropped: DROPPED.swap(0, Ordering::Relaxed),
    }
}

/// Drains and discards everything buffered so far (fresh-start helper
/// for tests and capture sessions).
pub fn reset() {
    let _ = take();
}

pub(crate) fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Recording tests share the process-global recorder; serialize them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_accepts_known_values() {
        assert!(!parse_dss_trace(None).enabled);
        for v in ["off", "Off", "OFF"] {
            assert!(!parse_dss_trace(Some(v)).enabled);
        }
        for v in ["on", "On", "ON"] {
            let c = parse_dss_trace(Some(v));
            assert!(c.enabled);
            assert_eq!(c.span_cap, DEFAULT_SPAN_CAP);
        }
        let c = parse_dss_trace(Some("spans=512"));
        assert!(c.enabled);
        assert_eq!(c.span_cap, 512);
        assert_eq!(parse_dss_trace(Some("spans= 64 ")).span_cap, 64);
    }

    #[test]
    #[should_panic(expected = "DSS_TRACE must be 'off', 'on' or 'spans=N', got 'yes'")]
    fn parse_rejects_unrecognized_values() {
        parse_dss_trace(Some("yes"));
    }

    #[test]
    #[should_panic(expected = "DSS_TRACE spans=N needs a positive integer, got 'spans=0'")]
    fn parse_rejects_zero_cap() {
        parse_dss_trace(Some("spans=0"));
    }

    #[test]
    #[should_panic(expected = "got 'spans=lots'")]
    fn parse_rejects_garbage_cap() {
        parse_dss_trace(Some("spans=lots"));
    }

    #[test]
    #[should_panic(expected = "got ''")]
    fn parse_rejects_empty_string() {
        parse_dss_trace(Some(""));
    }

    #[test]
    fn disabled_recording_is_inert() {
        let _g = lock();
        disable();
        reset();
        {
            let _s = span(cat::PHASE, "invisible");
        }
        assert!(take().is_empty());
    }

    #[test]
    fn spans_nest_and_balance() {
        let _g = lock();
        reset();
        enable(1024);
        {
            let _outer = span(cat::PHASE, "outer");
            {
                let _inner = span_args(cat::COLL, "inner", [("bytes", 7), ("", 0)]);
            }
        }
        disable();
        let trace = take();
        let spans = pair_spans(&trace).expect("balanced");
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.name == "outer").expect("outer");
        let inner = spans.iter().find(|s| s.name == "inner").expect("inner");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.args[0], ("bytes", 7));
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    /// At the span cap, new begins are dropped *with* their ends, so the
    /// drained stream still pairs cleanly; the drop counter reports the
    /// loss instead of silent truncation.
    #[test]
    fn cap_overflow_keeps_streams_balanced() {
        let _g = lock();
        reset();
        enable(3);
        for i in 0..10 {
            let _s = span(cat::MERGE, &format!("m{i}"));
        }
        disable();
        let trace = take();
        assert_eq!(trace.dropped, 7);
        let spans = pair_spans(&trace).expect("balanced despite drops");
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.name.starts_with('m')));
    }

    #[test]
    fn take_drains_and_resets_caps() {
        let _g = lock();
        reset();
        enable(2);
        {
            let _a = span(cat::WAIT, "a");
        }
        {
            let _b = span(cat::WAIT, "b");
        }
        {
            // Over the cap: dropped.
            let _c = span(cat::WAIT, "c");
        }
        let first = take();
        assert_eq!(pair_spans(&first).expect("balanced").len(), 2);
        assert_eq!(first.dropped, 1);
        {
            // The drain reset the per-thread count: records again.
            let _d = span(cat::WAIT, "d");
        }
        disable();
        let second = take();
        let spans = pair_spans(&second).expect("balanced");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "d");
        assert_eq!(second.dropped, 0);
    }

    #[test]
    fn worker_threads_get_their_own_tracks() {
        let _g = lock();
        reset();
        enable(1024);
        std::thread::Builder::new()
            .name("trace-test-worker".into())
            .spawn(|| {
                let _s = span(cat::SORT_TASK, "task");
            })
            .expect("spawn")
            .join()
            .expect("join");
        {
            let _s = span(cat::PHASE, "local");
        }
        disable();
        let trace = take();
        assert!(trace
            .threads
            .iter()
            .any(|t| t.thread == "trace-test-worker"));
        let spans = pair_spans(&trace).expect("balanced");
        let task = spans
            .iter()
            .find(|s| s.cat == cat::SORT_TASK)
            .expect("task");
        let local = spans.iter().find(|s| s.cat == cat::PHASE).expect("local");
        assert_ne!(task.tid, local.tid, "one track per thread");
    }
}
