//! Plain-text tables and CSV output for the experiment binaries.

use crate::harness::ExperimentResult;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Renders results as an aligned table, grouped the way the paper's
/// figures read: one block per workload, rows = (p, algorithm).
pub fn print_table(title: &str, results: &[ExperimentResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let mut workloads: Vec<&str> = results.iter().map(|r| r.workload.as_str()).collect();
    workloads.dedup();
    for w in workloads {
        let _ = writeln!(out, "\n[{w}]");
        let _ = writeln!(
            out,
            "{:>6} {:<16} {:>12} {:>10} {:>10} {:>10} {:>14} {:>7}",
            "p",
            "algorithm",
            "modeled(ms)",
            "comp(ms)",
            "comm(ms)",
            "wall(ms)",
            "bytes/string",
            "check"
        );
        for r in results.iter().filter(|r| r.workload == w) {
            let _ = writeln!(
                out,
                "{:>6} {:<16} {:>12.2} {:>10.2} {:>10.2} {:>10.2} {:>14.1} {:>7}",
                r.p,
                r.algorithm,
                r.modeled.as_secs_f64() * 1e3,
                r.compute_max.as_secs_f64() * 1e3,
                r.comm_modeled.as_secs_f64() * 1e3,
                r.wall.as_secs_f64() * 1e3,
                r.bytes_per_string,
                if r.check_ok { "ok" } else { "FAIL" }
            );
        }
    }
    out
}

/// Writes results as CSV (one row per cell, with phase breakdown columns
/// folded into a `phase:ms;…` field).
pub fn write_csv(path: &Path, results: &[ExperimentResult]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut out = String::from(
        "workload,p,algorithm,n,n_chars,modeled_ms,compute_ms,comm_ms,wall_ms,bytes_sent,bytes_per_string,check,phases\n",
    );
    for r in results {
        let phases: String = r
            .phase_ms
            .iter()
            .map(|(n, ms)| format!("{n}:{ms:.3}"))
            .collect::<Vec<_>>()
            .join(";");
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.3},{:.3},{:.3},{:.3},{},{:.2},{},{}",
            r.workload,
            r.p,
            r.algorithm,
            r.n,
            r.n_chars,
            r.modeled.as_secs_f64() * 1e3,
            r.compute_max.as_secs_f64() * 1e3,
            r.comm_modeled.as_secs_f64() * 1e3,
            r.wall.as_secs_f64() * 1e3,
            r.bytes_sent,
            r.bytes_per_string,
            r.check_ok,
            phases
        );
    }
    fs::write(path, out)
}

/// Ratio helper for the paper's headline claims ("X times faster than Y
/// at the largest configuration").
pub fn speedup_at(
    results: &[ExperimentResult],
    p: usize,
    workload: &str,
    base: &str,
    best_of: &[&str],
) -> Option<f64> {
    let base_t = results
        .iter()
        .find(|r| r.p == p && r.workload == workload && r.algorithm == base)?
        .modeled
        .as_secs_f64();
    let best_t = results
        .iter()
        .filter(|r| r.p == p && r.workload == workload && best_of.contains(&r.algorithm))
        .map(|r| r.modeled.as_secs_f64())
        .fold(f64::INFINITY, f64::min);
    (best_t.is_finite() && best_t > 0.0).then(|| base_t / best_t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn dummy(alg: &'static str, p: usize, modeled_ms: u64) -> ExperimentResult {
        ExperimentResult {
            algorithm: alg,
            workload: "W".into(),
            p,
            n: 10,
            n_chars: 100,
            modeled: Duration::from_millis(modeled_ms),
            comm_modeled: Duration::from_millis(modeled_ms / 2),
            compute_max: Duration::from_millis(modeled_ms - modeled_ms / 2),
            wall: Duration::from_millis(1),
            bytes_sent: 1000,
            bytes_per_string: 100.0,
            phase_ms: vec![("x".into(), 1.0)],
            check_ok: true,
        }
    }

    #[test]
    fn table_contains_all_rows() {
        let rows = vec![dummy("A", 2, 10), dummy("B", 2, 20)];
        let t = print_table("t", &rows);
        assert!(t.contains("A") && t.contains("B") && t.contains("[W]"));
    }

    #[test]
    fn speedup_computes_ratio() {
        let rows = vec![
            dummy("slow", 4, 100),
            dummy("fast", 4, 20),
            dummy("faster", 4, 10),
        ];
        let s = speedup_at(&rows, 4, "W", "slow", &["fast", "faster"]).unwrap();
        assert!((s - 10.0).abs() < 1e-9);
        assert!(speedup_at(&rows, 8, "W", "slow", &["fast"]).is_none());
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("dss_bench_test");
        let path = dir.join("out.csv");
        write_csv(&path, &[dummy("A", 2, 5)]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2);
        assert!(content.lines().nth(1).unwrap().starts_with("W,2,A,"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
