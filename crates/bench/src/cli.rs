//! Minimal flag parsing for the experiment binaries (`--key value` /
//! `--flag`), keeping the dependency set to the offline-approved crates.

use std::collections::HashMap;

/// Parsed command line: `--key value` pairs and bare `--switch`es.
#[derive(Debug, Default)]
pub struct Args {
    vals: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `std::env::args`.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses any iterator of arguments (testable).
    pub fn parse_from(iter: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut it = iter.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        out.vals.insert(key.to_string(), v);
                    }
                    _ => out.switches.push(key.to_string()),
                }
            }
        }
        out
    }

    /// Typed lookup with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.vals
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// String lookup with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.vals
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Whether a bare switch was passed.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Comma-separated list of usizes (e.g. `--pes 2,4,8`).
    pub fn get_usize_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.vals.get(key) {
            Some(v) => v.split(',').filter_map(|x| x.trim().parse().ok()).collect(),
            None => default.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse_from(s.split_whitespace().map(|x| x.to_string()))
    }

    #[test]
    fn parses_values_switches_and_lists() {
        let a = args("--n 500 --fast --pes 2,4,8 --name web");
        assert_eq!(a.get("n", 0usize), 500);
        assert!(a.has("fast"));
        assert!(!a.has("slow"));
        assert_eq!(a.get_usize_list("pes", &[1]), vec![2, 4, 8]);
        assert_eq!(a.get_str("name", "x"), "web");
        assert_eq!(a.get("missing", 7u32), 7);
    }
}
