//! perfsnap — the tracked hot-path performance baseline.
//!
//! Runs a fixed workload matrix (random / skewed / DNA / duplicate-heavy
//! × seq-sort / MS / MS-simple / PDMS / PDMS-Golomb / hQuick / MS2L /
//! MSML / PD-MS2L / PD-MSML, plus an exchange+merge micro-cell) and
//! reports, per cell:
//!
//! * **throughput** in MB of string characters per second (best of reps);
//! * **chars_accessed** of the sequential sorters (the paper's D-bounded
//!   work measure);
//! * **wire_bytes_per_string** — exchange-phase wire volume per string
//!   for the distributed cells (the column that shows the PD grid
//!   variants shipping D rather than N characters);
//! * **allocation counts** (calls + bytes) observed by the counting
//!   global allocator installed by the `perfsnap` binary.
//!
//! Snapshots are appended to `BENCH_perfsnap.json` so every PR has a
//! trajectory to beat: the first committed snapshot is the seed baseline,
//! later ones must not regress it. The numbers are host-dependent —
//! compare only runs from the same machine.

use crate::cli::Args;
use dss_gen::Workload;
use dss_net::runner::{run_spmd, RunConfig};
use dss_net::trace;
use dss_sort::exchange::{ExchangeCodec, ExchangePayload, StringAllToAll};
use dss_sort::Algorithm;
use dss_strkit::copyvol;
use dss_strkit::losertree::{parallel_lcp_merge_into, MergeRun};
use dss_strkit::sort::{par_sort_with_lcp, sort_with_lcp};
use dss_strkit::StringSet;
use std::time::{Duration, Instant};

/// Allocation counter hook: returns `(alloc_calls, alloc_bytes)` so far.
/// The `perfsnap` binary wires this to its counting global allocator;
/// tests may pass a stub.
pub type AllocProbe = fn() -> (u64, u64);

/// The four workload rows of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapWorkload {
    /// Uniformly random strings (σ = 26, length 40).
    Random,
    /// Skewed string lengths (20% of strings padded to 4× length).
    Skewed,
    /// DNAREADS stand-in (σ = 4).
    Dna,
    /// 90% of strings drawn from a 16-string hot set.
    DupHeavy,
}

impl SnapWorkload {
    /// All rows, in report order.
    pub const ALL: [SnapWorkload; 4] = [
        SnapWorkload::Random,
        SnapWorkload::Skewed,
        SnapWorkload::Dna,
        SnapWorkload::DupHeavy,
    ];

    /// Row label used in the JSON.
    pub fn label(self) -> &'static str {
        match self {
            SnapWorkload::Random => "random",
            SnapWorkload::Skewed => "skewed",
            SnapWorkload::Dna => "dna",
            SnapWorkload::DupHeavy => "dup-heavy",
        }
    }

    /// Generates PE `rank`'s shard of `p`.
    pub fn generate(self, rank: usize, p: usize, seed: u64, n_per_pe: usize) -> StringSet {
        match self {
            SnapWorkload::Random => generate_random(rank, seed, n_per_pe),
            SnapWorkload::Skewed => Workload::SkewedDnRatio {
                n_per_pe,
                len: 40,
                r: 0.5,
                sigma: 26,
            }
            .generate(rank, p, seed),
            SnapWorkload::Dna => Workload::Dna { n_per_pe }.generate(rank, p, seed),
            SnapWorkload::DupHeavy => generate_dup_heavy(rank, seed, n_per_pe),
        }
    }
}

/// Uniformly random strings: every character independent over `a..=z`.
/// The distinguishing prefix is ~log_26 n characters, so the sorter's char
/// fetches are few but maximally scattered — the cache-behavior probe.
fn generate_random(rank: usize, seed: u64, n_per_pe: usize) -> StringSet {
    let mut rng = Splitmix(seed ^ ((rank as u64) << 32) ^ 0x7a_4d);
    const LEN: usize = 40;
    let mut set = StringSet::with_capacity(n_per_pe, n_per_pe * LEN);
    let mut buf = [0u8; LEN];
    for _ in 0..n_per_pe {
        for b in buf.iter_mut() {
            *b = b'a' + rng.below(26) as u8;
        }
        set.push(&buf);
    }
    set
}

/// Duplicate-heavy shard: 90% of strings come from a 16-string hot pool
/// with a skewed (geometric-ish) distribution, the rest are short random
/// strings. The adversary case for equality buckets and tie-breaking.
fn generate_dup_heavy(rank: usize, seed: u64, n_per_pe: usize) -> StringSet {
    let mut rng = Splitmix(seed ^ ((rank as u64) << 32) ^ 0xD0_D0);
    let pool: Vec<Vec<u8>> = (0..16u32)
        .map(|i| format!("hot_string_{:02}_{}", i, "x".repeat((i % 5) as usize)).into_bytes())
        .collect();
    let mut set = StringSet::with_capacity(n_per_pe, n_per_pe * 18);
    for _ in 0..n_per_pe {
        if rng.below(10) < 9 {
            // Skew towards the low pool indices.
            let i = (rng.below(16).min(rng.below(16))) as usize;
            set.push(&pool[i]);
        } else {
            let len = rng.below(12) as usize;
            let s: Vec<u8> = (0..len).map(|_| b'a' + rng.below(26) as u8).collect();
            set.push(&s);
        }
    }
    set
}

/// Deterministic splitmix64 (keeps `dss-bench` off the rand shim for the
/// snapshot path: reproducible across shim changes).
struct Splitmix(u64);

impl Splitmix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }
}

/// One measured cell of the matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    pub workload: &'static str,
    pub algo: &'static str,
    /// Global string count.
    pub n: usize,
    /// Global character count.
    pub chars: usize,
    /// Best-of-reps wall time of the measured region.
    pub wall: Duration,
    /// `chars / wall`, in MB/s.
    pub mb_per_s: f64,
    /// Sequential sorter work counter (seq cells only).
    pub chars_accessed: Option<u64>,
    /// Wire volume per string (distributed cells only).
    pub wire_bytes_per_string: Option<f64>,
    /// Allocator calls in the measured region (best rep).
    pub allocs: u64,
    /// Bytes requested from the allocator in the measured region.
    pub alloc_bytes: u64,
    /// Payload/handle bytes memcpy'd by the instrumented hot paths in the
    /// measured region (`dss_strkit::copyvol` delta). Deterministic per
    /// input — the drift-immune companion to the throughput column.
    pub bytes_copied: u64,
    /// Time PEs spent blocked with no message ready, summed over the
    /// measured phases (distributed cells only; from [`NetStats`]'s
    /// always-on stall account, so populated with or without tracing).
    ///
    /// [`NetStats`]: dss_net::NetStats
    pub comm_stall_ns: Option<u64>,
    /// Fraction of the exchange send window covered by receive-side
    /// decode/merge work ([`trace::overlap_ratio`] over the cell's
    /// spans). Requires tracing (`--trace` / `DSS_TRACE=on`); the
    /// pipelined exchange reports strictly positive values, blocking
    /// reports 0 by construction.
    pub overlap_ratio: Option<f64>,
}

/// Traces drained by the distributed cells, waiting for
/// [`take_recorded_traces`]. Cells drain the recorder per rep (the
/// overlap ratio must only see the cell's own spans), so the binary's
/// end-of-run export needs the drained pieces back.
fn trace_acc() -> &'static std::sync::Mutex<Vec<trace::Trace>> {
    static ACC: std::sync::OnceLock<std::sync::Mutex<Vec<trace::Trace>>> =
        std::sync::OnceLock::new();
    ACC.get_or_init(|| std::sync::Mutex::new(Vec::new()))
}

/// When tracing is on: drains the recorder, parks the drained trace for
/// [`take_recorded_traces`], and returns the cell's send-window overlap
/// ratio (decode + merge work inside [`trace::cat::SEND_WINDOW`] spans).
fn drain_cell_trace() -> Option<f64> {
    if !trace::enabled() {
        return None;
    }
    let t = trace::take();
    let ratio = trace::pair_spans(&t).ok().map(|spans| {
        trace::overlap_ratio(
            spans.iter().filter(|s| s.cat == trace::cat::SEND_WINDOW),
            spans
                .iter()
                .filter(|s| s.cat == trace::cat::DECODE || s.cat == trace::cat::MERGE),
        )
    });
    trace_acc().lock().expect("trace accumulator").push(t);
    ratio
}

/// Everything recorded since the last call: the per-cell drained traces
/// plus whatever is still buffered (sequential cells' sort tasks, the
/// driver thread). The binary merges these into one Perfetto export.
pub fn take_recorded_traces() -> Vec<trace::Trace> {
    let mut v = std::mem::take(&mut *trace_acc().lock().expect("trace accumulator"));
    let tail = trace::take();
    if !tail.is_empty() {
        v.push(tail);
    }
    v
}

/// Concatenates drained traces into one. Streams were drained at
/// quiescent points, so each `ThreadTrace` entry pairs on its own; a tid
/// appearing in several entries is fine — timestamps share one epoch.
pub fn merge_traces(traces: Vec<trace::Trace>) -> trace::Trace {
    let mut threads = Vec::new();
    let mut dropped = 0;
    for t in traces {
        dropped += t.dropped;
        threads.extend(t.threads);
    }
    trace::Trace { threads, dropped }
}

/// Sizing knobs for one snapshot run.
#[derive(Debug, Clone, Copy)]
pub struct SnapConfig {
    /// Strings for the sequential cells.
    pub seq_n: usize,
    /// Strings per PE for the distributed cells.
    pub dist_n_per_pe: usize,
    /// Simulated PEs for the distributed cells.
    pub p: usize,
    /// Repetitions (best wall time / min allocs kept).
    pub reps: usize,
    /// Workload seed.
    pub seed: u64,
    /// Diagnostic: truncate every string of the sequential cells to this
    /// many characters before sorting (0 = off). Isolates the cost of the
    /// first sort levels when chasing a regression.
    pub truncate: u32,
    /// Shared-memory threads of the `par-sort` / `par-merge` cells (the
    /// `seq-sort` / `merge` cells always run at 1 thread, so every
    /// snapshot carries a 1-vs-N comparison). Recorded in the snapshot
    /// config.
    pub threads: usize,
}

impl SnapConfig {
    /// Default matrix sizing (about a minute on a small host).
    pub fn full() -> Self {
        Self {
            seq_n: 120_000,
            dist_n_per_pe: 20_000,
            p: 4,
            reps: 3,
            seed: 0xBA5E,
            truncate: 0,
            threads: default_threads(),
        }
    }

    /// Tiny sizing for CI: exercises every cell in a few seconds.
    /// `seq_n` sits above the parallel sorter's sequential cutoff so a
    /// traced smoke run records `sort-task` spans too.
    pub fn smoke() -> Self {
        Self {
            seq_n: 6_000,
            dist_n_per_pe: 400,
            p: 4,
            reps: 1,
            seed: 0xBA5E,
            truncate: 0,
            threads: default_threads(),
        }
    }

    /// Builds the config from command-line flags (`--smoke`, `--seq-n`,
    /// `--dist-n`, `--pes`, `--reps`, `--seed`, `--threads`).
    pub fn from_args(args: &Args) -> Self {
        let base = if args.has("smoke") {
            Self::smoke()
        } else {
            Self::full()
        };
        Self {
            seq_n: args.get("seq-n", base.seq_n),
            dist_n_per_pe: args.get("dist-n", base.dist_n_per_pe),
            p: args.get("pes", base.p),
            reps: args.get("reps", base.reps).max(1),
            seed: args.get("seed", base.seed),
            truncate: args.get("truncate", base.truncate),
            threads: args.get("threads", base.threads).max(1),
        }
    }
}

/// Default N for the parallel cells: the host's core count, at least 2 so
/// the 1-vs-N comparison is never degenerate (on a 1-core host the
/// parallel cells still exercise the work-stealing scheduler, they just
/// cannot be faster — snapshot labels should carry the caveat).
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2)
}

fn run_cfg() -> RunConfig {
    RunConfig {
        recv_timeout: Duration::from_secs(600),
        ..RunConfig::default()
    }
}

fn throughput(chars: usize, wall: Duration) -> f64 {
    chars as f64 / 1e6 / wall.as_secs_f64().max(1e-9)
}

/// Measures one sequential local-sort cell (single shard, no simulator).
pub fn seq_cell(w: SnapWorkload, cfg: &SnapConfig, probe: AllocProbe) -> Cell {
    let mut best: Option<Cell> = None;
    for _ in 0..cfg.reps {
        let mut set = w.generate(0, 1, cfg.seed, cfg.seq_n);
        if cfg.truncate > 0 {
            for i in 0..set.len() {
                set.truncate_str(i, cfg.truncate);
            }
        }
        let (n, chars) = (set.len(), set.num_chars());
        let (a0, b0) = probe();
        let c0 = copyvol::bytes_copied();
        let t0 = Instant::now();
        let (lcps, stats) = sort_with_lcp(&mut set);
        let wall = t0.elapsed();
        let (a1, b1) = probe();
        assert_eq!(lcps.len(), n);
        let cell = Cell {
            workload: w.label(),
            algo: "seq-sort",
            n,
            chars,
            wall,
            mb_per_s: throughput(chars, wall),
            chars_accessed: Some(stats.chars_accessed),
            wire_bytes_per_string: None,
            allocs: a1 - a0,
            alloc_bytes: b1 - b0,
            bytes_copied: copyvol::bytes_copied() - c0,
            comm_stall_ns: None,
            overlap_ratio: None,
        };
        if best.as_ref().is_none_or(|b| cell.wall < b.wall) {
            best = Some(cell);
        }
    }
    best.expect("reps >= 1")
}

/// Measures the work-stealing parallel local sort at `cfg.threads` on the
/// same shard as [`seq_cell`] — the 1-vs-N thread comparison row (output
/// is byte-identical to `seq-sort`, only the wall time may differ).
pub fn par_sort_cell(w: SnapWorkload, cfg: &SnapConfig, probe: AllocProbe) -> Cell {
    let mut best: Option<Cell> = None;
    for _ in 0..cfg.reps {
        let mut set = w.generate(0, 1, cfg.seed, cfg.seq_n);
        if cfg.truncate > 0 {
            for i in 0..set.len() {
                set.truncate_str(i, cfg.truncate);
            }
        }
        let (n, chars) = (set.len(), set.num_chars());
        let (a0, b0) = probe();
        let c0 = copyvol::bytes_copied();
        let t0 = Instant::now();
        let (lcps, stats) = par_sort_with_lcp(&mut set, cfg.threads);
        let wall = t0.elapsed();
        let (a1, b1) = probe();
        assert_eq!(lcps.len(), n);
        let cell = Cell {
            workload: w.label(),
            algo: "par-sort",
            n,
            chars,
            wall,
            mb_per_s: throughput(chars, wall),
            chars_accessed: Some(stats.chars_accessed),
            wire_bytes_per_string: None,
            allocs: a1 - a0,
            alloc_bytes: b1 - b0,
            bytes_copied: copyvol::bytes_copied() - c0,
            comm_stall_ns: None,
            overlap_ratio: None,
        };
        if best.as_ref().is_none_or(|b| cell.wall < b.wall) {
            best = Some(cell);
        }
    }
    best.expect("reps >= 1")
}

/// Measures a local k-way LCP merge of `cfg.p` pre-sorted runs drawn from
/// the workload, at the given thread count — `merge` (1 thread, the
/// sequential loser tree) and `par-merge` (`cfg.threads`, the range-split
/// parallel tree) rows. No simulator involved: this is the pure merge
/// kernel both exchange paths route through.
pub fn merge_cell(
    w: SnapWorkload,
    cfg: &SnapConfig,
    probe: AllocProbe,
    threads: usize,
    algo: &'static str,
) -> Cell {
    let k = cfg.p.max(2);
    let runs_data: Vec<(StringSet, Vec<u32>)> = (0..k)
        .map(|r| {
            let mut set = w.generate(r, k, cfg.seed ^ 0x3E6, cfg.seq_n / k);
            let (lcps, _) = sort_with_lcp(&mut set);
            (set, lcps)
        })
        .collect();
    let views: Vec<MergeRun<'_>> = runs_data
        .iter()
        .map(|(set, lcps)| MergeRun {
            arena: set.arena(),
            refs: set.refs(),
            lcps,
        })
        .collect();
    let (n, chars) = (
        runs_data.iter().map(|(s, _)| s.len()).sum::<usize>(),
        runs_data.iter().map(|(s, _)| s.num_chars()).sum::<usize>(),
    );
    let mut best: Option<Cell> = None;
    for _ in 0..cfg.reps {
        let mut out = StringSet::new();
        let (a0, b0) = probe();
        let c0 = copyvol::bytes_copied();
        let t0 = Instant::now();
        let merged = parallel_lcp_merge_into(&views, &mut out, threads);
        let wall = t0.elapsed();
        let (a1, b1) = probe();
        assert_eq!(out.len(), n);
        assert_eq!(merged.lcps.as_ref().map(Vec::len), Some(n));
        let cell = Cell {
            workload: w.label(),
            algo,
            n,
            chars,
            wall,
            mb_per_s: throughput(chars, wall),
            chars_accessed: None,
            wire_bytes_per_string: None,
            allocs: a1 - a0,
            alloc_bytes: b1 - b0,
            bytes_copied: copyvol::bytes_copied() - c0,
            comm_stall_ns: None,
            overlap_ratio: None,
        };
        if best.as_ref().is_none_or(|b| cell.wall < b.wall) {
            best = Some(cell);
        }
    }
    best.expect("reps >= 1")
}

/// Measures one distributed cell (`MS` or `MS-simple`) on the simulator.
/// Wall time is the max over PEs of the sort region; allocations are the
/// process-wide delta across the barrier-fenced sort region.
pub fn dist_cell(w: SnapWorkload, alg: Algorithm, cfg: &SnapConfig, probe: AllocProbe) -> Cell {
    let mut best: Option<Cell> = None;
    for _ in 0..cfg.reps {
        let (seed, n_per_pe) = (cfg.seed, cfg.dist_n_per_pe);
        let res = run_spmd(cfg.p, run_cfg(), move |comm| {
            comm.set_phase("generate");
            let shard = w.generate(comm.rank(), comm.size(), seed, n_per_pe);
            let (n, chars) = (shard.len(), shard.num_chars());
            comm.barrier();
            let before = (comm.rank() == 0).then(|| (probe(), copyvol::bytes_copied()));
            // Second fence: barrier exits are not synchronized, so
            // without it a fast PE could run ahead and do part of its
            // sort before rank 0 (still waking from the barrier) reads
            // the counters, sliding that work out of the window. No PE
            // can leave this barrier until rank 0 has entered it — i.e.
            // until the `before` reading is taken.
            comm.barrier();
            let t0 = Instant::now();
            comm.set_phase("sort");
            let sorter = alg.instance();
            let out = sorter.sort(comm, shard);
            let wall = t0.elapsed();
            comm.set_phase("drain");
            comm.barrier();
            let (da, db, dc) = match before {
                Some(((a0, b0), c0)) => {
                    let (a1, b1) = probe();
                    (a1 - a0, b1 - b0, copyvol::bytes_copied() - c0)
                }
                None => (0, 0, 0),
            };
            (n, chars, out.set.len(), wall, da, db, dc)
        });
        let n: usize = res.values.iter().map(|v| v.0).sum();
        let chars: usize = res.values.iter().map(|v| v.1).sum();
        let out_n: usize = res.values.iter().map(|v| v.2).sum();
        assert_eq!(out_n, n, "sort must conserve strings");
        let wall = res.values.iter().map(|v| v.3).max().expect("p >= 1");
        let allocs: u64 = res.values.iter().map(|v| v.4).sum();
        let alloc_bytes: u64 = res.values.iter().map(|v| v.5).sum();
        let bytes_copied: u64 = res.values.iter().map(|v| v.6).sum();
        // The sorter renames the phase internally; count everything that
        // is not generation or the barrier fences.
        let measured = |ph: &&dss_net::metrics::PhaseSummary| {
            !matches!(ph.name.as_str(), "generate" | "drain" | "main")
        };
        let bytes_sent: u64 = res
            .stats
            .phases
            .iter()
            .filter(measured)
            .map(|ph| ph.total.bytes_sent)
            .sum();
        let stall_ns: u64 = res
            .stats
            .phases
            .iter()
            .filter(measured)
            .map(|ph| ph.total.stall_ns)
            .sum();
        let overlap_ratio = drain_cell_trace();
        let cell = Cell {
            workload: w.label(),
            algo: alg.label(),
            n,
            chars,
            wall,
            mb_per_s: throughput(chars, wall),
            chars_accessed: None,
            wire_bytes_per_string: Some(bytes_sent as f64 / n.max(1) as f64),
            allocs,
            alloc_bytes,
            bytes_copied,
            comm_stall_ns: Some(stall_ns),
            overlap_ratio,
        };
        if best.as_ref().is_none_or(|b| cell.wall < b.wall) {
            best = Some(cell);
        }
    }
    best.expect("reps >= 1")
}

/// Measures the exchange+merge micro-cell: local sort (untimed), one
/// untimed warmup exchange that brings the engine's pooled decode scratch
/// to steady state, then a barrier-fenced fused
/// [`StringAllToAll::exchange_merge_by_splitters`] region — the same
/// entry point the merge-based algorithms use, so in pipelined mode the
/// cell exercises the rope-backed incremental cascade, and in blocking
/// mode the k-way loser-tree merge. The allocation and copy-volume
/// deltas are read on rank 0 across the fences, so they cover every
/// PE's steady-state exchange-path traffic and nothing else.
pub fn exchange_cell(w: SnapWorkload, cfg: &SnapConfig, probe: AllocProbe) -> Cell {
    let mut best: Option<Cell> = None;
    for _ in 0..cfg.reps {
        let (seed, n_per_pe) = (cfg.seed, cfg.dist_n_per_pe);
        let res = run_spmd(cfg.p, run_cfg(), move |comm| {
            let p = comm.size();
            let mut set = w.generate(comm.rank(), p, seed, n_per_pe);
            let (lcps, _) = sort_with_lcp(&mut set);
            // Global splitters, computed identically on every PE from a
            // deterministic out-of-band sample shard.
            let mut sample = w.generate(p, p + 1, seed ^ 0x515, n_per_pe.min(4096));
            let _ = sort_with_lcp(&mut sample);
            let mut splitters = StringSet::new();
            for j in 1..p {
                splitters.push(sample.get(j * sample.len() / p));
            }
            let payload = ExchangePayload {
                set: &set,
                lcps: &lcps,
                origins: None,
                truncate: None,
            };
            // Merge threads pinned to 1 so the cell isolates the
            // exchange path itself from `DSS_THREADS` scaling.
            let mut engine = StringAllToAll::new(ExchangeCodec::LcpCompressed).with_threads(1);
            // Warmup: populate the pooled decode scratch (untimed).
            let _ = engine.exchange_merge_by_splitters(comm, &payload, &splitters, false, None);
            comm.barrier();
            let before = (comm.rank() == 0).then(|| (probe(), copyvol::bytes_copied()));
            // Second fence: no PE may start the measured exchange until
            // rank 0 has taken the `before` reading (see `dist_cell`).
            comm.barrier();
            let t0 = Instant::now();
            let merged =
                engine.exchange_merge_by_splitters(comm, &payload, &splitters, false, None);
            let wall = t0.elapsed();
            comm.barrier();
            let (da, db, dc) = match before {
                Some(((a0, b0), c0)) => {
                    let (a1, b1) = probe();
                    (a1 - a0, b1 - b0, copyvol::bytes_copied() - c0)
                }
                None => (0, 0, 0),
            };
            (merged.set.len(), merged.set.num_chars(), wall, da, db, dc)
        });
        let n: usize = res.values.iter().map(|v| v.0).sum();
        let chars: usize = res.values.iter().map(|v| v.1).sum();
        let wall = res.values.iter().map(|v| v.2).max().expect("p >= 1");
        let allocs: u64 = res.values.iter().map(|v| v.3).sum();
        let alloc_bytes: u64 = res.values.iter().map(|v| v.4).sum();
        let bytes_copied: u64 = res.values.iter().map(|v| v.5).sum();
        let overlap_ratio = drain_cell_trace();
        let cell = Cell {
            workload: w.label(),
            algo: "exchange",
            n,
            chars,
            wall,
            mb_per_s: throughput(chars, wall),
            chars_accessed: None,
            wire_bytes_per_string: None,
            allocs,
            alloc_bytes,
            bytes_copied,
            comm_stall_ns: Some(res.stats.totals().stall_ns),
            overlap_ratio,
        };
        // Like every cell, wall time is best-of-reps; the allocation and
        // copy-volume fields independently keep their minimum (a slow rep
        // can still be the least noisy observation).
        best = Some(match best.take() {
            None => cell,
            Some(mut b) => {
                b.allocs = b.allocs.min(cell.allocs);
                b.alloc_bytes = b.alloc_bytes.min(cell.alloc_bytes);
                b.bytes_copied = b.bytes_copied.min(cell.bytes_copied);
                if cell.wall < b.wall {
                    Cell {
                        allocs: b.allocs,
                        alloc_bytes: b.alloc_bytes,
                        bytes_copied: b.bytes_copied,
                        ..cell
                    }
                } else {
                    b
                }
            }
        });
    }
    best.expect("reps >= 1")
}

/// Runs the whole matrix.
pub fn run_snapshot(cfg: &SnapConfig, probe: AllocProbe) -> Vec<Cell> {
    run_snapshot_filtered(cfg, probe, "")
}

/// [`run_snapshot`] restricted to cells whose `workload:algo` id contains
/// `filter` (empty = all). For quick iteration: `--only random:seq`.
pub fn run_snapshot_filtered(cfg: &SnapConfig, probe: AllocProbe, filter: &str) -> Vec<Cell> {
    let want = |w: SnapWorkload, algo: &str| {
        filter.is_empty() || format!("{}:{}", w.label(), algo).contains(filter)
    };
    let mut cells = Vec::new();
    for w in SnapWorkload::ALL {
        if want(w, "seq-sort") {
            eprintln!("perfsnap: {} / seq-sort", w.label());
            cells.push(seq_cell(w, cfg, probe));
        }
        if want(w, "par-sort") {
            eprintln!("perfsnap: {} / par-sort (t={})", w.label(), cfg.threads);
            cells.push(par_sort_cell(w, cfg, probe));
        }
        if want(w, "merge") {
            eprintln!("perfsnap: {} / merge", w.label());
            cells.push(merge_cell(w, cfg, probe, 1, "merge"));
        }
        if want(w, "par-merge") {
            eprintln!("perfsnap: {} / par-merge (t={})", w.label(), cfg.threads);
            cells.push(merge_cell(w, cfg, probe, cfg.threads, "par-merge"));
        }
        for alg in [
            Algorithm::Ms,
            Algorithm::MsSimple,
            Algorithm::Pdms,
            Algorithm::PdmsGolomb,
            Algorithm::HQuick,
            Algorithm::Ms2l,
            Algorithm::Msml,
            Algorithm::PdMs2l,
            Algorithm::PdMsml,
        ] {
            if want(w, alg.label()) {
                eprintln!("perfsnap: {} / {}", w.label(), alg.label());
                cells.push(dist_cell(w, alg, cfg, probe));
            }
        }
        if want(w, "exchange") {
            eprintln!("perfsnap: {} / exchange", w.label());
            cells.push(exchange_cell(w, cfg, probe));
        }
    }
    cells
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

/// Renders one snapshot (label + config + cells) as a JSON object.
pub fn snapshot_json(label: &str, cfg: &SnapConfig, cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("  {\n");
    out.push_str(&format!("    \"label\": \"{}\",\n", json_escape(label)));
    out.push_str(&format!(
        "    \"config\": {{\"seq_n\": {}, \"dist_n_per_pe\": {}, \"p\": {}, \"reps\": {}, \"seed\": {}, \"exchange_mode\": \"{}\", \"threads\": {}}},\n",
        cfg.seq_n,
        cfg.dist_n_per_pe,
        cfg.p,
        cfg.reps,
        cfg.seed,
        dss_sort::ExchangeMode::from_env().label(),
        cfg.threads
    ));
    out.push_str("    \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let chars_accessed = c
            .chars_accessed
            .map_or("null".to_string(), |v| v.to_string());
        let bps = c.wire_bytes_per_string.map_or("null".to_string(), fmt_f64);
        let stall = c
            .comm_stall_ns
            .map_or("null".to_string(), |v| v.to_string());
        let overlap = c.overlap_ratio.map_or("null".to_string(), fmt_f64);
        out.push_str(&format!(
            "      {{\"workload\": \"{}\", \"algo\": \"{}\", \"n\": {}, \"chars\": {}, \
             \"wall_ms\": {}, \"throughput_mb_s\": {}, \"chars_accessed\": {}, \
             \"wire_bytes_per_string\": {}, \"allocs\": {}, \"alloc_bytes\": {}, \
             \"bytes_copied\": {}, \"comm_stall_ns\": {}, \"overlap_ratio\": {}}}{}\n",
            c.workload,
            c.algo,
            c.n,
            c.chars,
            fmt_f64(c.wall.as_secs_f64() * 1e3),
            fmt_f64(c.mb_per_s),
            chars_accessed,
            bps,
            c.allocs,
            c.alloc_bytes,
            c.bytes_copied,
            stall,
            overlap,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("    ]\n  }");
    out
}

/// Appends a snapshot object to the JSON-array file at `path` (creating
/// `[ ... ]` on first write). The file is always a valid JSON array of
/// snapshot objects, newest last.
pub fn append_snapshot(path: &std::path::Path, snapshot: &str) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let trimmed = existing.trim_end();
    let body = if trimmed.is_empty() {
        format!("[\n{snapshot}\n]\n")
    } else {
        let inner = trimmed
            .strip_suffix(']')
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{} is not a JSON array", path.display()),
                )
            })?
            .trim_end();
        format!("{inner},\n{snapshot}\n]\n")
    };
    std::fs::write(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_probe() -> (u64, u64) {
        (0, 0)
    }

    #[test]
    fn smoke_matrix_runs_every_cell() {
        let cfg = SnapConfig {
            seq_n: 300,
            dist_n_per_pe: 80,
            // p = 4 so the MSML cell runs a genuine 2×2 grid instead of
            // its prime-p fallback.
            p: 4,
            reps: 1,
            seed: 1,
            truncate: 0,
            threads: 2,
        };
        let cells = run_snapshot(&cfg, no_probe);
        // seq-sort + par-sort + merge + par-merge + 9 distributed
        // algorithms + the exchange micro-cell.
        assert_eq!(cells.len(), SnapWorkload::ALL.len() * 14);
        for c in &cells {
            assert!(c.n > 0, "{}/{} empty", c.workload, c.algo);
            assert!(c.mb_per_s > 0.0);
        }
        // Sequential cells report work counters; distributed report volume.
        assert!(cells
            .iter()
            .filter(|c| c.algo == "seq-sort")
            .all(|c| c.chars_accessed.is_some()));
        for algo in [
            "MS",
            "MS-simple",
            "PDMS",
            "PDMS-Golomb",
            "hQuick",
            "MS2L",
            "MSML",
            "PD-MS2L",
            "PD-MSML",
        ] {
            assert!(
                cells
                    .iter()
                    .filter(|c| c.algo == algo)
                    .all(|c| c.wire_bytes_per_string.unwrap_or(0.0) > 0.0),
                "{algo} cells must report wire volume"
            );
        }
        // Every cell exercises at least one instrumented copy site, so the
        // copy-volume column must be populated across the whole matrix (in
        // whichever exchange mode this test runs under).
        for c in &cells {
            assert!(
                c.bytes_copied > 0,
                "{}/{} reported zero bytes_copied",
                c.workload,
                c.algo
            );
        }
    }

    #[test]
    fn snapshot_json_appends_as_valid_array() {
        let cfg = SnapConfig::smoke();
        let cells = vec![Cell {
            workload: "random",
            algo: "seq-sort",
            n: 10,
            chars: 100,
            wall: Duration::from_millis(5),
            mb_per_s: 20.0,
            chars_accessed: Some(123),
            wire_bytes_per_string: None,
            allocs: 7,
            alloc_bytes: 512,
            bytes_copied: 4096,
            comm_stall_ns: Some(1234),
            overlap_ratio: Some(0.25),
        }];
        let snap = snapshot_json("test", &cfg, &cells);
        let dir = std::env::temp_dir().join(format!("perfsnap_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let _ = std::fs::remove_file(&path);
        append_snapshot(&path, &snap).unwrap();
        append_snapshot(&path, &snap).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("[\n"));
        assert!(body.ends_with("]\n"));
        assert_eq!(body.matches("\"label\": \"test\"").count(), 2);
        assert_eq!(body.matches("\"chars_accessed\": 123").count(), 2);
        assert_eq!(body.matches("\"wire_bytes_per_string\": null").count(), 2);
        assert_eq!(body.matches("\"bytes_copied\": 4096").count(), 2);
        assert_eq!(body.matches("\"comm_stall_ns\": 1234").count(), 2);
        assert_eq!(body.matches("\"overlap_ratio\": 0.250").count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dup_heavy_is_duplicate_dominated() {
        let set = generate_dup_heavy(0, 7, 2000);
        let mut uniq = std::collections::HashSet::new();
        for s in set.iter() {
            uniq.insert(s.to_vec());
        }
        assert!(uniq.len() < set.len() / 10, "{} uniques", uniq.len());
    }
}
