//! Fig. 4 — weak scaling on the D/N family.
//!
//! Paper grid: five inputs with r = D/N ∈ {0, 0.25, 0.5, 0.75, 1.0},
//! 500 000 strings of length 500 per PE, p = 20…1280 cores. Simulator
//! default: 1 000 strings of length 100 per PE, p = 2…32 (override with
//! `--n-per-pe`, `--len`, `--pes a,b,c`). Both panels are reproduced:
//! modeled time (top) and bytes sent per string (bottom, exact).
//!
//! Usage:
//!   cargo run --release -p dss-bench --bin fig4 -- [--pes 2,4,8,16,32]
//!       [--n-per-pe 1000] [--len 100] [--sigma 16] [--no-check] [--out results/fig4.csv]

use dss_bench::cli::Args;
use dss_bench::harness::run_repeated_with_model;
use dss_bench::table::speedup_at;
use dss_bench::{print_table, write_csv};
use dss_gen::Workload;
use dss_net::CostModel;
use dss_sort::Algorithm;
use std::path::PathBuf;

fn main() {
    let args = Args::parse();
    let pes = args.get_usize_list("pes", &[2, 4, 8, 16, 32]);
    let n_per_pe: usize = args.get("n-per-pe", 1000);
    let len: usize = args.get("len", 100);
    let sigma: u8 = args.get("sigma", 16);
    let check = !args.has("no-check");
    let seed: u64 = args.get("seed", 20260611);
    let reps: usize = args.get("reps", 3);
    // α–β cost model; see EXPERIMENTS.md for the calibration discussion.
    let model = CostModel {
        alpha_ns: args.get("alpha-us", 5.0f64) * 1e3,
        beta_ns_per_byte: args.get("beta-ns", 1.0f64),
    };
    let out: PathBuf = PathBuf::from(args.get_str("out", "results/fig4.csv"));

    let ratios = [0.0f64, 0.25, 0.5, 0.75, 1.0];
    let mut results = Vec::new();
    for &r in &ratios {
        let w = Workload::DnRatio {
            n_per_pe,
            len,
            r,
            sigma,
        };
        for &p in &pes {
            for alg in Algorithm::all_paper() {
                let res = run_repeated_with_model(
                    alg.label(),
                    &*alg.instance(),
                    &w,
                    p,
                    seed,
                    check,
                    reps,
                    &model,
                );
                eprintln!(
                    "r={r:<4} p={p:<3} {:<12} modeled={:>9.2}ms bytes/str={:>8.1} {}",
                    res.algorithm,
                    res.modeled.as_secs_f64() * 1e3,
                    res.bytes_per_string,
                    if res.check_ok { "ok" } else { "CHECK-FAIL" },
                );
                results.push(res);
            }
        }
    }
    println!(
        "{}",
        print_table(
            &format!("Fig. 4 — weak scaling, D/N inputs ({n_per_pe} strings x {len} chars per PE)"),
            &results
        )
    );
    // Headline: "on the largest configuration the best shown algorithm is
    // 5.3–8.6× faster than FKmerge".
    let p_max = *pes.last().expect("non-empty PE list");
    println!("Speedup of best(PDMS, PDMS-Golomb, MS) over FKmerge at p={p_max}:");
    for &r in &ratios {
        let w = format!("D/N={r}");
        if let Some(s) = speedup_at(
            &results,
            p_max,
            &w,
            "FKmerge",
            &["PDMS", "PDMS-Golomb", "MS"],
        ) {
            println!("  {w:<10} {s:.1}x");
        }
    }
    if let Err(e) = write_csv(&out, &results) {
        eprintln!("failed to write {}: {e}", out.display());
    } else {
        println!("\nwrote {}", out.display());
    }
}
