//! §VII-E — the "further experiments" bundle:
//!
//! * `--exp suffix`   — the Wikipedia suffix instance (D/N ≈ 10⁻³…10⁻⁴):
//!   PDMS is reported ~30× faster than everything else at p = 160.
//! * `--exp skewed`   — skewed D/N instances (20 % of strings padded to
//!   4× length): algorithm ranking unchanged; character-based sampling
//!   rescues the MS variants' load balance.
//! * `--exp sampling` — string- vs character- vs dist-prefix-based
//!   sampling ablation on uniform and skewed inputs.
//! * `--exp wiki`     — the Wikipedia line instance (results ≈ CommonCrawl).
//! * `--exp ablation` — extension knobs: Golomb coding volume, hypercube
//!   (latency-optimal) fingerprint routing, delta-coded LCPs (§VI-B).
//! * `--exp all`      — everything.
//!
//! Usage: cargo run --release -p dss-bench --bin further -- --exp all

use dss_bench::cli::Args;
use dss_bench::harness::run_repeated_with_model;
use dss_bench::{print_table, write_csv, ExperimentResult};
use dss_gen::Workload;
use dss_net::CostModel;
use dss_sort::partition::{PartitionConfig, SamplingPolicy};
use dss_sort::{Algorithm, Ms, MsConfig, Pdms, PdmsConfig};
use std::path::PathBuf;

fn paper_algorithms(
    w: &Workload,
    pes: &[usize],
    seed: u64,
    check: bool,
    reps: usize,
    model: &CostModel,
) -> Vec<ExperimentResult> {
    let mut out = Vec::new();
    for &p in pes {
        for alg in Algorithm::all_paper() {
            let res = run_repeated_with_model(
                alg.label(),
                &*alg.instance(),
                w,
                p,
                seed,
                check,
                reps,
                model,
            );
            eprintln!(
                "{:<14} p={p:<3} {:<12} modeled={:>9.2}ms bytes/str={:>8.1} {}",
                res.workload,
                res.algorithm,
                res.modeled.as_secs_f64() * 1e3,
                res.bytes_per_string,
                if res.check_ok { "ok" } else { "CHECK-FAIL" },
            );
            out.push(res);
        }
    }
    out
}

fn exp_suffix(
    pes: &[usize],
    seed: u64,
    check: bool,
    reps: usize,
    model: &CostModel,
) -> Vec<ExperimentResult> {
    let w = Workload::Suffix {
        text_len: 6000,
        cap: 500,
    };
    let results = paper_algorithms(&w, pes, seed, check, reps, model);
    let p = *pes.last().expect("non-empty");
    let pdms = results
        .iter()
        .filter(|r| r.p == p && r.algorithm.starts_with("PDMS"))
        .map(|r| r.modeled.as_secs_f64())
        .fold(f64::INFINITY, f64::min);
    let others = results
        .iter()
        .filter(|r| r.p == p && !r.algorithm.starts_with("PDMS"))
        .map(|r| r.modeled.as_secs_f64())
        .fold(f64::INFINITY, f64::min);
    println!(
        "suffix instance at p={p}: PDMS vs best non-PDMS = {:.1}x (paper: ~30x at p=160)",
        others / pdms
    );
    results
}

fn exp_skewed(
    pes: &[usize],
    seed: u64,
    check: bool,
    reps: usize,
    model: &CostModel,
) -> Vec<ExperimentResult> {
    let w = Workload::SkewedDnRatio {
        n_per_pe: 800,
        len: 100,
        r: 0.5,
        sigma: 16,
    };
    paper_algorithms(&w, pes, seed, check, reps, model)
}

fn exp_sampling(
    pes: &[usize],
    seed: u64,
    check: bool,
    reps: usize,
    model: &CostModel,
) -> Vec<ExperimentResult> {
    // MS with string- vs character-based sampling on uniform and skewed
    // inputs; PDMS additionally with dist-prefix-based sampling.
    let uniform = Workload::DnRatio {
        n_per_pe: 800,
        len: 100,
        r: 0.5,
        sigma: 16,
    };
    let skewed = Workload::SkewedDnRatio {
        n_per_pe: 800,
        len: 100,
        r: 0.5,
        sigma: 16,
    };
    let ms_strings = Ms::default();
    let ms_chars = Ms::with_config(MsConfig {
        partition: PartitionConfig {
            policy: SamplingPolicy::Chars,
            ..PartitionConfig::default()
        },
        ..MsConfig::default()
    });
    let pdms_dist = Pdms::with_config(PdmsConfig {
        partition: PartitionConfig {
            policy: SamplingPolicy::DistPrefix,
            ..PartitionConfig::default()
        },
        ..PdmsConfig::default()
    });
    let mut out = Vec::new();
    for w in [&uniform, &skewed] {
        for &p in pes {
            out.push(run_repeated_with_model(
                "MS/str-sample",
                &ms_strings,
                w,
                p,
                seed,
                check,
                reps,
                model,
            ));
            out.push(run_repeated_with_model(
                "MS/char-sample",
                &ms_chars,
                w,
                p,
                seed,
                check,
                reps,
                model,
            ));
            out.push(run_repeated_with_model(
                "PDMS/dist-sample",
                &pdms_dist,
                w,
                p,
                seed,
                check,
                reps,
                model,
            ));
        }
    }
    for r in &out {
        eprintln!(
            "{:<16} p={:<3} {:<16} modeled={:>9.2}ms imbalance-sensitive",
            r.workload,
            r.p,
            r.algorithm,
            r.modeled.as_secs_f64() * 1e3
        );
    }
    out
}

fn exp_wiki(
    pes: &[usize],
    seed: u64,
    check: bool,
    reps: usize,
    model: &CostModel,
) -> Vec<ExperimentResult> {
    let w = Workload::TextLines { n_per_pe: 800 };
    paper_algorithms(&w, pes, seed, check, reps, model)
}

fn exp_ablation(
    pes: &[usize],
    seed: u64,
    check: bool,
    reps: usize,
    model: &CostModel,
) -> Vec<ExperimentResult> {
    // Extension knobs on a low-D/N input where they matter most.
    let w = Workload::DnRatio {
        n_per_pe: 800,
        len: 200,
        r: 0.1,
        sigma: 16,
    };
    let pdms_hypercube = Pdms::with_config(PdmsConfig {
        pd: dss_dedup::prefix_doubling::PrefixDoublingConfig {
            latency_optimal: true,
            ..Default::default()
        },
        ..PdmsConfig::default()
    });
    let pdms_slow_growth = Pdms::with_config(PdmsConfig {
        pd: dss_dedup::prefix_doubling::PrefixDoublingConfig {
            growth_num: 3,
            growth_den: 2,
            ..Default::default()
        },
        ..PdmsConfig::default()
    });
    let ms_delta = Ms::with_config(MsConfig {
        delta_lcps: true,
        ..MsConfig::default()
    });
    let pdms_delta = Pdms::with_config(PdmsConfig {
        delta_lcps: true,
        ..PdmsConfig::default()
    });
    let mut out = Vec::new();
    for &p in pes {
        out.push(run_repeated_with_model(
            "MS",
            &Ms::default(),
            &w,
            p,
            seed,
            check,
            reps,
            model,
        ));
        out.push(run_repeated_with_model(
            "MS/delta-lcp",
            &ms_delta,
            &w,
            p,
            seed,
            check,
            reps,
            model,
        ));
        out.push(run_repeated_with_model(
            "PDMS",
            &Pdms::default(),
            &w,
            p,
            seed,
            check,
            reps,
            model,
        ));
        out.push(run_repeated_with_model(
            "PDMS-Golomb",
            &Pdms::golomb(),
            &w,
            p,
            seed,
            check,
            reps,
            model,
        ));
        out.push(run_repeated_with_model(
            "PDMS/hypercube",
            &pdms_hypercube,
            &w,
            p,
            seed,
            check,
            reps,
            model,
        ));
        out.push(run_repeated_with_model(
            "PDMS/eps=0.5",
            &pdms_slow_growth,
            &w,
            p,
            seed,
            check,
            reps,
            model,
        ));
        out.push(run_repeated_with_model(
            "PDMS/delta-lcp",
            &pdms_delta,
            &w,
            p,
            seed,
            check,
            reps,
            model,
        ));
    }
    for r in &out {
        eprintln!(
            "ablation p={:<3} {:<16} modeled={:>9.2}ms bytes/str={:>8.1}",
            r.p,
            r.algorithm,
            r.modeled.as_secs_f64() * 1e3,
            r.bytes_per_string
        );
    }
    out
}

fn main() {
    let args = Args::parse();
    let pes = args.get_usize_list("pes", &[4, 8, 16]);
    let seed: u64 = args.get("seed", 20260611);
    let check = !args.has("no-check");
    let exp = args.get_str("exp", "all");
    let reps: usize = args.get("reps", 3);
    let model = CostModel {
        alpha_ns: args.get("alpha-us", 5.0f64) * 1e3,
        beta_ns_per_byte: args.get("beta-ns", 1.0f64),
    };
    let out: PathBuf = PathBuf::from(args.get_str("out", "results/further.csv"));

    let mut results = Vec::new();
    if exp == "suffix" || exp == "all" {
        results.extend(exp_suffix(&pes, seed, check, reps, &model));
    }
    if exp == "skewed" || exp == "all" {
        results.extend(exp_skewed(&pes, seed, check, reps, &model));
    }
    if exp == "sampling" || exp == "all" {
        results.extend(exp_sampling(&pes, seed, check, reps, &model));
    }
    if exp == "wiki" || exp == "all" {
        results.extend(exp_wiki(&pes, seed, check, reps, &model));
    }
    if exp == "ablation" || exp == "all" {
        results.extend(exp_ablation(&pes, seed, check, reps, &model));
    }
    println!(
        "{}",
        print_table(&format!("§VII-E further experiments ({exp})"), &results)
    );
    if let Err(e) = write_csv(&out, &results) {
        eprintln!("failed to write {}: {e}", out.display());
    } else {
        println!("\nwrote {}", out.display());
    }
}
