//! `perfsnap` — run the fixed hot-path workload matrix and append the
//! snapshot to `BENCH_perfsnap.json`.
//!
//! ```text
//! cargo run --release --bin perfsnap -- --label "my change"
//! cargo run --release --bin perfsnap -- --smoke          # CI-sized, stdout only
//! ```
//!
//! Flags: `--label STR`, `--out FILE` (default `BENCH_perfsnap.json`),
//! `--smoke` (tiny cells, no file write unless `--out` given),
//! `--mode blocking|pipelined` (forces the exchange mode for the whole
//! run, recorded in the snapshot's `config.exchange_mode`),
//! `--threads N` (forces `DSS_THREADS` for the whole run and sizes the
//! `par-sort`/`par-merge` cells, recorded in `config.threads`),
//! `--trace FILE` (records a span trace of the whole run and writes it
//! as Chrome trace-event JSON, loadable in Perfetto; also fills the
//! cells' `overlap_ratio` column), plus the sizing overrides `--seq-n`,
//! `--dist-n`, `--pes`, `--reps`, `--seed`.
//!
//! The binary installs a counting global allocator so every cell reports
//! allocator traffic; the library code is unchanged by the probe.

use dss_bench::cli::Args;
use dss_bench::perfsnap::{
    append_snapshot, merge_traces, run_snapshot_filtered, snapshot_json, take_recorded_traces,
    SnapConfig,
};
use dss_net::trace;
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting calls and requested bytes.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counters
// are side effects only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn probe() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

fn main() {
    let args = Args::parse();
    // Force the exchange mode before anything reads the (cached) env
    // knob; the effective mode lands in the snapshot's config object. A
    // typo must not silently benchmark the blocking fallback.
    let mode = args.get_str("mode", "");
    if !mode.is_empty() {
        assert!(
            mode.eq_ignore_ascii_case("blocking") || mode.eq_ignore_ascii_case("pipelined"),
            "--mode must be 'blocking' or 'pipelined', got '{mode}'"
        );
        std::env::set_var("DSS_EXCHANGE_MODE", &mode);
    }
    // Same discipline for the thread knob: validate and export before the
    // first `threads_from_env` call caches it, so the distributed cells'
    // default-configured sorters run at the requested thread count too.
    let threads = args.get_str("threads", "");
    if !threads.is_empty() {
        assert!(
            threads.trim().parse::<usize>().is_ok_and(|t| t >= 1),
            "--threads must be a positive integer, got '{threads}'"
        );
        std::env::set_var("DSS_THREADS", threads.trim());
    }
    let cfg = SnapConfig::from_args(&args);
    let label = args.get_str(
        "label",
        if args.has("smoke") {
            "smoke"
        } else {
            "unlabeled"
        },
    );
    let only = args.get_str("only", "");
    // Tracing must be on before the first cell records a span; the
    // `DSS_TRACE` knob (applied by the first `run_spmd`) composes with
    // this — `--trace` just forces it on and names the export file.
    let trace_out = args.get_str("trace", "");
    if !trace_out.is_empty() {
        trace::enable(trace::DEFAULT_SPAN_CAP);
    }
    let cells = run_snapshot_filtered(&cfg, probe, &only);
    let snap = snapshot_json(&label, &cfg, &cells);

    eprintln!();
    eprintln!(
        "{:<10} {:<10} {:>9} {:>11} {:>13} {:>14} {:>12} {:>10} {:>13} {:>9} {:>7}",
        "workload",
        "algo",
        "n",
        "wall_ms",
        "MB/s",
        "chars_accessed",
        "wire_B/str",
        "allocs",
        "bytes_copied",
        "stall_ms",
        "overlap"
    );
    for c in &cells {
        eprintln!(
            "{:<10} {:<10} {:>9} {:>11.2} {:>13.2} {:>14} {:>12} {:>10} {:>13} {:>9} {:>7}",
            c.workload,
            c.algo,
            c.n,
            c.wall.as_secs_f64() * 1e3,
            c.mb_per_s,
            c.chars_accessed
                .map_or_else(|| "-".into(), |v| v.to_string()),
            c.wire_bytes_per_string
                .map_or_else(|| "-".into(), |v| format!("{v:.1}")),
            c.allocs,
            c.bytes_copied,
            c.comm_stall_ns
                .map_or_else(|| "-".into(), |v| format!("{:.2}", v as f64 / 1e6)),
            c.overlap_ratio
                .map_or_else(|| "-".into(), |v| format!("{v:.3}")),
        );
    }

    if !trace_out.is_empty() {
        let merged = merge_traces(take_recorded_traces());
        let json = trace::chrome_trace_json(&merged).expect("trace streams must balance");
        std::fs::write(&trace_out, &json).expect("write trace file");
        eprintln!(
            "perfsnap: wrote Perfetto trace ({} events, {} dropped) to {trace_out}",
            merged.len(),
            merged.dropped
        );
    }

    let out = args.get_str("out", "");
    if out.is_empty() && args.has("smoke") {
        println!("[\n{snap}\n]");
        return;
    }
    let path = PathBuf::from(if out.is_empty() {
        "BENCH_perfsnap.json".to_string()
    } else {
        out
    });
    append_snapshot(&path, &snap).expect("write snapshot");
    eprintln!(
        "perfsnap: appended snapshot \"{label}\" to {}",
        path.display()
    );
}
