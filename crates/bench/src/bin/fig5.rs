//! Fig. 5 — strong scaling on COMMONCRAWL (left) and DNAREADS (right).
//!
//! Paper grid: fixed real-world inputs (82 GB / 125 GB), p = 160…1280.
//! Simulator default: fixed synthetic instances matching the paper's
//! instance statistics (see dss-gen), total 24 000 strings, p = 4…32.
//! Both panels are reproduced: modeled time and bytes sent per string.
//!
//! Usage:
//!   cargo run --release -p dss-bench --bin fig5 -- [--input web|dna|both]
//!       [--pes 4,8,16,32] [--n-total 24000] [--no-check]

use dss_bench::cli::Args;
use dss_bench::harness::run_repeated_with_model;
use dss_bench::table::speedup_at;
use dss_bench::{print_table, write_csv};
use dss_gen::Workload;
use dss_net::CostModel;
use dss_sort::Algorithm;
use std::path::PathBuf;

fn main() {
    let args = Args::parse();
    let pes = args.get_usize_list("pes", &[4, 8, 16, 32]);
    let n_total: usize = args.get("n-total", 24_000);
    let check = !args.has("no-check");
    let seed: u64 = args.get("seed", 20260611);
    let input = args.get_str("input", "both");
    let reps: usize = args.get("reps", 3);
    // α–β cost model; see EXPERIMENTS.md for the calibration discussion.
    let model = CostModel {
        alpha_ns: args.get("alpha-us", 5.0f64) * 1e3,
        beta_ns_per_byte: args.get("beta-ns", 1.0f64),
    };
    let out: PathBuf = PathBuf::from(args.get_str("out", "results/fig5.csv"));

    let mut results = Vec::new();
    let run_panel = |name: &str, results: &mut Vec<dss_bench::ExperimentResult>| {
        for &p in &pes {
            let w = match name {
                "web" => Workload::Web {
                    n_per_pe: n_total / p,
                },
                _ => Workload::Dna {
                    n_per_pe: n_total / p,
                },
            };
            for alg in Algorithm::all_paper() {
                let res = run_repeated_with_model(
                    alg.label(),
                    &*alg.instance(),
                    &w,
                    p,
                    seed,
                    check,
                    reps,
                    &model,
                );
                eprintln!(
                    "{:<12} p={p:<3} {:<12} modeled={:>9.2}ms bytes/str={:>8.1} {}",
                    res.workload,
                    res.algorithm,
                    res.modeled.as_secs_f64() * 1e3,
                    res.bytes_per_string,
                    if res.check_ok { "ok" } else { "CHECK-FAIL" },
                );
                results.push(res);
            }
        }
    };
    if input == "web" || input == "both" {
        run_panel("web", &mut results);
    }
    if input == "dna" || input == "both" {
        run_panel("dna", &mut results);
    }

    println!(
        "{}",
        print_table(
            &format!("Fig. 5 — strong scaling ({n_total} strings total)"),
            &results
        )
    );
    // Headline ratios of §VII-D for COMMONCRAWL at large p:
    //   PDMS 5.4–6.1× vs hQuick; MS 4.5–4.6× vs hQuick; LCP algorithms
    //   2.6–3.5× vs MS-simple.
    let p_max = *pes.last().expect("non-empty PE list");
    for w in ["COMMONCRAWL", "DNAREADS"] {
        if !results.iter().any(|r| r.workload == w) {
            continue;
        }
        println!("[{w}] at p={p_max}:");
        if let Some(s) = speedup_at(&results, p_max, w, "hQuick", &["PDMS", "PDMS-Golomb"]) {
            println!("  PDMS vs hQuick      {s:.1}x   (paper CC: 5.4-6.1x)");
        }
        if let Some(s) = speedup_at(&results, p_max, w, "hQuick", &["MS"]) {
            println!("  MS vs hQuick        {s:.1}x   (paper CC: 4.5-4.6x)");
        }
        if let Some(s) = speedup_at(
            &results,
            p_max,
            w,
            "MS-simple",
            &["MS", "PDMS", "PDMS-Golomb"],
        ) {
            println!("  LCP-algs vs MS-simple {s:.1}x (paper CC: 2.6-3.5x)");
        }
    }
    if let Err(e) = write_csv(&out, &results) {
        eprintln!("failed to write {}: {e}", out.display());
    } else {
        println!("\nwrote {}", out.display());
    }
}
