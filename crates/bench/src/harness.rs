//! One evaluation cell: generate shards, run the sorter, check, account.

use dss_gen::Workload;
use dss_net::runner::{run_spmd, RunConfig};
use dss_net::CostModel;
use dss_sort::checker::check_distributed_sort;
use dss_sort::{Algorithm, DistSorter};
use std::time::Duration;

/// Result of one `(algorithm, workload, p)` cell.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    pub algorithm: &'static str,
    pub workload: String,
    pub p: usize,
    /// Global string count.
    pub n: usize,
    /// Global character count.
    pub n_chars: usize,
    /// Modeled time under the α–β cost model (compute + communication).
    pub modeled: Duration,
    /// Communication part of the model: Σ (α·rounds + β·bottleneck bytes).
    pub comm_modeled: Duration,
    /// Compute part: Σ max-per-PE compute per phase.
    pub compute_max: Duration,
    /// Wall time of the simulator run (oversubscribed; informational).
    pub wall: Duration,
    /// Total payload bytes sent across all PEs.
    pub bytes_sent: u64,
    /// The paper's headline volume metric.
    pub bytes_per_string: f64,
    /// Per-phase modeled milliseconds, for breakdowns.
    pub phase_ms: Vec<(String, f64)>,
    /// Whether the distributed checker accepted the output.
    pub check_ok: bool,
}

/// Runs one cell `reps` times, keeping the run with the smallest modeled
/// time (volumes are deterministic and identical across reps; repetition
/// only de-noises the measured compute term).
pub fn run_repeated(
    label: &'static str,
    sorter: &dyn DistSorter,
    workload: &Workload,
    p: usize,
    seed: u64,
    check: bool,
    reps: usize,
) -> ExperimentResult {
    run_repeated_with_model(
        label,
        sorter,
        workload,
        p,
        seed,
        check,
        reps,
        &CostModel::default(),
    )
}

/// [`run_repeated`] with an explicit α–β cost model (the figure binaries
/// expose `--alpha-us` / `--beta-ns` for scale calibration; see
/// EXPERIMENTS.md).
#[allow(clippy::too_many_arguments)]
pub fn run_repeated_with_model(
    label: &'static str,
    sorter: &dyn DistSorter,
    workload: &Workload,
    p: usize,
    seed: u64,
    check: bool,
    reps: usize,
    model: &CostModel,
) -> ExperimentResult {
    let mut best: Option<ExperimentResult> = None;
    for _ in 0..reps.max(1) {
        let r = run_custom_with_model(label, sorter, workload, p, seed, check, model);
        match &best {
            Some(b) if b.modeled <= r.modeled => {
                debug_assert_eq!(b.bytes_sent, r.bytes_sent, "volumes are deterministic");
            }
            _ => best = Some(r),
        }
    }
    best.expect("reps >= 1")
}

/// Runs one cell with a paper-named algorithm and the default cost model.
/// `check` enables the distributed correctness check (its traffic is
/// excluded from the accounting).
pub fn run_experiment(
    alg: Algorithm,
    workload: &Workload,
    p: usize,
    seed: u64,
    check: bool,
) -> ExperimentResult {
    run_custom_with_model(
        alg.label(),
        &*alg.instance(),
        workload,
        p,
        seed,
        check,
        &CostModel::default(),
    )
}

/// Runs one cell with an arbitrary sorter instance (used by the ablation
/// experiments in `further`, e.g. MS with character-based sampling).
pub fn run_custom(
    label: &'static str,
    sorter: &dyn DistSorter,
    workload: &Workload,
    p: usize,
    seed: u64,
    check: bool,
) -> ExperimentResult {
    run_custom_with_model(
        label,
        sorter,
        workload,
        p,
        seed,
        check,
        &CostModel::default(),
    )
}

/// [`run_custom`] with an explicit α–β cost model.
pub fn run_custom_with_model(
    label: &'static str,
    sorter: &dyn DistSorter,
    workload: &Workload,
    p: usize,
    seed: u64,
    check: bool,
    model: &CostModel,
) -> ExperimentResult {
    let workload_ref = workload;
    let res = run_spmd(
        p,
        RunConfig {
            seed,
            recv_timeout: Duration::from_secs(300),
            ..RunConfig::default()
        },
        move |comm| {
            comm.set_phase("generate");
            let shard = workload_ref.generate(comm.rank(), comm.size(), seed);
            let n = shard.len();
            let n_chars = shard.num_chars();
            let input_copy = check.then(|| shard.clone());
            comm.barrier();
            let out = sorter.sort(comm, shard);
            comm.set_phase("check");
            let ok = match input_copy {
                Some(input) => check_distributed_sort(comm, &input, &out).is_ok(),
                None => true,
            };
            (n, n_chars, ok)
        },
    );
    let n: usize = res.values.iter().map(|(n, _, _)| n).sum();
    let n_chars: usize = res.values.iter().map(|(_, c, _)| c).sum();
    let check_ok = res.values.iter().all(|&(_, _, ok)| ok);
    // Exclude generation and checking from the accounting: the paper
    // measures sorting only.
    let mut stats = res.stats.clone();
    stats
        .phases
        .retain(|ph| ph.name != "generate" && ph.name != "check" && ph.name != "main");
    let bytes_sent = stats.total_bytes_sent();
    let modeled = stats.modeled_time(model);
    let compute_ns: u64 = stats.phases.iter().map(|ph| ph.max.compute_ns).sum();
    let compute_max = Duration::from_nanos(compute_ns);
    let comm_modeled = modeled.saturating_sub(compute_max);
    let phase_ms = stats
        .modeled_phase_times(model)
        .into_iter()
        .map(|(name, d)| (name, d.as_secs_f64() * 1e3))
        .collect();
    ExperimentResult {
        algorithm: label,
        workload: workload.label(),
        p,
        n,
        n_chars,
        modeled,
        comm_modeled,
        compute_max,
        wall: res.stats.wall,
        bytes_sent,
        bytes_per_string: bytes_sent as f64 / n.max(1) as f64,
        phase_ms,
        check_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_runs_and_checks() {
        let w = Workload::DnRatio {
            n_per_pe: 100,
            len: 50,
            r: 0.5,
            sigma: 16,
        };
        let r = run_experiment(Algorithm::Ms, &w, 3, 42, true);
        assert!(r.check_ok);
        assert_eq!(r.n, 300);
        assert_eq!(r.n_chars, 15_000);
        assert!(r.bytes_sent > 0);
        assert!(r.bytes_per_string > 0.0);
        assert!(!r.phase_ms.is_empty());
    }

    #[test]
    fn accounting_excludes_generation_and_check() {
        let w = Workload::DnRatio {
            n_per_pe: 50,
            len: 30,
            r: 0.0,
            sigma: 16,
        };
        let with_check = run_experiment(Algorithm::MsSimple, &w, 2, 7, true);
        let without = run_experiment(Algorithm::MsSimple, &w, 2, 7, false);
        assert_eq!(with_check.bytes_sent, without.bytes_sent);
    }

    #[test]
    fn all_algorithms_pass_check_on_small_cell() {
        let w = Workload::Web { n_per_pe: 60 };
        for alg in Algorithm::all_paper() {
            let r = run_experiment(alg, &w, 4, 99, true);
            assert!(r.check_ok, "{} failed the distributed check", r.algorithm);
        }
    }
}
