//! # dss-bench — experiment harness for the paper's evaluation (§VII)
//!
//! Runs one `(algorithm, workload, p)` cell of the evaluation on the
//! simulated machine, collecting:
//!
//! * **bytes sent per string** — exact, substrate-independent; the lower
//!   panels of Figs. 4 and 5;
//! * **modeled time** under the α–β cost model (max per-PE compute +
//!   α·rounds + β·bottleneck bytes per phase) — the shape of the upper
//!   panels;
//! * **wall time** of the simulator run (reported for transparency; it
//!   oversubscribes host cores and is *not* the reproduction target);
//! * a full distributed correctness check.
//!
//! The `fig4`, `fig5` and `further` binaries sweep the same grids as the
//! paper's figures and write both a human table and CSV files under
//! `results/`.

pub mod cli;
pub mod harness;
pub mod perfsnap;
pub mod table;

pub use harness::{run_custom, run_experiment, run_repeated, ExperimentResult};
pub use table::{print_table, write_csv};
