//! Codec microbenches: Golomb vs raw fingerprint streams (the
//! PDMS-Golomb tradeoff) and LCP-compressed vs plain wire runs (the MS
//! tradeoff).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dss_codec::golomb::{golomb_decode_auto, golomb_encode_auto};
use dss_codec::wire;
use dss_gen::Workload;
use dss_strkit::sort::sort_with_lcp;

fn bench_golomb(c: &mut Criterion) {
    let mut group = c.benchmark_group("golomb");
    let values: Vec<u64> = {
        let mut v: Vec<u64> = (0..20_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 24)
            .collect();
        v.sort_unstable();
        v
    };
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("encode_20k", |b| {
        b.iter(|| golomb_encode_auto(&values, u64::MAX >> 24).len())
    });
    let encoded = golomb_encode_auto(&values, u64::MAX >> 24);
    group.bench_function("decode_20k", |b| {
        b.iter(|| golomb_decode_auto(&encoded).expect("roundtrip").len())
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let mut set = Workload::Web { n_per_pe: 5000 }.generate(0, 1, 3);
    let (lcps, _) = sort_with_lcp(&mut set);
    group.throughput(Throughput::Elements(set.len() as u64));
    group.bench_function("encode_plain", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            wire::encode_plain(set.iter(), None, &mut buf);
            buf.len()
        })
    });
    group.bench_function("encode_lcp", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            wire::encode_lcp(set.iter(), &lcps, None, false, &mut buf);
            buf.len()
        })
    });
    let mut plain = Vec::new();
    wire::encode_plain(set.iter(), None, &mut plain);
    let mut compressed = Vec::new();
    wire::encode_lcp(set.iter(), &lcps, None, false, &mut compressed);
    group.bench_function("decode_plain", |b| {
        b.iter(|| {
            let mut pos = 0;
            wire::decode_plain(&plain, &mut pos)
                .expect("roundtrip")
                .len()
        })
    });
    group.bench_function("decode_lcp", |b| {
        b.iter(|| {
            let mut pos = 0;
            wire::decode_lcp(&compressed, &mut pos)
                .expect("roundtrip")
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_golomb, bench_wire);
criterion_main!(benches);
