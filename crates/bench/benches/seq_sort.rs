//! Sequential sorter microbenches (§II-A substrate): MSD radix vs
//! multikey quicksort vs LCP insertion sort vs `std` comparison sort,
//! on web-like, DNA-like and D/N inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dss_gen::Workload;
use dss_strkit::sort::{
    lcp_insertion_sort_standalone, msd_radix_sort_standalone, multikey_quicksort_standalone,
};
use dss_strkit::StringSet;

fn inputs() -> Vec<(&'static str, StringSet)> {
    vec![
        ("web", Workload::Web { n_per_pe: 3000 }.generate(0, 1, 1)),
        ("dna", Workload::Dna { n_per_pe: 3000 }.generate(0, 1, 1)),
        (
            "dn05",
            Workload::DnRatio {
                n_per_pe: 3000,
                len: 100,
                r: 0.5,
                sigma: 16,
            }
            .generate(0, 1, 1),
        ),
    ]
}

fn bench_seq_sorters(c: &mut Criterion) {
    let mut group = c.benchmark_group("seq_sort");
    for (name, set) in inputs() {
        group.throughput(Throughput::Elements(set.len() as u64));
        group.bench_with_input(BenchmarkId::new("msd_radix", name), &set, |b, set| {
            b.iter(|| {
                let mut s = set.clone();
                let mut lcps = vec![0u32; s.len()];
                let (arena, refs) = s.as_parts_mut();
                msd_radix_sort_standalone(arena, refs, &mut lcps);
                (s.len(), lcps.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("mkqs", name), &set, |b, set| {
            b.iter(|| {
                let mut s = set.clone();
                let mut lcps = vec![0u32; s.len()];
                let (arena, refs) = s.as_parts_mut();
                multikey_quicksort_standalone(arena, refs, &mut lcps);
                (s.len(), lcps.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("std_sort", name), &set, |b, set| {
            b.iter(|| {
                let mut v = set.to_vecs();
                v.sort();
                v.len()
            })
        });
    }
    group.finish();

    // Insertion sort only makes sense tiny.
    let mut group = c.benchmark_group("seq_sort_small");
    let small = Workload::Web { n_per_pe: 64 }.generate(0, 1, 2);
    group.bench_function("lcp_insertion_64", |b| {
        b.iter(|| {
            let mut s = small.clone();
            let mut lcps = vec![0u32; s.len()];
            let (arena, refs) = s.as_parts_mut();
            lcp_insertion_sort_standalone(arena, refs, &mut lcps);
            lcps.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_seq_sorters);
criterion_main!(benches);
