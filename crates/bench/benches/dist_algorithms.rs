//! End-to-end wall-time benches of the six distributed algorithms on a
//! 4-PE simulated machine (small instances; the figure binaries cover the
//! real grids with modeled time + exact volumes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dss_gen::Workload;
use dss_net::runner::{run_spmd, RunConfig};
use dss_sort::Algorithm;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist_sort_p4");
    group.sample_size(10);
    let p = 4;
    for (wname, w) in [
        (
            "dn05",
            Workload::DnRatio {
                n_per_pe: 500,
                len: 100,
                r: 0.5,
                sigma: 16,
            },
        ),
        ("web", Workload::Web { n_per_pe: 500 }),
    ] {
        let n_total = (0..p).map(|r| w.generate(r, p, 1).len()).sum::<usize>() as u64;
        group.throughput(Throughput::Elements(n_total));
        for alg in Algorithm::all_paper() {
            group.bench_with_input(BenchmarkId::new(alg.label(), wname), &w, |b, w| {
                b.iter(|| {
                    let res = run_spmd(p, RunConfig::default(), |comm| {
                        let shard = w.generate(comm.rank(), comm.size(), 1);
                        alg.instance().sort(comm, shard).set.len()
                    });
                    res.values.iter().sum::<usize>()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
