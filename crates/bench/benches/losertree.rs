//! LCP loser tree vs plain loser tree (§II-B): the LCP-aware merge must
//! win decisively on high-LCP runs and stay competitive on random data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dss_gen::Workload;
use dss_strkit::losertree::{LcpLoserTree, LoserTree, MergeRun};
use dss_strkit::sort::sort_with_lcp;
use dss_strkit::StringSet;

fn make_runs(workload: &Workload, k: usize) -> Vec<(StringSet, Vec<u32>)> {
    (0..k)
        .map(|r| {
            let mut set = workload.generate(r, k, 7);
            let (lcps, _) = sort_with_lcp(&mut set);
            (set, lcps)
        })
        .collect()
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("losertree");
    for (name, w) in [
        ("web", Workload::Web { n_per_pe: 1500 }),
        ("dna", Workload::Dna { n_per_pe: 1500 }),
        (
            "high_lcp",
            Workload::DnRatio {
                n_per_pe: 1500,
                len: 120,
                r: 0.9,
                sigma: 4,
            },
        ),
    ] {
        let runs = make_runs(&w, 8);
        let total: u64 = runs.iter().map(|(s, _)| s.len() as u64).sum();
        group.throughput(Throughput::Elements(total));
        group.bench_with_input(BenchmarkId::new("lcp_tree", name), &runs, |b, runs| {
            b.iter(|| {
                let views: Vec<MergeRun<'_>> = runs
                    .iter()
                    .map(|(s, l)| MergeRun {
                        arena: s.arena(),
                        refs: s.refs(),
                        lcps: l,
                    })
                    .collect();
                let mut out = StringSet::new();
                LcpLoserTree::new(views).merge_into(&mut out);
                out.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("plain_tree", name), &runs, |b, runs| {
            b.iter(|| {
                let views: Vec<MergeRun<'_>> = runs
                    .iter()
                    .map(|(s, l)| MergeRun {
                        arena: s.arena(),
                        refs: s.refs(),
                        lcps: l,
                    })
                    .collect();
                let mut out = StringSet::new();
                LoserTree::new(views).merge_into(&mut out);
                out.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
