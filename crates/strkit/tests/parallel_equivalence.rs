//! Cross-thread-count equivalence of the shared-memory parallel kernels:
//! for every workload family and every tested thread count, the
//! work-stealing parallel sort and the range-split parallel merge must be
//! **byte-identical** to their sequential counterparts — strings, LCP
//! arrays, source tags and (for the sort) work statistics alike.
//!
//! This is the determinism contract the distributed algorithms rely on:
//! `DSS_THREADS` must never change any output, only wall time.

use dss_strkit::losertree::{
    parallel_lcp_merge_into, parallel_plain_merge_into, LcpLoserTree, LoserTree, MergeRun,
};
use dss_strkit::sort::{par_sort_with_lcp, sort_with_lcp, PAR_TASK_MIN};
use dss_strkit::StringSet;
use proptest::prelude::*;
use rand::prelude::*;

const THREADS: [usize; 3] = [1, 2, 4];

/// The workload families of the equivalence matrix.
#[derive(Debug, Clone, Copy)]
enum Family {
    /// Uniform random strings over a..=z.
    Random,
    /// 20% of the strings are 4× longer than the rest.
    Skewed,
    /// σ = 4 (ACGT): deep radix recursion, heavy 16-bit passes.
    Dna,
    /// 90% drawn from a 16-string hot pool.
    DupHeavy,
    /// Every string equal: the all-ties adversary.
    AllEqual,
}

const FAMILIES: [Family; 5] = [
    Family::Random,
    Family::Skewed,
    Family::Dna,
    Family::DupHeavy,
    Family::AllEqual,
];

fn generate(family: Family, n: usize, seed: u64) -> StringSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = StringSet::new();
    match family {
        Family::Random => {
            for _ in 0..n {
                let len = rng.gen_range(0..16);
                let s: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'z')).collect();
                set.push(&s);
            }
        }
        Family::Skewed => {
            for i in 0..n {
                let len = if i % 5 == 0 { 40 } else { 10 };
                let s: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'f')).collect();
                set.push(&s);
            }
        }
        Family::Dna => {
            const ACGT: [u8; 4] = [b'a', b'c', b'g', b't'];
            for _ in 0..n {
                let len = rng.gen_range(8..20);
                let s: Vec<u8> = (0..len).map(|_| ACGT[rng.gen_range(0..4usize)]).collect();
                set.push(&s);
            }
        }
        Family::DupHeavy => {
            let pool: Vec<Vec<u8>> = (0..16u32)
                .map(|i| format!("hot_{i:02}_{}", "y".repeat((i % 4) as usize)).into_bytes())
                .collect();
            for _ in 0..n {
                if rng.gen_range(0..10) < 9 {
                    set.push(&pool[rng.gen_range(0..16usize)]);
                } else {
                    let len = rng.gen_range(0..8);
                    let s: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'c')).collect();
                    set.push(&s);
                }
            }
        }
        Family::AllEqual => {
            for _ in 0..n {
                set.push(b"same_same_same");
            }
        }
    }
    set
}

/// Asserts the parallel sort reproduces the sequential sort exactly for
/// every thread count: permutation, LCP array and stats.
fn check_sort_equivalence(family: Family, n: usize, seed: u64) {
    let input = generate(family, n, seed);
    let mut seq = input.clone();
    let (seq_lcps, seq_stats) = sort_with_lcp(&mut seq);
    for t in THREADS {
        let mut par = input.clone();
        let (par_lcps, par_stats) = par_sort_with_lcp(&mut par, t);
        assert_eq!(
            par.to_vecs(),
            seq.to_vecs(),
            "{family:?} strings differ at t={t}"
        );
        assert_eq!(par_lcps, seq_lcps, "{family:?} LCP array differs at t={t}");
        assert_eq!(
            par_stats, seq_stats,
            "{family:?} sort stats differ at t={t}"
        );
    }
}

/// Splits a family's data into `k` independently sorted runs and asserts
/// the range-split parallel merge reproduces the sequential loser tree
/// exactly — strings, LCP array and source tags — for every thread count,
/// for both the LCP-aware and the plain tree.
fn check_merge_equivalence(family: Family, per_run: usize, k: usize, seed: u64) {
    let runs_data: Vec<(StringSet, Vec<u32>)> = (0..k)
        .map(|r| {
            let mut set = generate(family, per_run, seed.wrapping_add(r as u64));
            let (lcps, _) = sort_with_lcp(&mut set);
            (set, lcps)
        })
        .collect();
    let views: Vec<MergeRun<'_>> = runs_data
        .iter()
        .map(|(set, lcps)| MergeRun {
            arena: set.arena(),
            refs: set.refs(),
            lcps,
        })
        .collect();
    for lcp_aware in [true, false] {
        let mut seq_out = StringSet::new();
        let seq = if lcp_aware {
            LcpLoserTree::new(views.clone()).merge_into(&mut seq_out)
        } else {
            LoserTree::new(views.clone()).merge_into(&mut seq_out)
        };
        for t in THREADS {
            let mut par_out = StringSet::new();
            let par = if lcp_aware {
                parallel_lcp_merge_into(&views, &mut par_out, t)
            } else {
                parallel_plain_merge_into(&views, &mut par_out, t)
            };
            assert_eq!(
                par_out.to_vecs(),
                seq_out.to_vecs(),
                "{family:?} merged strings differ at t={t} (lcp={lcp_aware})"
            );
            assert_eq!(
                par.lcps, seq.lcps,
                "{family:?} merged LCP array differs at t={t} (lcp={lcp_aware})"
            );
            assert_eq!(
                par.sources, seq.sources,
                "{family:?} merged sources differ at t={t} (lcp={lcp_aware})"
            );
        }
    }
}

/// The full deterministic matrix: every family, above the parallel
/// threshold so the multi-threaded paths genuinely engage (odd size, so
/// ranges never split evenly).
#[test]
fn sort_matches_sequential_for_every_family_and_thread_count() {
    for family in FAMILIES {
        check_sort_equivalence(family, 2 * PAR_TASK_MIN + 37, 0xA11CE);
    }
}

#[test]
fn merge_matches_sequential_for_every_family_and_thread_count() {
    for family in FAMILIES {
        check_merge_equivalence(family, PAR_TASK_MIN + 11, 3, 0xB0B);
    }
}

/// Below-threshold inputs short-circuit to the sequential kernels; the
/// equivalence must hold there too (trivially, but the dispatch is code).
#[test]
fn small_inputs_stay_equivalent() {
    for family in FAMILIES {
        check_sort_equivalence(family, 100, 7);
        check_merge_equivalence(family, 50, 4, 9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized seeds and sizes across the family × thread matrix.
    #[test]
    fn randomized_sort_equivalence(
        seed in 0u64..1000,
        fam in 0usize..FAMILIES.len(),
        extra in 0usize..512,
    ) {
        check_sort_equivalence(FAMILIES[fam], PAR_TASK_MIN + extra, seed);
    }

    #[test]
    fn randomized_merge_equivalence(
        seed in 0u64..1000,
        fam in 0usize..FAMILIES.len(),
        k in 2usize..6,
    ) {
        check_merge_equivalence(FAMILIES[fam], PAR_TASK_MIN / 2 + 777, k, seed);
    }
}
