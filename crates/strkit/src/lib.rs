//! # dss-strkit — sequential string-sorting toolkit
//!
//! The sequential machinery underneath the distributed sorters of
//! Bingmann, Sanders and Schimek (IPDPS 2020):
//!
//! * [`arena`] — flat character arenas with cheap string handles. String
//!   arrays are "arrays of pointers to the beginning of the strings"
//!   (§II); swapping strings never moves characters.
//! * [`lcp`](mod@lcp) — longest-common-prefix primitives, LCP arrays and
//!   distinguishing-prefix computations (`DIST`, `D`).
//! * [`sort`] — the paper's base-case sorter stack (§II-A): MSD string
//!   radix sort → multikey quicksort → LCP-aware insertion sort, all
//!   emitting the LCP array as a by-product at no extra cost.
//! * [`losertree`] — K-way LCP-aware loser tree merging (§II-B) plus the
//!   plain (atomic) loser tree used by the FKmerge baseline.
//! * [`checker`] — order/LCP/permutation validators used across the test
//!   suites.
//! * [`copyvol`] — process-wide copy-volume counter (`bytes_copied`)
//!   bumped by the merge/scatter hot paths, surfaced as a drift-immune
//!   perfsnap column.
//!
//! Strings are arbitrary byte sequences **not containing the byte 0**,
//! which acts as the implicit end-of-string sentinel exactly as in the
//! paper ("a special end-of-string character outside the alphabet").

pub mod arena;
pub mod checker;
pub mod copyvol;
pub mod lcp;
pub mod losertree;
pub mod sort;

pub use arena::{StrRef, StringSet};
pub use lcp::{lcp, lcp_array_naive};
pub use losertree::{LcpLoserTree, LoserTree, MergeRun};
pub use sort::{sort_with_lcp, SortStats};
