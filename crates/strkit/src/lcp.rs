//! Longest-common-prefix primitives and distinguishing prefixes.
//!
//! For a sorted string array `S` the paper defines the LCP array
//! `[⊥, h₁, …]` with `hᵢ = LCP(sᵢ₋₁, sᵢ)` (we store `⊥` as 0), the
//! distinguishing prefix length `DIST(s) = max_{t≠s} LCP(s, t) + 1`, and
//! `D = Σ DIST(s)` — the lower bound on characters any string sorter must
//! inspect. The D/N ratio drives every experiment in §VII.

use crate::arena::StringSet;

/// Length of the longest common prefix of two byte strings.
///
/// Word-at-a-time: 16-byte chunks are compared as `u128`s (one SIMD
/// register compare on x86-64/aarch64 after LLVM lowering), then at most
/// one 8-byte `u64` step, then a scalar tail for the last `< 8` bytes.
/// Interpreting each chunk with `from_le_bytes` puts slice byte `j` into
/// bits `8j..8j+8`, so the first differing byte of a mismatching pair is
/// `trailing_zeros / 8` on every host — no endianness branch, no unsafe
/// reads. This is the one compare kernel behind [`lcp_compare`] and
/// thereby every loser-tree leaf comparison and LCP-aware insertion
/// sort; the proptests below pin it byte-for-byte to a scalar reference.
#[inline]
pub fn lcp(a: &[u8], b: &[u8]) -> u32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut i = 0usize;
    while i + 16 <= n {
        let wa = u128::from_le_bytes(a[i..i + 16].try_into().expect("16-byte chunk"));
        let wb = u128::from_le_bytes(b[i..i + 16].try_into().expect("16-byte chunk"));
        if wa != wb {
            return (i as u32) + (wa ^ wb).trailing_zeros() / 8;
        }
        i += 16;
    }
    if i + 8 <= n {
        let wa = u64::from_le_bytes(a[i..i + 8].try_into().expect("8-byte chunk"));
        let wb = u64::from_le_bytes(b[i..i + 8].try_into().expect("8-byte chunk"));
        if wa != wb {
            return (i as u32) + (wa ^ wb).trailing_zeros() / 8;
        }
        i += 8;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i as u32
}

/// Three-way string comparison that starts at a known common prefix `h`
/// and also returns the full LCP. Used by the LCP loser tree and the
/// LCP-aware insertion sort: characters before `h` are never re-inspected.
#[inline]
pub fn lcp_compare(a: &[u8], b: &[u8], h: u32) -> (std::cmp::Ordering, u32) {
    debug_assert!(lcp(a, b) >= h.min(a.len() as u32).min(b.len() as u32));
    let ext = lcp(
        &a[(h as usize).min(a.len())..],
        &b[(h as usize).min(b.len())..],
    );
    let full = h.min(a.len() as u32).min(b.len() as u32) + ext;
    let fa = a.get(full as usize).copied();
    let fb = b.get(full as usize).copied();
    (fa.cmp(&fb), full)
}

/// Computes the LCP array of an already-sorted set by direct scanning.
/// Reference implementation used to validate sorter by-products.
pub fn lcp_array_naive(set: &StringSet) -> Vec<u32> {
    let n = set.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        if i == 0 {
            out.push(0);
        } else {
            out.push(lcp(set.get(i - 1), set.get(i)));
        }
    }
    out
}

/// Verifies that `lcps` is the LCP array of the (sorted) `set`.
pub fn verify_lcp_array(set: &StringSet, lcps: &[u32]) -> Result<(), String> {
    if lcps.len() != set.len() {
        return Err(format!(
            "lcp array length {} != string count {}",
            lcps.len(),
            set.len()
        ));
    }
    for (i, &l) in lcps.iter().enumerate().skip(1) {
        let expect = lcp(set.get(i - 1), set.get(i));
        if l != expect {
            return Err(format!(
                "lcp[{i}] = {} but LCP({:?}, {:?}) = {expect}",
                l,
                String::from_utf8_lossy(set.get(i - 1)),
                String::from_utf8_lossy(set.get(i)),
            ));
        }
    }
    if !lcps.is_empty() && lcps[0] != 0 {
        return Err(format!("lcp[0] = {} (must be 0 / ⊥)", lcps[0]));
    }
    Ok(())
}

/// Distinguishing prefix lengths of a *sorted* set, derived from its LCP
/// array: `DIST(sᵢ) = max(hᵢ, hᵢ₊₁) + 1`, capped at `|sᵢ| + 1` (the cap is
/// reached exactly when the maximal LCP equals the string length, i.e. the
/// string is a prefix of a neighbour or a duplicate; the `+1` then counts
/// the virtual 0-terminator).
pub fn dist_prefixes_from_sorted(lcps: &[u32], lens: &[u32]) -> Vec<u32> {
    let n = lcps.len();
    debug_assert_eq!(n, lens.len());
    (0..n)
        .map(|i| {
            let left = if i > 0 { lcps[i] } else { 0 };
            let right = if i + 1 < n { lcps[i + 1] } else { 0 };
            (left.max(right) + 1).min(lens[i] + 1)
        })
        .collect()
}

/// `DIST` for every string of an arbitrary (unsorted) set, by definition —
/// O(n²·ℓ). Test oracle only.
pub fn dist_prefixes_naive(set: &StringSet) -> Vec<u32> {
    let n = set.len();
    (0..n)
        .map(|i| {
            let s = set.get(i);
            let max_lcp = (0..n)
                .filter(|&j| j != i)
                .map(|j| lcp(s, set.get(j)))
                .max()
                .unwrap_or(0);
            (max_lcp + 1).min(s.len() as u32 + 1)
        })
        .collect()
}

/// Total distinguishing prefix size `D = Σ DIST(s)` of a sorted set.
pub fn total_dist_prefix(lcps: &[u32], lens: &[u32]) -> u64 {
    dist_prefixes_from_sorted(lcps, lens)
        .iter()
        .map(|&d| d as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lcp_basics() {
        assert_eq!(lcp(b"", b""), 0);
        assert_eq!(lcp(b"a", b""), 0);
        assert_eq!(lcp(b"abc", b"abd"), 2);
        assert_eq!(lcp(b"abc", b"abc"), 3);
        assert_eq!(lcp(b"abc", b"abcdef"), 3);
    }

    #[test]
    fn lcp_crosses_word_boundaries() {
        let a = b"0123456789abcdefX";
        let b = b"0123456789abcdefY";
        assert_eq!(lcp(a, b), 16);
        let c = b"0123456789abcdef";
        assert_eq!(lcp(a, c), 16);
    }

    #[test]
    fn lcp_compare_orders_and_extends() {
        use std::cmp::Ordering::*;
        assert_eq!(lcp_compare(b"alpha", b"alps", 2), (Less, 3));
        assert_eq!(lcp_compare(b"alps", b"alpha", 2), (Greater, 3));
        assert_eq!(lcp_compare(b"same", b"same", 0), (Equal, 4));
        // Prefix relation: shorter < longer.
        assert_eq!(lcp_compare(b"al", b"alp", 1), (Less, 2));
    }

    /// Byte-at-a-time reference for [`lcp_compare`]: same contract, no
    /// word tricks. The proptests below pin the word-at-a-time path to
    /// this, ordering *and* returned LCP.
    fn lcp_compare_scalar(a: &[u8], b: &[u8], h: u32) -> (std::cmp::Ordering, u32) {
        let mut i = (h as usize).min(a.len()).min(b.len());
        while i < a.len() && i < b.len() && a[i] == b[i] {
            i += 1;
        }
        (a.get(i).cmp(&b.get(i)), i as u32)
    }

    #[test]
    fn lcp_compare_word_boundary_and_extreme_bytes() {
        use std::cmp::Ordering::*;
        // Mismatches and prefix relations placed on, before and after the
        // 8-byte word boundaries, with the extreme byte values 0x00/0xFF
        // that a signed or native-endian word compare would mishandle.
        // 7/8/9 exercise the u64 step, 15/16/17 the u128 chunk edge,
        // 23/24/25 the u128-then-u64 hand-off, 31/32/33 two full chunks.
        for m in [
            0usize, 1, 6, 7, 8, 9, 15, 16, 17, 23, 24, 25, 31, 32, 33, 40,
        ] {
            let base = vec![0xABu8; m];
            let mut lo = base.clone();
            lo.push(0x00);
            let mut hi = base.clone();
            hi.push(0xFF);
            assert_eq!(lcp(&lo, &hi), m as u32, "mismatch at {m}");
            assert_eq!(lcp_compare(&lo, &hi, 0), (Less, m as u32));
            assert_eq!(lcp_compare(&hi, &lo, 0), (Greater, m as u32));
            // Strict prefix: shorter < longer regardless of the next byte.
            assert_eq!(lcp_compare(&base, &lo, 0), (Less, m as u32));
            assert_eq!(lcp_compare(&base, &hi, 0), (Less, m as u32));
            // Equal strings, from every valid starting prefix.
            assert_eq!(lcp_compare(&base, &base, m as u32), (Equal, m as u32));
        }
        assert_eq!(lcp_compare(b"", b"", 0), (Equal, 0));
    }

    #[test]
    fn dist_prefix_of_paper_example() {
        // Sorted set from Fig. 2 step 4.
        let set = StringSet::from_strs(&[
            "algae", "algo", "alpha", "alps", "orange", "order", "organ", "snow", "sorbet",
            "sorted", "sorter", "soul",
        ]);
        let lcps = lcp_array_naive(&set);
        assert_eq!(lcps, vec![0, 3, 2, 3, 0, 2, 2, 0, 1, 3, 5, 2]);
        let lens = set.lens();
        let dists = dist_prefixes_from_sorted(&lcps, &lens);
        // e.g. "sorter" needs 6 chars (vs "sorted"), "snow" needs 2.
        assert_eq!(dists[10], 6);
        assert_eq!(dists[7], 2);
        assert_eq!(dists, dist_prefixes_naive(&set));
    }

    #[test]
    fn duplicates_cap_dist_at_len_plus_one() {
        let set = StringSet::from_strs(&["dup", "dup", "dup"]);
        let dists = dist_prefixes_naive(&set);
        assert_eq!(dists, vec![4, 4, 4]); // |s| + 1 = 4
    }

    #[test]
    fn verify_lcp_array_catches_errors() {
        let set = StringSet::from_strs(&["aa", "ab"]);
        assert!(verify_lcp_array(&set, &[0, 1]).is_ok());
        assert!(verify_lcp_array(&set, &[0, 2]).is_err());
        assert!(verify_lcp_array(&set, &[0]).is_err());
        assert!(verify_lcp_array(&set, &[1, 1]).is_err());
    }

    proptest! {
        #[test]
        fn lcp_matches_naive(a in proptest::collection::vec(1u8..255, 0..64),
                             b in proptest::collection::vec(1u8..255, 0..64)) {
            let naive = a.iter().zip(&b).take_while(|(x, y)| x == y).count() as u32;
            prop_assert_eq!(lcp(&a, &b), naive);
        }

        #[test]
        fn lcp_compare_matches_ord(
            a in proptest::collection::vec(b'a'..=b'c', 0..24),
            b in proptest::collection::vec(b'a'..=b'c', 0..24),
        ) {
            let h = lcp(&a, &b);
            // Any starting point up to the true LCP must give the same answer.
            for start in 0..=h {
                let (ord, full) = lcp_compare(&a, &b, start);
                prop_assert_eq!(ord, a.cmp(&b));
                prop_assert_eq!(full, h);
            }
        }

        /// Adversarial pin of the word-at-a-time compare against the
        /// scalar reference: full byte alphabet (0x00 and 0xFF included),
        /// unaligned lengths, shared prefixes crossing word boundaries,
        /// strict-prefix pairs and equal strings all arise from the
        /// shared-prefix + suffix construction.
        #[test]
        fn lcp_compare_matches_scalar_reference(
            prefix in proptest::collection::vec(any::<u8>(), 0..40),
            sa in proptest::collection::vec(any::<u8>(), 0..24),
            sb in proptest::collection::vec(any::<u8>(), 0..24),
        ) {
            let a: Vec<u8> = prefix.iter().chain(sa.iter()).copied().collect();
            let b: Vec<u8> = prefix.iter().chain(sb.iter()).copied().collect();
            let h = lcp(&a, &b);
            let naive = a.iter().zip(&b).take_while(|(x, y)| x == y).count() as u32;
            prop_assert_eq!(h, naive);
            // Every valid known-prefix starting point must agree with the
            // scalar reference on ordering and returned LCP.
            for start in [0, h / 2, h] {
                prop_assert_eq!(
                    lcp_compare(&a, &b, start),
                    lcp_compare_scalar(&a, &b, start),
                    "start={} a={:?} b={:?}", start, &a, &b
                );
            }
            let (ord, full) = lcp_compare(&a, &a, h.min(a.len() as u32));
            prop_assert_eq!((ord, full), (std::cmp::Ordering::Equal, a.len() as u32));
        }

        #[test]
        fn dist_from_sorted_matches_naive(
            mut strs in proptest::collection::vec(
                proptest::collection::vec(b'a'..=b'c', 0..10), 1..24),
        ) {
            strs.sort();
            let set = StringSet::from_iter_bytes(strs.iter().map(|s| s.as_slice()));
            let lcps = lcp_array_naive(&set);
            let lens = set.lens();
            prop_assert_eq!(
                dist_prefixes_from_sorted(&lcps, &lens),
                dist_prefixes_naive(&set)
            );
        }
    }
}
