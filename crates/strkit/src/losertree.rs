//! K-way loser-tree merging: plain (atomic) and LCP-aware (§II-B).
//!
//! A loser tree (tournament tree) is a binary tree with K leaves, one per
//! sorted input run; internal nodes remember the *loser* of their
//! comparison and pass the winner up. Replacing the overall winner and
//! replaying its leaf-to-root path costs one comparison per level.
//!
//! The LCP adaptation (Bingmann, Eberle, Sanders; after Ng & Kakehi)
//! attaches to every candidate an LCP value. The invariant maintained is:
//!
//! * the tree-wide winner and every loser stored on the path from the
//!   winner's leaf to the root carry their LCP **with the last string
//!   output** (initially the empty string);
//! * every other stored loser carries its LCP with the winner of the
//!   comparison at its node — which is exactly the "last output" rule at
//!   the moment that subtree's winner gets output.
//!
//! A comparison of candidates `(a, hₐ)`, `(b, h_b)` with LCPs relative to
//! the same reference `R ≤ a, b` needs **no characters** when `hₐ ≠ h_b`
//! (the larger LCP wins and the loser's stored LCP is already correct);
//! only equal LCPs inspect characters, and those extend an LCP that never
//! shrinks. Total character comparisons for merging `m` strings are
//! bounded by `m·log K + ΔL` (ΔL = total LCP increment), which embeds
//! into an O(D + n log n) sorter.
//!
//! When a run's next string is loaded, its LCP with the just-output
//! predecessor *from the same run* is read straight from the run's LCP
//! array — the reason every phase of the distributed sorters carries LCP
//! arrays along.

use crate::arena::{StrRef, StringSet};
use crate::lcp::lcp_compare;
use std::cmp::Ordering;

/// One sorted input run for merging.
#[derive(Clone, Copy)]
pub struct MergeRun<'a> {
    /// Character arena the run's handles point into.
    pub arena: &'a [u8],
    /// Sorted string handles.
    pub refs: &'a [StrRef],
    /// Run-local LCP array (`lcps[0] = 0`); must match `refs` in length.
    /// May be empty for the plain tree (it never reads it).
    pub lcps: &'a [u32],
}

impl<'a> MergeRun<'a> {
    fn bytes(&self, i: usize) -> &'a [u8] {
        let r = self.refs[i];
        &self.arena[r.begin as usize..r.end() as usize]
    }
}

/// Work counters for a merge.
#[derive(Debug, Default, Clone, Copy)]
pub struct MergeStats {
    /// String comparisons that inspected at least one character.
    pub char_comparisons: u64,
    /// Characters inspected across all comparisons.
    pub chars_inspected: u64,
    /// Comparisons decided purely by LCP values (no characters).
    pub lcp_decided: u64,
}

/// Result of a merge: strings are appended to the output arena.
pub struct MergeOutput {
    /// Output LCP array (exact; `lcps[0] = 0`). `None` for the plain tree.
    pub lcps: Option<Vec<u32>>,
    /// `(run, index-within-run)` provenance of every output string.
    pub sources: Vec<(u32, u32)>,
    /// Work counters.
    pub stats: MergeStats,
}

const NONE_STREAM: u32 = u32::MAX;

/// Minimum leaf count at which the loser trees precompute the per-leaf
/// replay paths (the node indices from each leaf's parent to the root).
/// Below it the division chain in [`LcpLoserTree::pop`]/[`LoserTree::pop`]
/// is computed on the fly — a path of ≤ 1 node is cheaper to derive than
/// to look up.
///
/// Single source of truth for this guard, like
/// [`crate::sort::RADIX16_MIN`]: change the constant here, never inline
/// the value at a use site.
pub const LOSER_PATH_CACHE_MIN: usize = 4;

/// Flat per-leaf replay paths: entry `w·d + i` is the `i`-th internal
/// node on leaf `w`'s leaf-to-root path (`d = log₂ k`; `k` is a power of
/// two, so every path has exactly `d` nodes). Empty below
/// [`LOSER_PATH_CACHE_MIN`].
fn build_paths(k: usize) -> Vec<u32> {
    // A non-power-of-two k would silently build garbage paths: the
    // division chains would have differing lengths while the flat layout
    // assumes exactly `trailing_zeros` nodes per leaf.
    debug_assert!(
        k.is_power_of_two(),
        "loser-tree leaf count must be a power of two, got {k}"
    );
    if k < LOSER_PATH_CACHE_MIN {
        return Vec::new();
    }
    let d = k.trailing_zeros() as usize;
    let mut paths = Vec::with_capacity(k * d);
    for w in 0..k {
        let mut v = (k + w) / 2;
        for _ in 0..d {
            paths.push(v as u32);
            v /= 2;
        }
    }
    paths
}

/// The LCP-aware K-way loser tree.
pub struct LcpLoserTree<'a> {
    runs: Vec<MergeRun<'a>>,
    /// Number of leaves (power of two ≥ run count, ≥ 1).
    k: usize,
    /// Internal nodes 1..k: stream index of the stored loser.
    loser: Vec<u32>,
    /// Current overall winner stream.
    winner: u32,
    /// Per-stream cursor (index of current candidate within its run).
    pos: Vec<usize>,
    /// Per-stream candidate LCP (see module invariant).
    h: Vec<u32>,
    /// Cached leaf-to-root replay paths (see [`build_paths`]).
    paths: Vec<u32>,
    stats: MergeStats,
    total: usize,
    total_chars: usize,
}

/// Exact output totals of a run set: `(strings, characters)`. Used to
/// pre-reserve the merge output so the append loop never reallocates.
fn run_totals(runs: &[MergeRun<'_>]) -> (usize, usize) {
    let total = runs.iter().map(|r| r.refs.len()).sum();
    let total_chars = runs
        .iter()
        .map(|r| r.refs.iter().map(|s| s.len as usize).sum::<usize>())
        .sum();
    (total, total_chars)
}

impl<'a> LcpLoserTree<'a> {
    /// Builds the tree over the given runs (each individually sorted, with
    /// valid run-local LCP arrays).
    pub fn new(runs: Vec<MergeRun<'a>>) -> Self {
        for r in &runs {
            debug_assert_eq!(r.refs.len(), r.lcps.len());
        }
        let (total, total_chars) = run_totals(&runs);
        let k = runs.len().max(1).next_power_of_two();
        debug_assert!(
            k.is_power_of_two() && k >= runs.len(),
            "leaf count {k} must be a power of two covering {} runs",
            runs.len()
        );
        let mut tree = Self {
            k,
            loser: vec![NONE_STREAM; k],
            winner: NONE_STREAM,
            pos: vec![0; k],
            h: vec![0; k],
            paths: build_paths(k),
            runs,
            stats: MergeStats::default(),
            total,
            total_chars,
        };
        tree.winner = tree.build(1);
        tree
    }

    fn candidate(&self, s: u32) -> Option<&'a [u8]> {
        let run = self.runs.get(s as usize)?;
        let i = self.pos[s as usize];
        (i < run.refs.len()).then(|| run.bytes(i))
    }

    /// Bottom-up construction: returns the winner of subtree `v`.
    fn build(&mut self, v: usize) -> u32 {
        if v >= self.k {
            return (v - self.k) as u32;
        }
        let l = self.build(2 * v);
        let r = self.build(2 * v + 1);
        let (win, lose) = self.play(l, r);
        self.loser[v] = lose;
        win
    }

    /// Plays one comparison, returning `(winner, loser)` and updating the
    /// loser's stored LCP per the module invariant.
    fn play(&mut self, a: u32, b: u32) -> (u32, u32) {
        let (sa, sb) = (self.candidate(a), self.candidate(b));
        match (sa, sb) {
            (None, _) => (b, a),
            (Some(_), None) => (a, b),
            (Some(xa), Some(xb)) => {
                let (ha, hb) = (self.h[a as usize], self.h[b as usize]);
                match ha.cmp(&hb) {
                    Ordering::Greater => {
                        // a matches the reference longer ⇒ a < b, and
                        // LCP(a, b) = h_b is already stored at the loser.
                        self.stats.lcp_decided += 1;
                        (a, b)
                    }
                    Ordering::Less => {
                        self.stats.lcp_decided += 1;
                        (b, a)
                    }
                    Ordering::Equal => {
                        let (ord, full) = lcp_compare(xa, xb, ha);
                        self.stats.char_comparisons += 1;
                        self.stats.chars_inspected += u64::from(full - ha) + 1;
                        // Ties broken by stream index → deterministic,
                        // run-stable output.
                        let a_wins = match ord {
                            Ordering::Less => true,
                            Ordering::Greater => false,
                            Ordering::Equal => a < b,
                        };
                        let (win, lose) = if a_wins { (a, b) } else { (b, a) };
                        // Loser's LCP becomes its LCP with the winner; the
                        // winner keeps its LCP with the reference.
                        self.h[lose as usize] = full;
                        (win, lose)
                    }
                }
            }
        }
    }

    /// Pops the minimum string: `(bytes, lcp-with-previous-output, run, idx)`.
    pub fn pop(&mut self) -> Option<(&'a [u8], u32, u32, u32)> {
        let w = self.winner;
        let out = self.candidate(w)?;
        let out_h = self.h[w as usize];
        let idx = self.pos[w as usize];
        // Advance the winning stream; the new candidate's LCP with the
        // string just output comes straight from the run's LCP array.
        self.pos[w as usize] += 1;
        let run = &self.runs[w as usize];
        self.h[w as usize] = if self.pos[w as usize] < run.refs.len() {
            run.lcps[self.pos[w as usize]]
        } else {
            0
        };
        // Replay the path from w's leaf to the root (cached above
        // `LOSER_PATH_CACHE_MIN` leaves, derived on the fly below it).
        let mut cur = w;
        if self.paths.is_empty() {
            let mut v = (self.k + w as usize) / 2;
            while v >= 1 {
                cur = self.replay_node(cur, v);
                v /= 2;
            }
        } else {
            let d = self.k.trailing_zeros() as usize;
            let base = w as usize * d;
            for i in base..base + d {
                let v = self.paths[i] as usize;
                cur = self.replay_node(cur, v);
            }
        }
        self.winner = cur;
        Some((out, out_h, w, idx as u32))
    }

    /// One replay comparison at internal node `v`; returns the winner.
    #[inline]
    fn replay_node(&mut self, cur: u32, v: usize) -> u32 {
        let challenger = self.loser[v];
        let (win, lose) = if challenger == NONE_STREAM {
            (cur, challenger)
        } else {
            self.play(cur, challenger)
        };
        self.loser[v] = lose;
        win
    }

    /// Drains the tree, appending every string to `out` (pre-reserved to
    /// the exact output size, so the appends never reallocate).
    pub fn merge_into(mut self, out: &mut StringSet) -> MergeOutput {
        out.reserve(self.total, self.total_chars);
        crate::copyvol::record_copied(self.total_chars);
        let mut lcps = Vec::with_capacity(self.total);
        let mut sources = Vec::with_capacity(self.total);
        while let Some((s, h, run, idx)) = self.pop() {
            out.push(s);
            lcps.push(h);
            sources.push((run, idx));
        }
        if let Some(first) = lcps.first_mut() {
            *first = 0;
        }
        MergeOutput {
            lcps: Some(lcps),
            sources,
            stats: self.stats,
        }
    }
}

/// Plain (atomic) loser tree: identical tournament structure but every
/// comparison starts from character 0. Used by the FKmerge baseline,
/// which merges with "an ordinary (not LCP-aware) loser tree" (§II-C).
pub struct LoserTree<'a> {
    runs: Vec<MergeRun<'a>>,
    k: usize,
    loser: Vec<u32>,
    winner: u32,
    pos: Vec<usize>,
    /// Cached leaf-to-root replay paths (see [`build_paths`]).
    paths: Vec<u32>,
    stats: MergeStats,
    total: usize,
    total_chars: usize,
}

impl<'a> LoserTree<'a> {
    /// Builds the tree (run LCP arrays are ignored and may be empty).
    pub fn new(runs: Vec<MergeRun<'a>>) -> Self {
        let (total, total_chars) = run_totals(&runs);
        let k = runs.len().max(1).next_power_of_two();
        debug_assert!(
            k.is_power_of_two() && k >= runs.len(),
            "leaf count {k} must be a power of two covering {} runs",
            runs.len()
        );
        let mut tree = Self {
            k,
            loser: vec![NONE_STREAM; k],
            winner: NONE_STREAM,
            pos: vec![0; k],
            paths: build_paths(k),
            runs,
            stats: MergeStats::default(),
            total,
            total_chars,
        };
        tree.winner = tree.build(1);
        tree
    }

    fn candidate(&self, s: u32) -> Option<&'a [u8]> {
        let run = self.runs.get(s as usize)?;
        let i = self.pos[s as usize];
        (i < run.refs.len()).then(|| run.bytes(i))
    }

    fn build(&mut self, v: usize) -> u32 {
        if v >= self.k {
            return (v - self.k) as u32;
        }
        let l = self.build(2 * v);
        let r = self.build(2 * v + 1);
        let (win, lose) = self.play(l, r);
        self.loser[v] = lose;
        win
    }

    fn play(&mut self, a: u32, b: u32) -> (u32, u32) {
        match (self.candidate(a), self.candidate(b)) {
            (None, _) => (b, a),
            (Some(_), None) => (a, b),
            (Some(xa), Some(xb)) => {
                let (ord, full) = lcp_compare(xa, xb, 0);
                self.stats.char_comparisons += 1;
                self.stats.chars_inspected += u64::from(full) + 1;
                let a_wins = match ord {
                    Ordering::Less => true,
                    Ordering::Greater => false,
                    Ordering::Equal => a < b,
                };
                if a_wins {
                    (a, b)
                } else {
                    (b, a)
                }
            }
        }
    }

    /// Pops the minimum string: `(bytes, run, idx)`.
    pub fn pop(&mut self) -> Option<(&'a [u8], u32, u32)> {
        let w = self.winner;
        let out = self.candidate(w)?;
        let idx = self.pos[w as usize];
        self.pos[w as usize] += 1;
        let mut cur = w;
        if self.paths.is_empty() {
            let mut v = (self.k + w as usize) / 2;
            while v >= 1 {
                cur = self.replay_node(cur, v);
                v /= 2;
            }
        } else {
            let d = self.k.trailing_zeros() as usize;
            let base = w as usize * d;
            for i in base..base + d {
                let v = self.paths[i] as usize;
                cur = self.replay_node(cur, v);
            }
        }
        self.winner = cur;
        Some((out, w, idx as u32))
    }

    /// One replay comparison at internal node `v`; returns the winner.
    #[inline]
    fn replay_node(&mut self, cur: u32, v: usize) -> u32 {
        let challenger = self.loser[v];
        let (win, lose) = if challenger == NONE_STREAM {
            (cur, challenger)
        } else {
            self.play(cur, challenger)
        };
        self.loser[v] = lose;
        win
    }

    /// Drains the tree, appending every string to `out` (pre-reserved to
    /// the exact output size, so the appends never reallocate).
    pub fn merge_into(mut self, out: &mut StringSet) -> MergeOutput {
        out.reserve(self.total, self.total_chars);
        crate::copyvol::record_copied(self.total_chars);
        let mut sources = Vec::with_capacity(self.total);
        while let Some((s, run, idx)) = self.pop() {
            out.push(s);
            sources.push((run, idx));
        }
        MergeOutput {
            lcps: None,
            sources,
            stats: self.stats,
        }
    }
}

/// Range-split parallel k-way LCP merge: splits the merged output into
/// `threads` independent ranges via splitter selection over the runs,
/// merges each range with its own [`LcpLoserTree`] on a scoped thread,
/// and stitches the boundary LCPs.
///
/// Output (strings, LCP array, sources) is **byte-identical** to a single
/// [`LcpLoserTree::merge_into`] over the same runs for every thread
/// count: each splitter cuts every run at the strict lower bound of the
/// splitter string, so all copies of any string value land in exactly one
/// range, and within a range the tree's stream-index tie-break reproduces
/// the sequential ordering. Interior LCP entries are exact
/// lcp-with-previous values either way; the `threads - 1` range-boundary
/// entries are recomputed directly from the adjoining strings.
/// [`MergeStats`] are summed over the ranges and may differ from a
/// sequential merge (different tournament trees).
///
/// `threads == 1` and outputs of at most [`crate::sort::PAR_TASK_MIN`]
/// strings take the sequential tree directly.
pub fn parallel_lcp_merge_into(
    runs: &[MergeRun<'_>],
    out: &mut StringSet,
    threads: usize,
) -> MergeOutput {
    parallel_merge_into(runs, out, threads, true)
}

/// Range-split parallel merge with the plain (atomic) tree; the
/// non-LCP-aware counterpart of [`parallel_lcp_merge_into`] with the same
/// byte-identical-output guarantee (`lcps` is `None`). Run LCP arrays are
/// ignored and may be empty.
pub fn parallel_plain_merge_into(
    runs: &[MergeRun<'_>],
    out: &mut StringSet,
    threads: usize,
) -> MergeOutput {
    parallel_merge_into(runs, out, threads, false)
}

fn parallel_merge_into(
    runs: &[MergeRun<'_>],
    out: &mut StringSet,
    threads: usize,
    lcp_aware: bool,
) -> MergeOutput {
    assert!(threads >= 1, "thread count must be positive, got 0");
    let (total, total_chars) = run_totals(runs);
    if threads == 1 || total <= crate::sort::PAR_TASK_MIN {
        return if lcp_aware {
            LcpLoserTree::new(runs.to_vec()).merge_into(out)
        } else {
            LoserTree::new(runs.to_vec()).merge_into(out)
        };
    }
    let cuts = select_range_cuts(runs, threads);
    let parts: Vec<(StringSet, MergeOutput)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|r| {
                let (lo, hi) = (&cuts[r], &cuts[r + 1]);
                scope.spawn(move |_| {
                    let sub: Vec<MergeRun<'_>> = runs
                        .iter()
                        .enumerate()
                        .map(|(j, run)| MergeRun {
                            arena: run.arena,
                            refs: &run.refs[lo[j]..hi[j]],
                            // The tree never reads a run's `lcps[0]` (the
                            // candidate LCPs start at 0), so the slice is
                            // valid even though its first entry refers to
                            // a string outside the range.
                            lcps: if run.lcps.is_empty() {
                                &[]
                            } else {
                                &run.lcps[lo[j]..hi[j]]
                            },
                        })
                        .collect();
                    let mut part = StringSet::new();
                    let res = if lcp_aware {
                        LcpLoserTree::new(sub).merge_into(&mut part)
                    } else {
                        LoserTree::new(sub).merge_into(&mut part)
                    };
                    (part, res)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("merge worker panicked"))
            .collect()
    })
    .expect("merge worker scope");
    // Concatenate the ranges, fixing up each range's first LCP entry
    // (its merge saw no predecessor) with the true boundary LCP. The
    // per-range merges already recorded their own arena appends; the
    // concatenation moves every character a second time.
    out.reserve(total, total_chars);
    crate::copyvol::record_copied(total_chars);
    let mut lcps = lcp_aware.then(|| Vec::with_capacity(total));
    let mut sources = Vec::with_capacity(total);
    let mut stats = MergeStats::default();
    let mut prev_last: Option<Vec<u8>> = None;
    for (r, (part, res)) in parts.iter().enumerate() {
        for s in part.iter() {
            out.push(s);
        }
        if let Some(lcps) = lcps.as_mut() {
            let part_lcps = res.lcps.as_ref().expect("lcp-aware range merge");
            lcps.extend_from_slice(part_lcps);
            if !part.is_empty() {
                let boundary_at = lcps.len() - part.len();
                lcps[boundary_at] = match &prev_last {
                    Some(prev) => crate::lcp::lcp(prev, part.get(0)),
                    None => 0,
                };
                prev_last = Some(part.get(part.len() - 1).to_vec());
            }
        }
        // Source indices are relative to the range's sub-slices; shift
        // them back to whole-run positions.
        let lo = &cuts[r];
        sources.extend(
            res.sources
                .iter()
                .map(|&(run, idx)| (run, idx + lo[run as usize] as u32)),
        );
        stats.char_comparisons += res.stats.char_comparisons;
        stats.chars_inspected += res.stats.chars_inspected;
        stats.lcp_decided += res.stats.lcp_decided;
    }
    MergeOutput {
        lcps,
        sources,
        stats,
    }
}

/// Splitter selection over the runs: samples every run at `threads`
/// evenly spaced positions, sorts the sample, and cuts every run at the
/// strict lower bound of `threads - 1` evenly ranked splitter strings.
/// Returns `threads + 1` cut vectors (first all zeros, last the run
/// lengths); cut positions are non-decreasing across boundaries, so
/// `cuts[r]..cuts[r + 1]` is a valid sub-run for every range.
fn select_range_cuts(runs: &[MergeRun<'_>], threads: usize) -> Vec<Vec<usize>> {
    let k = runs.len();
    let mut sample: Vec<&[u8]> = Vec::with_capacity(k * threads);
    for run in runs {
        let len = run.refs.len();
        if len == 0 {
            continue;
        }
        for i in 0..threads {
            sample.push(run.bytes(i * len / threads));
        }
    }
    sample.sort_unstable();
    let mut cuts = Vec::with_capacity(threads + 1);
    cuts.push(vec![0; k]);
    for b in 1..threads {
        let splitter = sample[b * sample.len() / threads];
        cuts.push(
            runs.iter()
                .map(|run| lower_bound(run, splitter))
                .collect::<Vec<_>>(),
        );
    }
    cuts.push(runs.iter().map(|r| r.refs.len()).collect());
    cuts
}

/// Number of strings in the (sorted) run strictly below `splitter`.
fn lower_bound(run: &MergeRun<'_>, splitter: &[u8]) -> usize {
    let (mut lo, mut hi) = (0, run.refs.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if run.bytes(mid) < splitter {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcp::verify_lcp_array;
    use crate::sort::sort_with_lcp;
    use proptest::prelude::*;
    use rand::prelude::*;

    /// Builds sorted runs out of string groups and merges them.
    fn merge_groups(groups: Vec<Vec<Vec<u8>>>, lcp_aware: bool) -> (StringSet, MergeOutput) {
        let mut sets: Vec<StringSet> = Vec::new();
        let mut lcp_arrays: Vec<Vec<u32>> = Vec::new();
        for g in groups {
            let mut set = StringSet::from_iter_bytes(g.iter().map(|s| s.as_slice()));
            let (lcps, _) = sort_with_lcp(&mut set);
            sets.push(set);
            lcp_arrays.push(lcps);
        }
        let runs: Vec<MergeRun<'_>> = sets
            .iter()
            .zip(&lcp_arrays)
            .map(|(s, l)| MergeRun {
                arena: s.arena(),
                refs: s.refs(),
                lcps: l,
            })
            .collect();
        let mut out = StringSet::new();
        let res = if lcp_aware {
            LcpLoserTree::new(runs).merge_into(&mut out)
        } else {
            LoserTree::new(runs).merge_into(&mut out)
        };
        (out, res)
    }

    fn expect_sorted(groups: &[Vec<Vec<u8>>]) -> Vec<Vec<u8>> {
        let mut all: Vec<Vec<u8>> = groups.iter().flatten().cloned().collect();
        all.sort();
        all
    }

    #[test]
    fn merges_three_runs_lcp_aware() {
        let groups: Vec<Vec<Vec<u8>>> = vec![
            vec![
                b"algae".to_vec(),
                b"alpha".to_vec(),
                b"alps".to_vec(),
                b"order".to_vec(),
            ],
            vec![
                b"algo".to_vec(),
                b"snow".to_vec(),
                b"sorbet".to_vec(),
                b"sorter".to_vec(),
            ],
            vec![
                b"orange".to_vec(),
                b"organ".to_vec(),
                b"sorted".to_vec(),
                b"soul".to_vec(),
            ],
        ];
        let expect = expect_sorted(&groups);
        let (out, res) = merge_groups(groups, true);
        assert_eq!(out.to_vecs(), expect);
        verify_lcp_array(&out, res.lcps.as_ref().unwrap()).unwrap();
    }

    #[test]
    fn merges_plain_tree() {
        let groups: Vec<Vec<Vec<u8>>> = vec![
            vec![b"b".to_vec(), b"d".to_vec()],
            vec![b"a".to_vec(), b"c".to_vec(), b"e".to_vec()],
        ];
        let expect = expect_sorted(&groups);
        let (out, res) = merge_groups(groups, false);
        assert_eq!(out.to_vecs(), expect);
        assert!(res.lcps.is_none());
    }

    #[test]
    fn empty_and_single_runs() {
        let (out, _) = merge_groups(vec![], true);
        assert!(out.is_empty());
        let (out, res) = merge_groups(vec![vec![]], true);
        assert!(out.is_empty());
        assert!(res.sources.is_empty());
        let (out, res) = merge_groups(vec![vec![b"solo".to_vec()], vec![], vec![]], true);
        assert_eq!(out.to_vecs(), vec![b"solo".to_vec()]);
        assert_eq!(res.sources, vec![(0, 0)]);
    }

    #[test]
    fn sources_track_provenance() {
        let groups: Vec<Vec<Vec<u8>>> = vec![
            vec![b"a".to_vec(), b"c".to_vec()],
            vec![b"b".to_vec(), b"d".to_vec()],
        ];
        let (_, res) = merge_groups(groups, true);
        assert_eq!(res.sources, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    /// The cached replay paths must be exactly the division chain the
    /// uncached `pop` walks, for every leaf — and must stay off below the
    /// threshold (where they would cost more than they save).
    #[test]
    fn path_cache_matches_division_chain() {
        for k in [1usize, 2, 4, 8, 16, 64] {
            let paths = build_paths(k);
            if k < LOSER_PATH_CACHE_MIN {
                assert!(paths.is_empty(), "k={k} below threshold must not cache");
                continue;
            }
            let d = k.trailing_zeros() as usize;
            assert_eq!(paths.len(), k * d, "k={k}");
            for w in 0..k {
                let mut expect = Vec::new();
                let mut v = (k + w) / 2;
                while v >= 1 {
                    expect.push(v as u32);
                    v /= 2;
                }
                assert_eq!(&paths[w * d..(w + 1) * d], &expect[..], "k={k} leaf {w}");
            }
        }
    }

    /// A merge wide enough to engage the path cache in both trees (16
    /// runs ⇒ k = 16 ≥ `LOSER_PATH_CACHE_MIN`) still sorts and produces
    /// an exact LCP array.
    #[test]
    fn wide_merge_exercises_cached_paths() {
        let mut rng = StdRng::seed_from_u64(7);
        let groups: Vec<Vec<Vec<u8>>> = (0..16)
            .map(|_| {
                (0..40)
                    .map(|_| {
                        let len = rng.gen_range(0..9);
                        (0..len).map(|_| rng.gen_range(b'a'..=b'd')).collect()
                    })
                    .collect()
            })
            .collect();
        let expect = expect_sorted(&groups);
        let (out_lcp, res_lcp) = merge_groups(groups.clone(), true);
        let (out_plain, _) = merge_groups(groups, false);
        assert_eq!(out_lcp.to_vecs(), expect);
        assert_eq!(out_plain.to_vecs(), expect);
        verify_lcp_array(&out_lcp, res_lcp.lcps.as_ref().unwrap()).unwrap();
    }

    #[test]
    fn duplicate_heavy_merge() {
        let groups: Vec<Vec<Vec<u8>>> = vec![
            vec![b"dup".to_vec(); 50],
            vec![b"dup".to_vec(); 70],
            vec![b"dup".to_vec(); 30],
        ];
        let expect = expect_sorted(&groups);
        let (out, res) = merge_groups(groups, true);
        assert_eq!(out.to_vecs(), expect);
        verify_lcp_array(&out, res.lcps.as_ref().unwrap()).unwrap();
    }

    #[test]
    fn lcp_tree_inspects_far_fewer_chars_on_shared_prefixes() {
        // Runs of strings with a 256-char shared prefix: the plain tree
        // rescans the prefix on every comparison; the LCP tree does not.
        let prefix = vec![b'p'; 256];
        let make = |salt: u8| -> Vec<Vec<u8>> {
            (0..100u8)
                .map(|i| {
                    let mut s = prefix.clone();
                    s.extend_from_slice(&[salt, i + 1, (i ^ salt) + 1]);
                    s
                })
                .collect()
        };
        let groups = vec![make(1), make(2), make(3), make(4)];
        let expect = expect_sorted(&groups);
        let (out_a, res_a) = merge_groups(groups.clone(), true);
        let (out_b, res_b) = merge_groups(groups, false);
        assert_eq!(out_a.to_vecs(), expect);
        assert_eq!(out_b.to_vecs(), expect);
        assert!(
            res_a.stats.chars_inspected * 10 < res_b.stats.chars_inspected,
            "lcp {} vs plain {}",
            res_a.stats.chars_inspected,
            res_b.stats.chars_inspected
        );
    }

    #[test]
    fn char_comparisons_bounded_by_m_logk_plus_delta_l() {
        let mut rng = StdRng::seed_from_u64(99);
        let groups: Vec<Vec<Vec<u8>>> = (0..8)
            .map(|_| {
                (0..200)
                    .map(|_| {
                        let len = rng.gen_range(1..12);
                        (0..len).map(|_| rng.gen_range(b'a'..=b'd')).collect()
                    })
                    .collect()
            })
            .collect();
        let m: u64 = groups.iter().map(|g| g.len() as u64).sum();
        let (out, res) = merge_groups(groups, true);
        // ΔL ≤ total output characters + m; log K = 3. Allow the +1 char
        // per decided comparison in the accounting.
        let n_chars: u64 = out.num_chars() as u64;
        let bound = m * 3 + n_chars + m + res.stats.char_comparisons;
        assert!(
            res.stats.chars_inspected <= bound,
            "{} > {bound}",
            res.stats.chars_inspected
        );
    }

    /// Builds sorted runs and compares the range-split parallel merge
    /// against the sequential tree: strings, LCP arrays and sources must
    /// be byte-identical for every thread count.
    fn check_parallel_matches_sequential(groups: Vec<Vec<Vec<u8>>>, lcp_aware: bool) {
        let mut sets: Vec<StringSet> = Vec::new();
        let mut lcp_arrays: Vec<Vec<u32>> = Vec::new();
        for g in &groups {
            let mut set = StringSet::from_iter_bytes(g.iter().map(|s| s.as_slice()));
            let (lcps, _) = sort_with_lcp(&mut set);
            sets.push(set);
            lcp_arrays.push(lcps);
        }
        let runs: Vec<MergeRun<'_>> = sets
            .iter()
            .zip(&lcp_arrays)
            .map(|(s, l)| MergeRun {
                arena: s.arena(),
                refs: s.refs(),
                lcps: l,
            })
            .collect();
        let mut seq_out = StringSet::new();
        let seq = if lcp_aware {
            LcpLoserTree::new(runs.clone()).merge_into(&mut seq_out)
        } else {
            LoserTree::new(runs.clone()).merge_into(&mut seq_out)
        };
        for threads in [1usize, 2, 3, 4] {
            let mut out = StringSet::new();
            let res = if lcp_aware {
                parallel_lcp_merge_into(&runs, &mut out, threads)
            } else {
                parallel_plain_merge_into(&runs, &mut out, threads)
            };
            assert_eq!(out.to_vecs(), seq_out.to_vecs(), "strings at t={threads}");
            assert_eq!(res.lcps, seq.lcps, "lcps at t={threads}");
            assert_eq!(res.sources, seq.sources, "sources at t={threads}");
        }
    }

    /// Large enough to clear `PAR_TASK_MIN` so the split path actually
    /// engages, with duplicates crossing the likely splitter positions.
    #[test]
    fn parallel_merge_is_byte_identical_above_threshold() {
        let mut rng = StdRng::seed_from_u64(13);
        let groups: Vec<Vec<Vec<u8>>> = (0..5)
            .map(|_| {
                (0..crate::sort::PAR_TASK_MIN)
                    .map(|_| {
                        let len = rng.gen_range(0..10);
                        (0..len).map(|_| rng.gen_range(b'a'..=b'c')).collect()
                    })
                    .collect()
            })
            .collect();
        check_parallel_matches_sequential(groups.clone(), true);
        check_parallel_matches_sequential(groups, false);
    }

    #[test]
    fn parallel_merge_all_equal_strings() {
        // Every range cut lands inside one giant equal-value group; the
        // strict lower bound must keep them all in a single range.
        let groups: Vec<Vec<Vec<u8>>> =
            vec![vec![b"same".to_vec(); 2 * crate::sort::PAR_TASK_MIN]; 3];
        check_parallel_matches_sequential(groups, true);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Randomized run counts, deliberately covering non-powers of two
        /// (the trees pad to the next power of two): both trees must sort
        /// and the LCP tree must produce an exact LCP array.
        #[test]
        fn non_power_of_two_run_counts_merge_correctly(
            k in 1usize..12,
            seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let groups: Vec<Vec<Vec<u8>>> = (0..k)
                .map(|_| {
                    (0..rng.gen_range(0..25))
                        .map(|_| {
                            let len = rng.gen_range(0..8);
                            (0..len).map(|_| rng.gen_range(b'a'..=b'd')).collect()
                        })
                        .collect()
                })
                .collect();
            let expect = expect_sorted(&groups);
            let (out, res) = merge_groups(groups.clone(), true);
            prop_assert_eq!(out.to_vecs(), expect.clone());
            prop_assert!(verify_lcp_array(&out, res.lcps.as_ref().unwrap()).is_ok());
            let (out_plain, _) = merge_groups(groups, false);
            prop_assert_eq!(out_plain.to_vecs(), expect);
        }

        #[test]
        fn lcp_merge_matches_global_sort(groups in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(b'a'..=b'c', 0..10), 0..30),
            0..6)) {
            let expect = expect_sorted(&groups);
            let (out, res) = merge_groups(groups, true);
            prop_assert_eq!(out.to_vecs(), expect);
            prop_assert!(verify_lcp_array(&out, res.lcps.as_ref().unwrap()).is_ok());
        }

        #[test]
        fn plain_merge_matches_global_sort(groups in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(b'x'..=b'z', 0..8), 0..20),
            0..5)) {
            let expect = expect_sorted(&groups);
            let (out, _) = merge_groups(groups, false);
            prop_assert_eq!(out.to_vecs(), expect);
        }

        /// Pins the word-at-a-time leaf comparisons of **both** trees
        /// (`lcp_compare`'s u128/u64 chunk loop) to a byte-at-a-time
        /// scalar reference: a long shared prefix forces comparisons
        /// across the 8- and 16-byte word boundaries, the byte alphabet
        /// spans 0x01..=0xFF (0x00 is the arena sentinel and cannot
        /// occur in a `StringSet`), and the reference reproduces the
        /// trees' documented equal-key tie-break (lower stream first) —
        /// so output order, provenance *and* the LCP array must match
        /// exactly.
        #[test]
        fn tree_leaf_comparisons_match_scalar_reference(
            prefix in proptest::collection::vec(1u8..=255, 0..40),
            tail_groups in proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec(1u8..=255, 0..24), 0..12),
                0..4),
        ) {
            fn scalar_cmp(a: &[u8], b: &[u8]) -> std::cmp::Ordering {
                let mut i = 0;
                while i < a.len() && i < b.len() {
                    match a[i].cmp(&b[i]) {
                        std::cmp::Ordering::Equal => i += 1,
                        o => return o,
                    }
                }
                a.len().cmp(&b.len())
            }
            fn scalar_lcp(a: &[u8], b: &[u8]) -> u32 {
                let mut i = 0;
                while i < a.len() && i < b.len() && a[i] == b[i] {
                    i += 1;
                }
                i as u32
            }
            let groups: Vec<Vec<Vec<u8>>> = tail_groups
                .iter()
                .map(|tails| {
                    tails
                        .iter()
                        .map(|t| prefix.iter().chain(t.iter()).copied().collect())
                        .collect()
                })
                .collect();
            // Scalar reference order: (bytes, stream) ascending — equal
            // keys drain lower streams first, exactly the trees' rule.
            let mut reference: Vec<(Vec<u8>, u32)> = groups
                .iter()
                .enumerate()
                .flat_map(|(g, strs)| strs.iter().map(move |s| (s.clone(), g as u32)))
                .collect();
            reference.sort_by(|(sa, ga), (sb, gb)| {
                scalar_cmp(sa, sb).then(ga.cmp(gb))
            });
            let expect: Vec<Vec<u8>> = reference.iter().map(|(s, _)| s.clone()).collect();
            let expect_streams: Vec<u32> = reference.iter().map(|(_, g)| *g).collect();
            let expect_lcps: Vec<u32> = expect
                .iter()
                .enumerate()
                .map(|(i, s)| if i == 0 { 0 } else { scalar_lcp(&expect[i - 1], s) })
                .collect();

            let (out, res) = merge_groups(groups.clone(), true);
            prop_assert_eq!(out.to_vecs(), expect.clone());
            prop_assert_eq!(res.lcps.as_deref(), Some(expect_lcps.as_slice()));
            let streams: Vec<u32> = res.sources.iter().map(|&(r, _)| r).collect();
            prop_assert_eq!(&streams, &expect_streams, "LCP tree tie-break");

            let (out_plain, res_plain) = merge_groups(groups, false);
            prop_assert_eq!(out_plain.to_vecs(), expect);
            let streams: Vec<u32> = res_plain.sources.iter().map(|&(r, _)| r).collect();
            prop_assert_eq!(&streams, &expect_streams, "plain tree tie-break");
        }
    }
}
