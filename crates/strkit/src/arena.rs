//! Flat character arenas and string handles.
//!
//! A [`StringSet`] owns one contiguous character buffer plus an array of
//! [`StrRef`] handles. This mirrors the paper's model (§II): "string arrays
//! are usually represented as arrays of pointers to the beginning of the
//! strings. Thus, entire strings can be moved or swapped in constant time."
//!
//! Handles are `(u32 offset, u32 length)` pairs, capping a single PE's
//! arena at 4 GiB of characters — ample for per-PE shards and half the
//! memory of pointer-based handles, which matters for sorting throughput
//! (fewer bytes moved per swap).

/// Handle to one string inside a [`StringSet`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StrRef {
    /// Byte offset of the first character in the arena.
    pub begin: u32,
    /// Number of characters (the implicit 0-terminator is *not* stored).
    pub len: u32,
}

impl StrRef {
    /// End offset (one past the last character).
    #[inline]
    pub fn end(self) -> u32 {
        self.begin + self.len
    }
}

/// A set of strings backed by a flat character arena.
///
/// The string *order* lives in the handle array and is freely permutable;
/// the character data never moves once pushed.
#[derive(Debug, Default, Clone)]
pub struct StringSet {
    data: Vec<u8>,
    strs: Vec<StrRef>,
}

impl StringSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set with pre-allocated capacity.
    pub fn with_capacity(num_strings: usize, num_chars: usize) -> Self {
        Self {
            data: Vec::with_capacity(num_chars),
            strs: Vec::with_capacity(num_strings),
        }
    }

    /// Builds a set from anything yielding byte slices.
    pub fn from_iter_bytes<'a>(iter: impl IntoIterator<Item = &'a [u8]>) -> Self {
        let mut set = Self::new();
        for s in iter {
            set.push(s);
        }
        set
    }

    /// Builds a set from string literals (convenience for tests/examples).
    pub fn from_strs(strs: &[&str]) -> Self {
        Self::from_iter_bytes(strs.iter().map(|s| s.as_bytes()))
    }

    /// Appends one string. Returns its handle.
    ///
    /// # Panics
    /// In debug builds, panics if the string contains the sentinel byte 0
    /// or if the arena would exceed `u32::MAX` characters.
    pub fn push(&mut self, s: &[u8]) -> StrRef {
        debug_assert!(
            !s.contains(&0),
            "strings must not contain the 0 sentinel byte"
        );
        let begin = u32::try_from(self.data.len()).expect("arena exceeds u32 range");
        let len = u32::try_from(s.len()).expect("string exceeds u32 range");
        assert!(
            self.data.len() + s.len() <= u32::MAX as usize,
            "arena exceeds u32 range"
        );
        self.data.extend_from_slice(s);
        let r = StrRef { begin, len };
        self.strs.push(r);
        r
    }

    /// Number of strings (`n` in the paper's notation for one PE).
    pub fn len(&self) -> usize {
        self.strs.len()
    }

    /// Whether the set holds no strings.
    pub fn is_empty(&self) -> bool {
        self.strs.is_empty()
    }

    /// Total number of characters over all *live* handles.
    ///
    /// Equals the paper's `N` for this set as long as handles and arena
    /// are in 1:1 correspondence (always true unless handles were removed).
    pub fn num_chars(&self) -> usize {
        self.strs.iter().map(|r| r.len as usize).sum()
    }

    /// Raw arena size in bytes (may exceed [`Self::num_chars`] after
    /// handle-level truncation, e.g. when PDMS trims to distinguishing
    /// prefixes).
    pub fn arena_len(&self) -> usize {
        self.data.len()
    }

    /// Allocated arena capacity in bytes. With exact pre-reservation this
    /// stays equal to [`Self::arena_len`] across an append loop — tests
    /// use that to assert the hot paths never reallocate mid-merge.
    pub fn arena_capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Allocated handle-array capacity, in strings.
    pub fn refs_capacity(&self) -> usize {
        self.strs.capacity()
    }

    /// Pre-allocates room for exactly `num_strings` additional handles and
    /// `num_chars` additional characters (no amortized over-allocation:
    /// callers pass exact totals computed ahead of an append loop).
    pub fn reserve(&mut self, num_strings: usize, num_chars: usize) {
        self.strs.reserve_exact(num_strings);
        self.data.reserve_exact(num_chars);
    }

    /// Borrows string `i` in current order.
    #[inline]
    pub fn get(&self, i: usize) -> &[u8] {
        self.str_bytes(self.strs[i])
    }

    /// Borrows the characters of an arbitrary handle.
    #[inline]
    pub fn str_bytes(&self, r: StrRef) -> &[u8] {
        &self.data[r.begin as usize..r.end() as usize]
    }

    /// Character of handle `r` at position `depth`, or 0 (the sentinel)
    /// past the end. This is the paper's 0-terminated access pattern.
    #[inline]
    pub fn char_at(&self, r: StrRef, depth: u32) -> u8 {
        if depth < r.len {
            self.data[(r.begin + depth) as usize]
        } else {
            0
        }
    }

    /// The handle array in current order.
    pub fn refs(&self) -> &[StrRef] {
        &self.strs
    }

    /// Mutable handle array (for permuting / truncating).
    pub fn refs_mut(&mut self) -> &mut [StrRef] {
        &mut self.strs
    }

    /// The raw character arena.
    pub fn arena(&self) -> &[u8] {
        &self.data
    }

    /// Splits into parts for zero-copy sorting:
    /// `(arena, handles)`.
    pub fn as_parts_mut(&mut self) -> (&[u8], &mut [StrRef]) {
        (&self.data, &mut self.strs)
    }

    /// Iterates over strings in current order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[u8]> + '_ {
        self.strs.iter().map(move |&r| self.str_bytes(r))
    }

    /// Replaces the handle array (must reference valid arena ranges).
    pub fn set_refs(&mut self, refs: Vec<StrRef>) {
        debug_assert!(refs
            .iter()
            .all(|r| r.end() as usize <= self.data.len() && r.begin <= r.end()));
        self.strs = refs;
    }

    /// Appends all strings of `other`, preserving its current order.
    pub fn extend_from(&mut self, other: &StringSet) {
        for s in other.iter() {
            self.push(s);
        }
    }

    /// Truncates the handle of string `i` to at most `max_len` characters
    /// (used by PDMS to keep only approximated distinguishing prefixes;
    /// the arena itself is untouched).
    pub fn truncate_str(&mut self, i: usize, max_len: u32) {
        let r = &mut self.strs[i];
        r.len = r.len.min(max_len);
    }

    /// Copies the strings (in current order) into owned `Vec<u8>`s.
    /// Test/diagnostic helper, not used on hot paths.
    pub fn to_vecs(&self) -> Vec<Vec<u8>> {
        self.iter().map(|s| s.to_vec()).collect()
    }

    /// Lengths of all strings in current order.
    pub fn lens(&self) -> Vec<u32> {
        self.strs.iter().map(|r| r.len).collect()
    }
}

impl<'a> FromIterator<&'a [u8]> for StringSet {
    fn from_iter<T: IntoIterator<Item = &'a [u8]>>(iter: T) -> Self {
        Self::from_iter_bytes(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut set = StringSet::new();
        let a = set.push(b"alpha");
        let b = set.push(b"beta");
        assert_eq!(set.len(), 2);
        assert_eq!(set.get(0), b"alpha");
        assert_eq!(set.get(1), b"beta");
        assert_eq!(set.str_bytes(a), b"alpha");
        assert_eq!(set.str_bytes(b), b"beta");
        assert_eq!(set.num_chars(), 9);
    }

    #[test]
    fn char_at_returns_sentinel_past_end() {
        let mut set = StringSet::new();
        let r = set.push(b"ab");
        assert_eq!(set.char_at(r, 0), b'a');
        assert_eq!(set.char_at(r, 1), b'b');
        assert_eq!(set.char_at(r, 2), 0);
        assert_eq!(set.char_at(r, 100), 0);
    }

    #[test]
    fn empty_string_is_fine() {
        let mut set = StringSet::new();
        let r = set.push(b"");
        assert_eq!(set.str_bytes(r), b"");
        assert_eq!(set.char_at(r, 0), 0);
    }

    #[test]
    fn refs_are_permutable_without_moving_chars() {
        let mut set = StringSet::from_strs(&["bbb", "aaa"]);
        let arena_before = set.arena().to_vec();
        set.refs_mut().swap(0, 1);
        assert_eq!(set.get(0), b"aaa");
        assert_eq!(set.get(1), b"bbb");
        assert_eq!(set.arena(), arena_before.as_slice());
    }

    #[test]
    fn truncate_str_shrinks_handle_only() {
        let mut set = StringSet::from_strs(&["abcdef"]);
        set.truncate_str(0, 3);
        assert_eq!(set.get(0), b"abc");
        assert_eq!(set.arena_len(), 6);
        set.truncate_str(0, 100); // cannot grow back
        assert_eq!(set.get(0), b"abc");
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn rejects_sentinel_byte() {
        let mut set = StringSet::new();
        set.push(b"a\0b");
    }

    #[test]
    fn exact_reserve_prevents_growth() {
        let mut set = StringSet::with_capacity(3, 9);
        for s in [b"abc".as_ref(), b"defg", b"hi"] {
            set.push(s);
        }
        assert_eq!(set.arena_capacity(), 9);
        assert_eq!(set.refs_capacity(), 3);
        set.reserve(1, 4);
        set.push(b"jklm");
        assert_eq!(set.arena_capacity(), 13);
        assert_eq!(set.arena_len(), 13);
    }

    #[test]
    fn from_iter_collects() {
        let raw: Vec<&[u8]> = vec![b"x", b"yy"];
        let set: StringSet = raw.iter().copied().collect();
        assert_eq!(set.len(), 2);
        assert_eq!(set.get(1), b"yy");
    }
}
