//! LCP-aware insertion sort — the innermost base case (§II-A).
//!
//! Classic insertion sort re-compares full strings on every shift; the
//! LCP-aware variant (Bingmann's thesis, alg. 5.4 family) tracks, for the
//! string being inserted, its LCP with the element it is currently
//! compared against, and uses the block's LCP entries to skip character
//! comparisons entirely whenever the stored LCP differs from the tracked
//! one. Characters are inspected only to *extend* LCPs, giving the
//! O(D + n²) bound quoted in the paper.

use super::Ctx;
use crate::arena::StrRef;
use std::cmp::Ordering;

/// Sorts `refs[..]` by insertion, writing LCP entries to `lcps[1..]`.
///
/// Precondition: all strings share a common prefix of `depth` characters
/// (comparisons start there). `lcps[0]` is left untouched (owner: caller).
pub(crate) fn lcp_insertion_sort(
    ctx: &mut Ctx<'_>,
    refs: &mut [StrRef],
    lcps: &mut [u32],
    depth: u32,
) {
    let n = refs.len();
    debug_assert_eq!(lcps.len(), n);
    if n < 2 {
        return;
    }
    for j in 1..n {
        let s = refs[j];
        // Compare with the rightmost sorted element first.
        let (ord, mut h) = ctx.lcp_compare(refs[j - 1], s, depth);
        if ord != Ordering::Greater {
            // Already in place: record LCP with left neighbour.
            lcps[j] = h;
            continue;
        }
        // Shift refs[j-1] right; its LCP entry (pair with refs[j-2])
        // travels with it provisionally and is overwritten if `s` ends up
        // directly left of it.
        let mut i = j - 1;
        refs[i + 1] = refs[i];
        lcps[i + 1] = lcps[i];
        // Invariant of the scan: `h = LCP(s, element now at position i+1)`
        // and `s` is smaller than everything in positions i+1..=j.
        loop {
            if i == 0 {
                // `s` becomes the block's first element.
                refs[0] = s;
                lcps[1] = h;
                break;
            }
            let stored = lcps[i]; // LCP(refs[i-1], element just shifted)
            if stored < h {
                // refs[i-1] diverges from the shifted element earlier than
                // `s` does ⇒ refs[i-1] < s, no characters needed.
                refs[i] = s;
                lcps[i + 1] = h;
                lcps[i] = stored;
                break;
            } else if stored > h {
                // refs[i-1] shares more with the shifted element than `s`
                // ⇒ refs[i-1] > s, shift it too; LCP(s, refs[i-1]) stays h.
                refs[i] = refs[i - 1];
                // lcps[i] keeps its provisional role for the next round.
                lcps[i] = lcps[i - 1];
                i -= 1;
            } else {
                // Equal LCPs: only now inspect characters, starting at h.
                let (ord2, h2) = ctx.lcp_compare(refs[i - 1], s, h);
                if ord2 != Ordering::Greater {
                    refs[i] = s;
                    lcps[i + 1] = h;
                    lcps[i] = h2;
                    break;
                }
                refs[i] = refs[i - 1];
                lcps[i] = lcps[i - 1];
                h = h2;
                i -= 1;
            }
        }
    }
}

/// Standalone entry: sorts the whole slice from scratch (depth 0) and
/// fills the full LCP array including `lcps[0] = 0`.
pub fn lcp_insertion_sort_standalone(
    arena: &[u8],
    refs: &mut [StrRef],
    lcps: &mut [u32],
) -> super::SortStats {
    assert_eq!(refs.len(), lcps.len());
    let mut ctx = Ctx::new(arena);
    lcp_insertion_sort(&mut ctx, refs, lcps, 0);
    if !lcps.is_empty() {
        lcps[0] = 0;
    }
    ctx.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::StringSet;
    use crate::lcp::verify_lcp_array;
    use proptest::prelude::*;

    fn run(strs: &[&str]) -> (StringSet, Vec<u32>) {
        let mut set = StringSet::from_strs(strs);
        let mut lcps = vec![0u32; set.len()];
        let (arena, refs) = set.as_parts_mut();
        lcp_insertion_sort_standalone(arena, refs, &mut lcps);
        (set, lcps)
    }

    #[test]
    fn sorts_and_reports_lcps() {
        let (set, lcps) = run(&["alps", "alpha", "algo", "algae"]);
        assert_eq!(
            set.to_vecs(),
            vec![
                b"algae".to_vec(),
                b"algo".to_vec(),
                b"alpha".to_vec(),
                b"alps".to_vec()
            ]
        );
        verify_lcp_array(&set, &lcps).unwrap();
        assert_eq!(lcps, vec![0, 3, 2, 3]);
    }

    #[test]
    fn handles_duplicates() {
        let (set, lcps) = run(&["b", "a", "b", "a", "a"]);
        assert_eq!(
            set.to_vecs(),
            vec![
                b"a".to_vec(),
                b"a".to_vec(),
                b"a".to_vec(),
                b"b".to_vec(),
                b"b".to_vec()
            ]
        );
        verify_lcp_array(&set, &lcps).unwrap();
    }

    #[test]
    fn handles_prefix_chains() {
        let (set, lcps) = run(&["aaa", "a", "aaaa", "", "aa"]);
        assert_eq!(set.get(0), b"");
        assert_eq!(set.get(4), b"aaaa");
        verify_lcp_array(&set, &lcps).unwrap();
    }

    #[test]
    fn respects_existing_depth() {
        // All share "xy"; sorting with depth=2 must not inspect those chars.
        let mut set = StringSet::from_strs(&["xyc", "xya", "xyb"]);
        let mut lcps = vec![0u32; 3];
        let (arena, refs) = set.as_parts_mut();
        let mut ctx = Ctx::new(arena);
        lcp_insertion_sort(&mut ctx, refs, &mut lcps, 2);
        let stats = ctx.stats;
        lcps[0] = 0;
        assert_eq!(
            set.to_vecs(),
            vec![b"xya".to_vec(), b"xyb".to_vec(), b"xyc".to_vec()]
        );
        verify_lcp_array(&set, &lcps).unwrap();
        // 3 strings, comparisons extend from depth 2 only: strictly fewer
        // than the 9+ accesses a from-scratch sort would need.
        assert!(stats.chars_accessed <= 8, "{}", stats.chars_accessed);
    }

    #[test]
    fn char_work_is_near_d_for_reverse_sorted() {
        // Reverse-sorted distinct one-char suffixes over a long shared
        // prefix: naive insertion would rescan the prefix per shift.
        let prefix = "p".repeat(200);
        let strs: Vec<String> = (0..26u8)
            .rev()
            .map(|i| format!("{prefix}{}", (b'a' + i) as char))
            .collect();
        let refs: Vec<&str> = strs.iter().map(|s| s.as_str()).collect();
        let mut set = StringSet::from_strs(&refs);
        let mut lcps = vec![0u32; set.len()];
        let (arena, handles) = set.as_parts_mut();
        let stats = lcp_insertion_sort_standalone(arena, handles, &mut lcps);
        verify_lcp_array(&set, &lcps).unwrap();
        // D ≈ 26·201; naive insertion sort would inspect ≈ 26²/2·200 ≈ 67k.
        assert!(
            stats.chars_accessed < 3 * 26 * 201,
            "chars {}",
            stats.chars_accessed
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn matches_std_sort(strs in proptest::collection::vec(
            proptest::collection::vec(b'a'..=b'c', 0..12), 0..40)) {
            let mut set = StringSet::from_iter_bytes(strs.iter().map(|s| s.as_slice()));
            let mut expect = strs.clone();
            expect.sort();
            let mut lcps = vec![0u32; set.len()];
            let (arena, refs) = set.as_parts_mut();
            lcp_insertion_sort_standalone(arena, refs, &mut lcps);
            prop_assert_eq!(set.to_vecs(), expect);
            prop_assert!(verify_lcp_array(&set, &lcps).is_ok());
        }
    }
}
