//! MSD string radix sort with LCP output — the top of the base-case stack.
//!
//! The paper's preferred sequential sorter (§II-A): partition the block by
//! the character at the current common-prefix depth into σ buckets (one
//! counting pass + one out-of-place scatter), recurse per bucket, and fall
//! back to multikey quicksort below a block-size threshold. Strings whose
//! length equals the depth land in the finished bucket (sentinel 0) and
//! are all equal. Work is O(D) outside the base cases.
//!
//! Bucket keys are gathered once per pass into a scratch array; the
//! scatter is a stable counting sort through a reusable `StrRef` scratch
//! buffer (ping-pong would save a copy but complicates LCP bookkeeping
//! for negligible gain at these block sizes).

use super::{mkqs, Ctx, RADIX_THRESHOLD};
use crate::arena::StrRef;

struct Task {
    begin: usize,
    end: usize,
    depth: u32,
}

/// Sorts `refs`, writing LCP entries into `lcps[1..]`. Precondition: all
/// strings share `depth` prefix characters; `lcps[0]` belongs to the caller.
pub(crate) fn msd_radix_sort(ctx: &mut Ctx<'_>, refs: &mut [StrRef], lcps: &mut [u32], depth: u32) {
    debug_assert_eq!(refs.len(), lcps.len());
    let n = refs.len();
    if ctx.ref_scratch.len() < n {
        ctx.ref_scratch.resize(n, StrRef::default());
        ctx.key_scratch.resize(n, 0);
    }
    let mut stack = vec![Task {
        begin: 0,
        end: n,
        depth,
    }];
    let mut count = [0usize; 256];
    while let Some(Task { begin, end, depth }) = stack.pop() {
        let n = end - begin;
        if n < 2 {
            continue;
        }
        if n <= RADIX_THRESHOLD {
            mkqs::multikey_quicksort(ctx, &mut refs[begin..end], &mut lcps[begin..end], depth);
            continue;
        }
        // Pass 1: gather keys once, counting bucket sizes.
        count.fill(0);
        #[allow(clippy::needless_range_loop)] // scatter over three parallel arrays
        for i in begin..end {
            let c = ctx.ch(refs[i], depth);
            ctx.key_scratch[i] = c;
            count[c as usize] += 1;
        }
        // Exclusive prefix sums → bucket write cursors (block-relative).
        let mut cursor = [0usize; 256];
        let mut sum = 0usize;
        for (cur, &cnt) in cursor.iter_mut().zip(count.iter()) {
            *cur = sum;
            sum += cnt;
        }
        // Pass 2: stable scatter into scratch, copy back.
        #[allow(clippy::needless_range_loop)] // scatter over three parallel arrays
        for i in begin..end {
            let c = ctx.key_scratch[i] as usize;
            ctx.ref_scratch[begin + cursor[c]] = refs[i];
            cursor[c] += 1;
        }
        refs[begin..end].copy_from_slice(&ctx.ref_scratch[begin..end]);
        // Emit boundary LCPs and enqueue bucket subtasks.
        let mut pos = begin;
        for (b, &sz) in count.iter().enumerate() {
            if sz == 0 {
                continue;
            }
            if pos > begin {
                // First string of this bucket vs last of the previous one:
                // they differ exactly at `depth`.
                lcps[pos] = depth;
            }
            if sz >= 2 {
                if b == 0 {
                    // Finished strings: all equal, of length `depth`.
                    lcps[pos + 1..pos + sz].fill(depth);
                } else {
                    stack.push(Task {
                        begin: pos,
                        end: pos + sz,
                        depth: depth + 1,
                    });
                }
            }
            pos += sz;
        }
    }
}

/// Standalone entry: sorts from depth 0, filling the complete LCP array.
pub fn msd_radix_sort_standalone(
    arena: &[u8],
    refs: &mut [StrRef],
    lcps: &mut [u32],
) -> super::SortStats {
    assert_eq!(refs.len(), lcps.len());
    let mut ctx = Ctx::new(arena);
    msd_radix_sort(&mut ctx, refs, lcps, 0);
    if !lcps.is_empty() {
        lcps[0] = 0;
    }
    ctx.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::StringSet;
    use crate::lcp::verify_lcp_array;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn check(mut set: StringSet) -> super::super::SortStats {
        let mut expect = set.to_vecs();
        expect.sort();
        let mut lcps = vec![0u32; set.len()];
        let (arena, refs) = set.as_parts_mut();
        let stats = msd_radix_sort_standalone(arena, refs, &mut lcps);
        assert_eq!(set.to_vecs(), expect);
        verify_lcp_array(&set, &lcps).unwrap();
        stats
    }

    #[test]
    fn sorts_blocks_larger_than_threshold() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut set = StringSet::new();
        for _ in 0..2000 {
            let len = rng.gen_range(0..20);
            let s: Vec<u8> = (0..len).map(|_| rng.gen_range(1..=255u8)).collect();
            set.push(&s);
        }
        check(set);
    }

    #[test]
    fn sorts_full_byte_alphabet() {
        let mut set = StringSet::new();
        for b in (1..=255u8).rev() {
            set.push(&[b, b, b]);
            set.push(&[b]);
        }
        check(set);
    }

    #[test]
    fn finished_bucket_duplicates() {
        // > threshold strings equal to a common prefix of others.
        let mut strs = vec!["stem".to_string(); 100];
        for i in 0..100 {
            strs.push(format!("stem{i}"));
        }
        let refs: Vec<&str> = strs.iter().map(|s| s.as_str()).collect();
        check(StringSet::from_strs(&refs));
    }

    #[test]
    fn deep_recursion_on_long_shared_prefixes() {
        // 300-char shared prefix forces 300 radix levels.
        let prefix = "q".repeat(300);
        let strs: Vec<String> = (0..200)
            .map(|i| format!("{prefix}{:03}", 199 - i))
            .collect();
        let refs: Vec<&str> = strs.iter().map(|s| s.as_str()).collect();
        check(StringSet::from_strs(&refs));
    }

    #[test]
    fn work_linear_in_dist_prefix_not_total_chars() {
        // Distinct 4-char prefixes + 400 chars of filler each: accesses
        // must scale with D ≈ 5n, not N ≈ 404n.
        let mut set = StringSet::new();
        let filler = "f".repeat(400);
        for i in 0..4000u32 {
            set.push(format!("{:04}{filler}", i % 4000).as_bytes());
        }
        let n = set.len() as u64;
        let total = set.num_chars() as u64;
        let stats = check(set);
        assert!(stats.chars_accessed < 12 * n, "{}", stats.chars_accessed);
        assert!(stats.chars_accessed < total / 20);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matches_std_sort(strs in proptest::collection::vec(
            proptest::collection::vec(b'a'..=b'b', 0..8), 0..300)) {
            let set = StringSet::from_iter_bytes(strs.iter().map(|s| s.as_slice()));
            check(set);
        }
    }
}
