//! MSD string radix sort with LCP output — the top of the base-case stack.
//!
//! The paper's preferred sequential sorter (§II-A): partition the block by
//! the character at the current common-prefix depth into σ buckets (one
//! counting pass + one out-of-place scatter), recurse per bucket, and fall
//! back to multikey quicksort below a block-size threshold. Strings whose
//! length equals the depth land in the finished bucket (sentinel 0) and
//! are all equal. Work is O(D) outside the base cases.
//!
//! **Two-byte passes** (Bingmann's 16-bit-alphabet radix): blocks of at
//! least [`RADIX16_MIN`] strings partition on the character *pair* at the
//! current depth, descending two levels per pass. The dominant cost of a
//! radix pass is one random arena fetch per string, and the two
//! characters of a pair share a cache line — so a 16-bit pass does the
//! work of two 8-bit passes for one miss per string instead of two. The
//! 2·σ²-entry counter array is made affordable by tracking the occupied
//! buckets in a side list (at most `n` of 65536), sorting that list, and
//! zeroing only the touched counters afterwards.
//!
//! Bucket keys are gathered once per pass into a scratch array; the
//! scatter is a stable counting sort that **ping-pongs** between the
//! handle array and a full-length `StrRef` scratch buffer. A pass reads
//! the block from one side and scatters into the other; instead of
//! copying everything back it emits its subtasks with the orientation
//! flipped ([`SortTask::flipped`]), so the next pass scatters straight
//! back. Only *terminal* buckets (singletons and finished all-equal
//! buckets) that land on the scratch side are copied to `refs` — the
//! handles of a finished string are moved back exactly once over the
//! whole sort instead of once per pass. The LCP bookkeeping is untouched:
//! boundary entries are absolute positions in `lcps`, which never
//! ping-pongs.
//!
//! The scatter cannot mix destinations within a pass (it reads the source
//! side sequentially; writing terminal buckets into the source would
//! clobber unread elements), hence scatter-everything-then-copy-terminals
//! rather than a per-bucket destination choice.

use super::{mkqs, Ctx, SortTask, RADIX_THRESHOLD};
use crate::arena::StrRef;

/// Minimum block size for a 16-bit radix pass. Below this the occupied
/// bucket list no longer amortizes against plain 8-bit passes.
///
/// Tuned on a 1-core host (see the ROADMAP tuning note); this constant is
/// the single source of truth — all guards reference it, nothing
/// hard-codes the value.
pub const RADIX16_MIN: usize = 128;

/// Allocates the ping-pong scratch buffer for an `n`-string sort: same
/// length as the handle array (the scatter addresses it with absolute
/// positions), or empty when the whole input goes straight to multikey
/// quicksort and no radix pass will ever touch it.
pub(crate) fn scratch_for(n: usize) -> Vec<StrRef> {
    if n > RADIX_THRESHOLD {
        vec![StrRef::default(); n]
    } else {
        Vec::new()
    }
}

/// Sorts `refs`, writing LCP entries into `lcps[1..]`. Precondition: all
/// strings share `depth` prefix characters; `lcps[0]` belongs to the
/// caller. `scratch` is the ping-pong buffer, `refs.len()` long (see
/// [`scratch_for`]).
///
/// This is the *sequential scheduler* over [`partition_task`]: a plain
/// LIFO stack of [`SortTask`] items. The work-stealing driver in
/// `parallel.rs` runs the identical kernel under a different scheduler.
pub(crate) fn msd_radix_sort(
    ctx: &mut Ctx<'_>,
    refs: &mut [StrRef],
    scratch: &mut [StrRef],
    lcps: &mut [u32],
    depth: u32,
) {
    debug_assert_eq!(refs.len(), lcps.len());
    let mut queue = vec![SortTask {
        begin: 0,
        end: refs.len(),
        depth,
        flipped: false,
    }];
    while let Some(task) = queue.pop() {
        partition_task(ctx, refs, scratch, lcps, task, &mut queue);
    }
}

/// The shared partition kernel: performs exactly one scheduling step of
/// the MSD sorter on the block at `task.begin..task.end` and appends the
/// emitted subtasks to `out`. The block's current handles live in `refs`
/// or, when `task.flipped`, in the same positions of `scratch` (the
/// ping-pong buffer, `refs.len()` long).
///
/// One step is either terminal (blocks of fewer than 2 strings; blocks up
/// to [`RADIX_THRESHOLD`] handed to multikey quicksort, which finishes
/// them in place — both first restore a flipped block into `refs`) or one
/// radix pass (16-bit at [`RADIX16_MIN`] and above, 8-bit otherwise) that
/// scatters the block into the *other* side, emits one orientation-
/// flipped subtask per unfinished bucket, and copies only the terminal
/// buckets back to `refs` when they landed in `scratch`.
///
/// Determinism contract (what makes parallel runs byte-identical): the
/// kernel mutates only `refs`/`scratch`/`lcps` *inside* the task's range,
/// writes every subtask's boundary entry `lcps[subtask.begin]` before
/// emitting it, and never writes its own `lcps[task.begin]`. All written
/// values (and each subtask's `flipped` orientation) derive from the
/// block contents, `depth` and `flipped` alone, so any execution order of
/// the emitted (disjoint) subtasks yields the same output.
pub(crate) fn partition_task(
    ctx: &mut Ctx<'_>,
    refs: &mut [StrRef],
    scratch: &mut [StrRef],
    lcps: &mut [u32],
    task: SortTask,
    out: &mut Vec<SortTask>,
) {
    let SortTask {
        begin,
        end,
        depth,
        flipped,
    } = task;
    let n = end - begin;
    if n < 2 {
        if flipped && n == 1 {
            refs[begin] = scratch[begin];
            crate::copyvol::record_copied(std::mem::size_of::<StrRef>());
        }
        return;
    }
    if n <= RADIX_THRESHOLD {
        if flipped {
            refs[begin..end].copy_from_slice(&scratch[begin..end]);
            crate::copyvol::record_copied(n * std::mem::size_of::<StrRef>());
        }
        mkqs::multikey_quicksort(ctx, &mut refs[begin..end], &mut lcps[begin..end], depth);
        return;
    }
    debug_assert!(scratch.len() == refs.len(), "ping-pong scratch too short");
    if ctx.key_scratch.len() < n {
        ctx.key_scratch.resize(n, 0);
    }
    if n >= RADIX16_MIN {
        radix16_pass(ctx, refs, scratch, lcps, task, out);
        return;
    }
    // Pass 1: gather keys once from the source side, counting bucket
    // sizes. Slice iteration keeps the loop free of per-element bounds
    // checks; the stats are charged once per pass (n fetches), not per
    // call.
    let mut count = [0usize; 256];
    let arena = ctx.arena;
    let (src, dst): (&[StrRef], &mut [StrRef]) = if flipped {
        (&scratch[begin..end], &mut refs[begin..end])
    } else {
        (&refs[begin..end], &mut scratch[begin..end])
    };
    let keys = &mut ctx.key_scratch[..n];
    for i in 0..n {
        if i + super::PREFETCH_DIST < n {
            super::prefetch_str_char(arena, src[i + super::PREFETCH_DIST], depth);
        }
        let r = src[i];
        let c = if depth < r.len {
            arena[(r.begin + depth) as usize]
        } else {
            0
        };
        keys[i] = c;
        count[c as usize] += 1;
    }
    ctx.stats.chars_accessed += n as u64;
    // Exclusive prefix sums → bucket write cursors (block-relative).
    let mut cursor = [0usize; 256];
    let mut sum = 0usize;
    for (cur, &cnt) in cursor.iter_mut().zip(count.iter()) {
        *cur = sum;
        sum += cnt;
    }
    // Pass 2: stable scatter into the destination side — no copy-back;
    // continuing buckets simply flip their orientation.
    for (&r, &c) in src.iter().zip(ctx.key_scratch[..n].iter()) {
        let cur = &mut cursor[c as usize];
        dst[*cur] = r;
        *cur += 1;
    }
    crate::copyvol::record_copied(n * std::mem::size_of::<StrRef>());
    // Emit boundary LCPs, enqueue flipped bucket subtasks, and restore
    // terminal buckets into `refs` when the scatter targeted `scratch`.
    let dst_is_scratch = !flipped;
    let mut pos = begin;
    let mut restored = 0usize;
    for (b, &sz) in count.iter().enumerate() {
        if sz == 0 {
            continue;
        }
        if pos > begin {
            // First string of this bucket vs last of the previous one:
            // they differ exactly at `depth`.
            lcps[pos] = depth;
        }
        if sz >= 2 && b != 0 {
            out.push(SortTask {
                begin: pos,
                end: pos + sz,
                depth: depth + 1,
                flipped: dst_is_scratch,
            });
        } else {
            // Terminal: a singleton, or a finished bucket (all equal, of
            // length `depth`).
            if b == 0 && sz >= 2 {
                lcps[pos + 1..pos + sz].fill(depth);
            }
            if dst_is_scratch {
                refs[pos..pos + sz].copy_from_slice(&scratch[pos..pos + sz]);
                restored += sz;
            }
        }
        pos += sz;
    }
    crate::copyvol::record_copied(restored * std::mem::size_of::<StrRef>());
}

/// One 16-bit radix pass over the block at `task.begin..task.end` (all
/// sharing `depth` prefix characters): partitions on the
/// `(depth, depth+1)` character pair and pushes `depth + 2` subtasks,
/// ping-ponging between `refs` and `scratch` exactly like the 8-bit pass.
/// See the module doc.
///
/// Key layout: `c0 << 8 | c1` with the 0 sentinel past the end, so key 0
/// means "finished at `depth`" and a zero low byte means "finished at
/// `depth + 1`" (arena strings never contain the 0 byte).
fn radix16_pass(
    ctx: &mut Ctx<'_>,
    refs: &mut [StrRef],
    scratch: &mut [StrRef],
    lcps: &mut [u32],
    task: SortTask,
    out: &mut Vec<SortTask>,
) {
    let SortTask {
        begin,
        end,
        depth,
        flipped,
    } = task;
    let n = end - begin;
    if ctx.count16.is_empty() {
        ctx.count16 = vec![0u32; 1 << 16];
    }
    if ctx.key16_scratch.len() < n {
        ctx.key16_scratch.resize(n, 0);
    }
    let arena = ctx.arena;
    let (src, dst): (&[StrRef], &mut [StrRef]) = if flipped {
        (&scratch[begin..end], &mut refs[begin..end])
    } else {
        (&refs[begin..end], &mut scratch[begin..end])
    };
    let keys = &mut ctx.key16_scratch[..n];
    let count16 = &mut ctx.count16;
    let used = &mut ctx.used16;
    debug_assert!(used.is_empty() && count16.iter().all(|&c| c == 0));
    // Pass 1: gather character pairs (one cache line per string), count
    // bucket sizes, and record which of the 65536 buckets are occupied.
    for i in 0..n {
        if i + super::PREFETCH_DIST < n {
            super::prefetch_str_char(arena, src[i + super::PREFETCH_DIST], depth);
        }
        let r = src[i];
        let key = if depth < r.len {
            let c0 = arena[(r.begin + depth) as usize];
            let c1 = if depth + 1 < r.len {
                arena[(r.begin + depth + 1) as usize]
            } else {
                0
            };
            u16::from(c0) << 8 | u16::from(c1)
        } else {
            0
        };
        keys[i] = key;
        let cnt = &mut count16[key as usize];
        if *cnt == 0 {
            used.push(key);
        }
        *cnt += 1;
    }
    // Occupied buckets in key order drive prefix sums, boundary LCPs and
    // the recursion; `bucket16` remembers each bucket's start offset.
    used.sort_unstable();
    let bucket16 = &mut ctx.bucket16;
    bucket16.clear();
    let mut cum = 0u32;
    for &k in used.iter() {
        bucket16.push((k, cum));
        let c = count16[k as usize];
        count16[k as usize] = cum; // becomes the write cursor
        cum += c;
    }
    debug_assert_eq!(cum as usize, n);
    // Pass 2: stable scatter into the destination side — no copy-back.
    for (&r, &k) in src.iter().zip(keys.iter()) {
        let cur = &mut count16[k as usize];
        dst[*cur as usize] = r;
        *cur += 1;
    }
    crate::copyvol::record_copied(n * std::mem::size_of::<StrRef>());
    // Emit boundary LCPs, charge the exact character fetches, enqueue
    // orientation-flipped two-levels-deeper subtasks, and restore terminal
    // buckets into `refs` when the scatter targeted `scratch`. After the
    // scatter `count16[k]` holds the bucket's end offset.
    let dst_is_scratch = !flipped;
    let mut restored = 0usize;
    let mut chars = 0u64;
    for (j, &(k, start)) in bucket16.iter().enumerate() {
        let size = (count16[k as usize] - start) as usize;
        let pos = begin + start as usize;
        if j > 0 {
            // Differ in the first pair character ⇒ LCP `depth`, else the
            // first characters match and they differ at `depth + 1`.
            let prev_k = bucket16[j - 1].0;
            lcps[pos] = if prev_k >> 8 != k >> 8 {
                depth
            } else {
                depth + 1
            };
        }
        chars += size as u64
            * match (k >> 8, k & 0xff) {
                (0, _) => 0, // finished before `depth`: no fetch
                (_, 0) => 1, // fetched `depth` only
                _ => 2,      // fetched the full pair
            };
        if size >= 2 && k != 0 && k & 0xff != 0 {
            out.push(SortTask {
                begin: pos,
                end: pos + size,
                depth: depth + 2,
                flipped: dst_is_scratch,
            });
        } else {
            // Terminal: a singleton or a finished all-equal bucket.
            if size >= 2 {
                if k == 0 {
                    // All equal, of length `depth`.
                    lcps[pos + 1..pos + size].fill(depth);
                } else {
                    // All equal, of length `depth + 1` (shared c0,
                    // sentinel low byte).
                    lcps[pos + 1..pos + size].fill(depth + 1);
                }
            }
            if dst_is_scratch {
                refs[pos..pos + size].copy_from_slice(&scratch[pos..pos + size]);
                restored += size;
            }
        }
    }
    ctx.stats.chars_accessed += chars;
    crate::copyvol::record_copied(restored * std::mem::size_of::<StrRef>());
    // Zero only the touched counters for the next pass.
    for &k in used.iter() {
        count16[k as usize] = 0;
    }
    used.clear();
}

/// Standalone entry: sorts from depth 0, filling the complete LCP array.
pub fn msd_radix_sort_standalone(
    arena: &[u8],
    refs: &mut [StrRef],
    lcps: &mut [u32],
) -> super::SortStats {
    assert_eq!(refs.len(), lcps.len());
    let mut ctx = Ctx::new(arena);
    let mut scratch = scratch_for(refs.len());
    msd_radix_sort(&mut ctx, refs, &mut scratch, lcps, 0);
    if !lcps.is_empty() {
        lcps[0] = 0;
    }
    ctx.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::StringSet;
    use crate::lcp::verify_lcp_array;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn check(mut set: StringSet) -> super::super::SortStats {
        let mut expect = set.to_vecs();
        expect.sort();
        let mut lcps = vec![0u32; set.len()];
        let (arena, refs) = set.as_parts_mut();
        let stats = msd_radix_sort_standalone(arena, refs, &mut lcps);
        assert_eq!(set.to_vecs(), expect);
        verify_lcp_array(&set, &lcps).unwrap();
        stats
    }

    #[test]
    fn sorts_blocks_larger_than_threshold() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut set = StringSet::new();
        for _ in 0..2000 {
            let len = rng.gen_range(0..20);
            let s: Vec<u8> = (0..len).map(|_| rng.gen_range(1..=255u8)).collect();
            set.push(&s);
        }
        check(set);
    }

    #[test]
    fn sorts_full_byte_alphabet() {
        let mut set = StringSet::new();
        for b in (1..=255u8).rev() {
            set.push(&[b, b, b]);
            set.push(&[b]);
        }
        check(set);
    }

    #[test]
    fn finished_bucket_duplicates() {
        // > threshold strings equal to a common prefix of others.
        let mut strs = vec!["stem".to_string(); 100];
        for i in 0..100 {
            strs.push(format!("stem{i}"));
        }
        let refs: Vec<&str> = strs.iter().map(|s| s.as_str()).collect();
        check(StringSet::from_strs(&refs));
    }

    #[test]
    fn deep_recursion_on_long_shared_prefixes() {
        // 300-char shared prefix forces 300 radix levels.
        let prefix = "q".repeat(300);
        let strs: Vec<String> = (0..200)
            .map(|i| format!("{prefix}{:03}", 199 - i))
            .collect();
        let refs: Vec<&str> = strs.iter().map(|s| s.as_str()).collect();
        check(StringSet::from_strs(&refs));
    }

    #[test]
    fn work_linear_in_dist_prefix_not_total_chars() {
        // Distinct 4-char prefixes + 400 chars of filler each: accesses
        // must scale with D ≈ 5n, not N ≈ 404n.
        let mut set = StringSet::new();
        let filler = "f".repeat(400);
        for i in 0..4000u32 {
            set.push(format!("{:04}{filler}", i % 4000).as_bytes());
        }
        let n = set.len() as u64;
        let total = set.num_chars() as u64;
        let stats = check(set);
        assert!(stats.chars_accessed < 12 * n, "{}", stats.chars_accessed);
        assert!(stats.chars_accessed < total / 20);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matches_std_sort(strs in proptest::collection::vec(
            proptest::collection::vec(b'a'..=b'b', 0..8), 0..300)) {
            let set = StringSet::from_iter_bytes(strs.iter().map(|s| s.as_slice()));
            check(set);
        }
    }
}
