//! Multikey quicksort (Bentley–Sedgewick) with LCP output.
//!
//! The middle layer of the base-case stack (§II-A): a quicksort adapted to
//! strings that partitions on *single characters* at the current depth.
//! Strings in the `<`/`>` partitions keep their common prefix `depth`;
//! the `=` partition descends one character. Expected work O(D + n log n).
//!
//! LCP entries fall out of the recursion structure: two adjacent strings
//! that end up in different partitions of the same task share exactly
//! `depth` characters (they differ at `depth` by construction), so every
//! partition boundary writes an LCP of `depth`; base cases fill the rest.

use super::{Ctx, INSERTION_THRESHOLD};
use crate::arena::StrRef;

/// One pending subproblem: `refs[begin..end]` all share `depth` chars.
struct Task {
    begin: usize,
    end: usize,
    depth: u32,
}

/// Sorts `refs`, writing LCP entries into `lcps[1..]` (`lcps[0]` is the
/// caller's boundary entry). Precondition: common prefix of `depth`.
pub(crate) fn multikey_quicksort(
    ctx: &mut Ctx<'_>,
    refs: &mut [StrRef],
    lcps: &mut [u32],
    depth: u32,
) {
    debug_assert_eq!(refs.len(), lcps.len());
    let mut stack = vec![Task {
        begin: 0,
        end: refs.len(),
        depth,
    }];
    while let Some(Task { begin, end, depth }) = stack.pop() {
        let n = end - begin;
        if n < 2 {
            continue;
        }
        if n <= INSERTION_THRESHOLD {
            super::insertion::lcp_insertion_sort(
                ctx,
                &mut refs[begin..end],
                &mut lcps[begin..end],
                depth,
            );
            continue;
        }
        // Pseudo-median-of-three pivot character at this depth.
        let c = {
            let a = ctx.ch(refs[begin], depth);
            let b = ctx.ch(refs[begin + n / 2], depth);
            let d = ctx.ch(refs[end - 1], depth);
            median3(a, b, d)
        };
        // Three-way (Dutch national flag) partition on the character.
        let (mut lt, mut i, mut gt) = (begin, begin, end);
        while i < gt {
            let ci = ctx.ch(refs[i], depth);
            match ci.cmp(&c) {
                std::cmp::Ordering::Less => {
                    refs.swap(i, lt);
                    lt += 1;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    gt -= 1;
                    refs.swap(i, gt);
                }
                std::cmp::Ordering::Equal => i += 1,
            }
        }
        // Partition boundaries: adjacent strings from different groups
        // differ at `depth` exactly, since their group characters differ.
        if lt > begin && lt < end {
            lcps[lt] = depth;
        }
        if gt > begin && gt < end && gt != lt {
            lcps[gt] = depth;
        }
        if lt > begin {
            stack.push(Task {
                begin,
                end: lt,
                depth,
            });
        }
        if gt < end {
            stack.push(Task {
                begin: gt,
                end,
                depth,
            });
        }
        // `=` group: either all strings ended here (equal strings of
        // length `depth`) or descend one character.
        if gt > lt {
            if c == 0 {
                lcps[lt + 1..gt].fill(depth);
            } else {
                stack.push(Task {
                    begin: lt,
                    end: gt,
                    depth: depth + 1,
                });
            }
        }
    }
}

#[inline]
fn median3(a: u8, b: u8, c: u8) -> u8 {
    a.max(b).min(a.min(b).max(c))
}

/// Standalone entry: sorts from depth 0 and fills the complete LCP array.
pub fn multikey_quicksort_standalone(
    arena: &[u8],
    refs: &mut [StrRef],
    lcps: &mut [u32],
) -> super::SortStats {
    assert_eq!(refs.len(), lcps.len());
    let mut ctx = Ctx::new(arena);
    multikey_quicksort(&mut ctx, refs, lcps, 0);
    if !lcps.is_empty() {
        lcps[0] = 0;
    }
    ctx.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::StringSet;
    use crate::lcp::verify_lcp_array;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn check(mut set: StringSet) {
        let mut expect = set.to_vecs();
        expect.sort();
        let mut lcps = vec![0u32; set.len()];
        let (arena, refs) = set.as_parts_mut();
        multikey_quicksort_standalone(arena, refs, &mut lcps);
        assert_eq!(set.to_vecs(), expect);
        verify_lcp_array(&set, &lcps).unwrap();
    }

    #[test]
    fn median3_is_median() {
        for a in 0..5u8 {
            for b in 0..5 {
                for c in 0..5 {
                    let mut v = [a, b, c];
                    v.sort_unstable();
                    assert_eq!(median3(a, b, c), v[1], "{a} {b} {c}");
                }
            }
        }
    }

    #[test]
    fn sorts_above_insertion_threshold() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut set = StringSet::new();
        for _ in 0..400 {
            let len = rng.gen_range(0..12);
            let s: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'c')).collect();
            set.push(&s);
        }
        check(set);
    }

    #[test]
    fn sorts_equal_strings_longer_than_threshold() {
        check(StringSet::from_strs(&["tie"; 100]));
    }

    #[test]
    fn sorts_shared_prefix_block() {
        let strs: Vec<String> = (0..100)
            .rev()
            .map(|i| format!("commonprefix{i:03}"))
            .collect();
        let refs: Vec<&str> = strs.iter().map(|s| s.as_str()).collect();
        check(StringSet::from_strs(&refs));
    }

    #[test]
    fn sorts_mixed_lengths_prefix_chain() {
        let mut strs = Vec::new();
        for i in 0..60 {
            strs.push("a".repeat(i));
        }
        strs.reverse();
        let refs: Vec<&str> = strs.iter().map(|s| s.as_str()).collect();
        check(StringSet::from_strs(&refs));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn matches_std_sort(strs in proptest::collection::vec(
            proptest::collection::vec(b'a'..=b'c', 0..10), 0..200)) {
            let set = StringSet::from_iter_bytes(strs.iter().map(|s| s.as_slice()));
            check(set);
        }
    }
}
