//! Caching multikey quicksort (Bentley–Sedgewick) with LCP output.
//!
//! The middle layer of the base-case stack (§II-A): a quicksort adapted to
//! strings that partitions on *single characters* at the current depth.
//! Strings in the `<`/`>` partitions keep their common prefix `depth`;
//! the `=` partition descends one character. Expected work O(D + n log n).
//!
//! **Character caching** (Bingmann's thesis, the `mkqs_cache8` family):
//! each task gathers the depth-characters of its range once into a flat
//! `u8` side array and partitions on that array, swapping cache entries
//! along with the handles. The pivot and every comparison then read the
//! contiguous cache instead of re-fetching `arena[begin + depth]` — one
//! random arena access per (string, depth) instead of one per comparison.
//! The `<`/`>` subtasks stay at the same depth, so their cache slots are
//! *still valid* and are reused without touching the arena again; only
//! the `=` partition, which descends one character, refills its slots.
//! [`Ctx::stats`] counts cache fills only — caching never inspects
//! characters the uncached variant would not, it only re-fetches fewer.
//!
//! LCP entries fall out of the recursion structure: two adjacent strings
//! that end up in different partitions of the same task share exactly
//! `depth` characters (they differ at `depth` by construction), so every
//! partition boundary writes an LCP of `depth`; base cases fill the rest.
//!
//! The task stack and cache array live in [`Ctx`] scratch: radix sort
//! hands over thousands of small blocks per sort, and a per-call `Vec`
//! would dominate the allocator profile.

use super::{Ctx, INSERTION_THRESHOLD};
use crate::arena::StrRef;

/// One pending subproblem: `refs[begin..end]` all share `depth` chars.
/// `cached` marks ranges whose cache slots already hold the characters at
/// `depth` (the `<`/`>` partitions of the parent task).
pub(crate) struct Task {
    begin: usize,
    end: usize,
    depth: u32,
    cached: bool,
}

/// Sorts `refs`, writing LCP entries into `lcps[1..]` (`lcps[0]` is the
/// caller's boundary entry). Precondition: common prefix of `depth`.
pub(crate) fn multikey_quicksort(
    ctx: &mut Ctx<'_>,
    refs: &mut [StrRef],
    lcps: &mut [u32],
    depth: u32,
) {
    debug_assert_eq!(refs.len(), lcps.len());
    // Borrow the reusable scratch out of `ctx` (restored on every exit
    // path below; mkqs never re-enters itself).
    let mut stack = std::mem::take(&mut ctx.mkqs_stack);
    let mut cache = std::mem::take(&mut ctx.mkqs_cache);
    debug_assert!(stack.is_empty());
    if cache.len() < refs.len() {
        cache.resize(refs.len(), 0);
    }
    stack.push(Task {
        begin: 0,
        end: refs.len(),
        depth,
        cached: false,
    });
    while let Some(Task {
        begin,
        end,
        depth,
        cached,
    }) = stack.pop()
    {
        let n = end - begin;
        if n < 2 {
            continue;
        }
        if n <= INSERTION_THRESHOLD {
            super::insertion::lcp_insertion_sort(
                ctx,
                &mut refs[begin..end],
                &mut lcps[begin..end],
                depth,
            );
            continue;
        }
        if !cached {
            // The one random-access pass over the arena for this task:
            // gather the depth-characters into the contiguous cache.
            let arena = ctx.arena;
            let block = &refs[begin..end];
            let slots = &mut cache[begin..end];
            for i in 0..n {
                if i + super::PREFETCH_DIST < n {
                    super::prefetch_str_char(arena, block[i + super::PREFETCH_DIST], depth);
                }
                let r = block[i];
                slots[i] = if depth < r.len {
                    arena[(r.begin + depth) as usize]
                } else {
                    0
                };
            }
            ctx.stats.chars_accessed += n as u64;
        }
        // Pseudo-median-of-three pivot character, read from the cache.
        let c = median3(cache[begin], cache[begin + n / 2], cache[end - 1]);
        // Three-way (Dutch national flag) partition on the cached keys;
        // handles and keys travel together so `<`/`>` slots stay valid.
        let (mut lt, mut i, mut gt) = (begin, begin, end);
        while i < gt {
            let ci = cache[i];
            match ci.cmp(&c) {
                std::cmp::Ordering::Less => {
                    refs.swap(i, lt);
                    cache.swap(i, lt);
                    lt += 1;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    gt -= 1;
                    refs.swap(i, gt);
                    cache.swap(i, gt);
                }
                std::cmp::Ordering::Equal => i += 1,
            }
        }
        // Partition boundaries: adjacent strings from different groups
        // differ at `depth` exactly, since their group characters differ.
        if lt > begin && lt < end {
            lcps[lt] = depth;
        }
        if gt > begin && gt < end && gt != lt {
            lcps[gt] = depth;
        }
        if lt > begin {
            stack.push(Task {
                begin,
                end: lt,
                depth,
                cached: true,
            });
        }
        if gt < end {
            stack.push(Task {
                begin: gt,
                end,
                depth,
                cached: true,
            });
        }
        // `=` group: either all strings ended here (equal strings of
        // length `depth`) or descend one character (cache slots refill).
        if gt > lt {
            if c == 0 {
                lcps[lt + 1..gt].fill(depth);
            } else {
                stack.push(Task {
                    begin: lt,
                    end: gt,
                    depth: depth + 1,
                    cached: false,
                });
            }
        }
    }
    ctx.mkqs_stack = stack;
    ctx.mkqs_cache = cache;
}

#[inline]
fn median3(a: u8, b: u8, c: u8) -> u8 {
    a.max(b).min(a.min(b).max(c))
}

/// Standalone entry: sorts from depth 0 and fills the complete LCP array.
pub fn multikey_quicksort_standalone(
    arena: &[u8],
    refs: &mut [StrRef],
    lcps: &mut [u32],
) -> super::SortStats {
    assert_eq!(refs.len(), lcps.len());
    let mut ctx = Ctx::new(arena);
    multikey_quicksort(&mut ctx, refs, lcps, 0);
    if !lcps.is_empty() {
        lcps[0] = 0;
    }
    ctx.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::StringSet;
    use crate::lcp::verify_lcp_array;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn check(mut set: StringSet) {
        let mut expect = set.to_vecs();
        expect.sort();
        let mut lcps = vec![0u32; set.len()];
        let (arena, refs) = set.as_parts_mut();
        multikey_quicksort_standalone(arena, refs, &mut lcps);
        assert_eq!(set.to_vecs(), expect);
        verify_lcp_array(&set, &lcps).unwrap();
    }

    #[test]
    fn median3_is_median() {
        for a in 0..5u8 {
            for b in 0..5 {
                for c in 0..5 {
                    let mut v = [a, b, c];
                    v.sort_unstable();
                    assert_eq!(median3(a, b, c), v[1], "{a} {b} {c}");
                }
            }
        }
    }

    #[test]
    fn sorts_above_insertion_threshold() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut set = StringSet::new();
        for _ in 0..400 {
            let len = rng.gen_range(0..12);
            let s: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'c')).collect();
            set.push(&s);
        }
        check(set);
    }

    #[test]
    fn sorts_equal_strings_longer_than_threshold() {
        check(StringSet::from_strs(&["tie"; 100]));
    }

    #[test]
    fn sorts_shared_prefix_block() {
        let strs: Vec<String> = (0..100)
            .rev()
            .map(|i| format!("commonprefix{i:03}"))
            .collect();
        let refs: Vec<&str> = strs.iter().map(|s| s.as_str()).collect();
        check(StringSet::from_strs(&refs));
    }

    /// Reference fetch count of the *uncached* partition scheme on the
    /// same task tree: pivot selection (3) plus one fetch per element per
    /// partitioning pass, with `<`/`>` subtasks re-fetching at the same
    /// depth. Insertion-sort base cases are identical in both schemes and
    /// are excluded on both sides of the comparison.
    fn uncached_partition_fetches(set: &StringSet) -> u64 {
        struct T {
            begin: usize,
            end: usize,
            depth: u32,
        }
        let mut refs = set.refs().to_vec();
        let mut fetches = 0u64;
        let mut stack = vec![T {
            begin: 0,
            end: refs.len(),
            depth: 0,
        }];
        while let Some(T { begin, end, depth }) = stack.pop() {
            let n = end - begin;
            if n < 2 || n <= super::INSERTION_THRESHOLD {
                continue;
            }
            let ch = |r: StrRef, d: u32| {
                if d < r.len {
                    set.arena()[(r.begin + d) as usize]
                } else {
                    0
                }
            };
            fetches += 3; // pivot median-of-three
            let c = median3(
                ch(refs[begin], depth),
                ch(refs[begin + n / 2], depth),
                ch(refs[end - 1], depth),
            );
            let (mut lt, mut i, mut gt) = (begin, begin, end);
            while i < gt {
                fetches += 1;
                match ch(refs[i], depth).cmp(&c) {
                    std::cmp::Ordering::Less => {
                        refs.swap(i, lt);
                        lt += 1;
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        gt -= 1;
                        refs.swap(i, gt);
                    }
                    std::cmp::Ordering::Equal => i += 1,
                }
            }
            if lt > begin {
                stack.push(T {
                    begin,
                    end: lt,
                    depth,
                });
            }
            if gt < end {
                stack.push(T {
                    begin: gt,
                    end,
                    depth,
                });
            }
            if gt > lt && c != 0 {
                stack.push(T {
                    begin: lt,
                    end: gt,
                    depth: depth + 1,
                });
            }
        }
        fetches
    }

    /// Fetch count of the *caching* scheme over the identical task tree:
    /// one fetch per element only when a range's cache slots are not
    /// already valid (fresh range or the `=` descent).
    fn cached_partition_fetches(set: &StringSet) -> u64 {
        struct T {
            begin: usize,
            end: usize,
            depth: u32,
            cached: bool,
        }
        let mut refs = set.refs().to_vec();
        let mut cache = vec![0u8; refs.len()];
        let mut fetches = 0u64;
        let mut stack = vec![T {
            begin: 0,
            end: refs.len(),
            depth: 0,
            cached: false,
        }];
        while let Some(T {
            begin,
            end,
            depth,
            cached,
        }) = stack.pop()
        {
            let n = end - begin;
            if n < 2 || n <= super::INSERTION_THRESHOLD {
                continue;
            }
            if !cached {
                for i in begin..end {
                    let r = refs[i];
                    cache[i] = if depth < r.len {
                        set.arena()[(r.begin + depth) as usize]
                    } else {
                        0
                    };
                }
                fetches += n as u64;
            }
            let c = median3(cache[begin], cache[begin + n / 2], cache[end - 1]);
            let (mut lt, mut i, mut gt) = (begin, begin, end);
            while i < gt {
                match cache[i].cmp(&c) {
                    std::cmp::Ordering::Less => {
                        refs.swap(i, lt);
                        cache.swap(i, lt);
                        lt += 1;
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        gt -= 1;
                        refs.swap(i, gt);
                        cache.swap(i, gt);
                    }
                    std::cmp::Ordering::Equal => i += 1,
                }
            }
            if lt > begin {
                stack.push(T {
                    begin,
                    end: lt,
                    depth,
                    cached: true,
                });
            }
            if gt < end {
                stack.push(T {
                    begin: gt,
                    end,
                    depth,
                    cached: true,
                });
            }
            if gt > lt && c != 0 {
                stack.push(T {
                    begin: lt,
                    end: gt,
                    depth: depth + 1,
                    cached: false,
                });
            }
        }
        fetches
    }

    /// The acceptance guard for character caching: on the distinguishing-
    /// prefix workload (short distinct prefixes, long identical filler),
    /// caching must only *re-fetch fewer* characters than the uncached
    /// partition scheme — never inspect extra ones. Both counters replay
    /// the identical pivot/partition logic, so the comparison isolates
    /// exactly the re-fetch behavior.
    #[test]
    fn caching_does_not_inspect_extra_characters() {
        let mut set = StringSet::new();
        let filler = vec![b'z'; 500];
        for i in 0..1000u32 {
            let mut s = format!("{:03}", i % 1000).into_bytes();
            s.extend_from_slice(&filler);
            set.push(&s);
        }
        let uncached = uncached_partition_fetches(&set);
        let cached = cached_partition_fetches(&set);
        assert!(
            cached <= uncached,
            "caching inspected more partition characters: {cached} > {uncached}"
        );
        // The saving must be real on this workload, not a tie: `<`/`>`
        // ranges at the same depth are re-fetched by the uncached scheme.
        assert!(
            cached * 2 < uncached,
            "expected ≥2× fewer partition fetches, got {cached} vs {uncached}"
        );
    }

    #[test]
    fn sorts_mixed_lengths_prefix_chain() {
        let mut strs = Vec::new();
        for i in 0..60 {
            strs.push("a".repeat(i));
        }
        strs.reverse();
        let refs: Vec<&str> = strs.iter().map(|s| s.as_str()).collect();
        check(StringSet::from_strs(&refs));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn matches_std_sort(strs in proptest::collection::vec(
            proptest::collection::vec(b'a'..=b'c', 0..10), 0..200)) {
            let set = StringSet::from_iter_bytes(strs.iter().map(|s| s.as_slice()));
            check(set);
        }
    }
}
