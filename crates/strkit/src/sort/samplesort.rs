//! Sequential string sample sort — the alternative base sorter of §II-A.
//!
//! "Our study [6] identifies several other efficient sequential string
//! sorters. … For example, for large alphabets and skewed inputs strings,
//! sample sort might be better." This is a (scalar) variant of Bingmann &
//! Sanders' String Sample Sort: draw a random sample, sort it, pick k−1
//! splitters, classify every string into 2k−1 buckets — *equality buckets*
//! for strings equal to a splitter (which need no further work and defeat
//! duplicate-heavy adversaries), open buckets in between — and recurse.
//!
//! LCP handling: strings in an open bucket `(tᵢ, tᵢ₊₁]` share at least
//! `LCP(tᵢ, tᵢ₊₁)` characters (standard sorted-order fact), so the
//! recursion passes that depth down; equality buckets are filled with
//! LCP = |t| directly; boundary entries between adjacent non-empty
//! buckets are computed with one LCP-extending comparison each.
//!
//! **Classification** walks an *implicit Eytzinger-layout splitter tree*
//! (the super-scalar scheme of Bingmann & Sanders' S⁵, as `ips4o` uses
//! for atomic keys): the k′ deduplicated splitters are padded with copies
//! of the largest to a perfect tree of 2^ℓ − 1 nodes stored in
//! breadth-first order, and every string descends exactly ℓ levels with
//! `node = 2·node + (s > tree[node])` — a fixed-trip-count loop with no
//! data-dependent branch on the search path, so the splitter tree stays
//! resident in L1 and the comparisons pipeline. Equality with a splitter
//! is recorded in a per-level bitmask during the descent and resolved to
//! the equality bucket afterwards (the visited node at level t is
//! `leaf >> (ℓ − t)`, so no extra comparisons are spent). Comparisons
//! start at the common depth, so like the rest of the stack the
//! classification inspects distinguishing-prefix characters (plus
//! O(log k) splitter comparisons per string). Recursion is depth-first
//! off an explicit task stack, and all per-task buffers (sample,
//! splitters, tree, bucket ids, counters) are hoisted out of the loop —
//! one high-water-mark allocation each per sort.

use super::{mkqs, Ctx, SortStats, RADIX_THRESHOLD};
use crate::arena::StrRef;
use std::cmp::Ordering;

/// Oversampling factor: sample size = OVERSAMPLE·k.
const OVERSAMPLE: usize = 4;
/// Bucket-count bounds per recursion level.
const MIN_BUCKETS: usize = 4;
const MAX_BUCKETS: usize = 64;
/// Below this, hand off to multikey quicksort.
const SSS_THRESHOLD: usize = 512;

/// Deterministic splitmix64 (local copy; `dss-strkit` stays dependency-free).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        ((self.next() as u128 * bound as u128) >> 64) as usize
    }
}

struct Task {
    begin: usize,
    end: usize,
    depth: u32,
}

/// Fills the breadth-first (Eytzinger) splitter tree from the sorted,
/// padded splitter array: node 1 is the root, node `v`'s children are
/// `2v`/`2v+1`. `node_idx[v]` remembers which splitter sits at `v` so an
/// equality hit can be mapped back to its equality bucket.
fn build_eytzinger(
    padded: &[StrRef],
    tree: &mut [StrRef],
    node_idx: &mut [u32],
    node: usize,
    lo: usize,
    hi: usize,
) {
    if lo >= hi {
        return;
    }
    let mid = (lo + hi) / 2;
    tree[node] = padded[mid];
    node_idx[node] = mid as u32;
    build_eytzinger(padded, tree, node_idx, 2 * node, lo, mid);
    build_eytzinger(padded, tree, node_idx, 2 * node + 1, mid + 1, hi);
}

/// Sorts `refs` with LCP output into `lcps[1..]` (`lcps[0]` is the
/// caller's). Precondition: common prefix `depth`.
pub(crate) fn string_sample_sort(
    ctx: &mut Ctx<'_>,
    refs: &mut [StrRef],
    lcps: &mut [u32],
    depth: u32,
    rng_seed: u64,
) {
    debug_assert_eq!(refs.len(), lcps.len());
    let mut rng = Rng(rng_seed ^ 0x5a5a_1234);
    // Bucket-boundary LCP entries depend on the *final* neighbours, which
    // are only known once the adjacent buckets are internally sorted;
    // record (position, known common depth) and resolve at the end.
    let mut boundaries: Vec<(usize, u32)> = Vec::new();
    // Per-task scratch, hoisted so the task loop allocates only on
    // high-water-mark growth.
    let mut sample: Vec<StrRef> = Vec::new();
    let mut sample_lcps: Vec<u32> = Vec::new();
    let mut splitters: Vec<StrRef> = Vec::new();
    let mut tree: Vec<StrRef> = Vec::new();
    let mut node_idx: Vec<u32> = Vec::new();
    let mut bucket_of: Vec<u32> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    let mut cursor: Vec<usize> = Vec::new();
    let mut stack = vec![Task {
        begin: 0,
        end: refs.len(),
        depth,
    }];
    while let Some(Task { begin, end, depth }) = stack.pop() {
        let n = end - begin;
        if n < 2 {
            continue;
        }
        if n <= SSS_THRESHOLD {
            mkqs::multikey_quicksort(ctx, &mut refs[begin..end], &mut lcps[begin..end], depth);
            continue;
        }
        // --- sample and choose splitters -------------------------------
        let k = (n / 256)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let sample_size = (OVERSAMPLE * k).min(n);
        sample.clear();
        sample.extend((0..sample_size).map(|_| refs[begin + rng.below(n)]));
        sample_lcps.clear();
        sample_lcps.resize(sample.len(), 0);
        mkqs::multikey_quicksort(ctx, &mut sample, &mut sample_lcps, depth);
        splitters.clear();
        splitters.extend((1..k).map(|j| sample[(j * sample.len()) / k]));
        // Drop duplicate splitters (their equality buckets would be empty
        // anyway and the tree descent wants strictly sorted pivots).
        splitters.dedup_by(|a, b| ctx.bytes(*a) == ctx.bytes(*b));
        if splitters.is_empty() {
            // Degenerate sample: all sampled strings equal. Partition by
            // "equal to that string" vs rest, then recurse on the rest.
            let pivot = sample[0];
            let (mut eq, mut rest): (Vec<StrRef>, Vec<StrRef>) = (Vec::new(), Vec::new());
            let mut less: Vec<StrRef> = Vec::new();
            for &r in refs[begin..end].iter() {
                let (ord, _) = ctx.lcp_compare(r, pivot, depth);
                match ord {
                    Ordering::Less => less.push(r),
                    Ordering::Equal => eq.push(r),
                    Ordering::Greater => rest.push(r),
                }
            }
            let (ls, es) = (less.len(), eq.len());
            refs[begin..begin + ls].copy_from_slice(&less);
            refs[begin + ls..begin + ls + es].copy_from_slice(&eq);
            refs[begin + ls + es..end].copy_from_slice(&rest);
            // Equality run: LCP = |pivot| internally.
            let plen = pivot.len;
            lcps[begin + ls + 1..begin + ls + es].fill(plen);
            if ls > 0 {
                boundaries.push((begin + ls, depth));
                stack.push(Task {
                    begin,
                    end: begin + ls,
                    depth,
                });
            }
            if ls + es < n {
                boundaries.push((begin + ls + es, depth));
                stack.push(Task {
                    begin: begin + ls + es,
                    end,
                    depth,
                });
            }
            continue;
        }
        // --- classify into 2k'−1 buckets --------------------------------
        // Bucket ids: 2b = open bucket before splitter b; 2b+1 = equality
        // bucket of splitter b; last open bucket id = 2·k'.
        let kk = splitters.len();
        let nbuckets = 2 * kk + 1;
        // Pad the sorted splitters with copies of the largest to a perfect
        // tree: 2^levels leaves, 2^levels − 1 internal values.
        let leaves = (kk + 1).next_power_of_two();
        let levels = leaves.trailing_zeros();
        splitters.resize(leaves - 1, *splitters.last().expect("kk >= 1"));
        tree.clear();
        tree.resize(leaves, StrRef::default());
        node_idx.clear();
        node_idx.resize(leaves, 0);
        build_eytzinger(&splitters, &mut tree, &mut node_idx, 1, 0, leaves - 1);
        bucket_of.clear();
        bucket_of.resize(n, 0);
        counts.clear();
        counts.resize(nbuckets, 0);
        for (i, slot) in bucket_of.iter_mut().enumerate() {
            let s = refs[begin + i];
            // Fixed-depth descent: exactly `levels` splitter comparisons,
            // no early exit; equality hits set a per-level mask bit.
            let mut node = 1usize;
            let mut eq_mask = 0u32;
            for t in 0..levels {
                let (ord, _) = ctx.lcp_compare(s, tree[node], depth);
                eq_mask |= u32::from(ord == Ordering::Equal) << t;
                node = 2 * node + usize::from(ord == Ordering::Greater);
            }
            // `node` is now 2^levels + (#padded splitters < s); the open
            // bucket collapses the padded tail copies onto bucket kk.
            let b = if eq_mask == 0 {
                2 * (node - leaves).min(kk)
            } else {
                // The node visited at level t is an ancestor of the final
                // leaf: recover it by shifting, then map the padded
                // splitter slot to its real (deduplicated) index.
                let t = eq_mask.trailing_zeros();
                let eq_node = node >> (levels - t);
                2 * (node_idx[eq_node] as usize).min(kk - 1) + 1
            };
            *slot = b as u32;
            counts[b] += 1;
        }
        // --- scatter (stable) -------------------------------------------
        if ctx.ref_scratch.len() < refs.len() {
            ctx.ref_scratch.resize(refs.len(), StrRef::default());
        }
        cursor.clear();
        cursor.resize(nbuckets, 0);
        let mut sum = 0usize;
        for b in 0..nbuckets {
            cursor[b] = sum;
            sum += counts[b];
        }
        for (i, &b) in bucket_of.iter().enumerate() {
            let cur = &mut cursor[b as usize];
            ctx.ref_scratch[begin + *cur] = refs[begin + i];
            *cur += 1;
        }
        refs[begin..end].copy_from_slice(&ctx.ref_scratch[begin..end]);
        // --- boundaries, equality runs, recursion ------------------------
        let mut pos = begin;
        for b in 0..nbuckets {
            let sz = counts[b];
            if sz == 0 {
                continue;
            }
            if pos > begin {
                boundaries.push((pos, depth));
            }
            if b % 2 == 1 {
                // Equality bucket of splitter (b−1)/2: all strings equal.
                let plen = splitters[(b - 1) / 2].len;
                lcps[pos + 1..pos + sz].fill(plen);
            } else if sz >= 2 {
                // Open bucket: strings share the LCP of its bounding
                // splitters (or the parent depth at the edges).
                let left = b.checked_sub(1).map(|_| splitters[b / 2 - 1]);
                let right = (b / 2 < kk).then(|| splitters[b / 2]);
                let sub_depth = match (left, right) {
                    (Some(l), Some(r)) => {
                        let (_, h) = ctx.lcp_compare(l, r, depth);
                        h
                    }
                    _ => depth,
                };
                if sz == n {
                    // Pathological sample: no progress; fall back.
                    mkqs::multikey_quicksort(
                        ctx,
                        &mut refs[pos..pos + sz],
                        &mut lcps[pos..pos + sz],
                        depth,
                    );
                } else {
                    stack.push(Task {
                        begin: pos,
                        end: pos + sz,
                        depth: sub_depth,
                    });
                }
            }
            pos += sz;
        }
    }
    // Resolve the deferred boundary entries against the final order.
    for (pos, d) in boundaries {
        let (_, h) = ctx.lcp_compare(refs[pos - 1], refs[pos], d);
        lcps[pos] = h;
    }
    let _ = RADIX_THRESHOLD; // same module family; silences unused import note
}

/// Standalone entry: sorts from depth 0, filling the complete LCP array.
pub fn string_sample_sort_standalone(
    arena: &[u8],
    refs: &mut [StrRef],
    lcps: &mut [u32],
) -> SortStats {
    assert_eq!(refs.len(), lcps.len());
    let mut ctx = Ctx::new(arena);
    string_sample_sort(&mut ctx, refs, lcps, 0, 0x5eed);
    if !lcps.is_empty() {
        lcps[0] = 0;
    }
    ctx.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::StringSet;
    use crate::lcp::verify_lcp_array;
    use proptest::prelude::*;
    use rand::prelude::*;
    // `super::*` also brings in this module's private `struct Rng`, which
    // shadows the `rand::Rng` trait; re-import the trait anonymously.
    use rand::Rng as _;

    fn check(mut set: StringSet) -> SortStats {
        let mut expect = set.to_vecs();
        expect.sort();
        let mut lcps = vec![0u32; set.len()];
        let (arena, refs) = set.as_parts_mut();
        let stats = string_sample_sort_standalone(arena, refs, &mut lcps);
        assert_eq!(set.to_vecs(), expect);
        verify_lcp_array(&set, &lcps).unwrap();
        stats
    }

    #[test]
    fn sorts_small_input_via_fallback() {
        check(StringSet::from_strs(&["pear", "apple", "fig", "date"]));
    }

    #[test]
    fn sorts_large_random_input() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut set = StringSet::new();
        for _ in 0..6000 {
            let len = rng.gen_range(0..24);
            let s: Vec<u8> = (0..len).map(|_| rng.gen_range(1..=255u8)).collect();
            set.push(&s);
        }
        check(set);
    }

    #[test]
    fn equality_buckets_defeat_duplicate_floods() {
        // 90% of the input is one of three hot strings: the equality
        // buckets must absorb them without recursion blowup.
        let mut rng = StdRng::seed_from_u64(22);
        let mut set = StringSet::new();
        for _ in 0..8000 {
            if rng.gen_bool(0.9) {
                set.push([b"hot_one".as_ref(), b"hot_two", b"hot_three"][rng.gen_range(0..3usize)]);
            } else {
                let len = rng.gen_range(0..10);
                let s: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'z')).collect();
                set.push(&s);
            }
        }
        check(set);
    }

    #[test]
    fn all_equal_large_input() {
        check(StringSet::from_strs(&["same"; 4000]));
    }

    #[test]
    fn skewed_lengths_and_shared_prefixes() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut set = StringSet::new();
        let prefix = "sharedprefix".repeat(4);
        for i in 0..3000u32 {
            if rng.gen_bool(0.3) {
                set.push(format!("{prefix}{:05}", i % 500).as_bytes());
            } else {
                set.push(format!("{:03}", i % 800).as_bytes());
            }
        }
        check(set);
    }

    #[test]
    fn agrees_with_radix_sort() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut a = StringSet::new();
        for _ in 0..4000 {
            let len = rng.gen_range(0..16);
            let s: Vec<u8> = (0..len).map(|_| rng.gen_range(b'0'..=b'z')).collect();
            a.push(&s);
        }
        let mut b = a.clone();
        let mut la = vec![0u32; a.len()];
        let mut lb = vec![0u32; b.len()];
        {
            let (arena, refs) = a.as_parts_mut();
            string_sample_sort_standalone(arena, refs, &mut la);
        }
        {
            let (arena, refs) = b.as_parts_mut();
            super::super::msd_radix_sort_standalone(arena, refs, &mut lb);
        }
        assert_eq!(a.to_vecs(), b.to_vecs());
        assert_eq!(la, lb);
    }

    /// Strategy for the adversary inputs the module doc claims to defeat:
    /// ~90% of strings drawn from a tiny hot pool (flooding the equality
    /// buckets), the rest skewed between very short and long-prefixed.
    /// Each string is derived from one random integer so the shimmed
    /// proptest's strategy set suffices.
    fn dup_heavy_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
        // Big enough that classification (not the mkqs fallback) runs.
        proptest::collection::vec(0u32..1_000_000, (SSS_THRESHOLD + 1)..(SSS_THRESHOLD * 3))
            .prop_map(|picks| {
                picks
                    .into_iter()
                    .map(|x| match x % 20 {
                        0..=7 => b"hot_alpha".to_vec(),
                        8..=14 => b"hot_beta".to_vec(),
                        15 | 16 => b"hot".to_vec(),
                        17 => Vec::new(),
                        18 => {
                            // Short string over a small alphabet.
                            let v = x / 20;
                            (0..(v % 6)).map(|i| b'a' + ((v >> i) % 5) as u8).collect()
                        }
                        _ => {
                            // Long shared prefix, short distinguishing tail.
                            let v = x / 20;
                            let mut s = b"sharedprefix_sharedprefix".to_vec();
                            s.extend((0..(v % 4)).map(|i| b'x' + ((v >> i) % 3) as u8));
                            s
                        }
                    })
                    .collect()
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn matches_std_sort(strs in proptest::collection::vec(
            proptest::collection::vec(b'a'..=b'd', 0..10), 0..1500)) {
            let set = StringSet::from_iter_bytes(strs.iter().map(|s| s.as_slice()));
            check(set);
        }

        /// Equality-bucket path vs the naive oracle: duplicate floods and
        /// skewed prefixes must classify into the correct 2k′−1 buckets
        /// and produce the oracle's exact order and LCP array.
        #[test]
        fn equality_buckets_match_naive_oracle(strs in dup_heavy_strategy()) {
            let mut set = StringSet::from_iter_bytes(strs.iter().map(|s| s.as_slice()));
            let mut oracle = set.clone();
            let mut lcps = vec![0u32; set.len()];
            {
                let (arena, refs) = set.as_parts_mut();
                string_sample_sort_standalone(arena, refs, &mut lcps);
            }
            let oracle_lcps = crate::sort::naive_sort_with_lcp(&mut oracle);
            prop_assert_eq!(set.to_vecs(), oracle.to_vecs());
            prop_assert_eq!(lcps, oracle_lcps);
        }
    }
}
