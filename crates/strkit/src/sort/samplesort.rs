//! Sequential string sample sort — the alternative base sorter of §II-A.
//!
//! "Our study [6] identifies several other efficient sequential string
//! sorters. … For example, for large alphabets and skewed inputs strings,
//! sample sort might be better." This is a (scalar) variant of Bingmann &
//! Sanders' String Sample Sort: draw a random sample, sort it, pick k−1
//! splitters, classify every string into 2k−1 buckets — *equality buckets*
//! for strings equal to a splitter (which need no further work and defeat
//! duplicate-heavy adversaries), open buckets in between — and recurse.
//!
//! LCP handling: strings in an open bucket `(tᵢ, tᵢ₊₁]` share at least
//! `LCP(tᵢ, tᵢ₊₁)` characters (standard sorted-order fact), so the
//! recursion passes that depth down; equality buckets are filled with
//! LCP = |t| directly; boundary entries between adjacent non-empty
//! buckets are computed with one LCP-extending comparison each.
//!
//! Classification compares against splitters starting at the common
//! depth, so like the rest of the stack it inspects distinguishing-prefix
//! characters (plus O(log k) splitter comparisons per string).

use super::{mkqs, Ctx, SortStats, RADIX_THRESHOLD};
use crate::arena::StrRef;
use std::cmp::Ordering;

/// Oversampling factor: sample size = OVERSAMPLE·k.
const OVERSAMPLE: usize = 4;
/// Bucket-count bounds per recursion level.
const MIN_BUCKETS: usize = 4;
const MAX_BUCKETS: usize = 64;
/// Below this, hand off to multikey quicksort.
const SSS_THRESHOLD: usize = 512;

/// Deterministic splitmix64 (local copy; `dss-strkit` stays dependency-free).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        ((self.next() as u128 * bound as u128) >> 64) as usize
    }
}

struct Task {
    begin: usize,
    end: usize,
    depth: u32,
}

/// Sorts `refs` with LCP output into `lcps[1..]` (`lcps[0]` is the
/// caller's). Precondition: common prefix `depth`.
pub(crate) fn string_sample_sort(
    ctx: &mut Ctx<'_>,
    refs: &mut [StrRef],
    lcps: &mut [u32],
    depth: u32,
    rng_seed: u64,
) {
    debug_assert_eq!(refs.len(), lcps.len());
    let mut rng = Rng(rng_seed ^ 0x5a5a_1234);
    // Bucket-boundary LCP entries depend on the *final* neighbours, which
    // are only known once the adjacent buckets are internally sorted;
    // record (position, known common depth) and resolve at the end.
    let mut boundaries: Vec<(usize, u32)> = Vec::new();
    let mut stack = vec![Task {
        begin: 0,
        end: refs.len(),
        depth,
    }];
    while let Some(Task { begin, end, depth }) = stack.pop() {
        let n = end - begin;
        if n < 2 {
            continue;
        }
        if n <= SSS_THRESHOLD {
            mkqs::multikey_quicksort(ctx, &mut refs[begin..end], &mut lcps[begin..end], depth);
            continue;
        }
        // --- sample and choose splitters -------------------------------
        let k = (n / 256)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let sample_size = (OVERSAMPLE * k).min(n);
        let mut sample: Vec<StrRef> = (0..sample_size)
            .map(|_| refs[begin + rng.below(n)])
            .collect();
        let mut sample_lcps = vec![0u32; sample.len()];
        mkqs::multikey_quicksort(ctx, &mut sample, &mut sample_lcps, depth);
        let mut splitters: Vec<StrRef> = (1..k).map(|j| sample[(j * sample.len()) / k]).collect();
        // Drop duplicate splitters (their equality buckets would be empty
        // anyway and binary search wants strictly sorted pivots).
        splitters.dedup_by(|a, b| ctx.bytes(*a) == ctx.bytes(*b));
        if splitters.is_empty() {
            // Degenerate sample: all sampled strings equal. Partition by
            // "equal to that string" vs rest, then recurse on the rest.
            let pivot = sample[0];
            let (mut eq, mut rest): (Vec<StrRef>, Vec<StrRef>) = (Vec::new(), Vec::new());
            let mut less: Vec<StrRef> = Vec::new();
            for &r in refs[begin..end].iter() {
                let (ord, _) = ctx.lcp_compare(r, pivot, depth);
                match ord {
                    Ordering::Less => less.push(r),
                    Ordering::Equal => eq.push(r),
                    Ordering::Greater => rest.push(r),
                }
            }
            let (ls, es) = (less.len(), eq.len());
            refs[begin..begin + ls].copy_from_slice(&less);
            refs[begin + ls..begin + ls + es].copy_from_slice(&eq);
            refs[begin + ls + es..end].copy_from_slice(&rest);
            // Equality run: LCP = |pivot| internally.
            let plen = pivot.len;
            lcps[begin + ls + 1..begin + ls + es].fill(plen);
            if ls > 0 {
                boundaries.push((begin + ls, depth));
                stack.push(Task {
                    begin,
                    end: begin + ls,
                    depth,
                });
            }
            if ls + es < n {
                boundaries.push((begin + ls + es, depth));
                stack.push(Task {
                    begin: begin + ls + es,
                    end,
                    depth,
                });
            }
            continue;
        }
        // --- classify into 2k'−1 buckets --------------------------------
        // Bucket ids: 2b = open bucket before splitter b; 2b+1 = equality
        // bucket of splitter b; last open bucket id = 2·k'.
        let kk = splitters.len();
        let nbuckets = 2 * kk + 1;
        let mut bucket_of = vec![0u32; n];
        let mut counts = vec![0usize; nbuckets];
        for i in 0..n {
            let s = refs[begin + i];
            // Binary search: first splitter ≥ s.
            let (mut lo, mut hi) = (0usize, kk);
            let mut equal: Option<usize> = None;
            while lo < hi {
                let mid = (lo + hi) / 2;
                let (ord, _) = ctx.lcp_compare(s, splitters[mid], depth);
                match ord {
                    Ordering::Less => hi = mid,
                    Ordering::Greater => lo = mid + 1,
                    Ordering::Equal => {
                        equal = Some(mid);
                        break;
                    }
                }
            }
            let b = match equal {
                Some(m) => 2 * m + 1,
                None => 2 * lo,
            };
            bucket_of[i] = b as u32;
            counts[b] += 1;
        }
        // --- scatter (stable) -------------------------------------------
        if ctx.ref_scratch.len() < refs.len() {
            ctx.ref_scratch.resize(refs.len(), StrRef::default());
        }
        let mut cursor = vec![0usize; nbuckets];
        let mut sum = 0usize;
        for b in 0..nbuckets {
            cursor[b] = sum;
            sum += counts[b];
        }
        for i in 0..n {
            let b = bucket_of[i] as usize;
            ctx.ref_scratch[begin + cursor[b]] = refs[begin + i];
            cursor[b] += 1;
        }
        refs[begin..end].copy_from_slice(&ctx.ref_scratch[begin..end]);
        // --- boundaries, equality runs, recursion ------------------------
        let mut pos = begin;
        for b in 0..nbuckets {
            let sz = counts[b];
            if sz == 0 {
                continue;
            }
            if pos > begin {
                boundaries.push((pos, depth));
            }
            if b % 2 == 1 {
                // Equality bucket of splitter (b−1)/2: all strings equal.
                let plen = splitters[(b - 1) / 2].len;
                lcps[pos + 1..pos + sz].fill(plen);
            } else if sz >= 2 {
                // Open bucket: strings share the LCP of its bounding
                // splitters (or the parent depth at the edges).
                let left = b.checked_sub(1).map(|_| splitters[b / 2 - 1]);
                let right = (b / 2 < kk).then(|| splitters[b / 2]);
                let sub_depth = match (left, right) {
                    (Some(l), Some(r)) => {
                        let (_, h) = ctx.lcp_compare(l, r, depth);
                        h
                    }
                    _ => depth,
                };
                if sz == n {
                    // Pathological sample: no progress; fall back.
                    mkqs::multikey_quicksort(
                        ctx,
                        &mut refs[pos..pos + sz],
                        &mut lcps[pos..pos + sz],
                        depth,
                    );
                } else {
                    stack.push(Task {
                        begin: pos,
                        end: pos + sz,
                        depth: sub_depth,
                    });
                }
            }
            pos += sz;
        }
    }
    // Resolve the deferred boundary entries against the final order.
    for (pos, d) in boundaries {
        let (_, h) = ctx.lcp_compare(refs[pos - 1], refs[pos], d);
        lcps[pos] = h;
    }
    let _ = RADIX_THRESHOLD; // same module family; silences unused import note
}

/// Standalone entry: sorts from depth 0, filling the complete LCP array.
pub fn string_sample_sort_standalone(
    arena: &[u8],
    refs: &mut [StrRef],
    lcps: &mut [u32],
) -> SortStats {
    assert_eq!(refs.len(), lcps.len());
    let mut ctx = Ctx::new(arena);
    string_sample_sort(&mut ctx, refs, lcps, 0, 0x5eed);
    if !lcps.is_empty() {
        lcps[0] = 0;
    }
    ctx.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::StringSet;
    use crate::lcp::verify_lcp_array;
    use proptest::prelude::*;
    use rand::prelude::*;
    // `super::*` also brings in this module's private `struct Rng`, which
    // shadows the `rand::Rng` trait; re-import the trait anonymously.
    use rand::Rng as _;

    fn check(mut set: StringSet) -> SortStats {
        let mut expect = set.to_vecs();
        expect.sort();
        let mut lcps = vec![0u32; set.len()];
        let (arena, refs) = set.as_parts_mut();
        let stats = string_sample_sort_standalone(arena, refs, &mut lcps);
        assert_eq!(set.to_vecs(), expect);
        verify_lcp_array(&set, &lcps).unwrap();
        stats
    }

    #[test]
    fn sorts_small_input_via_fallback() {
        check(StringSet::from_strs(&["pear", "apple", "fig", "date"]));
    }

    #[test]
    fn sorts_large_random_input() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut set = StringSet::new();
        for _ in 0..6000 {
            let len = rng.gen_range(0..24);
            let s: Vec<u8> = (0..len).map(|_| rng.gen_range(1..=255u8)).collect();
            set.push(&s);
        }
        check(set);
    }

    #[test]
    fn equality_buckets_defeat_duplicate_floods() {
        // 90% of the input is one of three hot strings: the equality
        // buckets must absorb them without recursion blowup.
        let mut rng = StdRng::seed_from_u64(22);
        let mut set = StringSet::new();
        for _ in 0..8000 {
            if rng.gen_bool(0.9) {
                set.push([b"hot_one".as_ref(), b"hot_two", b"hot_three"][rng.gen_range(0..3usize)]);
            } else {
                let len = rng.gen_range(0..10);
                let s: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'z')).collect();
                set.push(&s);
            }
        }
        check(set);
    }

    #[test]
    fn all_equal_large_input() {
        check(StringSet::from_strs(&["same"; 4000]));
    }

    #[test]
    fn skewed_lengths_and_shared_prefixes() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut set = StringSet::new();
        let prefix = "sharedprefix".repeat(4);
        for i in 0..3000u32 {
            if rng.gen_bool(0.3) {
                set.push(format!("{prefix}{:05}", i % 500).as_bytes());
            } else {
                set.push(format!("{:03}", i % 800).as_bytes());
            }
        }
        check(set);
    }

    #[test]
    fn agrees_with_radix_sort() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut a = StringSet::new();
        for _ in 0..4000 {
            let len = rng.gen_range(0..16);
            let s: Vec<u8> = (0..len).map(|_| rng.gen_range(b'0'..=b'z')).collect();
            a.push(&s);
        }
        let mut b = a.clone();
        let mut la = vec![0u32; a.len()];
        let mut lb = vec![0u32; b.len()];
        {
            let (arena, refs) = a.as_parts_mut();
            string_sample_sort_standalone(arena, refs, &mut la);
        }
        {
            let (arena, refs) = b.as_parts_mut();
            super::super::msd_radix_sort_standalone(arena, refs, &mut lb);
        }
        assert_eq!(a.to_vecs(), b.to_vecs());
        assert_eq!(la, lb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn matches_std_sort(strs in proptest::collection::vec(
            proptest::collection::vec(b'a'..=b'd', 0..10), 0..1500)) {
            let set = StringSet::from_iter_bytes(strs.iter().map(|s| s.as_slice()));
            check(set);
        }
    }
}
