//! Work-stealing parallel driver over the shared partition kernel.
//!
//! The sequential sorter (`radix::msd_radix_sort`) is a LIFO stack of
//! [`SortTask`] items fed through [`radix::partition_task`]; this module
//! is the *other* scheduler over the identical kernel: per-worker
//! [`crossbeam::deque`] deques plus a global injector. Each worker pops
//! locally (LIFO — depth-first, cache-warm), steals oldest-first from the
//! injector or a sibling when empty, and retires when the global pending
//! counter hits zero.
//!
//! **Threshold spawning.** Blocks of at most [`PAR_TASK_MIN`] strings are
//! drained to completion on the worker that holds them with a private
//! sequential stack — only blocks above the threshold are partitioned one
//! step at a time and their subtasks published for stealing. Small tasks
//! therefore never pay deque traffic.
//!
//! **Why output is byte-identical to the sequential sorter.** The kernel's
//! determinism contract (see `partition_task`) guarantees each task writes
//! only inside its own range, every subtask's boundary LCP
//! `lcps[subtask.begin]` is written by the *parent* before the subtask is
//! published, and all written values depend only on block contents and
//! depth. Queued tasks have pairwise-disjoint ranges, so any interleaving
//! across any number of workers produces the same `refs` permutation and
//! the same LCP array — the stitching is deterministic by construction,
//! not by synchronization order. The same argument makes the work
//! counters exact: the task tree (and hence every pass's character
//! charge) is independent of scheduling.

use super::{radix, Ctx, SortStats, SortTask};
use crate::arena::{StrRef, StringSet};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Blocks of at most this many strings are never split across workers:
/// the holder drains them sequentially. Keeps task-publication overhead
/// (deque traffic + pending-counter updates) off the myriad small blocks
/// a string sort produces.
///
/// Tuned coarsely (any value well above the radix thresholds works); this
/// constant is the single source of truth — all guards reference it,
/// nothing hard-codes the value.
pub const PAR_TASK_MIN: usize = 2048;

/// Parses a `DSS_THREADS` value. `None` (unset) defers to the caller's
/// default; anything that is not a positive integer panics with the
/// offending value — a typo'd knob must fail loudly, not silently sort
/// single-threaded (same policy as `DSS_EXCHANGE_MODE`).
pub fn parse_dss_threads(raw: Option<&str>) -> Option<usize> {
    let raw = raw?;
    match raw.trim().parse::<usize>() {
        Ok(t) if t >= 1 => Some(t),
        _ => panic!("DSS_THREADS must be a positive integer, got '{raw}'"),
    }
}

/// Worker-thread count per PE: the validated `DSS_THREADS` knob,
/// defaulting to `std::thread::available_parallelism()`. Cached after the
/// first call, like `ExchangeMode::from_env`.
pub fn threads_from_env() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| match std::env::var("DSS_THREADS") {
        Ok(v) => parse_dss_threads(Some(&v)).unwrap(),
        Err(std::env::VarError::NotPresent) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Err(e) => panic!("DSS_THREADS must be a positive integer: {e}"),
    })
}

/// Raw views of the `refs`/`scratch`/`lcps` arrays shared by all workers.
/// Safe use rests on the scheduler invariant that queued tasks have
/// disjoint ranges and each task is materialized by exactly one worker at
/// a time. The ping-pong scratch buffer must be shared (not per-worker):
/// a flipped task's handles live in the scratch range written by its
/// parent, which may have run on a different worker — the deque transfer
/// provides the happens-before edge, exactly as for `refs`.
struct SharedSlices {
    refs: *mut StrRef,
    scratch: *mut StrRef,
    lcps: *mut u32,
    len: usize,
}

// SAFETY: the pointers target memory that outlives the sort scope, and
// range disjointness (enforced by the task scheduler, see `range`) keeps
// concurrent access non-overlapping.
unsafe impl Send for SharedSlices {}
unsafe impl Sync for SharedSlices {}

impl SharedSlices {
    /// Materializes the mutable sub-slices of one task.
    ///
    /// # Safety
    ///
    /// The caller must hold the exclusive right to `[begin, end)`: the
    /// scheduler hands every task to exactly one worker, ranges of
    /// distinct queued tasks are disjoint by construction (the kernel
    /// partitions a task into non-overlapping buckets), and a parent's
    /// borrow ends before its subtasks are published — the deque mutex
    /// provides the cross-thread happens-before edge.
    // The `&self -> &mut` shape is the whole point of the wrapper: shared
    // handle, caller-proven disjoint exclusive ranges.
    #[allow(clippy::mut_from_ref)]
    unsafe fn range(&self, begin: usize, end: usize) -> (&mut [StrRef], &mut [StrRef], &mut [u32]) {
        debug_assert!(begin <= end && end <= self.len);
        (
            std::slice::from_raw_parts_mut(self.refs.add(begin), end - begin),
            std::slice::from_raw_parts_mut(self.scratch.add(begin), end - begin),
            std::slice::from_raw_parts_mut(self.lcps.add(begin), end - begin),
        )
    }
}

/// Sorts `refs` with `threads` workers, writing the block's LCP entries
/// into `lcps[1..]` — output (strings *and* LCP array) is byte-identical
/// to [`super::sort_refs_with_lcp`] for every thread count. `threads == 1`
/// and small inputs take the sequential path directly.
pub fn par_sort_refs_with_lcp(
    arena: &[u8],
    refs: &mut [StrRef],
    lcps: &mut [u32],
    threads: usize,
) -> SortStats {
    assert_eq!(refs.len(), lcps.len());
    assert!(threads >= 1, "thread count must be positive, got 0");
    let n = refs.len();
    if n == 0 {
        return SortStats::default();
    }
    if threads == 1 || n <= PAR_TASK_MIN {
        return super::sort_refs_with_lcp(arena, refs, lcps);
    }
    // Full-length ping-pong scatter buffer, shared across workers (see
    // `SharedSlices`); the sequential path allocates the same buffer.
    let mut scratch = vec![StrRef::default(); n];
    let shared = SharedSlices {
        refs: refs.as_mut_ptr(),
        scratch: scratch.as_mut_ptr(),
        lcps: lcps.as_mut_ptr(),
        len: n,
    };
    let injector = Injector::new();
    injector.push(SortTask {
        begin: 0,
        end: n,
        depth: 0,
        flipped: false,
    });
    // Tasks queued or in flight; workers retire when this reaches zero.
    let pending = AtomicUsize::new(1);
    let workers: Vec<Worker<SortTask>> = (0..threads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<SortTask>> = workers.iter().map(|w| w.stealer()).collect();
    let stats = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(wi, worker)| {
                let (injector, stealers, pending) = (&injector, &stealers, &pending);
                let shared = &shared;
                scope
                    .builder()
                    .name(format!("dss-sort{wi}"))
                    .spawn(move |_| {
                        worker_loop(arena, shared, worker, wi, injector, stealers, pending)
                    })
                    .expect("spawn sort worker")
            })
            .collect();
        let mut total = SortStats::default();
        for h in handles {
            total.absorb(h.join().expect("sort worker panicked"));
        }
        total
    })
    .expect("sort worker scope");
    lcps[0] = 0;
    stats
}

/// Sorts a [`StringSet`] in place with `threads` workers, returning its
/// LCP array plus work counters. Parallel counterpart of
/// [`super::sort_with_lcp`]; identical output for every thread count.
pub fn par_sort_with_lcp(set: &mut StringSet, threads: usize) -> (Vec<u32>, SortStats) {
    let mut lcps = vec![0u32; set.len()];
    let (arena, refs) = set.as_parts_mut();
    let stats = par_sort_refs_with_lcp(arena, refs, &mut lcps, threads);
    (lcps, stats)
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    arena: &[u8],
    shared: &SharedSlices,
    worker: Worker<SortTask>,
    wi: usize,
    injector: &Injector<SortTask>,
    stealers: &[Stealer<SortTask>],
    pending: &AtomicUsize,
) -> SortStats {
    let mut ctx = Ctx::new(arena);
    let mut subtasks: Vec<SortTask> = Vec::new();
    let mut seq_queue: Vec<SortTask> = Vec::new();
    loop {
        let Some(task) = worker.pop().or_else(|| steal_task(wi, injector, stealers)) else {
            if pending.load(Ordering::SeqCst) == 0 {
                return ctx.stats;
            }
            std::thread::yield_now();
            continue;
        };
        {
            let _g = dss_trace::span_args(
                dss_trace::cat::SORT_TASK,
                "task",
                [
                    ("worker", wi as u64),
                    ("strings", (task.end - task.begin) as u64),
                ],
            );
            process_task(shared, &mut ctx, task, &mut subtasks, &mut seq_queue);
        }
        // Account for the children *before* retiring the parent, so the
        // pending counter can only reach zero once the whole task tree —
        // including everything the children will spawn — has drained.
        if !subtasks.is_empty() {
            pending.fetch_add(subtasks.len(), Ordering::SeqCst);
            for t in subtasks.drain(..) {
                worker.push(t);
            }
        }
        pending.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs one claimed task: small blocks are drained to completion with a
/// private sequential stack; larger ones take a single kernel step whose
/// subtasks are translated back to absolute positions for publication.
fn process_task(
    shared: &SharedSlices,
    ctx: &mut Ctx<'_>,
    task: SortTask,
    out: &mut Vec<SortTask>,
    seq_queue: &mut Vec<SortTask>,
) {
    let n = task.end - task.begin;
    // SAFETY: `task` came off a queue, so this worker holds the exclusive
    // right to its range (see `SharedSlices::range`).
    let (refs, scratch, lcps) = unsafe { shared.range(task.begin, task.end) };
    let rel = SortTask {
        begin: 0,
        end: n,
        depth: task.depth,
        flipped: task.flipped,
    };
    if n <= PAR_TASK_MIN {
        debug_assert!(seq_queue.is_empty());
        seq_queue.push(rel);
        while let Some(t) = seq_queue.pop() {
            radix::partition_task(ctx, refs, scratch, lcps, t, seq_queue);
        }
    } else {
        debug_assert!(out.is_empty());
        radix::partition_task(ctx, refs, scratch, lcps, rel, out);
        for t in out.iter_mut() {
            t.begin += task.begin;
            t.end += task.begin;
        }
    }
}

/// Steal order: global injector first (oldest, largest tasks), then
/// sibling deques. `Retry` verdicts are looped on.
fn steal_task(
    wi: usize,
    injector: &Injector<SortTask>,
    stealers: &[Stealer<SortTask>],
) -> Option<SortTask> {
    loop {
        match injector.steal() {
            Steal::Success(t) => return Some(t),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    for (i, s) in stealers.iter().enumerate() {
        if i == wi {
            continue;
        }
        loop {
            match s.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_set(n: usize, max_len: usize, seed: u64) -> StringSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = StringSet::new();
        for _ in 0..n {
            let len = rng.gen_range(0..max_len);
            let s: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'f')).collect();
            set.push(&s);
        }
        set
    }

    #[test]
    fn parse_accepts_positive_integers() {
        assert_eq!(parse_dss_threads(None), None);
        assert_eq!(parse_dss_threads(Some("1")), Some(1));
        assert_eq!(parse_dss_threads(Some("4")), Some(4));
        assert_eq!(parse_dss_threads(Some(" 16 ")), Some(16));
    }

    #[test]
    #[should_panic(expected = "DSS_THREADS must be a positive integer, got '0'")]
    fn parse_rejects_zero() {
        parse_dss_threads(Some("0"));
    }

    #[test]
    #[should_panic(expected = "DSS_THREADS must be a positive integer, got 'four'")]
    fn parse_rejects_garbage() {
        parse_dss_threads(Some("four"));
    }

    #[test]
    fn matches_sequential_above_threshold() {
        // Force real parallel scheduling: well above PAR_TASK_MIN.
        let mut seq = random_set(3 * PAR_TASK_MIN, 24, 99);
        let mut par = seq.clone();
        let (seq_lcps, seq_stats) = super::super::sort_with_lcp(&mut seq);
        for threads in [2, 3, 4] {
            let mut set = par.clone();
            let (lcps, stats) = par_sort_with_lcp(&mut set, threads);
            assert_eq!(set.refs(), seq.refs(), "refs differ at t={threads}");
            assert_eq!(lcps, seq_lcps, "lcps differ at t={threads}");
            assert_eq!(stats, seq_stats, "stats differ at t={threads}");
        }
        // threads == 1 must be the sequential path bit-for-bit too.
        let (lcps, stats) = par_sort_with_lcp(&mut par, 1);
        assert_eq!(par.refs(), seq.refs());
        assert_eq!(lcps, seq_lcps);
        assert_eq!(stats, seq_stats);
    }

    #[test]
    fn handles_all_equal_and_tiny_inputs() {
        let mut a = StringSet::from_strs(&["dup"; 4000]);
        let mut b = a.clone();
        let (la, _) = super::super::sort_with_lcp(&mut a);
        let (lb, _) = par_sort_with_lcp(&mut b, 4);
        assert_eq!(a.refs(), b.refs());
        assert_eq!(la, lb);

        let mut empty = StringSet::new();
        let (lcps, stats) = par_sort_with_lcp(&mut empty, 4);
        assert!(lcps.is_empty());
        assert_eq!(stats, SortStats::default());
    }
}
