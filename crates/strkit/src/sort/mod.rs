//! Sequential string sorting with LCP-array output.
//!
//! The paper's base-case sorter stack (§II-A), reproducing the tlx
//! implementations: **MSD string radix sort** partitions by the character
//! at the current depth and recurses; blocks below a threshold fall back
//! to **multikey quicksort** (Bentley–Sedgewick), whose own base case is
//! **LCP-aware insertion sort**. All three produce the LCP array as a
//! by-product "at no additional cost" and inspect only distinguishing
//! prefix characters, giving O(D + n log σ) total work.
//!
//! Every sorter fills `lcps[1..n]` of the block it sorts and leaves
//! `lcps[0]` untouched (it is the boundary with the preceding block and
//! belongs to the caller; the facade sets the global `lcps[0] = 0`).

mod insertion;
mod mkqs;
mod parallel;
mod radix;
mod samplesort;

pub use insertion::lcp_insertion_sort_standalone;
pub use mkqs::multikey_quicksort_standalone;
pub use parallel::{
    par_sort_refs_with_lcp, par_sort_with_lcp, parse_dss_threads, threads_from_env, PAR_TASK_MIN,
};
pub use radix::msd_radix_sort_standalone;
pub use radix::RADIX16_MIN;
pub use samplesort::string_sample_sort_standalone;

use crate::arena::{StrRef, StringSet};

/// One pending work item of the task-granular sorter: the block's handles
/// live in `refs[begin..end]` (or, when `flipped`, in the same range of
/// the ping-pong scratch buffer), all share `depth` prefix characters,
/// and `lcps[begin]` (the boundary with the preceding block) has already
/// been written by whoever created the task. Both the sequential driver
/// ([`radix::msd_radix_sort`]'s LIFO stack) and the work-stealing
/// parallel driver (`parallel.rs`) schedule these items over the same
/// partition kernel, [`radix::partition_task`] — the two differ only in
/// scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SortTask {
    pub begin: usize,
    pub end: usize,
    pub depth: u32,
    /// Ping-pong orientation: `false` = the block's current handles are
    /// in `refs`, `true` = in the scratch buffer (the parent's radix pass
    /// scattered them there and skipped the copy-back). The final sorted
    /// handles always land back in `refs` — terminal steps restore the
    /// orientation. See `radix.rs`.
    pub flipped: bool,
}

/// Block sizes below this use multikey quicksort instead of radix passes.
pub(crate) const RADIX_THRESHOLD: usize = 64;
/// Block sizes below this use LCP insertion sort.
///
/// Tuned on a 1-core host together with [`RADIX16_MIN`] (see the ROADMAP
/// tuning note); this constant is the single source of truth — all guards
/// reference it, nothing hard-codes the value.
pub const INSERTION_THRESHOLD: usize = 8;

/// Gather-loop lookahead distance of the software prefetches issued by
/// the radix passes (see `prefetch_str_char`): while processing string
/// `i`, the depth-character of string `i + PREFETCH_DIST` is pulled
/// towards L1 so the arena misses overlap instead of serializing.
///
/// Tuned on a 1-core host together with [`RADIX16_MIN`] (see the ROADMAP
/// tuning note); this constant is the single source of truth — all gather
/// loops reference it, nothing hard-codes the value.
pub const PREFETCH_DIST: usize = 16;

/// Hints the CPU to pull the depth-character of `r` into L1 ahead of the
/// gather loop's read. The arena fetches of a radix/mkqs pass are the
/// classic string-sorting cache miss (each string lives elsewhere in the
/// arena); a software prefetch `PREFETCH_DIST` elements ahead overlaps
/// those misses instead of serializing them. No-op off x86_64.
#[inline(always)]
pub(crate) fn prefetch_str_char(arena: &[u8], r: StrRef, depth: u32) {
    #[cfg(target_arch = "x86_64")]
    if depth < r.len {
        // SAFETY: `begin + depth < begin + len ≤ arena.len()` for every
        // well-formed handle, and prefetch has no architectural effect
        // beyond the cache regardless.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                arena.as_ptr().add((r.begin + depth) as usize) as *const i8,
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (arena, r, depth);
    }
}

/// Work counters exposed by the sequential sorters. `chars_accessed`
/// approximates the paper's "characters inspected" measure (the quantity
/// lower-bounded by D).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SortStats {
    /// Character fetches performed while sorting.
    pub chars_accessed: u64,
}

impl SortStats {
    /// Merges counters from a sub-computation.
    pub fn absorb(&mut self, other: SortStats) {
        self.chars_accessed += other.chars_accessed;
    }
}

/// Shared sorting context: the arena, reusable scratch buffers and work
/// counters. One `Ctx` lives per top-level sort call; scratch memory is
/// recycled across radix passes (a hot-loop allocation would dominate).
pub(crate) struct Ctx<'a> {
    pub arena: &'a [u8],
    pub stats: SortStats,
    /// Scratch handles for sample sort's out-of-place bucket scatter.
    /// (The radix passes ping-pong between the handle array and a
    /// dedicated full-length scratch buffer instead — see `radix.rs`.)
    pub ref_scratch: Vec<StrRef>,
    /// Cached bucket keys so each radix pass gathers characters once.
    pub key_scratch: Vec<u8>,
    /// Caching mkqs: per-string depth-characters, swapped along with the
    /// handles (see `mkqs.rs`). Kept out of `key_scratch`, which the
    /// radix passes use for their own gathered bucket keys.
    pub mkqs_cache: Vec<u8>,
    /// Caching mkqs task stack, reused across the thousands of small
    /// blocks one radix sort hands over.
    pub mkqs_stack: Vec<mkqs::Task>,
    /// 16-bit radix: bucket counters (allocated on first large block),
    /// zeroed via `used16` after every pass.
    pub count16: Vec<u32>,
    /// 16-bit radix: gathered character-pair keys.
    pub key16_scratch: Vec<u16>,
    /// 16-bit radix: occupied bucket keys of the current pass.
    pub used16: Vec<u16>,
    /// 16-bit radix: `(key, start offset)` of each occupied bucket.
    pub bucket16: Vec<(u16, u32)>,
}

impl<'a> Ctx<'a> {
    pub fn new(arena: &'a [u8]) -> Self {
        Self {
            arena,
            stats: SortStats::default(),
            ref_scratch: Vec::new(),
            key_scratch: Vec::new(),
            mkqs_cache: Vec::new(),
            mkqs_stack: Vec::new(),
            count16: Vec::new(),
            key16_scratch: Vec::new(),
            used16: Vec::new(),
            bucket16: Vec::new(),
        }
    }

    /// Borrows the bytes of a handle.
    #[inline]
    pub fn bytes(&self, r: StrRef) -> &'a [u8] {
        &self.arena[r.begin as usize..r.end() as usize]
    }

    /// LCP-extending three-way comparison from known common prefix `h`,
    /// charging the inspected characters to the stats.
    #[inline]
    pub fn lcp_compare(&mut self, a: StrRef, b: StrRef, h: u32) -> (std::cmp::Ordering, u32) {
        let (ord, full) = crate::lcp::lcp_compare(self.bytes(a), self.bytes(b), h);
        self.stats.chars_accessed += (full - h.min(full)) as u64 + 1;
        (ord, full)
    }
}

/// Sorts `refs` (handles into `arena`), writing the block's LCP entries
/// into `lcps[1..]`. The main entry point used by the distributed
/// algorithms for their local sorting step.
pub fn sort_refs_with_lcp(arena: &[u8], refs: &mut [StrRef], lcps: &mut [u32]) -> SortStats {
    assert_eq!(refs.len(), lcps.len());
    if refs.is_empty() {
        return SortStats::default();
    }
    let mut ctx = Ctx::new(arena);
    let mut scratch = radix::scratch_for(refs.len());
    radix::msd_radix_sort(&mut ctx, refs, &mut scratch, lcps, 0);
    lcps[0] = 0;
    ctx.stats
}

/// Sorts a [`StringSet`] in place and returns its LCP array plus work
/// counters.
pub fn sort_with_lcp(set: &mut StringSet) -> (Vec<u32>, SortStats) {
    let mut lcps = vec![0u32; set.len()];
    let (arena, refs) = set.as_parts_mut();
    let stats = sort_refs_with_lcp(arena, refs, &mut lcps);
    (lcps, stats)
}

/// Reference comparison sort (std sort + naive LCP recomputation).
/// Oracle for tests and the "atomic sorting is wasteful" baselines.
pub fn naive_sort_with_lcp(set: &mut StringSet) -> Vec<u32> {
    let (arena, refs) = set.as_parts_mut();
    refs.sort_by(|&a, &b| {
        arena[a.begin as usize..a.end() as usize].cmp(&arena[b.begin as usize..b.end() as usize])
    });
    crate::lcp::lcp_array_naive(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcp::verify_lcp_array;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn check_sorted_with_lcp(mut set: StringSet) {
        let mut expect = set.to_vecs();
        expect.sort();
        let (lcps, _) = sort_with_lcp(&mut set);
        assert_eq!(set.to_vecs(), expect, "sorted order mismatch");
        verify_lcp_array(&set, &lcps).expect("lcp array");
    }

    #[test]
    fn sorts_paper_example() {
        let set = StringSet::from_strs(&[
            "alpha", "order", "alps", "algae", "sorter", "snow", "algo", "sorbet", "sorted",
            "orange", "soul", "organ",
        ]);
        check_sorted_with_lcp(set);
    }

    #[test]
    fn sorts_empty_and_tiny() {
        check_sorted_with_lcp(StringSet::new());
        check_sorted_with_lcp(StringSet::from_strs(&["one"]));
        check_sorted_with_lcp(StringSet::from_strs(&["b", "a"]));
        check_sorted_with_lcp(StringSet::from_strs(&["", "", ""]));
    }

    #[test]
    fn sorts_duplicates_and_prefixes() {
        check_sorted_with_lcp(StringSet::from_strs(&[
            "aaa", "aa", "a", "", "aaa", "aab", "aa", "aaaa", "aaa",
        ]));
    }

    #[test]
    fn sorts_all_equal_large() {
        let strs = vec!["samestring"; 500];
        check_sorted_with_lcp(StringSet::from_strs(&strs));
    }

    #[test]
    fn sorts_single_char_alphabet() {
        // Unary strings of varying length: exercises the bucket-0 path.
        let mut rng = StdRng::seed_from_u64(7);
        let mut set = StringSet::new();
        for _ in 0..300 {
            let len = rng.gen_range(0..40);
            set.push(&vec![b'a'; len]);
        }
        check_sorted_with_lcp(set);
    }

    #[test]
    fn sorts_random_large() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut set = StringSet::new();
        for _ in 0..5000 {
            let len = rng.gen_range(0..30);
            let s: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'e')).collect();
            set.push(&s);
        }
        check_sorted_with_lcp(set);
    }

    #[test]
    fn sorts_long_common_prefixes() {
        let mut set = StringSet::new();
        let prefix = vec![b'x'; 1000];
        for i in 0..200u32 {
            let mut s = prefix.clone();
            s.extend_from_slice(format!("{:04}", 199 - i).as_bytes());
            set.push(&s);
        }
        check_sorted_with_lcp(set);
    }

    #[test]
    fn work_is_near_distinguishing_prefix() {
        // n strings sharing no prefixes: work must be O(n log σ + n), far
        // below total characters N.
        let mut set = StringSet::new();
        let filler = vec![b'z'; 500];
        for i in 0..1000u32 {
            let mut s = format!("{:03}", i % 1000).into_bytes();
            s.extend_from_slice(&filler);
            set.push(&s);
        }
        let total_chars: u64 = set.num_chars() as u64;
        let (lcps, stats) = sort_with_lcp(&mut set);
        verify_lcp_array(&set, &lcps).unwrap();
        // Distinguishing prefixes are ≤ 4 chars here; radix/mkqs overhead
        // is a small constant factor. N is 500x larger.
        assert!(
            stats.chars_accessed < total_chars / 10,
            "inspected {} of {} chars",
            stats.chars_accessed,
            total_chars
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn sorts_random_inputs(strs in proptest::collection::vec(
            proptest::collection::vec(b'a'..=b'd', 0..16), 0..120)) {
            let set = StringSet::from_iter_bytes(strs.iter().map(|s| s.as_slice()));
            let mut expect = strs.clone();
            expect.sort();
            let mut set = set;
            let (lcps, _) = sort_with_lcp(&mut set);
            prop_assert_eq!(set.to_vecs(), expect);
            prop_assert!(verify_lcp_array(&set, &lcps).is_ok());
        }

        #[test]
        fn agrees_with_naive_sort(strs in proptest::collection::vec(
            proptest::collection::vec(b'f'..=b'h', 0..10), 0..60)) {
            let mut a = StringSet::from_iter_bytes(strs.iter().map(|s| s.as_slice()));
            let mut b = a.clone();
            let (lcps, _) = sort_with_lcp(&mut a);
            let naive_lcps = naive_sort_with_lcp(&mut b);
            prop_assert_eq!(a.to_vecs(), b.to_vecs());
            prop_assert_eq!(lcps, naive_lcps);
        }
    }
}
