//! Process-wide copy-volume accounting for the merge/exchange hot paths.
//!
//! The paper's premise is that *communication* volume is the scarce
//! resource, but locally the analogous quantity is memory traffic: every
//! byte a merge or scatter moves costs bandwidth that wall-clock
//! measurements only show through ±40% host drift. This module keeps a
//! single process-wide counter — the same design as the counting global
//! allocator behind the `allocs` perfsnap column — that the hot paths
//! bump with the number of bytes they memcpy:
//!
//! * character payload written by the wire codecs (encode and decode),
//! * character payload appended to an output arena by the loser-tree
//!   merges, the parallel range-split merges and the pipelined cascade's
//!   final materialisation,
//! * `StrRef` handle bytes scattered by the MSD radix passes (including
//!   any copy-backs between the handle array and its scratch buffer).
//!
//! Metadata arrays that every path builds identically (LCP arrays,
//! per-string source/origin tags) are *not* counted — they would add the
//! same constant to every variant and dilute the signal. Because the
//! counter only tracks deterministic copy sites, two runs over the same
//! input report identical values regardless of host load, which makes
//! `bytes_copied` the drift-immune companion to the throughput columns.
//!
//! Recording is a single relaxed `fetch_add` per *bulk* copy (never per
//! byte), so the counter stays on permanently instead of hiding behind a
//! feature gate.

use std::sync::atomic::{AtomicU64, Ordering};

static BYTES_COPIED: AtomicU64 = AtomicU64::new(0);

/// Record `bytes` of payload/handle traffic copied by a hot path.
///
/// Call once per bulk copy with the total size; the accounting cost is a
/// single relaxed atomic add.
#[inline]
pub fn record_copied(bytes: usize) {
    BYTES_COPIED.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Total bytes copied by instrumented hot paths since process start.
///
/// Monotonically increasing; callers interested in a region take a
/// before/after delta exactly like the allocation probes.
#[inline]
pub fn bytes_copied() -> u64 {
    BYTES_COPIED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic_and_counts_exact_bytes() {
        let before = bytes_copied();
        record_copied(0);
        assert_eq!(bytes_copied() - before, 0);
        record_copied(17);
        record_copied(4096);
        assert_eq!(bytes_copied() - before, 17 + 4096);
    }
}
