//! Validators for sorted string sets.
//!
//! Used by the test suites and by the distributed checker in `dss-sort`:
//! local sortedness is checked directly; global permutation equality uses
//! an order-independent multiset fingerprint so that PEs only need to
//! combine 16 bytes instead of shipping their data around.

use crate::arena::StringSet;

/// Returns `true` iff the set is in non-decreasing lexicographic order.
pub fn is_sorted(set: &StringSet) -> bool {
    (1..set.len()).all(|i| set.get(i - 1) <= set.get(i))
}

/// Order-independent multiset fingerprint of a set of strings.
///
/// Each string is hashed with a 64-bit mixer; fingerprints are combined
/// with wrapping addition of `(h, h²)` pairs, which is commutative — equal
/// multisets always agree, and unequal multisets collide with probability
/// ≈ 2⁻⁶⁴ per component. The checker of the distributed sorters reduces
/// these pairs over all PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MultisetFingerprint {
    pub sum: u64,
    pub sum_sq: u64,
    pub count: u64,
}

impl MultisetFingerprint {
    /// Fingerprint of one PE-local set.
    pub fn of(set: &StringSet) -> Self {
        let mut fp = Self::default();
        for s in set.iter() {
            fp.add_str(s);
        }
        fp
    }

    /// Adds one string.
    pub fn add_str(&mut self, s: &[u8]) {
        let h = hash_bytes(s);
        self.sum = self.sum.wrapping_add(h);
        self.sum_sq = self.sum_sq.wrapping_add(h.wrapping_mul(h));
        self.count += 1;
    }

    /// Combines with another PE's fingerprint (commutative, associative).
    pub fn combine(self, other: Self) -> Self {
        Self {
            sum: self.sum.wrapping_add(other.sum),
            sum_sq: self.sum_sq.wrapping_add(other.sum_sq),
            count: self.count + other.count,
        }
    }
}

/// 64-bit FNV-1a followed by an avalanching finalizer (splitmix64-style).
/// Local implementation to keep the dependency set minimal.
#[inline]
pub fn hash_bytes(s: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix64(h)
}

/// splitmix64 finalizer.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Full sequential check: sorted, LCP array valid, multiset preserved.
pub fn check_sort_result(
    input: &StringSet,
    output: &StringSet,
    lcps: Option<&[u32]>,
) -> Result<(), String> {
    if !is_sorted(output) {
        return Err("output is not sorted".into());
    }
    if MultisetFingerprint::of(input) != MultisetFingerprint::of(output) {
        return Err(format!(
            "output is not a permutation of the input ({} vs {} strings)",
            input.len(),
            output.len()
        ));
    }
    if let Some(l) = lcps {
        crate::lcp::verify_lcp_array(output, l)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_sorted_basics() {
        assert!(is_sorted(&StringSet::new()));
        assert!(is_sorted(&StringSet::from_strs(&["a"])));
        assert!(is_sorted(&StringSet::from_strs(&["a", "a", "b"])));
        assert!(!is_sorted(&StringSet::from_strs(&["b", "a"])));
        assert!(is_sorted(&StringSet::from_strs(&["a", "aa", "ab"])));
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let a = MultisetFingerprint::of(&StringSet::from_strs(&["x", "yy", "zzz"]));
        let b = MultisetFingerprint::of(&StringSet::from_strs(&["zzz", "x", "yy"]));
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_detects_multiset_changes() {
        let base = MultisetFingerprint::of(&StringSet::from_strs(&["a", "a", "b"]));
        let missing = MultisetFingerprint::of(&StringSet::from_strs(&["a", "b"]));
        let swapped = MultisetFingerprint::of(&StringSet::from_strs(&["a", "b", "b"]));
        assert_ne!(base, missing);
        assert_ne!(base, swapped);
    }

    #[test]
    fn fingerprint_combines_across_shards() {
        let whole = MultisetFingerprint::of(&StringSet::from_strs(&["p", "q", "r", "s"]));
        let left = MultisetFingerprint::of(&StringSet::from_strs(&["r", "p"]));
        let right = MultisetFingerprint::of(&StringSet::from_strs(&["s", "q"]));
        assert_eq!(whole, left.combine(right));
    }

    #[test]
    fn check_sort_result_end_to_end() {
        let input = StringSet::from_strs(&["b", "a", "c"]);
        let sorted = StringSet::from_strs(&["a", "b", "c"]);
        assert!(check_sort_result(&input, &sorted, Some(&[0, 0, 0])).is_ok());
        let unsorted = StringSet::from_strs(&["b", "a", "c"]);
        assert!(check_sort_result(&input, &unsorted, None).is_err());
        let wrong_multiset = StringSet::from_strs(&["a", "b", "d"]);
        assert!(check_sort_result(&input, &wrong_multiset, None).is_err());
        assert!(check_sort_result(&input, &sorted, Some(&[0, 1, 0])).is_err());
    }

    #[test]
    fn hash_bytes_differs_on_small_changes() {
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abcd"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"a"));
    }
}
