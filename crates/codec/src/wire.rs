//! Wire formats for sorted string runs.
//!
//! Step 3 of Algorithm MS performs a personalized all-to-all exchange of
//! sorted string runs. This module defines the serialized forms:
//!
//! * **Plain** — `count`, then per string `len, bytes`. Used by the
//!   baselines (FKmerge, MS-simple) that do not exploit LCPs.
//! * **LCP-compressed** — `count`, then the first string in full and every
//!   subsequent string as `(lcp, suffix)` relative to its predecessor.
//!   Because the runs are locally sorted before the exchange, common
//!   prefixes are transmitted only once (the "- - p h a" omission of
//!   Fig. 2/3 in the paper). Decoding reconstructs the full strings *and*
//!   the run-local LCP array for free, which the LCP loser tree consumes.
//! * **LCP-delta** — like LCP-compressed but with the LCP values
//!   difference-coded (zig-zag varints); this implements the §VI-B
//!   observation that successive LCPs differ by O(1) on average.
//!
//! Each format optionally carries per-string origin tags (used by PDMS,
//! which transmits only distinguishing prefixes and must report where the
//! full string lives).
//!
//! All integers are LEB128 varints; all formats are self-delimiting.

use crate::varint::{decode_u64, encode_u64, encoded_len_u64};

/// A decoded run: flat character data plus per-string boundaries.
///
/// `lcps[0]` is always 0; `lcps[i]` is the LCP of string `i` with string
/// `i-1` *within this run* (exact for LCP-encoded formats, absent — all
/// zeros — for the plain format unless recomputed by the caller).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DecodedRun {
    /// Concatenated string payloads.
    pub data: Vec<u8>,
    /// `(offset, len)` of each string within `data`.
    pub bounds: Vec<(usize, usize)>,
    /// Run-local LCP array (first entry 0).
    pub lcps: Vec<u32>,
    /// Optional per-string origin tags (e.g. `(source_pe << 40) | index`).
    pub origins: Option<Vec<u64>>,
    /// Whether `lcps` carries real values (false for the plain format).
    pub has_lcps: bool,
}

impl DecodedRun {
    /// Number of strings in the run.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Whether the run holds no strings.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Borrow string `i`.
    pub fn get(&self, i: usize) -> &[u8] {
        let (off, len) = self.bounds[i];
        &self.data[off..off + len]
    }

    /// Iterate over all strings in order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.bounds
            .iter()
            .map(|&(off, len)| &self.data[off..off + len])
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn encoded_len_origins(origins: Option<&[u64]>) -> usize {
    origins.map_or(0, |o| o.iter().map(|&v| encoded_len_u64(v)).sum())
}

/// Exact number of bytes [`encode_plain`] appends for the same arguments.
///
/// Lets senders reserve destination buffers once and encode with zero
/// reallocation (the `has_origins` flag is a 1-byte varint).
pub fn encoded_len_plain<'a, I>(strings: I, origins: Option<&[u64]>) -> usize
where
    I: ExactSizeIterator<Item = &'a [u8]>,
{
    let mut len = encoded_len_u64(strings.len() as u64) + 1 + encoded_len_origins(origins);
    for s in strings {
        len += encoded_len_u64(s.len() as u64) + s.len();
    }
    len
}

/// Exact number of bytes [`encode_lcp`] appends for the same arguments
/// (`flavor` is a 1-byte varint like `has_origins`).
///
/// Precondition (same as [`encode_lcp`]): `lcps[i] ≤ strings[i].len()`
/// for `i ≥ 1` — violating it panics the encoder, so a length computed
/// here would never be used.
pub fn encoded_len_lcp<'a, I>(
    strings: I,
    lcps: &[u32],
    origins: Option<&[u64]>,
    delta_lcps: bool,
) -> usize
where
    I: ExactSizeIterator<Item = &'a [u8]>,
{
    let mut len = encoded_len_u64(strings.len() as u64) + 2 + encoded_len_origins(origins);
    let mut prev_lcp: u32 = 0;
    for (i, s) in strings.enumerate() {
        if i == 0 {
            len += encoded_len_u64(s.len() as u64) + s.len();
        } else {
            let lcp = lcps[i];
            debug_assert!(
                (lcp as usize) <= s.len(),
                "lcp {lcp} exceeds string length {}",
                s.len()
            );
            len += if delta_lcps {
                encoded_len_u64(zigzag(lcp as i64 - prev_lcp as i64))
            } else {
                encoded_len_u64(lcp as u64)
            };
            let suffix_len = s.len() - (lcp as usize).min(s.len());
            len += encoded_len_u64(suffix_len as u64) + suffix_len;
            prev_lcp = lcp;
        }
    }
    len
}

/// Exact encoded sizes of one run under every wire format.
///
/// Produced by [`encoded_len_all`] in a single pass over the strings; the
/// per-destination codec selection (`ExchangeCodec::Auto` in `dss-sort`)
/// needs all three sizes to pick the cheapest format without re-walking
/// the bucket once per candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodedLens {
    /// Bytes [`encode_plain`] would append.
    pub plain: usize,
    /// Bytes [`encode_lcp`] with raw LCPs would append.
    pub lcp: usize,
    /// Bytes [`encode_lcp`] with delta-coded LCPs would append.
    pub lcp_delta: usize,
}

/// Computes [`encoded_len_plain`] and [`encoded_len_lcp`] (both flavors)
/// in one pass. Each result is exactly what the corresponding encoder
/// appends for the same arguments (see those functions' contracts).
pub fn encoded_len_all<'a, I>(strings: I, lcps: &[u32], origins: Option<&[u64]>) -> EncodedLens
where
    I: ExactSizeIterator<Item = &'a [u8]>,
{
    let shared = encoded_len_u64(strings.len() as u64) + encoded_len_origins(origins);
    let mut plain = shared + 1;
    let mut lcp_total = shared + 2;
    let mut lcp_delta = shared + 2;
    let mut prev_lcp: u32 = 0;
    for (i, s) in strings.enumerate() {
        let full = encoded_len_u64(s.len() as u64) + s.len();
        plain += full;
        if i == 0 {
            lcp_total += full;
            lcp_delta += full;
        } else {
            let lcp = lcps[i];
            debug_assert!(
                (lcp as usize) <= s.len(),
                "lcp {lcp} exceeds string length {}",
                s.len()
            );
            let suffix_len = s.len() - lcp as usize;
            let suffix = encoded_len_u64(suffix_len as u64) + suffix_len;
            lcp_total += encoded_len_u64(lcp as u64) + suffix;
            lcp_delta += encoded_len_u64(zigzag(lcp as i64 - prev_lcp as i64)) + suffix;
            prev_lcp = lcp;
        }
    }
    EncodedLens {
        plain,
        lcp: lcp_total,
        lcp_delta,
    }
}

/// Encodes a run in the plain format (no LCP exploitation).
///
/// Layout: `count, has_origins, [len, bytes]*, [origin]*`.
pub fn encode_plain<'a, I>(strings: I, origins: Option<&[u64]>, out: &mut Vec<u8>)
where
    I: ExactSizeIterator<Item = &'a [u8]>,
{
    encode_u64(strings.len() as u64, out);
    encode_u64(u64::from(origins.is_some()), out);
    if let Some(o) = origins {
        debug_assert_eq!(o.len(), strings.len());
    }
    for s in strings {
        encode_u64(s.len() as u64, out);
        out.extend_from_slice(s);
    }
    if let Some(o) = origins {
        for &v in o {
            encode_u64(v, out);
        }
    }
}

/// Encodes a run with LCP compression.
///
/// `lcps[i]` must be the LCP of `strings[i]` with `strings[i-1]`
/// (`lcps[0]` is ignored). The suffix `strings[i][lcps[i]..]` is what goes
/// on the wire.
///
/// Layout: `count, has_origins, flavor, first(len,bytes),
/// [lcp, suffix_len, suffix]*, [origin]*` where `flavor` selects raw or
/// delta-coded LCPs.
pub fn encode_lcp<'a, I>(
    strings: I,
    lcps: &[u32],
    origins: Option<&[u64]>,
    delta_lcps: bool,
    out: &mut Vec<u8>,
) where
    I: ExactSizeIterator<Item = &'a [u8]>,
{
    let count = strings.len();
    debug_assert_eq!(lcps.len(), count);
    if let Some(o) = origins {
        debug_assert_eq!(o.len(), count);
    }
    encode_u64(count as u64, out);
    encode_u64(u64::from(origins.is_some()), out);
    encode_u64(u64::from(delta_lcps), out);
    let mut prev_lcp: u32 = 0;
    for (i, s) in strings.enumerate() {
        if i == 0 {
            encode_u64(s.len() as u64, out);
            out.extend_from_slice(s);
        } else {
            let lcp = lcps[i];
            debug_assert!(
                (lcp as usize) <= s.len(),
                "lcp {lcp} exceeds string length {}",
                s.len()
            );
            if delta_lcps {
                encode_u64(zigzag(lcp as i64 - prev_lcp as i64), out);
            } else {
                encode_u64(lcp as u64, out);
            }
            let suffix = &s[lcp as usize..];
            encode_u64(suffix.len() as u64, out);
            out.extend_from_slice(suffix);
            prev_lcp = lcp;
        }
    }
    if let Some(o) = origins {
        for &v in o {
            encode_u64(v, out);
        }
    }
}

/// Resets `run` for reuse as a decode target, keeping every allocation
/// (`data`, `bounds`, `lcps`, and the `origins` vector if present).
fn reset_scratch(run: &mut DecodedRun, has_lcps: bool) {
    run.data.clear();
    run.bounds.clear();
    run.lcps.clear();
    run.has_lcps = has_lcps;
    if let Some(o) = run.origins.as_mut() {
        o.clear();
    }
}

/// Decodes the optional origin-tag trailer into the reusable scratch.
fn decode_origins_into(
    buf: &[u8],
    pos: &mut usize,
    count: usize,
    has_origins: bool,
    run: &mut DecodedRun,
) -> Option<()> {
    if has_origins {
        let o = run.origins.get_or_insert_with(Vec::new);
        o.reserve(count);
        for _ in 0..count {
            o.push(decode_u64(buf, pos)?);
        }
    } else {
        run.origins = None;
    }
    Some(())
}

/// Decodes a plain-format run. Advances `pos` past the run.
pub fn decode_plain(buf: &[u8], pos: &mut usize) -> Option<DecodedRun> {
    let mut run = DecodedRun::default();
    decode_plain_into(buf, pos, &mut run).map(|()| run)
}

/// [`decode_plain`] into caller-provided scratch: `run`'s buffers are
/// cleared and refilled, reusing their capacity, so a receive loop that
/// decodes many runs allocates only on high-water-mark growth.
///
/// On `None` (malformed input), `run` holds a partially decoded state and
/// must be reset before reuse; `pos` is wherever decoding stopped.
pub fn decode_plain_into(buf: &[u8], pos: &mut usize, run: &mut DecodedRun) -> Option<()> {
    reset_scratch(run, false);
    let count = decode_u64(buf, pos)? as usize;
    let has_origins = decode_u64(buf, pos)? == 1;
    run.bounds.reserve(count);
    run.lcps.resize(count, 0);
    // Payload bytes are a subset of what remains in `buf`: one reserve
    // covers all `extend_from_slice` calls below.
    run.data.reserve(buf.len().saturating_sub(*pos));
    for _ in 0..count {
        let len = decode_u64(buf, pos)? as usize;
        let bytes = buf.get(*pos..*pos + len)?;
        *pos += len;
        let off = run.data.len();
        run.data.extend_from_slice(bytes);
        run.bounds.push((off, len));
    }
    decode_origins_into(buf, pos, count, has_origins, run)
}

/// Decodes an LCP-compressed run, reconstructing full strings and the
/// run-local LCP array. Advances `pos` past the run.
pub fn decode_lcp(buf: &[u8], pos: &mut usize) -> Option<DecodedRun> {
    let mut run = DecodedRun::default();
    decode_lcp_into(buf, pos, &mut run).map(|()| run)
}

/// [`decode_lcp`] into caller-provided scratch (see [`decode_plain_into`]
/// for the reuse and failure contract).
pub fn decode_lcp_into(buf: &[u8], pos: &mut usize, run: &mut DecodedRun) -> Option<()> {
    reset_scratch(run, true);
    let count = decode_u64(buf, pos)? as usize;
    let has_origins = decode_u64(buf, pos)? == 1;
    let delta_lcps = decode_u64(buf, pos)? == 1;
    run.bounds.reserve(count);
    run.lcps.reserve(count);
    // Reconstructed strings are at least as long as the wire payload;
    // reserving the remaining buffer floors the growth reallocations.
    run.data.reserve(buf.len().saturating_sub(*pos));
    let mut prev_lcp: u32 = 0;
    let mut prev_off = 0usize;
    for i in 0..count {
        if i == 0 {
            let len = decode_u64(buf, pos)? as usize;
            let bytes = buf.get(*pos..*pos + len)?;
            *pos += len;
            run.data.extend_from_slice(bytes);
            run.bounds.push((0, len));
            run.lcps.push(0);
            prev_off = 0;
        } else {
            let lcp = if delta_lcps {
                let d = unzigzag(decode_u64(buf, pos)?);
                u32::try_from(prev_lcp as i64 + d).ok()?
            } else {
                u32::try_from(decode_u64(buf, pos)?).ok()?
            };
            let suffix_len = decode_u64(buf, pos)? as usize;
            let (_, prev_len) = *run.bounds.last()?;
            if lcp as usize > prev_len {
                return None; // malformed: prefix longer than predecessor
            }
            let off = run.data.len();
            // Copy shared prefix from the previous (already reconstructed)
            // string, then the transmitted suffix.
            let prefix_src = prev_off..prev_off + lcp as usize;
            run.data.extend_from_within(prefix_src);
            let bytes = buf.get(*pos..*pos + suffix_len)?;
            *pos += suffix_len;
            run.data.extend_from_slice(bytes);
            run.bounds.push((off, lcp as usize + suffix_len));
            run.lcps.push(lcp);
            prev_lcp = lcp;
            prev_off = off;
        }
    }
    decode_origins_into(buf, pos, count, has_origins, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lcp_of(a: &[u8], b: &[u8]) -> u32 {
        a.iter().zip(b).take_while(|(x, y)| x == y).count() as u32
    }

    fn lcp_array(strings: &[&[u8]]) -> Vec<u32> {
        if strings.is_empty() {
            return Vec::new();
        }
        let mut l = vec![0u32];
        for w in strings.windows(2) {
            l.push(lcp_of(w[0], w[1]));
        }
        l
    }

    #[test]
    fn plain_roundtrip() {
        let strings: Vec<&[u8]> = vec![b"algae", b"algo", b"alpha", b"alps"];
        let mut buf = Vec::new();
        encode_plain(strings.iter().copied(), None, &mut buf);
        let mut pos = 0;
        let run = decode_plain(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(run.len(), 4);
        assert!(!run.has_lcps);
        for (i, s) in strings.iter().enumerate() {
            assert_eq!(run.get(i), *s);
        }
    }

    #[test]
    fn plain_with_origins() {
        let strings: Vec<&[u8]> = vec![b"a", b"b"];
        let origins = vec![17u64, 123456789];
        let mut buf = Vec::new();
        encode_plain(strings.iter().copied(), Some(&origins), &mut buf);
        let mut pos = 0;
        let run = decode_plain(&buf, &mut pos).unwrap();
        assert_eq!(run.origins, Some(origins));
    }

    #[test]
    fn lcp_roundtrip_matches_paper_example() {
        // The PE-2 bucket from Fig. 2: "snow, sorbet, sorter" is sent as
        // "snow, (1)orbet, (3)ter".
        let strings: Vec<&[u8]> = vec![b"snow", b"sorbet", b"sorter"];
        let lcps = lcp_array(&strings);
        assert_eq!(lcps, vec![0, 1, 3]);
        let mut buf = Vec::new();
        encode_lcp(strings.iter().copied(), &lcps, None, false, &mut buf);
        // Payload chars transmitted: 4 + 5 + 3 = 12 instead of 16.
        let mut pos = 0;
        let run = decode_lcp(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert!(run.has_lcps);
        assert_eq!(run.lcps, lcps);
        for (i, s) in strings.iter().enumerate() {
            assert_eq!(run.get(i), *s, "string {i}");
        }
    }

    #[test]
    fn lcp_compression_shrinks_shared_prefixes() {
        let strings: Vec<&[u8]> = vec![
            b"prefix_common_aaaa",
            b"prefix_common_aaab",
            b"prefix_common_aabz",
            b"prefix_common_b",
        ];
        let lcps = lcp_array(&strings);
        let mut plain = Vec::new();
        encode_plain(strings.iter().copied(), None, &mut plain);
        let mut compressed = Vec::new();
        encode_lcp(strings.iter().copied(), &lcps, None, false, &mut compressed);
        assert!(
            compressed.len() < plain.len(),
            "compressed {} >= plain {}",
            compressed.len(),
            plain.len()
        );
    }

    #[test]
    fn empty_run_roundtrip() {
        let mut buf = Vec::new();
        encode_lcp(std::iter::empty(), &[], None, false, &mut buf);
        let mut pos = 0;
        let run = decode_lcp(&buf, &mut pos).unwrap();
        assert!(run.is_empty());
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn single_string_run() {
        let strings: Vec<&[u8]> = vec![b"only"];
        let mut buf = Vec::new();
        encode_lcp(strings.iter().copied(), &[0], None, true, &mut buf);
        let mut pos = 0;
        let run = decode_lcp(&buf, &mut pos).unwrap();
        assert_eq!(run.get(0), b"only");
    }

    #[test]
    fn sequential_runs_in_one_buffer() {
        let a: Vec<&[u8]> = vec![b"aa", b"ab"];
        let b: Vec<&[u8]> = vec![b"zz"];
        let mut buf = Vec::new();
        encode_lcp(a.iter().copied(), &lcp_array(&a), None, false, &mut buf);
        encode_plain(b.iter().copied(), None, &mut buf);
        let mut pos = 0;
        let ra = decode_lcp(&buf, &mut pos).unwrap();
        let rb = decode_plain(&buf, &mut pos).unwrap();
        assert_eq!(ra.get(1), b"ab");
        assert_eq!(rb.get(0), b"zz");
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn malformed_lcp_rejected() {
        // lcp of second string larger than first string's length.
        let mut buf = Vec::new();
        encode_u64(2, &mut buf); // count
        encode_u64(0, &mut buf); // no origins
        encode_u64(0, &mut buf); // raw lcps
        encode_u64(1, &mut buf); // first len
        buf.push(b'x');
        encode_u64(9, &mut buf); // bogus lcp 9 > 1
        encode_u64(0, &mut buf); // suffix len
        let mut pos = 0;
        assert_eq!(decode_lcp(&buf, &mut pos), None);
    }

    #[test]
    fn truncated_rejected() {
        let strings: Vec<&[u8]> = vec![b"hello", b"help"];
        let mut buf = Vec::new();
        encode_lcp(
            strings.iter().copied(),
            &lcp_array(&strings),
            None,
            false,
            &mut buf,
        );
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(decode_lcp(&buf[..cut], &mut pos), None, "cut {cut}");
        }
    }

    #[test]
    fn encoded_len_matches_paper_example() {
        let strings: Vec<&[u8]> = vec![b"snow", b"sorbet", b"sorter"];
        let lcps = lcp_array(&strings);
        let mut buf = Vec::new();
        encode_plain(strings.iter().copied(), None, &mut buf);
        assert_eq!(encoded_len_plain(strings.iter().copied(), None), buf.len());
        for delta in [false, true] {
            let mut buf = Vec::new();
            encode_lcp(strings.iter().copied(), &lcps, None, delta, &mut buf);
            assert_eq!(
                encoded_len_lcp(strings.iter().copied(), &lcps, None, delta),
                buf.len(),
                "delta {delta}"
            );
        }
    }

    #[test]
    fn encoded_len_all_matches_every_encoder() {
        let cases: Vec<Vec<&[u8]>> = vec![
            vec![],
            vec![b"only"],
            vec![b"snow", b"sorbet", b"sorter"],
            vec![b"", b"", b"a", b"aa", b"aaa"],
            vec![
                b"prefix_common_aaaa",
                b"prefix_common_aaab",
                b"prefix_common_b",
            ],
        ];
        for strings in cases {
            let lcps = lcp_array(&strings);
            let origins: Vec<u64> = (0..strings.len() as u64).map(|i| i * 7 + 3).collect();
            for o in [None, Some(origins.as_slice())] {
                let lens = encoded_len_all(strings.iter().copied(), &lcps, o);
                assert_eq!(lens.plain, encoded_len_plain(strings.iter().copied(), o));
                assert_eq!(
                    lens.lcp,
                    encoded_len_lcp(strings.iter().copied(), &lcps, o, false)
                );
                assert_eq!(
                    lens.lcp_delta,
                    encoded_len_lcp(strings.iter().copied(), &lcps, o, true)
                );
                let mut buf = Vec::new();
                encode_plain(strings.iter().copied(), o, &mut buf);
                assert_eq!(lens.plain, buf.len());
                buf.clear();
                encode_lcp(strings.iter().copied(), &lcps, o, false, &mut buf);
                assert_eq!(lens.lcp, buf.len());
                buf.clear();
                encode_lcp(strings.iter().copied(), &lcps, o, true, &mut buf);
                assert_eq!(lens.lcp_delta, buf.len());
            }
        }
    }

    #[test]
    fn decode_into_reuses_scratch_capacity() {
        let strings: Vec<&[u8]> = vec![b"alpha", b"alps", b"orange", b"organ"];
        let lcps = lcp_array(&strings);
        let origins: Vec<u64> = vec![9, 8, 7, 6];
        let mut buf = Vec::new();
        encode_lcp(
            strings.iter().copied(),
            &lcps,
            Some(&origins),
            false,
            &mut buf,
        );
        let mut run = DecodedRun::default();
        let mut pos = 0;
        decode_lcp_into(&buf, &mut pos, &mut run).unwrap();
        assert_eq!(run.origins.as_deref(), Some(origins.as_slice()));
        let caps = (
            run.data.capacity(),
            run.bounds.capacity(),
            run.lcps.capacity(),
        );
        // Decoding the same run again must not grow any buffer.
        for _ in 0..3 {
            let mut pos = 0;
            decode_lcp_into(&buf, &mut pos, &mut run).unwrap();
            assert_eq!(pos, buf.len());
            assert_eq!(
                caps,
                (
                    run.data.capacity(),
                    run.bounds.capacity(),
                    run.lcps.capacity()
                )
            );
        }
        for (i, s) in strings.iter().enumerate() {
            assert_eq!(run.get(i), *s);
        }
        assert_eq!(run.lcps, lcps);
        // A plain run decoded into the same scratch drops the LCP flag and
        // the origins (this encoding carries none).
        let mut plain = Vec::new();
        encode_plain(strings.iter().copied(), None, &mut plain);
        let mut pos = 0;
        decode_plain_into(&plain, &mut pos, &mut run).unwrap();
        assert!(!run.has_lcps);
        assert_eq!(run.origins, None);
        assert_eq!(run.lcps, vec![0; strings.len()]);
        assert_eq!(run.get(3), b"organ");
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 1234, -9876] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    fn sorted_string_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
        proptest::collection::vec(proptest::collection::vec(b'a'..=b'f', 0..12), 0..40).prop_map(
            |mut v| {
                v.sort();
                v
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn lcp_roundtrip_random(strings in sorted_string_strategy(), delta in any::<bool>()) {
            let refs: Vec<&[u8]> = strings.iter().map(|s| s.as_slice()).collect();
            let lcps = lcp_array(&refs);
            let mut buf = Vec::new();
            encode_lcp(refs.iter().copied(), &lcps, None, delta, &mut buf);
            let mut pos = 0;
            let run = decode_lcp(&buf, &mut pos).unwrap();
            prop_assert_eq!(pos, buf.len());
            prop_assert_eq!(&run.lcps, &lcps);
            for (i, s) in refs.iter().enumerate() {
                prop_assert_eq!(run.get(i), *s);
            }
        }

        #[test]
        fn plain_roundtrip_random(strings in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..20), 0..30)) {
            let refs: Vec<&[u8]> = strings.iter().map(|s| s.as_slice()).collect();
            let origins: Vec<u64> = (0..refs.len() as u64).collect();
            let mut buf = Vec::new();
            encode_plain(refs.iter().copied(), Some(&origins), &mut buf);
            let mut pos = 0;
            let run = decode_plain(&buf, &mut pos).unwrap();
            prop_assert_eq!(pos, buf.len());
            prop_assert_eq!(run.origins.as_deref(), Some(origins.as_slice()));
            for (i, s) in refs.iter().enumerate() {
                prop_assert_eq!(run.get(i), *s);
            }
        }
    }
}
