//! # dss-codec — compression primitives for communication-efficient sorting
//!
//! This crate provides the encoding machinery used by the distributed string
//! sorters of Bingmann, Sanders and Schimek (IPDPS 2020):
//!
//! * [`bitio`] — a bit-granular writer/reader over byte buffers. The paper
//!   analyses communication volume in *bits*; everything below is built on
//!   this layer so the accounting stays exact.
//! * [`varint`] — LEB128 variable-length integers, used for string lengths
//!   and LCP values on the wire.
//! * [`golomb`] — Golomb(-Rice) coding of sorted integer sequences via
//!   difference encoding. Used by the PDMS-Golomb variant to compress the
//!   fingerprint streams of the distributed duplicate detection (§VI-A,
//!   citing Sanders, Schlag and Müller).
//! * [`wire`] — the string-run wire formats used in the all-to-all exchange
//!   (Step 3 of Algorithm MS): a plain format (length + characters) and the
//!   LCP-compressed format that transmits repeated prefixes only once.

pub mod bitio;
pub mod golomb;
pub mod varint;
pub mod wire;

pub use bitio::{BitReader, BitWriter};
pub use golomb::{golomb_decode_sorted, golomb_encode_sorted, optimal_golomb_parameter};
pub use varint::{decode_u64, encode_u64, encoded_len_u64};
