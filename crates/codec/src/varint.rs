//! LEB128 variable-length integers.
//!
//! String lengths and LCP values are small on average (the paper's
//! COMMONCRAWL lines average 40 characters with LCP 24), so fixed-width
//! integers would dominate the per-string wire overhead. All per-string
//! metadata in [`crate::wire`] uses these varints.

/// Appends `value` to `out` as a LEB128 varint. Returns the encoded length.
#[inline]
pub fn encode_u64(value: u64, out: &mut Vec<u8>) -> usize {
    let mut v = value;
    let mut n = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        n += 1;
        if v == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Number of bytes [`encode_u64`] will use for `value`.
#[inline]
pub fn encoded_len_u64(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

/// Decodes a varint from `buf[*pos..]`, advancing `*pos`.
///
/// Returns `None` on truncated input or a value exceeding 64 bits.
#[inline]
pub fn decode_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // overflow beyond 64 bits
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Convenience: encodes `value` into a fresh buffer.
pub fn to_vec(value: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(encoded_len_u64(value));
    encode_u64(value, &mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_encodings() {
        assert_eq!(to_vec(0), vec![0x00]);
        assert_eq!(to_vec(1), vec![0x01]);
        assert_eq!(to_vec(127), vec![0x7f]);
        assert_eq!(to_vec(128), vec![0x80, 0x01]);
        assert_eq!(to_vec(300), vec![0xac, 0x02]);
        assert_eq!(to_vec(u64::MAX).len(), 10);
    }

    #[test]
    fn encoded_len_matches_encoding() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, 1 << 62, u64::MAX] {
            assert_eq!(encoded_len_u64(v), to_vec(v).len(), "value {v}");
        }
    }

    #[test]
    fn decode_truncated_is_none() {
        let buf = to_vec(300);
        let mut pos = 0;
        assert_eq!(decode_u64(&buf[..1], &mut pos), None);
    }

    #[test]
    fn decode_overlong_is_none() {
        // 11 continuation bytes cannot fit in u64.
        let buf = vec![0x80u8; 10];
        let mut pos = 0;
        assert_eq!(decode_u64(&buf, &mut pos), None);
    }

    #[test]
    fn sequential_decode_advances_pos() {
        let mut buf = Vec::new();
        encode_u64(7, &mut buf);
        encode_u64(1000, &mut buf);
        encode_u64(0, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_u64(&buf, &mut pos), Some(7));
        assert_eq!(decode_u64(&buf, &mut pos), Some(1000));
        assert_eq!(decode_u64(&buf, &mut pos), Some(0));
        assert_eq!(pos, buf.len());
        assert_eq!(decode_u64(&buf, &mut pos), None);
    }

    proptest! {
        #[test]
        fn roundtrip(v in any::<u64>()) {
            let buf = to_vec(v);
            prop_assert_eq!(buf.len(), encoded_len_u64(v));
            let mut pos = 0;
            prop_assert_eq!(decode_u64(&buf, &mut pos), Some(v));
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn roundtrip_sequence(vs in proptest::collection::vec(any::<u64>(), 0..50)) {
            let mut buf = Vec::new();
            for &v in &vs {
                encode_u64(v, &mut buf);
            }
            let mut pos = 0;
            for &v in &vs {
                prop_assert_eq!(decode_u64(&buf, &mut pos), Some(v));
            }
            prop_assert_eq!(pos, buf.len());
        }
    }
}
