//! Bit-granular writer and reader over byte buffers.
//!
//! The communication-volume analysis of the paper is stated in bits
//! (messages of `m` bits cost `α + βm`). The Golomb coder and the compact
//! reply bitmaps of the duplicate detection need sub-byte access, so this
//! module provides a small, allocation-friendly bit stream.
//!
//! Bits are written LSB-first within each byte, which keeps the common
//! "write k low bits of a word" path branch-free.

/// Appends bits to a growable byte buffer, LSB-first within each byte.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in the final byte of `buf` (0 ⇒ byte-aligned).
    bit_pos: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with room for `bits` bits pre-allocated.
    pub fn with_capacity_bits(bits: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bits.div_ceil(8)),
            bit_pos: 0,
        }
    }

    /// Total number of bits written so far.
    pub fn len_bits(&self) -> usize {
        if self.bit_pos == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Whether no bits have been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if self.bit_pos == 0 {
            self.buf.push(0);
        }
        if bit {
            let last = self.buf.last_mut().expect("buffer non-empty after push");
            *last |= 1 << self.bit_pos;
        }
        self.bit_pos = (self.bit_pos + 1) % 8;
    }

    /// Writes the `count` low bits of `value`, LSB first. `count ≤ 64`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, count: u32) {
        debug_assert!(count <= 64);
        debug_assert!(count == 64 || value < (1u64 << count) || count == 0);
        let mut remaining = count;
        let mut v = value;
        while remaining > 0 {
            if self.bit_pos == 0 {
                self.buf.push(0);
            }
            let free = 8 - self.bit_pos;
            let take = free.min(remaining);
            let chunk = (v & ((1u64 << take) - 1)) as u8;
            let last = self.buf.last_mut().expect("buffer non-empty after push");
            *last |= chunk << self.bit_pos;
            self.bit_pos = (self.bit_pos + take) % 8;
            v >>= take;
            remaining -= take;
        }
    }

    /// Writes `count` one-bits followed by a zero bit (unary code).
    #[inline]
    pub fn write_unary(&mut self, count: u64) {
        let mut rest = count;
        while rest >= 32 {
            self.write_bits(u32::MAX as u64, 32);
            rest -= 32;
        }
        // `rest` one-bits, then the terminating zero.
        self.write_bits((1u64 << rest) - 1, rest as u32);
        self.write_bit(false);
    }

    /// Finishes the stream, returning the underlying bytes (final byte
    /// zero-padded) and the exact bit length.
    pub fn finish(self) -> (Vec<u8>, usize) {
        let bits = self.len_bits();
        (self.buf, bits)
    }

    /// Finishes and returns only the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads bits from a byte slice, LSB-first within each byte.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Next bit index to read.
    pos: usize,
    /// Total number of readable bits.
    len_bits: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over all bits of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            pos: 0,
            len_bits: buf.len() * 8,
        }
    }

    /// Creates a reader over exactly `len_bits` bits of `buf`.
    pub fn with_len(buf: &'a [u8], len_bits: usize) -> Self {
        debug_assert!(len_bits <= buf.len() * 8);
        Self {
            buf,
            pos: 0,
            len_bits,
        }
    }

    /// Number of bits left to read.
    pub fn remaining(&self) -> usize {
        self.len_bits - self.pos
    }

    /// Reads one bit; `None` at end of stream.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.len_bits {
            return None;
        }
        let byte = self.buf[self.pos / 8];
        let bit = (byte >> (self.pos % 8)) & 1;
        self.pos += 1;
        Some(bit == 1)
    }

    /// Reads `count ≤ 64` bits, LSB first; `None` if fewer remain.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> Option<u64> {
        debug_assert!(count <= 64);
        if self.remaining() < count as usize {
            return None;
        }
        let mut out: u64 = 0;
        let mut got: u32 = 0;
        while got < count {
            let byte = self.buf[self.pos / 8] as u64;
            let offset = (self.pos % 8) as u32;
            let avail = 8 - offset;
            let take = avail.min(count - got);
            let chunk = (byte >> offset) & ((1u64 << take) - 1);
            out |= chunk << got;
            got += take;
            self.pos += take as usize;
        }
        Some(out)
    }

    /// Reads a unary code (number of one-bits before the next zero bit).
    #[inline]
    pub fn read_unary(&mut self) -> Option<u64> {
        let mut count = 0u64;
        loop {
            match self.read_bit()? {
                true => count += 1,
                false => return Some(count),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let pattern = [true, false, true, true, false, false, true, false, true];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.len_bits(), pattern.len());
        let (bytes, bits) = w.finish();
        let mut r = BitReader::with_len(&bytes, bits);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn multi_bit_roundtrip() {
        let values: [(u64, u32); 7] = [
            (0, 1),
            (1, 1),
            (0b101, 3),
            (0xffff_ffff, 32),
            (u64::MAX, 64),
            (42, 13),
            (0, 0),
        ];
        let mut w = BitWriter::new();
        for &(v, c) in &values {
            w.write_bits(v, c);
        }
        let (bytes, bits) = w.finish();
        let mut r = BitReader::with_len(&bytes, bits);
        for &(v, c) in &values {
            assert_eq!(r.read_bits(c), Some(v), "value {v} width {c}");
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn unary_roundtrip() {
        let values = [0u64, 1, 2, 7, 8, 31, 32, 33, 100, 1000];
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_unary(v);
        }
        let (bytes, bits) = w.finish();
        let mut r = BitReader::with_len(&bytes, bits);
        for &v in &values {
            assert_eq!(r.read_unary(), Some(v));
        }
    }

    #[test]
    fn unary_length_is_value_plus_one() {
        let mut w = BitWriter::new();
        w.write_unary(5);
        assert_eq!(w.len_bits(), 6);
    }

    #[test]
    fn read_past_end_returns_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::with_len(&bytes, bits);
        assert_eq!(r.read_bits(4), Some(0b1011));
        assert_eq!(r.read_bits(1), None);
        assert_eq!(r.read_unary(), None);
    }

    #[test]
    fn len_bits_counts_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.len_bits(), 0);
        w.write_bits(0x3, 2);
        assert_eq!(w.len_bits(), 2);
        w.write_bits(0x3f, 6);
        assert_eq!(w.len_bits(), 8);
        w.write_bit(true);
        assert_eq!(w.len_bits(), 9);
    }

    #[test]
    fn interleaved_unary_and_binary() {
        let mut w = BitWriter::new();
        w.write_unary(3);
        w.write_bits(0xab, 8);
        w.write_unary(0);
        w.write_bits(5, 3);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::with_len(&bytes, bits);
        assert_eq!(r.read_unary(), Some(3));
        assert_eq!(r.read_bits(8), Some(0xab));
        assert_eq!(r.read_unary(), Some(0));
        assert_eq!(r.read_bits(3), Some(5));
    }
}
