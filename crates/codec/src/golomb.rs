//! Golomb(-Rice) coding of sorted integer sequences.
//!
//! The duplicate-detection step of PDMS sends streams of fingerprints to
//! their hash-designated owner PEs (§VI-A of the paper, building on Sanders,
//! Schlag and Müller's communication-efficient duplicate detection). When a
//! stream of `k` fingerprints is sorted, its deltas are geometrically
//! distributed with mean `range/k`, the regime where Golomb coding
//! approaches the entropy bound. The PDMS-Golomb algorithm variant uses
//! this module; plain PDMS sends raw 64-bit fingerprints.
//!
//! We use the Rice restriction of rounding the Golomb parameter to a power
//! of two: quotients are unary-coded and remainders use a fixed bit width,
//! which keeps encoding and decoding branch-light.

use crate::bitio::{BitReader, BitWriter};

/// Chooses a near-optimal Rice parameter (log2 of the Golomb divisor) for
/// `count` sorted values spread over `range`.
///
/// The classic rule for geometric gaps with success probability
/// `p = count/range` picks `M ≈ -1/log2(1-p) ≈ (ln 2) · range/count`;
/// we return `⌈log2 M⌉` clamped to `[0, 63]`.
pub fn optimal_golomb_parameter(count: usize, range: u64) -> u32 {
    if count == 0 || range == 0 {
        return 0;
    }
    let mean_gap = (range / count as u64).max(1);
    // M = ln(2) * mean_gap ≈ mean_gap * 0.6931; avoid floats: (gap * 693) / 1000.
    let m = ((mean_gap / 1000).saturating_mul(693))
        .saturating_add((mean_gap % 1000).saturating_mul(693) / 1000)
        .max(1);
    63 - m.leading_zeros().min(63)
}

/// Encodes a **sorted** slice of values as delta + Rice codes.
///
/// Returns the encoded bytes and the exact bit length. The parameter `log_m`
/// (Rice divisor `2^log_m`) must match at decode time; use
/// [`optimal_golomb_parameter`] to pick it.
///
/// Duplicated values are legal (delta 0 encodes in `log_m + 1` bits).
///
/// # Panics
/// Debug-asserts that `values` is sorted.
pub fn golomb_encode_sorted(values: &[u64], log_m: u32) -> (Vec<u8>, usize) {
    debug_assert!(values.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    debug_assert!(log_m < 64);
    let mut w = BitWriter::with_capacity_bits(values.len() * (log_m as usize + 2));
    let mut prev = 0u64;
    for (i, &v) in values.iter().enumerate() {
        let delta = if i == 0 { v } else { v - prev };
        prev = v;
        let q = delta >> log_m;
        let r = delta & ((1u64 << log_m) - 1);
        w.write_unary(q);
        if log_m > 0 {
            w.write_bits(r, log_m);
        }
    }
    w.finish()
}

/// Decodes `count` values previously encoded with [`golomb_encode_sorted`].
///
/// Returns `None` if the stream is truncated or malformed.
pub fn golomb_decode_sorted(
    bytes: &[u8],
    len_bits: usize,
    count: usize,
    log_m: u32,
) -> Option<Vec<u64>> {
    let mut r = BitReader::with_len(bytes, len_bits);
    let mut out = Vec::with_capacity(count);
    let mut prev = 0u64;
    for i in 0..count {
        let q = r.read_unary()?;
        let rem = if log_m > 0 { r.read_bits(log_m)? } else { 0 };
        let delta = (q << log_m) | rem;
        let v = if i == 0 {
            delta
        } else {
            prev.checked_add(delta)?
        };
        out.push(v);
        prev = v;
    }
    Some(out)
}

/// Encodes a sorted slice with an automatically chosen parameter and a tiny
/// self-describing header (parameter + count as varints + bit length).
pub fn golomb_encode_auto(values: &[u64], range: u64) -> Vec<u8> {
    let log_m = optimal_golomb_parameter(values.len(), range);
    let (payload, bits) = golomb_encode_sorted(values, log_m);
    let mut out = Vec::with_capacity(payload.len() + 12);
    crate::varint::encode_u64(log_m as u64, &mut out);
    crate::varint::encode_u64(values.len() as u64, &mut out);
    crate::varint::encode_u64(bits as u64, &mut out);
    out.extend_from_slice(&payload);
    out
}

/// Decodes a buffer produced by [`golomb_encode_auto`].
pub fn golomb_decode_auto(buf: &[u8]) -> Option<Vec<u64>> {
    let mut pos = 0;
    let log_m = crate::varint::decode_u64(buf, &mut pos)? as u32;
    let count = crate::varint::decode_u64(buf, &mut pos)? as usize;
    let bits = crate::varint::decode_u64(buf, &mut pos)? as usize;
    if log_m >= 64 || buf.len() < pos + bits.div_ceil(8) {
        return None;
    }
    golomb_decode_sorted(&buf[pos..], bits, count, log_m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_roundtrip() {
        let (bytes, bits) = golomb_encode_sorted(&[], 5);
        assert_eq!(bits, 0);
        assert_eq!(golomb_decode_sorted(&bytes, bits, 0, 5), Some(vec![]));
    }

    #[test]
    fn simple_roundtrip() {
        let values = vec![3u64, 7, 7, 20, 100, 101, 5000];
        for log_m in [0u32, 1, 3, 8, 16] {
            let (bytes, bits) = golomb_encode_sorted(&values, log_m);
            assert_eq!(
                golomb_decode_sorted(&bytes, bits, values.len(), log_m),
                Some(values.clone()),
                "log_m={log_m}"
            );
        }
    }

    #[test]
    fn duplicates_only() {
        let values = vec![42u64; 100];
        let (bytes, bits) = golomb_encode_sorted(&values, 4);
        assert_eq!(
            golomb_decode_sorted(&bytes, bits, 100, 4),
            Some(values.clone())
        );
    }

    #[test]
    fn auto_roundtrip() {
        let values: Vec<u64> = (0..1000u64).map(|i| i * 97 + 13).collect();
        let buf = golomb_encode_auto(&values, 100_000);
        assert_eq!(golomb_decode_auto(&buf), Some(values));
    }

    #[test]
    fn dense_sets_beat_raw_encoding() {
        // 10_000 sorted values in a 20-bit range: Golomb should be far
        // below the 8 bytes/value of raw u64s.
        let values: Vec<u64> = (0..10_000u64).map(|i| i * 100 + (i % 7)).collect();
        let buf = golomb_encode_auto(&values, 1_000_000);
        assert!(
            buf.len() < values.len() * 3,
            "golomb {} bytes vs raw {}",
            buf.len(),
            values.len() * 8
        );
    }

    #[test]
    fn parameter_is_sane() {
        assert_eq!(optimal_golomb_parameter(0, 100), 0);
        assert_eq!(optimal_golomb_parameter(10, 0), 0);
        // Mean gap 2^32: parameter should be around 31-32.
        let p = optimal_golomb_parameter(1, 1 << 32);
        assert!((28..=33).contains(&p), "p={p}");
        // Dense: gap 1 → parameter 0.
        assert_eq!(optimal_golomb_parameter(1000, 1000), 0);
    }

    #[test]
    fn decode_truncated_is_none() {
        let values = vec![5u64, 500, 50_000];
        let (bytes, bits) = golomb_encode_sorted(&values, 6);
        assert_eq!(golomb_decode_sorted(&bytes, bits / 2, 3, 6), None);
    }

    #[test]
    fn large_first_value() {
        let values = vec![u64::MAX / 2, u64::MAX / 2 + 1];
        let (bytes, bits) = golomb_encode_sorted(&values, 60);
        assert_eq!(golomb_decode_sorted(&bytes, bits, 2, 60), Some(values));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn roundtrip_random_sets(
            mut values in proptest::collection::vec(0u64..1_000_000_000, 0..300),
            log_m in 0u32..40,
        ) {
            values.sort_unstable();
            let (bytes, bits) = golomb_encode_sorted(&values, log_m);
            prop_assert_eq!(
                golomb_decode_sorted(&bytes, bits, values.len(), log_m),
                Some(values)
            );
        }

        #[test]
        fn auto_roundtrip_random(
            mut values in proptest::collection::vec(any::<u64>(), 0..200),
        ) {
            values.sort_unstable();
            let buf = golomb_encode_auto(&values, u64::MAX);
            prop_assert_eq!(golomb_decode_auto(&buf), Some(values));
        }
    }
}
