//! Randomized roundtrip properties for the codec crate, plus bit-boundary
//! edge cases for `bitio`.
//!
//! These complement the in-module proptest suites with seed-driven trials
//! whose distributions are shaped like the wire traffic: varints skew
//! small (string lengths, LCPs), Golomb streams are sorted fingerprint
//! sets of every density.

use dss_codec::golomb::{
    golomb_decode_auto, golomb_decode_sorted, golomb_encode_auto, golomb_encode_sorted,
};
use dss_codec::varint::{decode_u64, encode_u64, encoded_len_u64};
use dss_codec::wire::{
    decode_lcp_into, decode_plain_into, encode_lcp, encode_plain, encoded_len_lcp,
    encoded_len_plain, DecodedRun,
};
use dss_codec::{BitReader, BitWriter};
use rand::prelude::*;

/// Magnitude-stratified random u64: uniform over bit widths, not values,
/// so small varints and 10-byte varints are equally likely.
fn random_width_u64(rng: &mut StdRng) -> u64 {
    let width = rng.gen_range(0..=64u32);
    if width == 0 {
        0
    } else {
        rng.gen_range(0..=u64::MAX) >> (64 - width)
    }
}

#[test]
fn varint_roundtrips_over_randomized_seeds() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(0xC0DEC ^ seed);
        let values: Vec<u64> = (0..500).map(|_| random_width_u64(&mut rng)).collect();
        let mut buf = Vec::new();
        let mut lens = Vec::new();
        for &v in &values {
            lens.push(encode_u64(v, &mut buf));
        }
        let mut pos = 0;
        for (i, &v) in values.iter().enumerate() {
            let before = pos;
            assert_eq!(decode_u64(&buf, &mut pos), Some(v), "seed {seed} idx {i}");
            assert_eq!(pos - before, lens[i], "length accounting, seed {seed}");
            assert_eq!(lens[i], encoded_len_u64(v), "encoded_len_u64, seed {seed}");
        }
        assert_eq!(pos, buf.len(), "no trailing bytes, seed {seed}");
    }
}

#[test]
fn varint_decode_rejects_truncation() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..200 {
        let v = random_width_u64(&mut rng) | (1 << 40); // ≥ 6 encoded bytes
        let mut buf = Vec::new();
        encode_u64(v, &mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(decode_u64(&buf[..cut], &mut pos), None, "cut {cut}");
        }
    }
}

#[test]
fn golomb_roundtrips_over_randomized_seeds() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(0x60_10_3B ^ seed);
        let n = rng.gen_range(0..400usize);
        let log_m = rng.gen_range(0..50u32);
        // Couple value magnitude to the Rice parameter: a delta of width
        // w costs ~2^(w - log_m) unary bits, so keep w ≤ log_m + 20 or the
        // encoding (correctly) explodes to gigabits.
        let max_width = (log_m + 20).min(64);
        let mut values: Vec<u64> = (0..n)
            .map(|_| {
                let width = rng.gen_range(0..=max_width);
                if width == 0 {
                    0
                } else {
                    rng.gen_range(0..=u64::MAX) >> (64 - width)
                }
            })
            .collect();
        values.sort_unstable();
        let (bytes, bits) = golomb_encode_sorted(&values, log_m);
        assert_eq!(
            golomb_decode_sorted(&bytes, bits, values.len(), log_m),
            Some(values.clone()),
            "seed {seed} n {n} log_m {log_m}"
        );
        let auto = golomb_encode_auto(&values, values.last().copied().unwrap_or(0).max(1));
        assert_eq!(golomb_decode_auto(&auto), Some(values), "auto, seed {seed}");
    }
}

#[test]
fn golomb_dense_duplicate_streams_roundtrip() {
    // Fingerprint streams of the duplicate detection are exactly this
    // shape: long runs of equal values among near-equal neighbours.
    let mut rng = StdRng::seed_from_u64(99);
    let mut values = Vec::new();
    let mut v = 0u64;
    for _ in 0..2000 {
        if rng.gen_bool(0.7) {
            values.push(v); // duplicate
        } else {
            v += rng.gen_range(1..50u64);
            values.push(v);
        }
    }
    for log_m in [0u32, 1, 4, 13] {
        let (bytes, bits) = golomb_encode_sorted(&values, log_m);
        assert_eq!(
            golomb_decode_sorted(&bytes, bits, values.len(), log_m),
            Some(values.clone()),
            "log_m {log_m}"
        );
    }
}

/// Random sorted run shaped like exchange traffic: clustered prefixes so
/// LCPs are non-trivial, plus occasional empty strings.
fn random_sorted_run(rng: &mut StdRng) -> (Vec<Vec<u8>>, Vec<u32>, Vec<u64>) {
    let n = rng.gen_range(0..60usize);
    let mut strings: Vec<Vec<u8>> = (0..n)
        .map(|_| {
            let prefix_len = rng.gen_range(0..6usize);
            let tail_len = rng.gen_range(0..8usize);
            let mut s: Vec<u8> = vec![b'p'; prefix_len];
            s.extend((0..tail_len).map(|_| rng.gen_range(b'a'..=b'f')));
            s
        })
        .collect();
    strings.sort();
    let mut lcps = vec![0u32];
    for w in strings.windows(2) {
        let l = w[0].iter().zip(&w[1]).take_while(|(a, b)| a == b).count();
        lcps.push(l as u32);
    }
    lcps.truncate(strings.len());
    let origins: Vec<u64> = (0..strings.len())
        .map(|_| rng.gen_range(0..=u64::MAX) >> rng.gen_range(0..64u32))
        .collect();
    (strings, lcps, origins)
}

/// `encoded_len_*` must equal the bytes actually appended, for all three
/// codecs (plain, LCP, LCP-delta), with and without origin tags — the
/// contract that lets the exchange reserve destination buffers exactly.
#[test]
fn encoded_len_is_exact_for_all_codecs() {
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0x1e4 ^ seed);
        let (strings, lcps, origins) = random_sorted_run(&mut rng);
        let refs: Vec<&[u8]> = strings.iter().map(|s| s.as_slice()).collect();
        for origins in [None, Some(origins.as_slice())] {
            let mut buf = Vec::new();
            encode_plain(refs.iter().copied(), origins, &mut buf);
            assert_eq!(
                encoded_len_plain(refs.iter().copied(), origins),
                buf.len(),
                "plain, seed {seed}"
            );
            for delta in [false, true] {
                let mut buf = Vec::new();
                encode_lcp(refs.iter().copied(), &lcps, origins, delta, &mut buf);
                assert_eq!(
                    encoded_len_lcp(refs.iter().copied(), &lcps, origins, delta),
                    buf.len(),
                    "lcp delta={delta}, seed {seed}"
                );
            }
        }
    }
}

/// Decoding into reused scratch must agree with fresh decoding and stop
/// allocating once the high-water mark is reached.
#[test]
fn decode_into_scratch_roundtrips_many_runs() {
    let mut rng = StdRng::seed_from_u64(0x5c7a7c4);
    let mut scratch = DecodedRun::default();
    for round in 0..60 {
        let (strings, lcps, origins) = random_sorted_run(&mut rng);
        let refs: Vec<&[u8]> = strings.iter().map(|s| s.as_slice()).collect();
        let delta = rng.gen_bool(0.5);
        let with_origins = rng.gen_bool(0.5);
        let origins = with_origins.then_some(origins);
        let mut buf = Vec::new();
        let mut pos = 0;
        if round % 2 == 0 {
            encode_lcp(
                refs.iter().copied(),
                &lcps,
                origins.as_deref(),
                delta,
                &mut buf,
            );
            decode_lcp_into(&buf, &mut pos, &mut scratch).unwrap();
            assert_eq!(scratch.lcps, lcps, "round {round}");
            assert!(scratch.has_lcps);
        } else {
            encode_plain(refs.iter().copied(), origins.as_deref(), &mut buf);
            decode_plain_into(&buf, &mut pos, &mut scratch).unwrap();
            assert!(!scratch.has_lcps);
        }
        assert_eq!(pos, buf.len(), "round {round}");
        assert_eq!(scratch.len(), refs.len());
        for (i, s) in refs.iter().enumerate() {
            assert_eq!(scratch.get(i), *s, "round {round} string {i}");
        }
        assert_eq!(
            scratch.origins.as_deref(),
            origins.as_deref(),
            "round {round}"
        );
    }
}

#[test]
fn bitio_empty_input() {
    let w = BitWriter::new();
    assert!(w.is_empty());
    assert_eq!(w.len_bits(), 0);
    let (bytes, bits) = w.finish();
    assert!(bytes.is_empty());
    assert_eq!(bits, 0);

    let mut r = BitReader::new(&[]);
    assert_eq!(r.remaining(), 0);
    assert_eq!(r.read_bit(), None);
    assert_eq!(r.read_bits(1), None);
    assert_eq!(r.read_unary(), None);
    // Zero-width reads succeed even on an empty stream.
    assert_eq!(r.read_bits(0), Some(0));
}

#[test]
fn bitio_payloads_straddling_byte_boundaries() {
    // 7-, 8- and 9-bit payloads: one bit short of a byte, exactly a byte,
    // one bit past a byte — written back to back so every alignment occurs.
    for &width in &[7u32, 8, 9] {
        let values: Vec<u64> = (0..32)
            .map(|i| (i * 0x35) as u64 & ((1 << width) - 1))
            .collect();
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_bits(v, width);
        }
        assert_eq!(w.len_bits(), values.len() * width as usize);
        let (bytes, bits) = w.finish();
        assert_eq!(bytes.len(), bits.div_ceil(8));
        let mut r = BitReader::with_len(&bytes, bits);
        for &v in &values {
            assert_eq!(r.read_bits(width), Some(v), "width {width}");
        }
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.read_bit(), None);
    }
}

#[test]
fn bitio_mixed_width_random_roundtrip() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(0xB17 ^ seed);
        let items: Vec<(u64, u32)> = (0..300)
            .map(|_| {
                let width = rng.gen_range(0..=64u32);
                let v = if width == 0 {
                    0
                } else {
                    rng.gen_range(0..=u64::MAX) >> (64 - width)
                };
                (v, width)
            })
            .collect();
        let mut w = BitWriter::new();
        for &(v, width) in &items {
            w.write_bits(v, width);
        }
        let (bytes, bits) = w.finish();
        let mut r = BitReader::with_len(&bytes, bits);
        for &(v, width) in &items {
            assert_eq!(r.read_bits(width), Some(v), "seed {seed} width {width}");
        }
        assert_eq!(r.remaining(), 0);
    }
}

#[test]
fn bitio_unary_across_boundaries() {
    // Unary runs of length 6..=10 cross the byte boundary in every phase.
    let values: Vec<u64> = (0..40).map(|i| (i % 5) + 6).collect();
    let mut w = BitWriter::new();
    for &v in &values {
        w.write_unary(v);
    }
    let (bytes, bits) = w.finish();
    let mut r = BitReader::with_len(&bytes, bits);
    for &v in &values {
        assert_eq!(r.read_unary(), Some(v));
    }
    assert_eq!(r.remaining(), 0);
}
