//! Steady-state allocation guard for the exchange engine's pooled decode
//! scratch: this test binary installs a counting global allocator (the
//! same probe design as the `perfsnap` binary) and verifies that repeated
//! exchanges through one [`StringAllToAll`] stop allocating on the decode
//! side once the scratch ring has reached its high-water mark.

use dss_net::runner::{run_spmd, RunConfig};
use dss_sort::exchange::{merge_received_lcp, ExchangeMode, ExchangePayload};
use dss_sort::{ExchangeCodec, StringAllToAll};
use dss_strkit::sort::sort_with_lcp;
use dss_strkit::{copyvol, StringSet};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Both tests read process-wide counters (allocator calls, copied
/// bytes) in barrier-fenced windows; running them concurrently would
/// leak one test's traffic into the other's window. Each test holds
/// this lock for its whole measured region.
static SERIAL: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter is
// a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Round 1 populates the decode scratch ring; later rounds with the same
/// payload must allocate strictly less (no per-source `DecodedRun`
/// rebuilds) and never grow the pooled buffers.
#[test]
fn exchange_decode_reaches_allocation_steady_state() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let p = 4usize;
    let cfg = RunConfig {
        recv_timeout: Duration::from_secs(60),
        ..RunConfig::default()
    };
    let rounds = 4usize;
    let res = run_spmd(p, cfg, move |comm| {
        let mut set = StringSet::new();
        for i in 0..3000u32 {
            set.push(format!("steady_state_{:05}_{}", i, comm.rank()).as_bytes());
        }
        let lcps = sort_with_lcp(&mut set).0;
        let mut splitters = StringSet::new();
        for j in 1..comm.size() {
            splitters.push(set.get(j * set.len() / comm.size()));
        }
        let payload = ExchangePayload {
            set: &set,
            lcps: &lcps,
            origins: None,
            truncate: None,
        };
        let mut engine = StringAllToAll::new(ExchangeCodec::LcpCompressed);
        // Per-round process-wide allocation deltas, barrier-fenced so each
        // round's traffic is fully contained in its window (rank 0 reads).
        let mut deltas: Vec<u64> = Vec::with_capacity(rounds);
        let mut caps: Vec<(usize, usize, usize)> = Vec::new();
        for round in 0..rounds {
            comm.barrier();
            let before = (comm.rank() == 0).then(allocs);
            // Barrier exits are not synchronized: without this second
            // fence a fast PE could start (and partly finish) its
            // exchange before rank 0 reads the counter, sliding that
            // traffic out of the window.
            comm.barrier();
            let runs = engine.exchange_by_splitters(comm, &payload, &splitters, false);
            let now: Vec<(usize, usize, usize)> = runs
                .iter()
                .map(|r| (r.data.capacity(), r.bounds.capacity(), r.lcps.capacity()))
                .collect();
            if round == 0 {
                caps = now;
                // The exchanged data is sane (exercises the decoded runs).
                let merged = merge_received_lcp(runs, 1);
                assert!(dss_strkit::checker::is_sorted(&merged.set));
            } else {
                assert_eq!(caps, now, "pooled scratch grew in round {round}");
            }
            comm.barrier();
            if let Some(b) = before {
                deltas.push(allocs() - b);
            }
        }
        deltas
    });
    let deltas = res
        .values
        .into_iter()
        .find(|d| !d.is_empty())
        .expect("rank 0 measured");
    // Round 0 additionally merges, so compare from round 1 on: every
    // steady-state round allocates far less than the cold round (which
    // built p DecodedRuns per PE plus the merge) — only encode buffers
    // and channel-transport envelopes remain. The decode side is pinned
    // down exactly by the capacity assertions inside the closure; the
    // process-wide counter keeps some channel-internal jitter, so only
    // the coarse ratio is asserted here.
    for &d in &deltas[1..] {
        assert!(
            d < deltas[0] / 2,
            "steady-state round should allocate < half of the cold round: {deltas:?}"
        );
    }
}

/// Same steady-state guard for [`ExchangeCodec::Auto`]: the
/// per-destination codec election sizes each encode buffer with the
/// exact `encoded_len_all` figure up front, so repeated exchanges with a
/// *mixed* workload — buckets that elect Plain next to buckets that
/// elect LcpDelta — must neither regrow the pooled decode scratch nor
/// reallocate mid-encode once warm.
#[test]
fn auto_codec_reaches_allocation_steady_state() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let p = 4usize;
    let cfg = RunConfig {
        recv_timeout: Duration::from_secs(60),
        ..RunConfig::default()
    };
    let rounds = 4usize;
    let res = run_spmd(p, cfg, move |comm| {
        // Low half: single characters (Plain wins); high half: a long
        // shared prefix (LcpDelta wins). The splitters put each shape in
        // its own buckets, so one exchange elects both codecs.
        let mut set = StringSet::new();
        for i in 0..1500u32 {
            set.push(&[b'!' + (i % 60) as u8]);
        }
        for i in 0..1500u32 {
            set.push(format!("{}{:04}_{}", "z".repeat(120), i, comm.rank()).as_bytes());
        }
        let lcps = sort_with_lcp(&mut set).0;
        let mut splitters = StringSet::new();
        for j in 1..comm.size() {
            splitters.push(set.get(j * set.len() / comm.size()));
        }
        let payload = ExchangePayload {
            set: &set,
            lcps: &lcps,
            origins: None,
            truncate: None,
        };
        let mut engine = StringAllToAll::new(ExchangeCodec::Auto);
        let mut deltas: Vec<u64> = Vec::with_capacity(rounds);
        let mut caps: Vec<(usize, usize, usize)> = Vec::new();
        for round in 0..rounds {
            comm.barrier();
            let before = (comm.rank() == 0).then(allocs);
            comm.barrier();
            let runs = engine.exchange_by_splitters(comm, &payload, &splitters, false);
            let now: Vec<(usize, usize, usize)> = runs
                .iter()
                .map(|r| (r.data.capacity(), r.bounds.capacity(), r.lcps.capacity()))
                .collect();
            if round == 0 {
                caps = now;
                let merged = merge_received_lcp(runs, 1);
                assert!(dss_strkit::checker::is_sorted(&merged.set));
            } else {
                assert_eq!(caps, now, "pooled scratch grew in round {round}");
            }
            comm.barrier();
            if let Some(b) = before {
                deltas.push(allocs() - b);
            }
        }
        deltas
    });
    let deltas = res
        .values
        .into_iter()
        .find(|d| !d.is_empty())
        .expect("rank 0 measured");
    for &d in &deltas[1..] {
        assert!(
            d < deltas[0] / 2,
            "Auto steady-state round should allocate < half of the cold round: {deltas:?}"
        );
    }
}

/// One whole SPMD run for [`pipelined_copy_volume_not_above_blocking`]:
/// `rounds` fused exchange+merges in the given mode through one engine
/// (cold round plus steady-state rounds), returning the process-wide
/// [`copyvol`] delta for the entire run and rank 0's last merged output.
///
/// The delta is read on the test thread around the whole `run_spmd` —
/// the thread join makes every PE's recording visible and fully
/// contained, with no window-fencing races — and every recorded copy
/// (local sort handle scatter, encode, decode, merge/materialize) is
/// deterministic per input, so same-input runs are exactly comparable.
/// Rank 0's merged output: the arena bytes plus the merged LCP array.
type MergedOutput = (Vec<u8>, Vec<u32>);

fn copy_volume_run(mode: ExchangeMode, rounds: usize) -> (u64, Vec<MergedOutput>) {
    let cfg = RunConfig {
        recv_timeout: Duration::from_secs(60),
        ..RunConfig::default()
    };
    let before = copyvol::bytes_copied();
    let res = run_spmd(4, cfg, move |comm| {
        let mut set = StringSet::new();
        for i in 0..2000u32 {
            set.push(format!("copy_volume_{:05}_{}", i * 7 % 2000, comm.rank()).as_bytes());
        }
        let lcps = sort_with_lcp(&mut set).0;
        let mut splitters = StringSet::new();
        for j in 1..comm.size() {
            splitters.push(set.get(j * set.len() / comm.size()));
        }
        let payload = ExchangePayload {
            set: &set,
            lcps: &lcps,
            origins: None,
            truncate: None,
        };
        let mut engine =
            StringAllToAll::with_mode(ExchangeCodec::LcpCompressed, mode).with_threads(1);
        let mut last = None;
        for _ in 0..rounds {
            last =
                Some(engine.exchange_merge_by_splitters(comm, &payload, &splitters, false, None));
        }
        let run = last.expect("at least one round");
        if comm.rank() == 0 {
            (run.set.arena().to_vec(), run.lcps.expect("LCP merge"))
        } else {
            (Vec::new(), Vec::new())
        }
    });
    (copyvol::bytes_copied() - before, res.values)
}

/// Copy-volume regression guard: the fused exchange+merge must not copy
/// more character payload in pipelined mode than in blocking mode.
///
/// [`dss_strkit::copyvol`] counts deterministically per input (local
/// sort handle scatter + encode buffers + decoded run arenas + merge
/// appends), so the comparison of two same-input runs is exact, not a
/// timing heuristic. The blocking path copies each character three
/// times (encode, decode, k-way merge append); the rope-backed cascade
/// also copies exactly three (encode, decode, one materialization at
/// `finish`). A cascade that re-copies strings at every merge level —
/// one extra full pass per level — fails this immediately at `p = 4`,
/// and the repeated rounds amplify any per-round regression.
#[test]
fn pipelined_copy_volume_not_above_blocking() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let rounds = 3;
    let (blocking, out_b) = copy_volume_run(ExchangeMode::Blocking, rounds);
    let (pipelined, out_p) = copy_volume_run(ExchangeMode::Pipelined, rounds);
    assert_eq!(out_b, out_p, "modes must produce byte-identical output");
    assert!(blocking > 0 && pipelined > 0, "copy volume untracked");
    assert!(
        pipelined <= blocking,
        "pipelined copied more than blocking: {pipelined} > {blocking}"
    );
}
