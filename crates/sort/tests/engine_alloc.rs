//! Steady-state allocation guard for the exchange engine's pooled decode
//! scratch: this test binary installs a counting global allocator (the
//! same probe design as the `perfsnap` binary) and verifies that repeated
//! exchanges through one [`StringAllToAll`] stop allocating on the decode
//! side once the scratch ring has reached its high-water mark.

use dss_net::runner::{run_spmd, RunConfig};
use dss_sort::exchange::{merge_received_lcp, ExchangePayload};
use dss_sort::{ExchangeCodec, StringAllToAll};
use dss_strkit::sort::sort_with_lcp;
use dss_strkit::StringSet;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter is
// a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Round 1 populates the decode scratch ring; later rounds with the same
/// payload must allocate strictly less (no per-source `DecodedRun`
/// rebuilds) and never grow the pooled buffers.
#[test]
fn exchange_decode_reaches_allocation_steady_state() {
    let p = 4usize;
    let cfg = RunConfig {
        recv_timeout: Duration::from_secs(60),
        ..RunConfig::default()
    };
    let rounds = 4usize;
    let res = run_spmd(p, cfg, move |comm| {
        let mut set = StringSet::new();
        for i in 0..3000u32 {
            set.push(format!("steady_state_{:05}_{}", i, comm.rank()).as_bytes());
        }
        let lcps = sort_with_lcp(&mut set).0;
        let mut splitters = StringSet::new();
        for j in 1..comm.size() {
            splitters.push(set.get(j * set.len() / comm.size()));
        }
        let payload = ExchangePayload {
            set: &set,
            lcps: &lcps,
            origins: None,
            truncate: None,
        };
        let mut engine = StringAllToAll::new(ExchangeCodec::LcpCompressed);
        // Per-round process-wide allocation deltas, barrier-fenced so each
        // round's traffic is fully contained in its window (rank 0 reads).
        let mut deltas: Vec<u64> = Vec::with_capacity(rounds);
        let mut caps: Vec<(usize, usize, usize)> = Vec::new();
        for round in 0..rounds {
            comm.barrier();
            let before = (comm.rank() == 0).then(allocs);
            let runs = engine.exchange_by_splitters(comm, &payload, &splitters, false);
            let now: Vec<(usize, usize, usize)> = runs
                .iter()
                .map(|r| (r.data.capacity(), r.bounds.capacity(), r.lcps.capacity()))
                .collect();
            if round == 0 {
                caps = now;
                // The exchanged data is sane (exercises the decoded runs).
                let merged = merge_received_lcp(runs, 1);
                assert!(dss_strkit::checker::is_sorted(&merged.set));
            } else {
                assert_eq!(caps, now, "pooled scratch grew in round {round}");
            }
            comm.barrier();
            if let Some(b) = before {
                deltas.push(allocs() - b);
            }
        }
        deltas
    });
    let deltas = res
        .values
        .into_iter()
        .find(|d| !d.is_empty())
        .expect("rank 0 measured");
    // Round 0 additionally merges, so compare from round 1 on: every
    // steady-state round allocates far less than the cold round (which
    // built p DecodedRuns per PE plus the merge) — only encode buffers
    // and channel-transport envelopes remain. The decode side is pinned
    // down exactly by the capacity assertions inside the closure; the
    // process-wide counter keeps some channel-internal jitter, so only
    // the coarse ratio is asserted here.
    for &d in &deltas[1..] {
        assert!(
            d < deltas[0] / 2,
            "steady-state round should allocate < half of the cold round: {deltas:?}"
        );
    }
}
