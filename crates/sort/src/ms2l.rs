//! MS2L — two-level (grid) distributed string mergesort.
//!
//! The paper's single-level algorithms (§V–§VI) have every PE exchange
//! with all `p − 1` peers — the scalability wall the follow-up work
//! "Scalable Distributed String Sorting" (Kurpicz, Mehnert, Sanders,
//! Schimek, 2024) removes with **multi-level grid communication**. MS2L
//! is the two-level instance of that idea on top of MS's machinery:
//!
//! 1. **local sort** with LCP array (as MS step 1);
//! 2. **row partition**: `c − 1` *global* splitters (regular sampling
//!    over the world communicator, distributed sample sort) cut the
//!    global order into `c` column ranges; each PE splits its sorted set
//!    into `c` buckets;
//! 3. **row exchange + merge**: over the row communicator of a
//!    [`dss_net::GridComm`] (`c − 1` partners per PE), bucket `j` travels
//!    to the row member in column `j`; an LCP loser-tree merge restores a
//!    sorted local set. Now column `j` holds exactly global range `j`;
//! 4. **column partition + exchange + merge**: an ordinary single-level
//!    MS round *within* the column communicator (`r − 1` partners)
//!    finishes the sort.
//!
//! With the column-major rank mapping of [`dss_net::grid_view`]
//! (`world rank = col·r + row`), concatenating the per-PE outputs in
//! world-rank order yields the globally sorted sequence — same output
//! contract as every other [`DistSorter`].
//!
//! Both exchanges run through the same [`StringAllToAll`] engine
//! instance, so the second level reuses the first level's pooled decode
//! scratch. Per-PE exchange partners drop from `p − 1` to
//! `(r − 1) + (c − 1)` — `O(√p)` on a square grid — at the cost of
//! moving the payload twice (the classic latency/volume tradeoff, here
//! traded the opposite way from `alltoallv_hypercube`).
//!
//! When `p` admits no `r×c` grid with `r, c ≥ 2` (`p < 4` or `p` prime),
//! MS2L falls back to single-level [`Ms`] with the same codec settings.

use crate::exchange::{ExchangeCodec, ExchangeMode, ExchangePayload, StringAllToAll};
use crate::ms::{Ms, MsConfig};
use crate::output::SortedRun;
use crate::partition::{self, PartitionConfig};
use crate::DistSorter;
use dss_net::topology;
use dss_net::trace::{self, cat};
use dss_net::Comm;
use dss_strkit::sort::{par_sort_with_lcp, threads_from_env};
use dss_strkit::StringSet;

/// Configuration of MS2L.
#[derive(Debug, Clone, Copy)]
pub struct Ms2lConfig {
    /// Difference-code the LCP values on the wire (§VI-B extension).
    pub delta_lcps: bool,
    /// Pick the wire codec per destination bucket instead
    /// ([`ExchangeCodec::Auto`]); overrides `delta_lcps`.
    pub auto_codec: bool,
    /// Blocking or pipelined exchange, applied to **both** grid levels
    /// (defaults to the `DSS_EXCHANGE_MODE` knob).
    pub mode: ExchangeMode,
    /// Shared-memory threads per PE for the local sort and both levels'
    /// merges (defaults to the `DSS_THREADS` knob).
    pub threads: usize,
    /// Grid rows `r` (`0` ⇒ auto: the near-square [`topology::grid_dims`]
    /// choice, falling back to single-level MS when `p < 4` or prime).
    /// An explicit value must be ≥ 2 and divide `p` with a quotient ≥ 2,
    /// else MS2L **panics** with the offending value — a bad grid knob
    /// must fail loudly, not silently sort single-level (same policy as
    /// the `DSS_*` env knobs).
    pub rows: usize,
    /// Sampling/splitter policy, used by both levels.
    pub partition: PartitionConfig,
}

impl Default for Ms2lConfig {
    fn default() -> Self {
        Self {
            delta_lcps: false,
            auto_codec: false,
            mode: ExchangeMode::default(),
            threads: threads_from_env(),
            rows: 0,
            partition: PartitionConfig::default(),
        }
    }
}

/// Two-level distributed string mergesort (see module docs).
#[derive(Debug, Default, Clone, Copy)]
pub struct Ms2l {
    pub cfg: Ms2lConfig,
}

impl Ms2l {
    /// MS2L with a custom configuration.
    pub fn with_config(cfg: Ms2lConfig) -> Self {
        Self { cfg }
    }

    /// Overrides the shared-memory thread count (local sort + merges).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be positive, got 0");
        self.cfg.threads = threads;
        self
    }

    /// The grid this configuration yields for `p` PEs (`None` ⇒ fallback
    /// to single-level MS).
    fn dims(&self, p: usize) -> Option<(usize, usize)> {
        match self.cfg.rows {
            0 => topology::grid_dims(p),
            r => {
                assert!(
                    r >= 2 && p.is_multiple_of(r) && p / r >= 2,
                    "Ms2lConfig::rows = {r} does not tile p = {p} PEs into an \
                     r x c grid with r, c >= 2"
                );
                Some((r, p / r))
            }
        }
    }

    fn fallback(&self) -> Ms {
        Ms::with_config(MsConfig {
            lcp: true,
            delta_lcps: self.cfg.delta_lcps,
            auto_codec: self.cfg.auto_codec,
            mode: self.cfg.mode,
            threads: self.cfg.threads,
            partition: self.cfg.partition,
        })
    }
}

impl DistSorter for Ms2l {
    fn name(&self) -> &'static str {
        "MS2L"
    }

    fn sort(&self, comm: &Comm, mut input: StringSet) -> SortedRun {
        let _algo = trace::span_args(
            cat::ALGO,
            self.name(),
            [("strings", input.len() as u64), ("", 0)],
        );
        let p = comm.size();
        let Some((r, c)) = self.dims(p) else {
            // No r×c grid with r, c ≥ 2: single-level MS does the job.
            return self.fallback().sort(comm, input);
        };

        comm.set_phase("local_sort");
        let (lcps, _) = par_sort_with_lcp(&mut input, self.cfg.threads);
        let codec = ExchangeCodec::for_lcp_config(self.cfg.delta_lcps, self.cfg.auto_codec);
        let tie_break = self.cfg.partition.duplicate_tie_break;
        // One mode (and thread count) for every byte this run moves: both
        // levels' sample sorts follow the algorithm's exchange mode and
        // threads.
        let mut pcfg = self.cfg.partition;
        pcfg.mode = self.cfg.mode;
        pcfg.threads = self.cfg.threads;
        // The two counted splits of the grid view are communication —
        // keep them out of the local_sort phase.
        comm.set_phase("grid_setup");
        let grid = topology::grid_view(comm, r, c);
        let mut engine =
            StringAllToAll::with_mode(codec, self.cfg.mode).with_threads(self.cfg.threads);

        // Level 1: c − 1 global splitters cut the global order into the
        // c column ranges; the sample sort runs over the *world*
        // communicator so the splitters are true global order statistics.
        comm.set_phase("partition_row");
        let row_splitters = partition::determine_splitters_for(comm, &input, c, &pcfg, None, None);
        comm.set_phase("exchange_row");
        let mid = engine.exchange_merge_by_splitters(
            &grid.row,
            &ExchangePayload {
                set: &input,
                lcps: &lcps,
                origins: None,
                truncate: None,
            },
            &row_splitters,
            tie_break,
            Some("merge_row"),
        );
        drop(input);
        let mid_lcps = mid.lcps.as_deref().expect("LCP merge yields LCPs");

        // Level 2: an ordinary single-level MS round within the column,
        // which now holds one contiguous global range.
        comm.set_phase("partition_col");
        let col_splitters = partition::determine_splitters(&grid.col, &mid.set, &pcfg, None, None);
        comm.set_phase("exchange_col");
        engine.exchange_merge_by_splitters(
            &grid.col,
            &ExchangePayload {
                set: &mid.set,
                lcps: mid_lcps,
                origins: None,
                truncate: None,
            },
            &col_splitters,
            tie_break,
            Some("merge_col"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use dss_net::runner::{run_spmd, RunConfig};
    use rand::prelude::*;
    use std::time::Duration;

    fn cfg_run() -> RunConfig {
        RunConfig {
            recv_timeout: Duration::from_secs(60),
            ..RunConfig::default()
        }
    }

    fn check(p: usize, shards: Vec<Vec<Vec<u8>>>, sorter: Ms2l) {
        let mut expect: Vec<Vec<u8>> = shards.iter().flatten().cloned().collect();
        expect.sort();
        let shards_ref = &shards;
        let res = run_spmd(p, cfg_run(), move |comm| {
            let set =
                StringSet::from_iter_bytes(shards_ref[comm.rank()].iter().map(|s| s.as_slice()));
            let out = sorter.sort(comm, set);
            if let Some(l) = &out.lcps {
                dss_strkit::lcp::verify_lcp_array(&out.set, l).expect("output lcps");
            }
            out.set.to_vecs()
        });
        let got: Vec<Vec<u8>> = res.values.into_iter().flatten().collect();
        assert_eq!(got, expect, "p={p}");
    }

    fn random_shards(p: usize, n: usize, seed: u64) -> Vec<Vec<Vec<u8>>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..p)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        let len = rng.gen_range(0..14);
                        (0..len).map(|_| rng.gen_range(b'a'..=b'e')).collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn ms2l_sorts_square_and_rectangular_grids() {
        // 4 = 2×2, 6 = 2×3 (non-square), 8 = 2×4, 9 = 3×3.
        for p in [4usize, 6, 8, 9] {
            check(p, random_shards(p, 60, p as u64), Ms2l::default());
        }
    }

    #[test]
    fn ms2l_falls_back_on_prime_and_tiny_pe_counts() {
        for p in [1usize, 2, 3, 5, 7] {
            check(p, random_shards(p, 50, 40 + p as u64), Ms2l::default());
        }
    }

    #[test]
    fn ms2l_with_explicit_rows_and_delta_lcps() {
        let sorter = Ms2l::with_config(Ms2lConfig {
            delta_lcps: true,
            rows: 2,
            ..Ms2lConfig::default()
        });
        check(6, random_shards(6, 50, 77), sorter);
    }

    #[test]
    fn ms2l_rows_zero_stays_auto() {
        // rows: 0 is the documented auto sentinel: picks the near-square
        // grid for composite p and falls back (without panicking) for
        // prime p.
        let auto = Ms2l::with_config(Ms2lConfig {
            rows: 0,
            ..Ms2lConfig::default()
        });
        check(6, random_shards(6, 40, 78), auto);
        check(5, random_shards(5, 40, 79), auto);
    }

    #[test]
    #[should_panic(expected = "Ms2lConfig::rows = 4 does not tile p = 6")]
    fn ms2l_panics_on_rows_not_dividing_p() {
        let bad = Ms2l::with_config(Ms2lConfig {
            rows: 4,
            ..Ms2lConfig::default()
        });
        check(6, random_shards(6, 10, 80), bad);
    }

    #[test]
    #[should_panic(expected = "Ms2lConfig::rows = 1 does not tile p = 6")]
    fn ms2l_panics_on_degenerate_rows() {
        // rows: 1 would be a 1×p "grid", i.e. no grid at all — loud
        // failure beats silently renaming single-level MS.
        let bad = Ms2l::with_config(Ms2lConfig {
            rows: 1,
            ..Ms2lConfig::default()
        });
        check(6, random_shards(6, 10, 81), bad);
    }

    #[test]
    fn ms2l_handles_duplicates_and_empty_shards() {
        let mut shards = random_shards(6, 0, 90);
        shards[1] = vec![b"dup".to_vec(); 150];
        shards[4] = vec![b"dup".to_vec(); 30];
        check(6, shards, Ms2l::default());
    }

    /// The headline claim: on a 4×4 grid, MS2L's exchange phases contact
    /// at most (r − 1) + (c − 1) partners per PE while single-level MS
    /// contacts p − 1 — measured exactly via the per-phase message
    /// counters.
    #[test]
    fn grid_exchange_cuts_message_partners_to_r_plus_c() {
        let p = 16usize; // 4×4
        let (r, c) = dss_net::grid_dims(p).expect("16 has a grid");
        assert_eq!((r, c), (4, 4));

        let msgs_in = |stats: &dss_net::NetStats, phases: &[&str]| -> u64 {
            stats
                .phases
                .iter()
                .filter(|ph| phases.contains(&ph.name.as_str()))
                .map(|ph| ph.max.msgs_sent)
                .sum()
        };

        let run = |alg: Algorithm| {
            run_spmd(p, cfg_run(), move |comm| {
                let mut rng = StdRng::seed_from_u64(1000 + comm.rank() as u64);
                let mut set = StringSet::new();
                for _ in 0..40 {
                    let len = rng.gen_range(0..10);
                    let s: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'f')).collect();
                    set.push(&s);
                }
                let _ = alg.instance().sort(comm, set);
            })
            .stats
        };

        let two_level = run(Algorithm::Ms2l);
        let partners_2l = msgs_in(&two_level, &["exchange_row", "exchange_col"]);
        assert_eq!(
            partners_2l,
            (r as u64 - 1) + (c as u64 - 1),
            "two-level exchange partners"
        );
        assert!(partners_2l <= (r + c) as u64 && r + c < p);

        let single = run(Algorithm::Ms);
        let partners_1l = msgs_in(&single, &["exchange"]);
        assert_eq!(partners_1l, p as u64 - 1, "single-level exchange partners");
        assert!(partners_2l < partners_1l);
    }
}
