//! hQuick — hypercube quicksort adapted to strings (§IV).
//!
//! The atomic-sorting baseline (after Axtmann & Sanders' RQuick) and the
//! subroutine all merge-based algorithms use to sort their splitter
//! samples. Only `2^⌊log p⌋ ≥ p/2` PEs participate. The algorithm:
//!
//! 1. move every input string to a uniformly random hypercube node;
//! 2. for dimension `i = d−1 … 0`: approximate the subcube's median with
//!    a tree reduction over local candidate medians, broadcast it as the
//!    pivot, split local data into `≤ pivot` / `> pivot`, and exchange the
//!    halves with the partner across dimension `i` (lower subcube keeps
//!    `≤`);
//! 3. sort locally.
//!
//! Tie breaking: every string carries a unique 64-bit id after placement;
//! a pivot is the pair (string, id) and equal strings compare by id,
//! which makes the pivot unique (the paper's requirement) and keeps
//! duplicate-heavy inputs balanced.
//!
//! Costs (Theorem 1): polylog latency, but all data moves log p times and
//! comparisons never exploit common prefixes — the properties that make
//! hQuick lose to the genuine string sorters on anything large.

use crate::output::SortedRun;
use crate::DistSorter;
use dss_codec::wire;
use dss_net::topology;
use dss_net::{Comm, SplitMix64};
use dss_strkit::sort::{par_sort_with_lcp, threads_from_env};
use dss_strkit::StringSet;

/// Candidates kept per reduction step of the pivot selection.
const PIVOT_FANOUT: usize = 3;

/// The hQuick sorter (the paper runs it as-is; the knobs are the exchange
/// mode of its random-placement scatter and the shared-memory thread
/// count of its final local sort).
#[derive(Debug, Clone, Copy)]
pub struct HQuick {
    /// Blocking or pipelined placement scatter (defaults to the
    /// `DSS_EXCHANGE_MODE` knob).
    pub mode: crate::exchange::ExchangeMode,
    /// Shared-memory threads per PE for the final local sort (defaults to
    /// the `DSS_THREADS` knob).
    pub threads: usize,
}

impl Default for HQuick {
    fn default() -> Self {
        Self {
            mode: crate::exchange::ExchangeMode::default(),
            threads: threads_from_env(),
        }
    }
}

impl HQuick {
    /// Overrides the shared-memory thread count (final local sort).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be positive, got 0");
        self.threads = threads;
        self
    }
}

impl DistSorter for HQuick {
    fn name(&self) -> &'static str {
        "hQuick"
    }

    fn sort(&self, comm: &Comm, input: StringSet) -> SortedRun {
        let (mut set, _) = hquick_sort(comm, input, true, self.mode);
        comm.set_phase("local_sort");
        let (lcps, _) = par_sort_with_lcp(&mut set, self.threads);
        SortedRun {
            set,
            lcps: Some(lcps),
            origins: None,
            local_store: None,
        }
    }
}

/// Sample-sorting entry for the partitioners: returns this PE's sorted
/// slice of the global sample (empty on PEs outside the hypercube).
///
/// Does **not** touch the metrics phase — all traffic stays attributed to
/// the caller's current phase (the partitioning step it serves). `mode`
/// drives the placement scatter, so a caller-selected exchange mode
/// reaches every byte the partitioning moves; `threads` drives the local
/// sample sort the same way.
pub fn sort_for_samples(
    comm: &Comm,
    sample: StringSet,
    mode: crate::exchange::ExchangeMode,
    threads: usize,
) -> StringSet {
    let (mut set, _) = hquick_sort(comm, sample, false, mode);
    let (_, _) = par_sort_with_lcp(&mut set, threads);
    set
}

/// Runs placement + d partition/exchange levels. Returns the local
/// fragment (unsorted) and its tie-breaker ids. `set_phases` labels the
/// metrics phases (top-level runs only; subroutine use keeps the caller's
/// phase); `mode` drives the placement scatter.
fn hquick_sort(
    comm: &Comm,
    input: StringSet,
    set_phases: bool,
    mode: crate::exchange::ExchangeMode,
) -> (StringSet, Vec<u64>) {
    let p = comm.size();
    if p == 1 {
        let ids = (0..input.len() as u64).collect();
        return (input, ids);
    }
    let q = topology::hypercube_size(p);
    let d = topology::hypercube_dim(p);
    let mut rng = comm.rng();

    // Step 1: random placement onto the q hypercube nodes, via the plain
    // scatter of the shared exchange engine.
    if set_phases {
        comm.set_phase("hq_place");
    }
    let dest_of: Vec<usize> = (0..input.len()).map(|_| rng.next_index(q)).collect();
    let mut engine =
        crate::exchange::StringAllToAll::with_mode(crate::exchange::ExchangeCodec::Plain, mode);
    let runs = engine.scatter_plain(comm, &input, &dest_of);
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let total_chars: usize = runs.iter().map(|r| r.data.len()).sum();
    let mut set = StringSet::with_capacity(total, total_chars);
    for run in runs {
        for s in run.iter() {
            set.push(s);
        }
    }
    drop(input);
    let mut ids: Vec<u64> = (0..set.len() as u64)
        .map(|i| ((comm.rank() as u64) << 40) | i)
        .collect();

    // PEs outside the hypercube are done (they hold no data).
    let in_cube = comm.rank() < q;
    let mut cur = comm.split(u64::from(!in_cube));
    if !in_cube {
        debug_assert!(set.is_empty());
        return (set, ids);
    }

    // Step 2: peel one dimension per iteration.
    if set_phases {
        comm.set_phase("hq_partition");
    }
    // Decode scratch reused across all d levels.
    let mut run_scratch = wire::DecodedRun::default();
    for level in (0..d).rev() {
        let pivot = select_pivot(&cur, &set, &ids, &mut rng);
        let (keep_le, bit) = {
            let bit = cur.rank() & (1 << level) != 0;
            (!bit, bit)
        };
        // Partition: ≤ pivot (ties by id) vs > pivot.
        let (mut left_idx, mut right_idx) = (Vec::new(), Vec::new());
        match &pivot {
            Some((ps, pid)) => {
                for (i, s) in set.iter().enumerate() {
                    let le = match s.cmp(ps.as_slice()) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Greater => false,
                        std::cmp::Ordering::Equal => ids[i] <= *pid,
                    };
                    if le {
                        left_idx.push(i);
                    } else {
                        right_idx.push(i);
                    }
                }
            }
            None => left_idx.extend(0..set.len()),
        }
        let (send_idx, keep_idx) = if keep_le {
            (right_idx, left_idx)
        } else {
            (left_idx, right_idx)
        };
        let send_ids: Vec<u64> = send_idx.iter().map(|&i| ids[i]).collect();
        let strings = || {
            crate::exchange::ExactIter::new(send_idx.iter().map(|&i| set.get(i)), send_idx.len())
        };
        // Reserve the exact encoded size once; encoding never reallocates.
        let exact = wire::encoded_len_plain(strings(), Some(&send_ids));
        let mut buf = Vec::with_capacity(exact);
        wire::encode_plain(strings(), Some(&send_ids), &mut buf);
        debug_assert_eq!(buf.len(), exact);
        let partner = cur.rank() ^ (1 << level);
        let incoming = cur.exchange(partner, dss_net::Tag::user(level as u64), buf);
        // Rebuild the working set: kept strings + received fragment,
        // decoded into per-sort scratch and pre-reserved exactly.
        let mut pos = 0;
        wire::decode_plain_into(&incoming, &mut pos, &mut run_scratch)
            .expect("well-formed exchange run");
        let run = &run_scratch;
        let kept_chars: usize = keep_idx.iter().map(|&i| set.get(i).len()).sum();
        let mut next =
            StringSet::with_capacity(keep_idx.len() + run.len(), kept_chars + run.data.len());
        let mut next_ids = Vec::with_capacity(keep_idx.len() + run.len());
        for &i in &keep_idx {
            next.push(set.get(i));
            next_ids.push(ids[i]);
        }
        let run_ids = run.origins.as_deref().unwrap_or(&[]);
        for (k, s) in run.iter().enumerate() {
            next.push(s);
            next_ids.push(run_ids[k]);
        }
        set = next;
        ids = next_ids;
        // Narrow to the subcube sharing this bit.
        cur = cur.split(u64::from(bit));
    }
    (set, ids)
}

/// Approximates the subcube median: local median-of-3 candidates are
/// merged along a binomial reduction tree, keeping [`PIVOT_FANOUT`]
/// evenly spaced representatives per step; the root's middle candidate is
/// broadcast as the pivot.
fn select_pivot(
    cur: &Comm,
    set: &StringSet,
    ids: &[u64],
    rng: &mut SplitMix64,
) -> Option<(Vec<u8>, u64)> {
    // Local candidates: up to 3 random strings, sorted.
    let n = set.len();
    let mut cand: Vec<(Vec<u8>, u64)> = (0..n.min(PIVOT_FANOUT))
        .map(|_| {
            let i = rng.next_index(n);
            (set.get(i).to_vec(), ids[i])
        })
        .collect();
    cand.sort();
    let encode = |c: &[(Vec<u8>, u64)]| -> Vec<u8> {
        let mut buf = Vec::new();
        let tags: Vec<u64> = c.iter().map(|(_, id)| *id).collect();
        wire::encode_plain(c.iter().map(|(s, _)| s.as_slice()), Some(&tags), &mut buf);
        buf
    };
    let decode = |buf: &[u8]| -> Vec<(Vec<u8>, u64)> {
        let mut pos = 0;
        let run = wire::decode_plain(buf, &mut pos).expect("well-formed candidate run");
        let tags = run.origins.clone().unwrap_or_default();
        run.iter().map(|s| s.to_vec()).zip(tags).collect()
    };
    let reduced = cur.allreduce(encode(&cand), |a, b| {
        let mut merged = decode(&a);
        merged.extend(decode(&b));
        merged.sort();
        // Keep PIVOT_FANOUT evenly spaced representatives (a pseudo
        // median-of-medians that provably stays within the value range).
        let k = merged.len();
        let kept: Vec<(Vec<u8>, u64)> = if k <= PIVOT_FANOUT {
            merged
        } else {
            (1..=PIVOT_FANOUT)
                .map(|j| merged[(j * k) / (PIVOT_FANOUT + 1)].clone())
                .collect()
        };
        encode(&kept)
    });
    let cands = decode(&reduced);
    if cands.is_empty() {
        None
    } else {
        Some(cands[cands.len() / 2].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_net::runner::{run_spmd, RunConfig};
    use rand::prelude::*;
    use std::time::Duration;

    fn cfg_run() -> RunConfig {
        RunConfig {
            recv_timeout: Duration::from_secs(30),
            ..RunConfig::default()
        }
    }

    fn run_and_gather(p: usize, shards: Vec<Vec<Vec<u8>>>) -> Vec<Vec<u8>> {
        let shards_ref = &shards;
        let res = run_spmd(p, cfg_run(), move |comm| {
            let set =
                StringSet::from_iter_bytes(shards_ref[comm.rank()].iter().map(|s| s.as_slice()));
            let out = HQuick::default().sort(comm, set);
            if let Some(lcps) = &out.lcps {
                dss_strkit::lcp::verify_lcp_array(&out.set, lcps).expect("lcp array");
            }
            out.set.to_vecs()
        });
        res.values.into_iter().flatten().collect()
    }

    fn random_shards(p: usize, n_per_pe: usize, seed: u64) -> Vec<Vec<Vec<u8>>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..p)
            .map(|_| {
                (0..n_per_pe)
                    .map(|_| {
                        let len = rng.gen_range(0..10);
                        (0..len).map(|_| rng.gen_range(b'a'..=b'e')).collect()
                    })
                    .collect()
            })
            .collect()
    }

    fn check_sorted_permutation(p: usize, shards: Vec<Vec<Vec<u8>>>) {
        let mut expect: Vec<Vec<u8>> = shards.iter().flatten().cloned().collect();
        expect.sort();
        let got = run_and_gather(p, shards);
        assert_eq!(got, expect);
    }

    #[test]
    fn sorts_across_power_of_two_pes() {
        check_sorted_permutation(4, random_shards(4, 80, 1));
        check_sorted_permutation(8, random_shards(8, 30, 2));
    }

    #[test]
    fn sorts_on_non_power_of_two_pes() {
        // p=6 → only 4 PEs participate; output still globally sorted.
        check_sorted_permutation(6, random_shards(6, 40, 3));
        check_sorted_permutation(3, random_shards(3, 50, 4));
    }

    #[test]
    fn single_pe_passthrough() {
        check_sorted_permutation(1, random_shards(1, 100, 5));
    }

    #[test]
    fn handles_duplicate_heavy_input() {
        let shards: Vec<Vec<Vec<u8>>> = (0..4)
            .map(|_| (0..100).map(|_| b"dup".to_vec()).collect())
            .collect();
        check_sorted_permutation(4, shards);
    }

    #[test]
    fn handles_empty_and_lopsided_shards() {
        let mut shards = random_shards(4, 0, 6);
        shards[2] = random_shards(1, 200, 7).remove(0);
        check_sorted_permutation(4, shards);
    }

    #[test]
    fn sample_sort_entry_is_sorted_globally() {
        let res = run_spmd(4, cfg_run(), |comm| {
            let mut rng = StdRng::seed_from_u64(comm.rank() as u64 + 50);
            let mut set = StringSet::new();
            for _ in 0..20 {
                let len = rng.gen_range(1..6);
                let s: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'c')).collect();
                set.push(&s);
            }
            let input = set.to_vecs();
            let sorted = sort_for_samples(comm, set, crate::exchange::ExchangeMode::default(), 1);
            (input, sorted.to_vecs())
        });
        let mut expect: Vec<Vec<u8>> = res.values.iter().flat_map(|(i, _)| i.clone()).collect();
        expect.sort();
        let got: Vec<Vec<u8>> = res.values.iter().flat_map(|(_, o)| o.clone()).collect();
        assert_eq!(got, expect);
    }
}
