//! Result types of the distributed sorters.

use dss_strkit::StringSet;

/// Builds the origin tag PDMS attaches to each transmitted prefix:
/// `(source PE, index within the source's sorted local set)`.
pub fn origin_tag(pe: usize, idx: usize) -> u64 {
    debug_assert!(idx < (1 << 40));
    ((pe as u64) << 40) | idx as u64
}

/// Decomposes an origin tag.
pub fn origin_parts(tag: u64) -> (usize, usize) {
    ((tag >> 40) as usize, (tag & ((1 << 40) - 1)) as usize)
}

/// Per-PE output of a distributed sort.
///
/// Concatenated over PEs in rank order, `set` is globally sorted. For the
/// merge-based algorithms `lcps` is the exact LCP array of the local
/// output (with `lcps[0] = 0`, i.e. ⊥ at each PE boundary).
///
/// PDMS "only computes the permutation without completely executing it"
/// (§VI): `set` then holds the *approximate distinguishing prefixes*, the
/// `origins` say where each full string lives, and `local_store` keeps
/// this PE's full strings (sorted) so that remote suffixes remain
/// queryable — the paper's remembered-origin API.
pub struct SortedRun {
    /// Locally sorted output strings (full strings, or distinguishing
    /// prefixes for PDMS).
    pub set: StringSet,
    /// LCP array of `set` if the algorithm produces one.
    pub lcps: Option<Vec<u32>>,
    /// Origin tags parallel to `set` (PDMS only).
    pub origins: Option<Vec<u64>>,
    /// This PE's full input strings in sorted order (PDMS only), indexed
    /// by the position part of origin tags held by *other* PEs.
    pub local_store: Option<StringSet>,
}

impl SortedRun {
    /// A plain result with no LCP/origin information.
    pub fn plain(set: StringSet) -> Self {
        Self {
            set,
            lcps: None,
            origins: None,
            local_store: None,
        }
    }

    /// Number of output strings on this PE.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether this PE's output is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_tags_roundtrip() {
        for (pe, idx) in [(0usize, 0usize), (3, 17), (1023, (1 << 40) - 1)] {
            assert_eq!(origin_parts(origin_tag(pe, idx)), (pe, idx));
        }
    }
}
