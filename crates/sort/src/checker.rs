//! Distributed result validation.
//!
//! Checks a [`SortedRun`] across all PEs without centralizing the data:
//!
//! 1. local sortedness (free);
//! 2. global order across PE boundaries: gossip each PE's (first, last)
//!    strings and verify the chain rank by rank;
//! 3. content preservation: an order-independent multiset fingerprint of
//!    the input must equal that of the output (combined by an allreduce).
//!    For PDMS — whose output is prefixes + origins — the origin tags must
//!    instead form exactly the set {(pe, 0..n_pe)}, checked through a
//!    commutative fingerprint of the tags.

use crate::output::{origin_tag, SortedRun};
use dss_net::Comm;
use dss_strkit::checker::{mix64, MultisetFingerprint};
use dss_strkit::StringSet;

fn fp_to_bytes(fp: &MultisetFingerprint) -> Vec<u8> {
    let mut v = Vec::with_capacity(24);
    v.extend_from_slice(&fp.sum.to_le_bytes());
    v.extend_from_slice(&fp.sum_sq.to_le_bytes());
    v.extend_from_slice(&fp.count.to_le_bytes());
    v
}

fn fp_from_bytes(b: &[u8]) -> MultisetFingerprint {
    MultisetFingerprint {
        sum: u64::from_le_bytes(b[0..8].try_into().expect("8 bytes")),
        sum_sq: u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
        count: u64::from_le_bytes(b[16..24].try_into().expect("8 bytes")),
    }
}

fn allreduce_fp(comm: &Comm, fp: MultisetFingerprint) -> MultisetFingerprint {
    let out = comm.allreduce(fp_to_bytes(&fp), |a, b| {
        fp_to_bytes(&fp_from_bytes(&a).combine(fp_from_bytes(&b)))
    });
    fp_from_bytes(&out)
}

/// Checks global sortedness of the per-PE outputs (strings on PE i ≤
/// strings on PE i+1, empty PEs skipped) plus local sortedness.
pub fn check_global_order(comm: &Comm, set: &StringSet) -> Result<(), String> {
    if !dss_strkit::checker::is_sorted(set) {
        return Err(format!("PE {}: local output not sorted", comm.rank()));
    }
    // Gossip boundary strings: [has_data, first, last] in a tiny frame.
    let mut frame = Vec::new();
    if set.is_empty() {
        frame.push(0u8);
    } else {
        frame.push(1u8);
        let first = set.get(0);
        let last = set.get(set.len() - 1);
        frame.extend_from_slice(&(first.len() as u32).to_le_bytes());
        frame.extend_from_slice(first);
        frame.extend_from_slice(&(last.len() as u32).to_le_bytes());
        frame.extend_from_slice(last);
    }
    let frames = comm.allgatherv(frame);
    let mut prev_last: Option<Vec<u8>> = None;
    for (rank, f) in frames.iter().enumerate() {
        if f[0] == 0 {
            continue;
        }
        let flen = u32::from_le_bytes(f[1..5].try_into().expect("4 bytes")) as usize;
        let first = &f[5..5 + flen];
        let llen_at = 5 + flen;
        let llen =
            u32::from_le_bytes(f[llen_at..llen_at + 4].try_into().expect("4 bytes")) as usize;
        let last = &f[llen_at + 4..llen_at + 4 + llen];
        if let Some(pl) = &prev_last {
            if pl.as_slice() > first {
                return Err(format!(
                    "global order violated before PE {rank}: {:?} > {:?}",
                    String::from_utf8_lossy(pl),
                    String::from_utf8_lossy(first)
                ));
            }
        }
        prev_last = Some(last.to_vec());
    }
    Ok(())
}

/// Full distributed check of a sort result against the original input
/// shard. Collective: every PE calls it with its own input/output pair.
pub fn check_distributed_sort(
    comm: &Comm,
    input: &StringSet,
    output: &SortedRun,
) -> Result<(), String> {
    check_global_order(comm, &output.set)?;
    if let Some(l) = &output.lcps {
        dss_strkit::lcp::verify_lcp_array(&output.set, l)
            .map_err(|e| format!("PE {}: {e}", comm.rank()))?;
    }
    match &output.origins {
        None => {
            // Plain sort: multiset preserved.
            let in_fp = allreduce_fp(comm, MultisetFingerprint::of(input));
            let out_fp = allreduce_fp(comm, MultisetFingerprint::of(&output.set));
            if in_fp != out_fp {
                return Err(format!(
                    "global multiset mismatch: {} strings in, {} out",
                    in_fp.count, out_fp.count
                ));
            }
        }
        Some(origins) => {
            // PDMS: origin tags must form {(pe, 0..n_pe)} exactly. Both
            // sides are commutative sums of mixed tags.
            let mut got = MultisetFingerprint::default();
            for &tag in origins {
                got.add_str(&mix64(tag).to_le_bytes());
            }
            let mut want = MultisetFingerprint::default();
            for i in 0..input.len() {
                want.add_str(&mix64(origin_tag(comm.rank(), i)).to_le_bytes());
            }
            let got = allreduce_fp(comm, got);
            let want = allreduce_fp(comm, want);
            if got != want {
                return Err(format!(
                    "origin permutation mismatch: {} tags vs {} strings",
                    got.count, want.count
                ));
            }
            // Each prefix must be a prefix of *some* string; locally we
            // can at least validate tags pointing at this PE.
            if let Some(store) = &output.local_store {
                for (i, &tag) in origins.iter().enumerate() {
                    let (pe, idx) = crate::output::origin_parts(tag);
                    if pe == comm.rank() {
                        if idx >= store.len() {
                            return Err(format!("origin index {idx} out of range"));
                        }
                        if !store.get(idx).starts_with(output.set.get(i)) {
                            return Err("prefix does not match its origin string".into());
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use dss_net::runner::{run_spmd, RunConfig};
    use std::time::Duration;

    fn cfg_run() -> RunConfig {
        RunConfig {
            recv_timeout: Duration::from_secs(30),
            ..RunConfig::default()
        }
    }

    #[test]
    fn accepts_correct_results_of_all_algorithms() {
        for alg in Algorithm::all_paper() {
            let res = run_spmd(4, cfg_run(), move |comm| {
                let mut set = StringSet::new();
                for i in 0..50u32 {
                    set.push(format!("w{:03}", (i * 7 + comm.rank() as u32 * 13) % 97).as_bytes());
                }
                let input = set.clone();
                let out = alg.instance().sort(comm, set);
                check_distributed_sort(comm, &input, &out).map_err(|e| format!("{alg:?}: {e}"))
            });
            for v in res.values {
                v.expect("checker accepts");
            }
        }
    }

    #[test]
    fn rejects_unsorted_output() {
        let res = run_spmd(2, cfg_run(), |comm| {
            let input = StringSet::from_strs(&["a", "b"]);
            let bad = SortedRun::plain(StringSet::from_strs(&["b", "a"]));
            check_distributed_sort(comm, &input, &bad).is_err()
        });
        assert!(res.values.iter().all(|&v| v));
    }

    #[test]
    fn rejects_wrong_boundaries() {
        // Locally sorted but globally out of order.
        let res = run_spmd(2, cfg_run(), |comm| {
            let input = StringSet::from_strs(&["a", "z"]);
            let out = if comm.rank() == 0 {
                SortedRun::plain(StringSet::from_strs(&["z", "z"]))
            } else {
                SortedRun::plain(StringSet::from_strs(&["a", "a"]))
            };
            check_distributed_sort(comm, &input, &out).is_err()
        });
        assert!(res.values.iter().all(|&v| v));
    }

    #[test]
    fn rejects_lost_strings() {
        let res = run_spmd(2, cfg_run(), |comm| {
            let input = StringSet::from_strs(&["a", "b", "c"]);
            // One string vanished.
            let out = SortedRun::plain(StringSet::from_strs(&["a", "b"]));
            check_distributed_sort(comm, &input, &out).is_err()
        });
        assert!(res.values.iter().all(|&v| v));
    }

    /// A deterministic 4-PE input and its genuine MS output, for the
    /// corrupted-real-output tests below.
    fn sorted_by_ms(comm: &mut dss_net::Comm) -> (StringSet, SortedRun) {
        let mut set = StringSet::new();
        for i in 0..50u32 {
            set.push(format!("w{:03}", (i * 7 + comm.rank() as u32 * 13) % 97).as_bytes());
        }
        let input = set.clone();
        let out = Algorithm::Ms.instance().sort(comm, set);
        (input, out)
    }

    #[test]
    fn rejects_swapped_strings_in_real_output() {
        // Swap the first adjacent distinct pair of a genuine MS result.
        // Every PE corrupts its own shard (symmetric, so no PE is left
        // waiting in a collective after the early local-order rejection).
        let res = run_spmd(4, cfg_run(), |comm| {
            let (input, out) = sorted_by_ms(comm);
            let mut strings = out.set.to_vecs();
            let i = strings
                .windows(2)
                .position(|w| w[0] != w[1])
                .expect("output has distinct neighbours");
            strings.swap(i, i + 1);
            let corrupted = SortedRun::plain(StringSet::from_iter_bytes(
                strings.iter().map(|s| s.as_slice()),
            ));
            check_distributed_sort(comm, &input, &corrupted).is_err()
        });
        assert!(res.values.iter().all(|&v| v), "every PE detects its swap");
    }

    #[test]
    fn rejects_dropped_string_from_real_output() {
        // Every PE silently loses its last output string: local and global
        // order still hold, so only the multiset fingerprint can object —
        // and it must, on every PE.
        let res = run_spmd(4, cfg_run(), |comm| {
            let (input, out) = sorted_by_ms(comm);
            let mut strings = out.set.to_vecs();
            strings.pop().expect("non-empty shard");
            let corrupted = SortedRun::plain(StringSet::from_iter_bytes(
                strings.iter().map(|s| s.as_slice()),
            ));
            check_distributed_sort(comm, &input, &corrupted).is_err()
        });
        assert!(res.values.iter().all(|&v| v), "all PEs see the mismatch");
    }

    #[test]
    fn rejects_shifted_shard_boundary() {
        // Move PE 1's largest string onto the tail of PE 0: both shards
        // stay locally sorted and the global multiset is intact, but the
        // PE 0 → PE 1 boundary now runs backwards.
        let res = run_spmd(2, cfg_run(), |comm| {
            let (input, out) = sorted_by_ms(comm);
            let mut strings = out.set.to_vecs();
            let tag = dss_net::Tag::user(701);
            if comm.rank() == 1 {
                let stolen = strings.pop().expect("non-empty shard");
                comm.send(0, tag, stolen);
            } else {
                strings.push(comm.recv(1, tag));
            }
            let corrupted = SortedRun::plain(StringSet::from_iter_bytes(
                strings.iter().map(|s| s.as_slice()),
            ));
            check_distributed_sort(comm, &input, &corrupted).is_err()
        });
        assert!(
            res.values.iter().all(|&v| v),
            "boundary violation rejected on all PEs"
        );
    }

    #[test]
    fn rejects_rewritten_string_with_same_count() {
        // Overwrite one string with a copy of its successor: counts and
        // order are untouched, so this isolates the content fingerprint.
        let res = run_spmd(4, cfg_run(), |comm| {
            let (input, out) = sorted_by_ms(comm);
            let mut strings = out.set.to_vecs();
            if comm.rank() == 0 {
                let i = strings
                    .windows(2)
                    .position(|w| w[0] != w[1])
                    .expect("output has distinct neighbours");
                strings[i] = strings[i + 1].clone();
            }
            let corrupted = SortedRun::plain(StringSet::from_iter_bytes(
                strings.iter().map(|s| s.as_slice()),
            ));
            check_distributed_sort(comm, &input, &corrupted).is_err()
        });
        assert!(
            res.values.iter().all(|&v| v),
            "fingerprint mismatch everywhere"
        );
    }

    #[test]
    fn rejects_corrupted_lcp_array() {
        let res = run_spmd(2, cfg_run(), |comm| {
            let (input, out) = sorted_by_ms(comm);
            let mut corrupted = SortedRun::plain(out.set.clone());
            let mut lcps = out.lcps.clone().expect("MS reports LCPs");
            let last = lcps.len() - 1;
            lcps[last] = lcps[last].wrapping_add(7);
            corrupted.lcps = Some(lcps);
            check_distributed_sort(comm, &input, &corrupted).is_err()
        });
        assert!(res.values.iter().all(|&v| v));
    }

    #[test]
    fn rejects_broken_origin_permutation() {
        let res = run_spmd(2, cfg_run(), |comm| {
            let input = StringSet::from_strs(&["a", "b"]);
            let mut out = SortedRun::plain(StringSet::from_strs(&["a", "b"]));
            // Duplicate tag 0, missing tag 1.
            out.origins = Some(vec![origin_tag(comm.rank(), 0), origin_tag(comm.rank(), 0)]);
            check_distributed_sort(comm, &input, &out).is_err()
        });
        assert!(res.values.iter().all(|&v| v));
    }
}
