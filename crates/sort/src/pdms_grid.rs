//! PD-MS2L / PD-MSML — distinguishing-prefix exchange on the grids.
//!
//! [`Pdms`] cuts exchange *volume* from `N` to `D` characters (ship only
//! approximate distinguishing prefixes, §VI); [`crate::Ms2l`] /
//! [`crate::Msml`] cut exchange *partners* from `p − 1` to
//! `(r − 1) + (c − 1)` resp. `Σ(dᵢ − 1)` (grid communication). The two
//! optimizations are orthogonal, and this module composes them:
//!
//! 1. **local sort** with LCP array;
//! 2. **Step 1+ε** ([`dss_dedup`] prefix doubling, Golomb option) runs
//!    **once**, before the first grid level, over the world communicator
//!    — approximating every string's distinguishing prefix length;
//! 3. **grid rounds**: the usual partition → exchange → LCP-merge rounds
//!    of MS2L/MSML, except that splitter sampling ([`SamplingPolicy::
//!    DistPrefix`](crate::partition::SamplingPolicy) weights), exchange
//!    payloads ([`ExchangePayload::truncate`]) and merges all operate on
//!    the *truncated prefixes*. Origin tags ride next to the prefixes
//!    through every level's codec and merge, carrying the permutation.
//!
//! Only the first level truncates: from level 2 on, the local sets
//! *already are* truncated prefixes, so later rounds forward them
//! verbatim (`truncate: None`), origins attached. The full strings never
//! leave their birth PE — they stay behind, locally sorted, as
//! [`SortedRun::local_store`], giving the PD grid variants exactly flat
//! PDMS's permutation-output contract: globally sorted prefixes + origin
//! tags identifying the full string, on `O(√p)` / `O(Σdᵢ)` partners.
//!
//! Both variants accept [`ExchangeCodec::Auto`]: per-destination codec
//! election from the exact [`dss_codec::wire::encoded_len_all`] sizes.
//!
//! When `p` admits no grid (`p < 4` or prime) the variants fall back to
//! flat [`Pdms`] with the same Step-1+ε and codec settings — the
//! permutation contract is preserved either way.

use crate::exchange::{ExchangeCodec, ExchangeMode, ExchangePayload, StringAllToAll};
use crate::msml::msml_levels_from_env;
use crate::output::SortedRun;
use crate::partition::{self, PartitionConfig};
use crate::pdms::{prefix_front, Pdms, PdmsConfig};
use crate::DistSorter;
use dss_dedup::prefix_doubling::PrefixDoublingConfig;
use dss_net::topology;
use dss_net::trace::{self, cat};
use dss_net::Comm;
use dss_strkit::sort::{par_sort_with_lcp, threads_from_env};
use dss_strkit::StringSet;

/// Configuration of PD-MS2L.
#[derive(Debug, Clone, Copy)]
pub struct PdMs2lConfig {
    /// Step 1+ε parameters (growth factor, initial guess, fingerprint
    /// width, Golomb coding). Validated loudly before any work.
    pub pd: PrefixDoublingConfig,
    /// Sampling/splitter policy, used by both levels.
    /// `SamplingPolicy::DistPrefix` balances approximated
    /// distinguishing-prefix characters.
    pub partition: PartitionConfig,
    /// Difference-code LCPs on the wire (§VI-B extension).
    pub delta_lcps: bool,
    /// Pick the wire codec per destination bucket instead
    /// ([`ExchangeCodec::Auto`]); overrides `delta_lcps`.
    pub auto_codec: bool,
    /// Blocking or pipelined exchange, applied to **both** grid levels
    /// (defaults to the `DSS_EXCHANGE_MODE` knob).
    pub mode: ExchangeMode,
    /// Shared-memory threads per PE (defaults to the `DSS_THREADS` knob).
    pub threads: usize,
    /// Grid rows `r` (`0` ⇒ auto near-square [`topology::grid_dims`],
    /// falling back to flat PDMS when `p < 4` or prime). An explicit
    /// value must tile `p` into an `r×c` grid with `r, c ≥ 2`, else
    /// **panics** with the offending value.
    pub rows: usize,
}

impl Default for PdMs2lConfig {
    fn default() -> Self {
        Self {
            pd: PrefixDoublingConfig::default(),
            partition: PartitionConfig::default(),
            delta_lcps: false,
            auto_codec: false,
            mode: ExchangeMode::default(),
            threads: threads_from_env(),
            rows: 0,
        }
    }
}

/// Two-level grid PDMS (see module docs).
#[derive(Debug, Default, Clone, Copy)]
pub struct PdMs2l {
    pub cfg: PdMs2lConfig,
}

impl PdMs2l {
    /// PD-MS2L with a custom configuration.
    pub fn with_config(cfg: PdMs2lConfig) -> Self {
        Self { cfg }
    }

    /// Overrides the shared-memory thread count (local sort + merges).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be positive, got 0");
        self.cfg.threads = threads;
        self
    }

    /// The grid this configuration yields for `p` PEs (`None` ⇒ fallback
    /// to flat PDMS).
    fn dims(&self, p: usize) -> Option<(usize, usize)> {
        match self.cfg.rows {
            0 => topology::grid_dims(p),
            r => {
                assert!(
                    r >= 2 && p.is_multiple_of(r) && p / r >= 2,
                    "PdMs2lConfig::rows = {r} does not tile p = {p} PEs into an \
                     r x c grid with r, c >= 2"
                );
                Some((r, p / r))
            }
        }
    }

    fn fallback(&self) -> Pdms {
        Pdms::with_config(PdmsConfig {
            pd: self.cfg.pd,
            partition: self.cfg.partition,
            delta_lcps: self.cfg.delta_lcps,
            auto_codec: self.cfg.auto_codec,
            mode: self.cfg.mode,
            threads: self.cfg.threads,
        })
    }
}

impl DistSorter for PdMs2l {
    fn name(&self) -> &'static str {
        "PD-MS2L"
    }

    fn sort(&self, comm: &Comm, mut input: StringSet) -> SortedRun {
        self.cfg.pd.validate();
        let _algo = trace::span_args(
            cat::ALGO,
            self.name(),
            [("strings", input.len() as u64), ("", 0)],
        );
        let p = comm.size();
        let Some((r, c)) = self.dims(p) else {
            // No r×c grid with r, c ≥ 2: flat PDMS does the job (and
            // keeps the permutation-output contract).
            return self.fallback().sort(comm, input);
        };

        comm.set_phase("local_sort");
        let (lcps, _) = par_sort_with_lcp(&mut input, self.cfg.threads);

        // Step 1+ε, once, before the first grid level: truncation
        // lengths, sampling weights and origin tags for the whole run.
        comm.set_phase("prefix_doubling");
        let front = prefix_front(comm, &input, &lcps, &self.cfg.pd);

        let codec = ExchangeCodec::for_lcp_config(self.cfg.delta_lcps, self.cfg.auto_codec);
        let tie_break = self.cfg.partition.duplicate_tie_break;
        let mut pcfg = self.cfg.partition;
        pcfg.mode = self.cfg.mode;
        pcfg.threads = self.cfg.threads;
        comm.set_phase("grid_setup");
        let grid = topology::grid_view(comm, r, c);
        let mut engine =
            StringAllToAll::with_mode(codec, self.cfg.mode).with_threads(self.cfg.threads);

        // Level 1: c − 1 global splitters over the *truncated prefixes*
        // (weighted by the approximated distinguishing-prefix lengths
        // under DistPrefix sampling); the row exchange ships prefixes
        // only, origins attached.
        comm.set_phase("partition_row");
        let row_splitters = partition::determine_splitters_for(
            comm,
            &input,
            c,
            &pcfg,
            Some(&front.weights),
            Some(&front.trunc),
        );
        comm.set_phase("exchange_row");
        let mid = engine.exchange_merge_by_splitters(
            &grid.row,
            &ExchangePayload {
                set: &input,
                lcps: &lcps,
                origins: Some(&front.origins),
                truncate: Some(&front.trunc),
            },
            &row_splitters,
            tie_break,
            Some("merge_row"),
        );
        // `input` stays alive: the full strings never leave this PE and
        // become the local_store below.
        let mid_lcps = mid.lcps.as_deref().expect("LCP merge yields LCPs");

        // Level 2: an ordinary column round — the local set already *is*
        // truncated prefixes, so no further truncation; its lengths are
        // the distinguishing-prefix weights, which is exactly the
        // DistPrefix fallback when no explicit weights are passed.
        comm.set_phase("partition_col");
        let col_splitters = partition::determine_splitters(&grid.col, &mid.set, &pcfg, None, None);
        comm.set_phase("exchange_col");
        let mut out = engine.exchange_merge_by_splitters(
            &grid.col,
            &ExchangePayload {
                set: &mid.set,
                lcps: mid_lcps,
                origins: mid.origins.as_deref(),
                truncate: None,
            },
            &col_splitters,
            tie_break,
            Some("merge_col"),
        );
        out.local_store = Some(input);
        out
    }
}

/// Configuration of PD-MSML.
#[derive(Debug, Clone, Copy)]
pub struct PdMsmlConfig {
    /// Step 1+ε parameters. Validated loudly before any work.
    pub pd: PrefixDoublingConfig,
    /// Sampling/splitter policy, used per group at every level.
    pub partition: PartitionConfig,
    /// Difference-code LCPs on the wire (§VI-B extension).
    pub delta_lcps: bool,
    /// Pick the wire codec per destination bucket instead
    /// ([`ExchangeCodec::Auto`]); overrides `delta_lcps`.
    pub auto_codec: bool,
    /// Blocking or pipelined exchange, applied to **every** grid level
    /// (defaults to the `DSS_EXCHANGE_MODE` knob).
    pub mode: ExchangeMode,
    /// Shared-memory threads per PE (defaults to the `DSS_THREADS` knob).
    pub threads: usize,
    /// Exact grid depth ℓ (defaults to the `DSS_MSML_LEVELS` knob; `0` ⇒
    /// auto, `1` forces the flat [`Pdms`] fallback; an untileable value
    /// **panics**, same as [`crate::MsmlConfig::levels`]).
    pub levels: usize,
    /// In auto mode, cap each level's fan-out (`0` ⇒ uncapped depth).
    pub max_level_size: usize,
}

impl Default for PdMsmlConfig {
    fn default() -> Self {
        Self {
            pd: PrefixDoublingConfig::default(),
            partition: PartitionConfig::default(),
            delta_lcps: false,
            auto_codec: false,
            mode: ExchangeMode::default(),
            threads: threads_from_env(),
            levels: msml_levels_from_env(),
            max_level_size: 0,
        }
    }
}

/// Multi-level grid PDMS (see module docs).
#[derive(Debug, Default, Clone, Copy)]
pub struct PdMsml {
    pub cfg: PdMsmlConfig,
}

impl PdMsml {
    /// PD-MSML with a custom configuration.
    pub fn with_config(cfg: PdMsmlConfig) -> Self {
        Self { cfg }
    }

    /// Overrides the shared-memory thread count (local sort + merges).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be positive, got 0");
        self.cfg.threads = threads;
        self
    }

    /// The level fan-outs this configuration yields for `p` PEs (`None`
    /// ⇒ fallback to flat PDMS). Panics on an explicit `levels` that
    /// cannot tile `p`.
    fn dims(&self, p: usize) -> Option<Vec<usize>> {
        match self.cfg.levels {
            0 => topology::multi_grid_dims(p, self.cfg.max_level_size),
            1 => None,
            l => match topology::factor_into_levels(p, l) {
                Some(dims) => Some(dims),
                None => panic!(
                    "PdMsmlConfig::levels / DSS_MSML_LEVELS = {l} cannot tile p = {p} PEs \
                     into {l} grid levels of size >= 2"
                ),
            },
        }
    }

    fn fallback(&self) -> Pdms {
        Pdms::with_config(PdmsConfig {
            pd: self.cfg.pd,
            partition: self.cfg.partition,
            delta_lcps: self.cfg.delta_lcps,
            auto_codec: self.cfg.auto_codec,
            mode: self.cfg.mode,
            threads: self.cfg.threads,
        })
    }
}

impl DistSorter for PdMsml {
    fn name(&self) -> &'static str {
        "PD-MSML"
    }

    fn sort(&self, comm: &Comm, mut input: StringSet) -> SortedRun {
        self.cfg.pd.validate();
        let _algo = trace::span_args(
            cat::ALGO,
            self.name(),
            [("strings", input.len() as u64), ("", 0)],
        );
        let p = comm.size();
        // Resolve (and validate) the grid before anything else so a bad
        // `levels` knob fails loudly on every PE, every run.
        let Some(dims) = self.dims(p) else {
            return self.fallback().sort(comm, input);
        };

        comm.set_phase("local_sort");
        let (lcps, _) = par_sort_with_lcp(&mut input, self.cfg.threads);

        // Step 1+ε, once, before the first grid level.
        comm.set_phase("prefix_doubling");
        let front = prefix_front(comm, &input, &lcps, &self.cfg.pd);

        let codec = ExchangeCodec::for_lcp_config(self.cfg.delta_lcps, self.cfg.auto_codec);
        let tie_break = self.cfg.partition.duplicate_tie_break;
        let mut pcfg = self.cfg.partition;
        pcfg.mode = self.cfg.mode;
        pcfg.threads = self.cfg.threads;
        comm.set_phase("grid_setup");
        let grid = topology::multi_grid_view(comm, &dims);
        let mut engine =
            StringAllToAll::with_mode(codec, self.cfg.mode).with_threads(self.cfg.threads);

        // Level 0 is the only truncating round: per-group splitters over
        // the truncated prefixes (distinguishing-prefix weights), the
        // exchange ships prefixes only, origins attached. The full
        // strings stay behind in `input`.
        let levels = grid.levels();
        comm.set_phase("partition_l0");
        let splitters = partition::determine_group_splitters(
            grid.sampling_comm(0, comm),
            &input,
            levels[0].dim,
            &pcfg,
            Some(&front.weights),
            Some(&front.trunc),
        );
        comm.set_phase("exchange_l0");
        let mut run = engine.exchange_merge_by_splitters(
            &levels[0].exchange,
            &ExchangePayload {
                set: &input,
                lcps: &lcps,
                origins: Some(&front.origins),
                truncate: Some(&front.trunc),
            },
            &splitters,
            tie_break,
            Some("merge_l0"),
        );

        // Levels ≥ 1 forward the already-truncated prefixes verbatim;
        // origins keep riding through every codec and merge.
        for (i, level) in levels.iter().enumerate().skip(1) {
            comm.set_phase(&format!("partition_l{i}"));
            let splitters = partition::determine_group_splitters(
                grid.sampling_comm(i, comm),
                &run.set,
                level.dim,
                &pcfg,
                None,
                None,
            );
            comm.set_phase(&format!("exchange_l{i}"));
            let merge_phase = format!("merge_l{i}");
            run = engine.exchange_merge_by_splitters(
                &level.exchange,
                &ExchangePayload {
                    set: &run.set,
                    lcps: run.lcps.as_deref().expect("LCP merge yields LCPs"),
                    origins: run.origins.as_deref(),
                    truncate: None,
                },
                &splitters,
                tie_break,
                Some(&merge_phase),
            );
        }
        run.local_store = Some(input);
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::origin_parts;
    use crate::Algorithm;
    use dss_net::runner::{run_spmd, RunConfig};
    use rand::prelude::*;
    use std::time::Duration;

    fn cfg_run() -> RunConfig {
        RunConfig {
            recv_timeout: Duration::from_secs(120),
            ..RunConfig::default()
        }
    }

    /// Full permutation-contract validation, shared by both variants:
    /// output prefixes sorted with valid LCPs, every prefix a prefix of
    /// the full string its origin tag names, and the reconstructed full
    /// strings equal to the sorted global input.
    fn check(p: usize, shards: Vec<Vec<Vec<u8>>>, sorter: impl DistSorter + Copy + 'static) {
        let mut expect: Vec<Vec<u8>> = shards.iter().flatten().cloned().collect();
        expect.sort();
        let shards_ref = &shards;
        let res = run_spmd(p, cfg_run(), move |comm| {
            let set =
                StringSet::from_iter_bytes(shards_ref[comm.rank()].iter().map(|s| s.as_slice()));
            let out = sorter.sort(comm, set);
            if let Some(l) = &out.lcps {
                dss_strkit::lcp::verify_lcp_array(&out.set, l).expect("output lcps");
            }
            assert!(dss_strkit::checker::is_sorted(&out.set), "prefixes sorted");
            (
                out.set.to_vecs(),
                out.origins.expect("pd grid variants report origins"),
                out.local_store
                    .expect("pd grid variants keep local store")
                    .to_vecs(),
            )
        });
        let stores: Vec<&Vec<Vec<u8>>> = res.values.iter().map(|(_, _, s)| s).collect();
        let mut reconstructed: Vec<Vec<u8>> = Vec::new();
        for (prefixes, origins, _) in &res.values {
            assert_eq!(prefixes.len(), origins.len());
            for (pref, &tag) in prefixes.iter().zip(origins) {
                let (pe, idx) = origin_parts(tag);
                let full = &stores[pe][idx];
                assert!(
                    full.starts_with(pref),
                    "prefix {:?} not a prefix of its origin {:?}",
                    String::from_utf8_lossy(pref),
                    String::from_utf8_lossy(full)
                );
                reconstructed.push(full.clone());
            }
        }
        assert_eq!(reconstructed, expect, "origin permutation sorts the input");
    }

    fn random_shards(p: usize, n: usize, seed: u64) -> Vec<Vec<Vec<u8>>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..p)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        let len = rng.gen_range(0..14);
                        (0..len).map(|_| rng.gen_range(b'a'..=b'e')).collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn pd_ms2l_sorts_square_and_rectangular_grids() {
        // 4 = 2×2, 6 = 2×3, 8 = 2×4, 9 = 3×3.
        for p in [4usize, 6, 8, 9] {
            check(p, random_shards(p, 50, p as u64), PdMs2l::default());
        }
    }

    #[test]
    fn pd_msml_sorts_two_and_three_level_grids() {
        // 4 = 2×2, 8 = 2×2×2, 12 = 3×2×2, 16 = 2×2×2×2.
        for p in [4usize, 8, 12, 16] {
            check(p, random_shards(p, 50, 20 + p as u64), PdMsml::default());
        }
    }

    #[test]
    fn pd_grid_variants_fall_back_on_prime_and_tiny_pe_counts() {
        for p in [1usize, 2, 3, 5, 7] {
            check(p, random_shards(p, 40, 40 + p as u64), PdMs2l::default());
            check(p, random_shards(p, 40, 60 + p as u64), PdMsml::default());
        }
    }

    #[test]
    fn pd_ms2l_with_golomb_delta_and_auto_codec() {
        let golomb_delta = PdMs2l::with_config(PdMs2lConfig {
            pd: PrefixDoublingConfig {
                golomb: true,
                ..PrefixDoublingConfig::default()
            },
            delta_lcps: true,
            ..PdMs2lConfig::default()
        });
        check(6, random_shards(6, 50, 77), golomb_delta);
        let auto = PdMs2l::with_config(PdMs2lConfig {
            auto_codec: true,
            ..PdMs2lConfig::default()
        });
        check(4, random_shards(4, 50, 78), auto);
    }

    #[test]
    fn pd_msml_with_explicit_levels_and_auto_codec() {
        let sorter = PdMsml::with_config(PdMsmlConfig {
            auto_codec: true,
            levels: 3,
            ..PdMsmlConfig::default()
        });
        check(8, random_shards(8, 50, 79), sorter);
        // levels: 1 is the explicit flat-PDMS fallback.
        let single = PdMsml::with_config(PdMsmlConfig {
            levels: 1,
            ..PdMsmlConfig::default()
        });
        check(4, random_shards(4, 40, 80), single);
    }

    #[test]
    #[should_panic(expected = "PdMs2lConfig::rows = 4 does not tile p = 6")]
    fn pd_ms2l_panics_on_rows_not_dividing_p() {
        let bad = PdMs2l::with_config(PdMs2lConfig {
            rows: 4,
            ..PdMs2lConfig::default()
        });
        check(6, random_shards(6, 10, 81), bad);
    }

    #[test]
    #[should_panic(expected = "PdMsmlConfig::levels / DSS_MSML_LEVELS = 4 cannot tile p = 8")]
    fn pd_msml_panics_on_untileable_level_count() {
        let bad = PdMsml::with_config(PdMsmlConfig {
            levels: 4,
            ..PdMsmlConfig::default()
        });
        check(8, random_shards(8, 10, 82), bad);
    }

    #[test]
    fn pd_grid_variants_handle_duplicates_prefixes_and_empty_shards() {
        let mut shards = random_shards(8, 0, 90);
        shards[1] = vec![b"dup".to_vec(); 120];
        shards[5] = vec![b"dup".to_vec(); 30];
        shards[6] = vec![b"du".to_vec(), b"d".to_vec(), Vec::new()];
        check(8, shards.clone(), PdMs2l::default());
        check(8, shards, PdMsml::default());
    }

    #[test]
    fn pd_grid_variants_handle_all_empty_input() {
        check(8, random_shards(8, 0, 91), PdMs2l::default());
        check(8, random_shards(8, 0, 92), PdMsml::default());
    }

    /// Long-LCP workload: a 40-char shared prefix, a short unique id and
    /// a long unique random tail. DIST ≈ 45 ≪ len ≈ 245, and the tails
    /// are incompressible for the LCP codec — the regime where prefix
    /// truncation must beat LCP compression outright.
    fn long_lcp_shards(p: usize, n: usize) -> Vec<Vec<Vec<u8>>> {
        (0..p)
            .map(|r| {
                let mut rng = StdRng::seed_from_u64(7000 + r as u64);
                (0..n)
                    .map(|i| {
                        let mut s = vec![b'q'; 40];
                        s.extend(format!("{:05}", r * n + i).into_bytes());
                        s.extend((0..200).map(|_| rng.gen_range(b'a'..=b'z')));
                        s
                    })
                    .collect()
            })
            .collect()
    }

    /// Dup-heavy workload: a majority of short exact duplicates (which
    /// ship whole either way — equal strings have no distinguishing
    /// prefix) plus a minority of long strings whose DIST is a few
    /// characters. The savings come entirely from truncating the latter.
    fn dup_heavy_shards(p: usize, n: usize) -> Vec<Vec<Vec<u8>>> {
        (0..p)
            .map(|r| {
                (0..n)
                    .map(|i| {
                        if i % 3 != 0 {
                            format!("dup{:02}", i % 8).into_bytes()
                        } else {
                            let mut s = format!("{:05}", r * n + i).into_bytes();
                            s.extend(std::iter::repeat_n(b'x', 180));
                            s
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Satellite pin: on both workloads and p ∈ {8, 16, 27}, the PD grid
    /// variant moves strictly fewer exchange-phase bytes than its non-PD
    /// counterpart while contacting exactly the same number of exchange
    /// partners — truncation cuts volume, never topology.
    fn wire_reduction_pin(
        p: usize,
        pd_alg: Algorithm,
        base_alg: Algorithm,
        shards: Vec<Vec<Vec<u8>>>,
    ) {
        let shards_ref = &shards;
        let run = |alg: Algorithm| {
            run_spmd(p, cfg_run(), move |comm| {
                let set = StringSet::from_iter_bytes(
                    shards_ref[comm.rank()].iter().map(|s| s.as_slice()),
                );
                let _ = alg.instance().sort(comm, set);
            })
            .stats
        };
        let exchange_phases = |stats: &dss_net::NetStats| -> (u64, u64) {
            stats
                .phases
                .iter()
                .filter(|ph| ph.name.starts_with("exchange"))
                .map(|ph| (ph.total.bytes_sent, ph.max.msgs_sent))
                .fold((0, 0), |(b, m), (pb, pm)| (b + pb, m + pm))
        };
        let (pd_bytes, pd_partners) = exchange_phases(&run(pd_alg));
        let (base_bytes, base_partners) = exchange_phases(&run(base_alg));
        assert!(pd_bytes > 0, "pd exchange must move something");
        assert!(
            pd_bytes < base_bytes,
            "{:?} exchange ({pd_bytes} B) must be strictly below {:?} \
             ({base_bytes} B) at p={p}",
            pd_alg,
            base_alg
        );
        assert_eq!(
            pd_partners, base_partners,
            "prefix truncation must not change the exchange topology at p={p}"
        );
    }

    #[test]
    fn pd_ms2l_ships_fewer_exchange_bytes_than_ms2l() {
        for p in [8usize, 16, 27] {
            wire_reduction_pin(
                p,
                Algorithm::PdMs2l,
                Algorithm::Ms2l,
                long_lcp_shards(p, 30),
            );
            wire_reduction_pin(
                p,
                Algorithm::PdMs2l,
                Algorithm::Ms2l,
                dup_heavy_shards(p, 30),
            );
        }
    }

    #[test]
    fn pd_msml_ships_fewer_exchange_bytes_than_msml() {
        for p in [8usize, 16, 27] {
            wire_reduction_pin(
                p,
                Algorithm::PdMsml,
                Algorithm::Msml,
                long_lcp_shards(p, 30),
            );
            wire_reduction_pin(
                p,
                Algorithm::PdMsml,
                Algorithm::Msml,
                dup_heavy_shards(p, 30),
            );
        }
    }

    /// The partner-count formulas themselves: (r−1)+(c−1) for PD-MS2L,
    /// Σ(dᵢ−1) for PD-MSML — identical to the non-PD grids.
    #[test]
    fn pd_grids_keep_grid_partner_counts() {
        let p = 16usize;
        let run = |alg: Algorithm| {
            run_spmd(p, cfg_run(), move |comm| {
                let mut rng = StdRng::seed_from_u64(3000 + comm.rank() as u64);
                let mut set = StringSet::new();
                for _ in 0..40 {
                    let len = rng.gen_range(0..10);
                    let s: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'f')).collect();
                    set.push(&s);
                }
                let _ = alg.instance().sort(comm, set);
            })
            .stats
        };
        let partners = |stats: &dss_net::NetStats| -> u64 {
            stats
                .phases
                .iter()
                .filter(|ph| ph.name.starts_with("exchange"))
                .map(|ph| ph.max.msgs_sent)
                .sum()
        };
        // 16 = 4×4 ⇒ 3 + 3 partners; 16 = 2×2×2×2 ⇒ 4 partners.
        let (r, c) = dss_net::grid_dims(p).expect("16 has a grid");
        assert_eq!(
            partners(&run(Algorithm::PdMs2l)),
            (r as u64 - 1) + (c as u64 - 1)
        );
        let dims = dss_net::multi_grid_dims(p, 0).expect("16 has a multi-grid");
        let expect: u64 = dims.iter().map(|&d| d as u64 - 1).sum();
        assert_eq!(partners(&run(Algorithm::PdMsml)), expect);
    }
}
