//! # dss-sort — distributed string sorting (the paper's contribution)
//!
//! The six algorithms evaluated in §VII plus the two-level extension,
//! over the [`dss_net`] runtime:
//!
//! | algorithm | module | paper | idea |
//! |---|---|---|---|
//! | `hQuick` | [`hquick`] | §IV | hypercube atomic quicksort adapted to strings: polylog latency, moves all data log p times |
//! | `FKmerge` | [`fkmerge`] | §II-C, \[15\] | Fischer–Kurpicz mergesort: deterministic sampling, centralized sample sort, plain loser tree |
//! | `MS-simple` | [`ms`] | §V | distributed string mergesort without LCP optimizations |
//! | `MS` | [`ms`] | §V | + LCP compression on the wire and LCP loser-tree merge |
//! | `PDMS` | [`pdms`] | §VI | + prefix doubling: transmit only (approximate) distinguishing prefixes |
//! | `PDMS-Golomb` | [`pdms`] | §VI-A | + Golomb-coded fingerprint traffic in the duplicate detection |
//! | `MS2L` | [`ms2l`] | Kurpicz, Mehnert, Sanders, Schimek 2024 | two-level grid exchange: row then column over an r×c grid, `O(r + c)` partners per PE instead of `Θ(p)` |
//! | `MSML` | [`msml`] | Kurpicz, Mehnert, Sanders, Schimek 2024 | recursive ℓ-level grid exchange for `p = d₁·…·dₗ` with per-group splitter sampling: `Σ(dᵢ − 1)` partners per PE |
//! | `PD-MS2L` | [`pdms_grid`] | §VI × the 2024 follow-up | prefix doubling on the two-level grid: ship only distinguishing prefixes over `(r − 1) + (c − 1)` partners, permutation output |
//! | `PD-MSML` | [`pdms_grid`] | §VI × the 2024 follow-up | prefix doubling on the ℓ-level grid: distinguishing prefixes over `Σ(dᵢ − 1)` partners, permutation output |
//!
//! Supporting modules: [`partition`] (string- and character-based regular
//! sampling, Theorems 2 and 3; splitter determination), [`exchange`] (the
//! [`StringAllToAll`] engine — the single codec-aware all-to-all all
//! algorithms route through), [`checker`] (distributed result
//! validation), [`output`] (result types).
//!
//! ## Example
//!
//! ```
//! use dss_net::runner::{run_spmd, RunConfig};
//! use dss_sort::{Algorithm, DistSorter};
//! use dss_strkit::StringSet;
//!
//! let res = run_spmd(4, RunConfig::default(), |comm| {
//!     let shard = match comm.rank() {
//!         0 => StringSet::from_strs(&["alpha", "order", "alps"]),
//!         1 => StringSet::from_strs(&["algae", "sorter", "snow"]),
//!         2 => StringSet::from_strs(&["algo", "sorbet", "sorted"]),
//!         _ => StringSet::from_strs(&["orange", "soul", "organ"]),
//!     };
//!     let sorter = Algorithm::Ms.instance();
//!     let out = sorter.sort(comm, shard);
//!     out.set.to_vecs()
//! });
//! // Concatenating the per-PE outputs yields the globally sorted set.
//! let all: Vec<Vec<u8>> = res.values.into_iter().flatten().collect();
//! assert!(all.windows(2).all(|w| w[0] <= w[1]));
//! assert_eq!(all.len(), 12);
//! ```

pub mod checker;
pub mod exchange;
pub mod fkmerge;
pub mod hquick;
pub mod ms;
pub mod ms2l;
pub mod msml;
pub mod output;
pub mod partition;
pub mod pdms;
pub mod pdms_grid;

pub use exchange::{
    parse_exchange_mode, ExchangeCodec, ExchangeMode, ExchangePayload, StringAllToAll,
};
pub use fkmerge::FkMerge;
pub use hquick::HQuick;
pub use ms::{Ms, MsConfig};
pub use ms2l::{Ms2l, Ms2lConfig};
pub use msml::{parse_msml_levels, Msml, MsmlConfig};
pub use output::SortedRun;
pub use partition::{PartitionConfig, SamplingPolicy};
pub use pdms::{Pdms, PdmsConfig};
pub use pdms_grid::{PdMs2l, PdMs2lConfig, PdMsml, PdMsmlConfig};

use dss_net::Comm;
use dss_strkit::StringSet;

/// A distributed string sorter: every PE calls [`DistSorter::sort`] with
/// its local shard; afterwards PE i's output precedes PE i+1's and is
/// locally sorted.
pub trait DistSorter: Send + Sync {
    /// Algorithm label (as used in the paper's plots).
    fn name(&self) -> &'static str;
    /// Collective sort. Consumes the local shard.
    fn sort(&self, comm: &Comm, input: StringSet) -> SortedRun;
}

/// The named algorithm set of the evaluation (§VII-C) plus the two-level
/// extension, for harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    FkMerge,
    HQuick,
    MsSimple,
    Ms,
    PdmsGolomb,
    Pdms,
    Ms2l,
    Msml,
    PdMs2l,
    PdMsml,
}

impl Algorithm {
    /// The six algorithms of the paper's evaluation, in its plot order.
    pub fn all_paper() -> [Algorithm; 6] {
        [
            Algorithm::FkMerge,
            Algorithm::HQuick,
            Algorithm::MsSimple,
            Algorithm::Ms,
            Algorithm::PdmsGolomb,
            Algorithm::Pdms,
        ]
    }

    /// Every implemented algorithm: the paper set plus the multi-level
    /// extensions MS2L and MSML and their prefix-doubling composites
    /// PD-MS2L and PD-MSML.
    pub fn all_extended() -> [Algorithm; 10] {
        [
            Algorithm::FkMerge,
            Algorithm::HQuick,
            Algorithm::MsSimple,
            Algorithm::Ms,
            Algorithm::PdmsGolomb,
            Algorithm::Pdms,
            Algorithm::Ms2l,
            Algorithm::Msml,
            Algorithm::PdMs2l,
            Algorithm::PdMsml,
        ]
    }

    /// Instantiates the sorter with its paper-default configuration (the
    /// exchange mode follows the `DSS_EXCHANGE_MODE` knob, see
    /// [`ExchangeMode::from_env`]).
    pub fn instance(&self) -> Box<dyn DistSorter> {
        self.instance_with_mode(ExchangeMode::default())
    }

    /// Instantiates the sorter with an explicit [`ExchangeMode`],
    /// overriding the environment knob — the handle harnesses use to
    /// compare the blocking and pipelined paths inside one process.
    /// Threads stay at the `DSS_THREADS` default.
    pub fn instance_with_mode(&self, mode: ExchangeMode) -> Box<dyn DistSorter> {
        self.instance_with(mode, dss_strkit::sort::threads_from_env())
    }

    /// Instantiates the sorter with an explicit [`ExchangeMode`] **and**
    /// shared-memory thread count, overriding both environment knobs —
    /// the handle harnesses use to compare configurations inside one
    /// process without env-var races.
    pub fn instance_with(&self, mode: ExchangeMode, threads: usize) -> Box<dyn DistSorter> {
        assert!(threads >= 1, "thread count must be positive, got 0");
        match self {
            Algorithm::FkMerge => Box::new(FkMerge { mode, threads }),
            Algorithm::HQuick => Box::new(HQuick { mode, threads }),
            Algorithm::MsSimple => Box::new(Ms::with_config(MsConfig {
                lcp: false,
                mode,
                threads,
                ..MsConfig::default()
            })),
            Algorithm::Ms => Box::new(Ms::with_config(MsConfig {
                mode,
                threads,
                ..MsConfig::default()
            })),
            Algorithm::PdmsGolomb => {
                let mut cfg = Pdms::golomb().cfg;
                cfg.mode = mode;
                cfg.threads = threads;
                Box::new(Pdms::with_config(cfg))
            }
            Algorithm::Pdms => Box::new(Pdms::with_config(PdmsConfig {
                mode,
                threads,
                ..PdmsConfig::default()
            })),
            Algorithm::Ms2l => Box::new(Ms2l::with_config(Ms2lConfig {
                mode,
                threads,
                ..Ms2lConfig::default()
            })),
            Algorithm::Msml => Box::new(Msml::with_config(MsmlConfig {
                mode,
                threads,
                ..MsmlConfig::default()
            })),
            Algorithm::PdMs2l => Box::new(PdMs2l::with_config(PdMs2lConfig {
                mode,
                threads,
                ..PdMs2lConfig::default()
            })),
            Algorithm::PdMsml => Box::new(PdMsml::with_config(PdMsmlConfig {
                mode,
                threads,
                ..PdMsmlConfig::default()
            })),
        }
    }

    /// Plot label.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::FkMerge => "FKmerge",
            Algorithm::HQuick => "hQuick",
            Algorithm::MsSimple => "MS-simple",
            Algorithm::Ms => "MS",
            Algorithm::PdmsGolomb => "PDMS-Golomb",
            Algorithm::Pdms => "PDMS",
            Algorithm::Ms2l => "MS2L",
            Algorithm::Msml => "MSML",
            Algorithm::PdMs2l => "PD-MS2L",
            Algorithm::PdMsml => "PD-MSML",
        }
    }
}
