//! Algorithm MS — Distributed String Merge Sort (§V), and its stripped
//! variant MS-simple.
//!
//! The four steps of Fig. 1, each with the paper's string-specific
//! augmentation:
//!
//! 1. **sort locally**, producing the LCP array as a by-product;
//! 2. **partition**: regular sampling (string- or character-based,
//!    Theorems 2/3), sample sorted *distributed* with hQuick (saving the
//!    factor-p sample blowup of FKmerge), splitters gossiped;
//! 3. **all-to-all exchange**, with LCP compression (repeated prefixes
//!    travel once) — MS-simple skips this and ships plain strings;
//! 4. **multiway merge** with the LCP loser tree (MS) or a plain loser
//!    tree (MS-simple).

use crate::exchange::{ExchangeCodec, ExchangeMode, ExchangePayload, StringAllToAll};
use crate::output::SortedRun;
use crate::partition::{self, PartitionConfig};
use crate::DistSorter;
use dss_net::trace::{self, cat};
use dss_net::Comm;
use dss_strkit::sort::{par_sort_with_lcp, threads_from_env};
use dss_strkit::StringSet;

/// Configuration of Algorithm MS.
#[derive(Debug, Clone, Copy)]
pub struct MsConfig {
    /// LCP compression + LCP-aware merge (false ⇒ MS-simple).
    pub lcp: bool,
    /// Difference-code the LCP values on the wire (§VI-B extension).
    pub delta_lcps: bool,
    /// Pick the wire codec per destination bucket instead
    /// ([`ExchangeCodec::Auto`]); overrides `delta_lcps`. Ignored by
    /// MS-simple, which always ships plain strings.
    pub auto_codec: bool,
    /// Blocking or pipelined exchange (defaults to the
    /// `DSS_EXCHANGE_MODE` knob).
    pub mode: ExchangeMode,
    /// Shared-memory threads per PE for the local sort and the k-way
    /// merge (defaults to the `DSS_THREADS` knob). Output is
    /// byte-identical for every thread count.
    pub threads: usize,
    /// Sampling/splitter policy.
    pub partition: PartitionConfig,
}

impl Default for MsConfig {
    fn default() -> Self {
        Self {
            lcp: true,
            delta_lcps: false,
            auto_codec: false,
            mode: ExchangeMode::default(),
            threads: threads_from_env(),
            partition: PartitionConfig::default(),
        }
    }
}

/// Distributed String Merge Sort.
#[derive(Debug, Default, Clone, Copy)]
pub struct Ms {
    pub cfg: MsConfig,
}

impl Ms {
    /// MS-simple: "no LCP related optimizations at all".
    pub fn simple() -> Self {
        Self {
            cfg: MsConfig {
                lcp: false,
                ..MsConfig::default()
            },
        }
    }

    /// MS with a custom configuration.
    pub fn with_config(cfg: MsConfig) -> Self {
        Self { cfg }
    }

    /// Overrides the shared-memory thread count (local sort + merge).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be positive, got 0");
        self.cfg.threads = threads;
        self
    }
}

impl DistSorter for Ms {
    fn name(&self) -> &'static str {
        if self.cfg.lcp {
            "MS"
        } else {
            "MS-simple"
        }
    }

    fn sort(&self, comm: &Comm, mut input: StringSet) -> SortedRun {
        let _algo = trace::span_args(
            cat::ALGO,
            self.name(),
            [("strings", input.len() as u64), ("", 0)],
        );
        comm.set_phase("local_sort");
        let (lcps, _) = par_sort_with_lcp(&mut input, self.cfg.threads);
        if comm.size() == 1 {
            return SortedRun {
                lcps: self.cfg.lcp.then_some(lcps),
                set: input,
                origins: None,
                local_store: None,
            };
        }
        comm.set_phase("partition");
        // One mode (and thread count) for every byte this run moves: the
        // sample sort follows the algorithm's exchange mode and threads.
        let mut pcfg = self.cfg.partition;
        pcfg.mode = self.cfg.mode;
        pcfg.threads = self.cfg.threads;
        let splitters = partition::determine_splitters(comm, &input, &pcfg, None, None);
        comm.set_phase("exchange");
        let codec = if self.cfg.lcp {
            ExchangeCodec::for_lcp_config(self.cfg.delta_lcps, self.cfg.auto_codec)
        } else {
            ExchangeCodec::Plain
        };
        let mut engine =
            StringAllToAll::with_mode(codec, self.cfg.mode).with_threads(self.cfg.threads);
        engine.exchange_merge_by_splitters(
            comm,
            &ExchangePayload {
                set: &input,
                lcps: &lcps,
                origins: None,
                truncate: None,
            },
            &splitters,
            self.cfg.partition.duplicate_tie_break,
            Some("merge"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::SamplingPolicy;
    use dss_net::runner::{run_spmd, RunConfig};
    use rand::prelude::*;
    use std::time::Duration;

    fn cfg_run() -> RunConfig {
        RunConfig {
            recv_timeout: Duration::from_secs(30),
            ..RunConfig::default()
        }
    }

    fn check(p: usize, shards: Vec<Vec<Vec<u8>>>, sorter: Ms) {
        let mut expect: Vec<Vec<u8>> = shards.iter().flatten().cloned().collect();
        expect.sort();
        let shards_ref = &shards;
        let res = run_spmd(p, cfg_run(), move |comm| {
            let set =
                StringSet::from_iter_bytes(shards_ref[comm.rank()].iter().map(|s| s.as_slice()));
            let out = sorter.sort(comm, set);
            if let Some(l) = &out.lcps {
                dss_strkit::lcp::verify_lcp_array(&out.set, l).expect("output lcps");
            }
            out.set.to_vecs()
        });
        let got: Vec<Vec<u8>> = res.values.into_iter().flatten().collect();
        assert_eq!(got, expect);
    }

    fn random_shards(p: usize, n: usize, seed: u64) -> Vec<Vec<Vec<u8>>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..p)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        let len = rng.gen_range(0..14);
                        (0..len).map(|_| rng.gen_range(b'a'..=b'e')).collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn ms_sorts_various_pe_counts() {
        for p in [1usize, 2, 3, 4, 6] {
            check(p, random_shards(p, 70, p as u64), Ms::default());
        }
    }

    #[test]
    fn ms_simple_sorts() {
        for p in [2usize, 4] {
            check(p, random_shards(p, 60, 100 + p as u64), Ms::simple());
        }
    }

    #[test]
    fn ms_with_char_sampling_sorts() {
        let sorter = Ms::with_config(MsConfig {
            partition: PartitionConfig {
                policy: SamplingPolicy::Chars,
                ..PartitionConfig::default()
            },
            ..MsConfig::default()
        });
        check(4, random_shards(4, 80, 7), sorter);
    }

    #[test]
    fn ms_with_delta_lcps_sorts() {
        let sorter = Ms::with_config(MsConfig {
            delta_lcps: true,
            ..MsConfig::default()
        });
        check(3, random_shards(3, 60, 8), sorter);
    }

    #[test]
    fn ms_with_central_sample_sort_sorts() {
        let sorter = Ms::with_config(MsConfig {
            partition: PartitionConfig {
                central_sample_sort: true,
                ..PartitionConfig::default()
            },
            ..MsConfig::default()
        });
        check(3, random_shards(3, 60, 9), sorter);
    }

    #[test]
    fn handles_duplicates_and_empties() {
        let mut shards = random_shards(4, 0, 10);
        shards[1] = vec![b"dup".to_vec(); 120];
        shards[3] = vec![b"dup".to_vec(); 40];
        check(4, shards, Ms::default());
    }

    #[test]
    fn output_lcps_cross_run_boundaries_correctly() {
        // Strings interleave across PEs so the merge must compute LCPs
        // between strings from different source runs.
        let shards = vec![
            vec![b"aaa1".to_vec(), b"aab1".to_vec(), b"zzz1".to_vec()],
            vec![b"aaa2".to_vec(), b"aab2".to_vec(), b"zzz2".to_vec()],
        ];
        check(2, shards, Ms::default());
    }

    #[test]
    fn ms_sends_fewer_bytes_than_ms_simple_on_high_lcp_input() {
        let run = |sorter: Ms| -> u64 {
            let res = run_spmd(2, cfg_run(), move |comm| {
                let mut set = StringSet::new();
                for i in 0..300u32 {
                    set.push(format!("very_long_common_prefix_block_{:04}", i).as_bytes());
                }
                let r = comm.rank() as u32;
                set.push(format!("tail{r}").as_bytes());
                let _ = sorter.sort(comm, set);
            });
            res.stats.total_bytes_sent()
        };
        let simple = run(Ms::simple());
        let full = run(Ms::default());
        assert!(full < simple, "MS {full} should be < MS-simple {simple}");
    }
}
