//! MSML — recursive multi-level (grid) distributed string mergesort.
//!
//! The ℓ-level generalization of [`Ms2l`](crate::ms2l::Ms2l), after
//! "Scalable Distributed String Sorting" (Kurpicz, Mehnert, Sanders,
//! Schimek, 2024): factor `p = d₁·d₂·…·dₗ` and exchange level by level
//! over a [`dss_net::MultiGridComm`] instead of all-to-all. Per PE and
//! run, the exchange contacts `Σ(dᵢ − 1)` partners instead of `p − 1` —
//! 3 instead of 7 for `p = 8 = 2×2×2`, 6 instead of 26 for
//! `p = 27 = 3×3×3` — at the cost of moving the payload ℓ times (the
//! [`MsmlConfig::levels`] / [`MsmlConfig::max_level_size`] dial).
//!
//! Each level repeats MS's partition → exchange → LCP-merge round inside
//! an ever-smaller *block* of PEs holding one contiguous range of the
//! global order:
//!
//! 1. **per-group partition**: `dᵢ − 1` splitters cut the block's data
//!    into `dᵢ` sub-ranges. Unlike MS2L — whose level-1 sample sort runs
//!    over the *world* communicator with world-sized oversampling — the
//!    sample is drawn, gathered, sorted and broadcast entirely inside
//!    the block ([`partition::determine_group_splitters`]), so
//!    splitter-determination traffic shrinks to `O(bᵢ·v)` sample strings
//!    per group and never crosses group boundaries;
//! 2. **exchange + merge**: over the level's exchange communicator
//!    (`dᵢ` members, one per sub-block, rank = sub-block index), bucket
//!    `j` travels to sub-block `j`; an LCP loser-tree merge restores a
//!    sorted local set. Origin tags, when present in the payload, ride
//!    through every level's codec and merge unchanged.
//!
//! The column-major rank mapping of [`dss_net::multi_grid_view`] makes
//! blocks and sub-blocks contiguous rank ranges, so after the last level
//! the world-rank-ordered concatenation is globally sorted — the same
//! output contract (strings, LCPs, origins) as every other
//! [`DistSorter`].
//!
//! All levels run through one [`StringAllToAll`] engine instance, so
//! later levels reuse the earlier levels' pooled decode scratch. When
//! `p` admits no multi-level grid (`p < 4` or `p` prime) — or
//! `levels = 1` is requested explicitly — MSML falls back to
//! single-level [`Ms`] with the same codec settings. A `levels` value
//! that cannot tile `p` panics loudly (see [`parse_msml_levels`]).

use crate::exchange::{ExchangeCodec, ExchangeMode, ExchangePayload, StringAllToAll};
use crate::ms::{Ms, MsConfig};
use crate::output::SortedRun;
use crate::partition::{self, PartitionConfig};
use crate::DistSorter;
use dss_net::topology;
use dss_net::trace::{self, cat};
use dss_net::Comm;
use dss_strkit::sort::{par_sort_with_lcp, threads_from_env};
use dss_strkit::StringSet;
use std::sync::OnceLock;

/// Parses a `DSS_MSML_LEVELS` value into [`MsmlConfig::levels`]: unset,
/// empty or `auto` defer to the automatic (deepest) factorization;
/// anything else must be a positive level count. Invalid values panic
/// with the offending value — a typo'd knob must fail loudly, not
/// silently change the grid depth (same policy as `DSS_THREADS` and
/// `DSS_EXCHANGE_MODE`).
pub fn parse_msml_levels(raw: Option<&str>) -> usize {
    match raw.map(str::trim) {
        None | Some("") | Some("auto") => 0,
        Some(v) => match v.parse::<usize>() {
            Ok(l) if l >= 1 => l,
            _ => panic!("DSS_MSML_LEVELS must be 'auto' or a positive level count, got '{v}'"),
        },
    }
}

/// The validated `DSS_MSML_LEVELS` knob (0 ⇒ auto). Cached after the
/// first call, like `ExchangeMode::from_env`.
pub fn msml_levels_from_env() -> usize {
    static LEVELS: OnceLock<usize> = OnceLock::new();
    *LEVELS.get_or_init(|| match std::env::var("DSS_MSML_LEVELS") {
        Ok(v) => parse_msml_levels(Some(&v)),
        Err(std::env::VarError::NotPresent) => parse_msml_levels(None),
        Err(e) => panic!("DSS_MSML_LEVELS must be valid unicode: {e}"),
    })
}

/// Configuration of MSML.
#[derive(Debug, Clone, Copy)]
pub struct MsmlConfig {
    /// Difference-code the LCP values on the wire (§VI-B extension).
    pub delta_lcps: bool,
    /// Pick the wire codec per destination bucket instead
    /// ([`ExchangeCodec::Auto`]); overrides `delta_lcps`.
    pub auto_codec: bool,
    /// Blocking or pipelined exchange, applied to **every** grid level
    /// (defaults to the `DSS_EXCHANGE_MODE` knob).
    pub mode: ExchangeMode,
    /// Shared-memory threads per PE for the local sort and every level's
    /// merge (defaults to the `DSS_THREADS` knob).
    pub threads: usize,
    /// Exact grid depth ℓ (defaults to the `DSS_MSML_LEVELS` knob; `0` ⇒
    /// auto: the deepest factorization [`topology::multi_grid_dims`]
    /// yields under [`MsmlConfig::max_level_size`]). `1` forces the
    /// single-level [`Ms`] fallback. Any other value that cannot tile
    /// `p` into that many factors ≥ 2 **panics** with the offending
    /// value — same loud-failure policy as the env knobs.
    pub levels: usize,
    /// In auto mode (`levels = 0`), cap each level's fan-out `dᵢ`:
    /// `0` ⇒ uncapped depth (full prime factorization, the minimal
    /// `Σ(dᵢ − 1)` partner count). See [`topology::multi_grid_dims`].
    pub max_level_size: usize,
    /// Sampling/splitter policy, used per group at every level.
    pub partition: PartitionConfig,
}

impl Default for MsmlConfig {
    fn default() -> Self {
        Self {
            delta_lcps: false,
            auto_codec: false,
            mode: ExchangeMode::default(),
            threads: threads_from_env(),
            levels: msml_levels_from_env(),
            max_level_size: 0,
            partition: PartitionConfig::default(),
        }
    }
}

/// Multi-level distributed string mergesort (see module docs).
#[derive(Debug, Default, Clone, Copy)]
pub struct Msml {
    pub cfg: MsmlConfig,
}

impl Msml {
    /// MSML with a custom configuration.
    pub fn with_config(cfg: MsmlConfig) -> Self {
        Self { cfg }
    }

    /// Overrides the shared-memory thread count (local sort + merges).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be positive, got 0");
        self.cfg.threads = threads;
        self
    }

    /// The level fan-outs this configuration yields for `p` PEs (`None`
    /// ⇒ fallback to single-level MS). Panics on an explicit `levels`
    /// that cannot tile `p`.
    fn dims(&self, p: usize) -> Option<Vec<usize>> {
        match self.cfg.levels {
            0 => topology::multi_grid_dims(p, self.cfg.max_level_size),
            1 => None,
            l => match topology::factor_into_levels(p, l) {
                Some(dims) => Some(dims),
                None => panic!(
                    "MsmlConfig::levels / DSS_MSML_LEVELS = {l} cannot tile p = {p} PEs \
                     into {l} grid levels of size >= 2"
                ),
            },
        }
    }

    fn fallback(&self) -> Ms {
        Ms::with_config(MsConfig {
            lcp: true,
            delta_lcps: self.cfg.delta_lcps,
            auto_codec: self.cfg.auto_codec,
            mode: self.cfg.mode,
            threads: self.cfg.threads,
            partition: self.cfg.partition,
        })
    }
}

impl DistSorter for Msml {
    fn name(&self) -> &'static str {
        "MSML"
    }

    fn sort(&self, comm: &Comm, mut input: StringSet) -> SortedRun {
        let _algo = trace::span_args(
            cat::ALGO,
            self.name(),
            [("strings", input.len() as u64), ("", 0)],
        );
        let p = comm.size();
        // Resolve (and validate) the grid before anything else so a bad
        // `levels` knob fails loudly on every PE, every run.
        let Some(dims) = self.dims(p) else {
            // No multi-level grid: single-level MS does the job.
            return self.fallback().sort(comm, input);
        };

        comm.set_phase("local_sort");
        let (lcps, _) = par_sort_with_lcp(&mut input, self.cfg.threads);
        let codec = ExchangeCodec::for_lcp_config(self.cfg.delta_lcps, self.cfg.auto_codec);
        let tie_break = self.cfg.partition.duplicate_tie_break;
        // One mode (and thread count) for every byte this run moves:
        // every level's sample handling follows the algorithm's exchange
        // mode and threads.
        let mut pcfg = self.cfg.partition;
        pcfg.mode = self.cfg.mode;
        pcfg.threads = self.cfg.threads;
        // The 2ℓ − 2 counted splits of the grid view are communication —
        // keep them out of the local_sort phase.
        comm.set_phase("grid_setup");
        let grid = topology::multi_grid_view(comm, &dims);
        let mut engine =
            StringAllToAll::with_mode(codec, self.cfg.mode).with_threads(self.cfg.threads);

        // Level i: dᵢ − 1 splitters (sampled inside the block) cut the
        // block's contiguous range into dᵢ sub-ranges; the exchange
        // routes bucket j to sub-block j and the merge restores local
        // sortedness. Origins (when a payload carries them) flow through
        // every level's codec and merge.
        let mut run = SortedRun {
            set: input,
            lcps: Some(lcps),
            origins: None,
            local_store: None,
        };
        for (i, level) in grid.levels().iter().enumerate() {
            comm.set_phase(&format!("partition_l{i}"));
            let splitters = partition::determine_group_splitters(
                grid.sampling_comm(i, comm),
                &run.set,
                level.dim,
                &pcfg,
                None,
                None,
            );
            comm.set_phase(&format!("exchange_l{i}"));
            let merge_phase = format!("merge_l{i}");
            run = engine.exchange_merge_by_splitters(
                &level.exchange,
                &ExchangePayload {
                    set: &run.set,
                    lcps: run.lcps.as_deref().expect("LCP merge yields LCPs"),
                    origins: run.origins.as_deref(),
                    truncate: None,
                },
                &splitters,
                tie_break,
                Some(&merge_phase),
            );
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use dss_net::runner::{run_spmd, RunConfig};
    use rand::prelude::*;
    use std::time::Duration;

    fn cfg_run() -> RunConfig {
        RunConfig {
            recv_timeout: Duration::from_secs(120),
            ..RunConfig::default()
        }
    }

    fn check(p: usize, shards: Vec<Vec<Vec<u8>>>, sorter: Msml) {
        let mut expect: Vec<Vec<u8>> = shards.iter().flatten().cloned().collect();
        expect.sort();
        let shards_ref = &shards;
        let res = run_spmd(p, cfg_run(), move |comm| {
            let set =
                StringSet::from_iter_bytes(shards_ref[comm.rank()].iter().map(|s| s.as_slice()));
            let out = sorter.sort(comm, set);
            if let Some(l) = &out.lcps {
                dss_strkit::lcp::verify_lcp_array(&out.set, l).expect("output lcps");
            }
            out.set.to_vecs()
        });
        let got: Vec<Vec<u8>> = res.values.into_iter().flatten().collect();
        assert_eq!(got, expect, "p={p}");
    }

    fn random_shards(p: usize, n: usize, seed: u64) -> Vec<Vec<Vec<u8>>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..p)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        let len = rng.gen_range(0..14);
                        (0..len).map(|_| rng.gen_range(b'a'..=b'e')).collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn msml_sorts_two_and_three_level_grids() {
        // 4 = 2×2, 8 = 2×2×2, 12 = 3×2×2, 16 = 2×2×2×2.
        for p in [4usize, 8, 12, 16] {
            check(p, random_shards(p, 50, p as u64), Msml::default());
        }
    }

    #[test]
    fn msml_falls_back_on_prime_and_tiny_pe_counts() {
        for p in [1usize, 2, 3, 5, 7] {
            check(p, random_shards(p, 40, 40 + p as u64), Msml::default());
        }
    }

    #[test]
    fn msml_with_explicit_levels_and_delta_lcps() {
        let sorter = Msml::with_config(MsmlConfig {
            delta_lcps: true,
            levels: 2,
            ..MsmlConfig::default()
        });
        check(8, random_shards(8, 50, 77), sorter);
        // levels: 1 is the explicit single-level fallback.
        let single = Msml::with_config(MsmlConfig {
            levels: 1,
            ..MsmlConfig::default()
        });
        check(4, random_shards(4, 40, 78), single);
    }

    #[test]
    fn msml_with_max_level_size_cap() {
        // p = 16 capped at 4 ⇒ dims [4, 4] (a two-level grid).
        let sorter = Msml::with_config(MsmlConfig {
            max_level_size: 4,
            ..MsmlConfig::default()
        });
        check(16, random_shards(16, 40, 79), sorter);
    }

    #[test]
    fn msml_handles_duplicates_and_empty_shards() {
        let mut shards = random_shards(8, 0, 90);
        shards[1] = vec![b"dup".to_vec(); 150];
        shards[6] = vec![b"dup".to_vec(); 30];
        check(8, shards, Msml::default());
    }

    #[test]
    fn msml_handles_all_empty_input() {
        check(8, random_shards(8, 0, 91), Msml::default());
    }

    #[test]
    #[should_panic(expected = "DSS_MSML_LEVELS = 4 cannot tile p = 8")]
    fn msml_panics_on_untileable_level_count() {
        // 8 = 2·2·2 has only three prime factors; levels: 4 must fail
        // loudly, not silently fall back.
        let sorter = Msml::with_config(MsmlConfig {
            levels: 4,
            ..MsmlConfig::default()
        });
        check(8, random_shards(8, 10, 92), sorter);
    }

    #[test]
    fn parse_msml_levels_accepts_auto_and_counts() {
        assert_eq!(parse_msml_levels(None), 0);
        assert_eq!(parse_msml_levels(Some("")), 0);
        assert_eq!(parse_msml_levels(Some("auto")), 0);
        assert_eq!(parse_msml_levels(Some(" auto ")), 0);
        assert_eq!(parse_msml_levels(Some("1")), 1);
        assert_eq!(parse_msml_levels(Some("3")), 3);
    }

    #[test]
    #[should_panic(expected = "got '0'")]
    fn parse_msml_levels_rejects_zero() {
        parse_msml_levels(Some("0"));
    }

    #[test]
    #[should_panic(expected = "got 'three'")]
    fn parse_msml_levels_rejects_garbage() {
        parse_msml_levels(Some("three"));
    }

    /// The headline claim: on the 2×2×2 grid of p = 8 the exchange
    /// phases contact Σ(dᵢ−1) = 3 partners per PE (vs 7 for MS), and
    /// per-group sampling moves strictly fewer splitter-phase bytes
    /// than MS2L's world-wide sample sort at the same p.
    #[test]
    fn three_level_grid_pins_partner_count_and_splitter_bytes() {
        multi_level_pin(8, &[2, 2, 2]);
    }

    /// Same pin on the non-uniform 3-level factorization 12 = 3×2×2.
    #[test]
    fn three_level_pin_p12() {
        multi_level_pin(12, &[3, 2, 2]);
    }

    /// Same pin on 27 = 3×3×3: 6 partners per PE vs 26 for MS.
    #[test]
    fn three_level_pin_p27() {
        multi_level_pin(27, &[3, 3, 3]);
    }

    fn multi_level_pin(p: usize, expect_dims: &[usize]) {
        assert_eq!(
            dss_net::multi_grid_dims(p, 0).as_deref(),
            Some(expect_dims),
            "expected factorization"
        );
        let levels = expect_dims.len();
        let sum_in = |stats: &dss_net::NetStats,
                      pick: &dyn Fn(&dss_net::PhaseSummary) -> u64,
                      phases: &[String]|
         -> u64 {
            stats
                .phases
                .iter()
                .filter(|ph| phases.contains(&ph.name))
                .map(pick)
                .sum()
        };

        let run = |alg: Algorithm| {
            run_spmd(p, cfg_run(), move |comm| {
                let mut rng = StdRng::seed_from_u64(1000 + comm.rank() as u64);
                let mut set = StringSet::new();
                for _ in 0..40 {
                    let len = rng.gen_range(0..10);
                    let s: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'f')).collect();
                    set.push(&s);
                }
                let _ = alg.instance().sort(comm, set);
            })
            .stats
        };

        // Per-PE exchange partners == Σ(dᵢ − 1), measured via the
        // per-phase max message counters.
        let msml = run(Algorithm::Msml);
        let exchange_phases: Vec<String> = (0..levels).map(|i| format!("exchange_l{i}")).collect();
        let partners = sum_in(&msml, &|ph| ph.max.msgs_sent, &exchange_phases);
        let expect_partners: u64 = expect_dims.iter().map(|&d| d as u64 - 1).sum();
        assert_eq!(partners, expect_partners, "multi-level exchange partners");

        let single = run(Algorithm::Ms);
        let partners_1l = sum_in(&single, &|ph| ph.max.msgs_sent, &["exchange".into()]);
        assert_eq!(partners_1l, p as u64 - 1, "single-level exchange partners");
        assert!(partners < partners_1l);

        // Splitter-phase traffic: per-group gathered samples must move
        // strictly fewer bytes than MS2L's world-wide sample sort.
        let ms2l = run(Algorithm::Ms2l);
        let partition_phases: Vec<String> =
            (0..levels).map(|i| format!("partition_l{i}")).collect();
        let msml_bytes = sum_in(&msml, &|ph| ph.total.bytes_sent, &partition_phases);
        let ms2l_bytes = sum_in(
            &ms2l,
            &|ph| ph.total.bytes_sent,
            &["partition_row".into(), "partition_col".into()],
        );
        assert!(msml_bytes > 0, "splitter phases must move something");
        assert!(
            msml_bytes < ms2l_bytes,
            "per-group sampling ({msml_bytes} B) must beat MS2L's world-wide \
             sampling ({ms2l_bytes} B) at p={p}"
        );
    }
}
