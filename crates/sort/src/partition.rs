//! Splitter determination and bucket boundaries (§V-A).
//!
//! After local sorting, p−1 global splitters f₁ < … < f_{p−1} partition the
//! data: PE i receives bucket bᵢ = { s | fᵢ < s ≤ fᵢ₊₁ }. Because the
//! local sets are sorted, *regular sampling* applies:
//!
//! * **String-based** (Theorem 2): v evenly spaced strings per PE; every
//!   bucket ends up with ≤ n/p + n/v strings.
//! * **Character-based** (Theorem 3): sample strings at evenly spaced
//!   *character* ranks; every bucket gets ≤ N/p + N/v + (p+v)·ℓ̂
//!   characters — the variant that survives skewed length distributions.
//! * **Distinguishing-prefix-based** (§VI): character-based over the
//!   approximated distinguishing prefix lengths, balancing the work that
//!   actually matters for PDMS; samples are truncated to their prefix.
//!
//! The pv samples are sorted either **centrally** (gather on PE 0 — the
//! Fischer–Kurpicz bottleneck, kept for the baseline) or **distributed**
//! with hQuick, after which the p−1 order statistics at ranks v, 2v, … are
//! extracted and gossiped to everyone.

use crate::exchange::ExchangeMode;
use crate::hquick;
use dss_codec::wire;
use dss_net::Comm;
use dss_strkit::sort::sort_with_lcp;
use dss_strkit::StringSet;

/// Which quantity regular sampling balances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingPolicy {
    /// Balance string counts (Theorem 2).
    Strings,
    /// Balance character counts (Theorem 3).
    Chars,
    /// Balance distinguishing-prefix characters (PDMS; needs `weights`).
    DistPrefix,
}

/// Sampling/splitter configuration.
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    pub policy: SamplingPolicy,
    /// Oversampling factor v (samples per PE); 0 ⇒ auto (`max(2, p)`,
    /// the Θ(p) choice of Theorems 2–4).
    pub oversampling: usize,
    /// Sort the sample centrally on PE 0 (FKmerge-style) instead of with
    /// distributed hQuick.
    pub central_sample_sort: bool,
    /// Random instead of regular sampling — §VIII future work: "this
    /// requires less samples and, in expectation, the sample strings have
    /// average length rather than ℓ̂".
    pub random_sampling: bool,
    /// Split runs of strings equal to a splitter across the adjacent
    /// buckets instead of sending them all left — §VIII future work:
    /// "remove load balancing problems due to duplicate strings by tie
    /// breaking techniques". Sortedness is preserved because the spread
    /// strings are all equal.
    pub duplicate_tie_break: bool,
    /// Exchange mode of the distributed sample sort's placement scatter
    /// (defaults to the `DSS_EXCHANGE_MODE` knob). The `DistSorter`
    /// implementations keep this in lockstep with their own `mode`, so
    /// one algorithm run moves *all* its data in a single mode.
    pub mode: ExchangeMode,
    /// Shared-memory threads of the sample sort's local sorting steps
    /// (defaults to the `DSS_THREADS` knob). Kept in lockstep with the
    /// algorithm's own `threads`, like `mode`.
    pub threads: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            policy: SamplingPolicy::Strings,
            oversampling: 0,
            central_sample_sort: false,
            random_sampling: false,
            duplicate_tie_break: false,
            mode: ExchangeMode::default(),
            threads: dss_strkit::sort::threads_from_env(),
        }
    }
}

impl PartitionConfig {
    fn v(&self, p: usize) -> usize {
        if self.oversampling == 0 {
            p.max(2)
        } else {
            self.oversampling
        }
    }
}

/// Draws this PE's regular sample from its **sorted** local set.
///
/// `weights[i]` is the per-string balance weight: 1 for string-based
/// sampling, the length for character-based, the approximate
/// distinguishing prefix length for PDMS. `truncate_to` trims the sampled
/// strings (PDMS sends splitters of length ≤ d̂).
fn draw_sample(
    set: &StringSet,
    v: usize,
    policy: SamplingPolicy,
    weights: Option<&[u32]>,
    truncate_to: Option<&[u32]>,
    rng: Option<&mut dss_net::SplitMix64>,
) -> StringSet {
    let n = set.len();
    let mut sample = StringSet::new();
    if n == 0 {
        return sample;
    }
    let push_sample = |sample: &mut StringSet, i: usize| {
        let s = set.get(i);
        let cut = truncate_to
            .map(|t| (t[i] as usize).min(s.len()))
            .unwrap_or(s.len());
        sample.push(&s[..cut]);
    };
    if let Some(rng) = rng {
        // Random sampling (§VIII): v uniform picks, in sorted order so the
        // downstream machinery sees a sorted sample run.
        let mut idxs: Vec<usize> = (0..v).map(|_| rng.next_index(n)).collect();
        idxs.sort_unstable();
        for i in idxs {
            push_sample(&mut sample, i);
        }
        return sample;
    }
    match policy {
        SamplingPolicy::Strings => {
            // The paper's regular sampling: Sᵢ[ω·j − 1] with ω = n/(v+1)
            // (generalised to ⌊j·n/(v+1)⌋ − 1 for non-divisible n).
            for j in 1..=v {
                let idx = ((j * n) / (v + 1)).saturating_sub(1);
                push_sample(&mut sample, idx.min(n - 1));
            }
        }
        SamplingPolicy::Chars | SamplingPolicy::DistPrefix => {
            let w = |i: usize| -> u64 {
                match weights {
                    Some(ws) => ws[i] as u64,
                    None => set.get(i).len() as u64,
                }
            };
            let total: u64 = (0..n).map(w).sum();
            if total == 0 {
                // Degenerate (all-empty strings): fall back to string-based.
                return draw_sample(set, v, SamplingPolicy::Strings, None, truncate_to, None);
            }
            // First string starting at or after char rank j·ω′.
            let mut cum = 0u64;
            let mut i = 0usize;
            for j in 1..=v {
                let target = (j as u64 * total) / (v as u64 + 1);
                while i + 1 < n && cum + w(i) <= target {
                    cum += w(i);
                    i += 1;
                }
                push_sample(&mut sample, i);
            }
        }
    }
    sample
}

/// Serializes a sorted-ish sample as a plain wire run.
fn encode_set(set: &StringSet) -> Vec<u8> {
    let mut buf = Vec::new();
    wire::encode_plain(set.iter(), None, &mut buf);
    buf
}

fn decode_set(buf: &[u8]) -> StringSet {
    let mut pos = 0;
    let run = wire::decode_plain(buf, &mut pos).expect("well-formed sample run");
    StringSet::from_iter_bytes(run.iter())
}

/// Sorts the global sample and selects + gossips the p−1 splitters.
///
/// Returns the splitters as a sorted `StringSet` (identical on every PE).
pub fn select_splitters(
    comm: &Comm,
    local_sample: StringSet,
    central: bool,
    mode: ExchangeMode,
    threads: usize,
) -> StringSet {
    select_k_splitters(comm, local_sample, comm.size(), central, mode, threads)
}

/// k-way generalization of [`select_splitters`]: sorts the global sample
/// over `comm` and selects + gossips `k − 1` splitters partitioning the
/// global data into `k` order-ranges — `k = comm.size()` for the
/// single-level algorithms, `k =` grid columns for MS2L's row exchange.
///
/// Always returns exactly `k − 1` sorted splitters, identical on every
/// PE: a degenerate (all-empty) global sample is padded with repeats so
/// downstream bucket vectors keep their expected shape.
pub fn select_k_splitters(
    comm: &Comm,
    local_sample: StringSet,
    k: usize,
    central: bool,
    mode: ExchangeMode,
    threads: usize,
) -> StringSet {
    if k <= 1 {
        return StringSet::new();
    }
    let splitters = if central {
        // FKmerge-style: ship all samples to PE 0, sort there, broadcast.
        let gathered = comm.gatherv(0, encode_set(&local_sample));
        let splitters = if let Some(parts) = gathered {
            let mut all = StringSet::new();
            for part in &parts {
                all.extend_from(&decode_set(part));
            }
            let (_, _) = sort_with_lcp(&mut all);
            let s = all.len();
            let mut splitters = StringSet::new();
            if s > 0 {
                // fᵢ = V[v·i − 1] in the paper's notation (V sorted, |V| = pv).
                for j in 1..k {
                    let idx = ((j * s) / k).saturating_sub(1);
                    splitters.push(all.get(idx.min(s - 1)));
                }
            }
            encode_set(&splitters)
        } else {
            Vec::new()
        };
        decode_set(&comm.broadcast(0, splitters))
    } else {
        // Distributed: hQuick-sort the sample, then extract the order
        // statistics at global ranks j·s/k and gossip them.
        let sorted = hquick::sort_for_samples(comm, local_sample, mode, threads);
        let (prefix, total) = comm.exclusive_scan_sum_u64(sorted.len() as u64);
        let mut mine = StringSet::new();
        let mut ranks: Vec<u64> = Vec::new();
        if total > 0 {
            for j in 1..k as u64 {
                let target = ((j * total) / k as u64).saturating_sub(1);
                let target = target.min(total - 1);
                if target >= prefix && target < prefix + sorted.len() as u64 {
                    mine.push(sorted.get((target - prefix) as usize));
                    ranks.push(j);
                }
            }
        }
        // Gossip (rank, splitter) pairs and assemble in rank order.
        let mut buf = Vec::new();
        wire::encode_plain(mine.iter(), Some(&ranks), &mut buf);
        let parts = comm.allgatherv(buf);
        let mut tagged: Vec<(u64, Vec<u8>)> = Vec::new();
        for part in &parts {
            let mut pos = 0;
            let run = wire::decode_plain(part, &mut pos).expect("well-formed splitter run");
            let origins = run.origins.clone().unwrap_or_default();
            for (i, s) in run.iter().enumerate() {
                tagged.push((origins[i], s.to_vec()));
            }
        }
        tagged.sort_by_key(|(r, _)| *r);
        StringSet::from_iter_bytes(tagged.iter().map(|(_, s)| s.as_slice()))
    };
    pad_splitters(splitters, k)
}

/// An all-empty global sample yields no order statistics at all; pad with
/// repeats of the last splitter (or empty strings) so every caller gets
/// exactly `k − 1` sorted splitters. Repeats delimit empty buckets (ties
/// go left), so data placement is unaffected.
fn pad_splitters(mut splitters: StringSet, k: usize) -> StringSet {
    while splitters.len() + 1 < k {
        let last: Vec<u8> = if splitters.is_empty() {
            Vec::new()
        } else {
            splitters.get(splitters.len() - 1).to_vec()
        };
        splitters.push(&last);
    }
    splitters
}

/// Computes bucket boundaries of the sorted local `set` for the given
/// splitters: `bounds[i]..bounds[i+1]` is the sub-range going to PE i
/// (strings s with fᵢ < s ≤ fᵢ₊₁; ties go left, matching the paper).
pub fn bucket_bounds(set: &StringSet, splitters: &StringSet) -> Vec<usize> {
    let n = set.len();
    let mut bounds = Vec::with_capacity(splitters.len() + 2);
    bounds.push(0);
    for f in splitters.iter() {
        // First index with s > f.
        let start = bounds.last().copied().unwrap_or(0);
        let mut lo = start;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if set.get(mid) <= f {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        bounds.push(lo);
    }
    bounds.push(n);
    bounds
}

/// [`bucket_bounds`] with duplicate tie breaking (§VIII): a local run of
/// strings *equal* to splitter fᵢ — which the plain rule dumps entirely
/// into bucket i−1 — is spread evenly over all buckets whose boundary
/// splitters equal that value (for k consecutive equal splitters the run
/// spans k+1 buckets). Equal strings may sit on either side of an equal
/// splitter without violating global sortedness, so correctness is
/// untouched while massive duplicates stop overloading one PE.
pub fn bucket_bounds_tie_break(set: &StringSet, splitters: &StringSet) -> Vec<usize> {
    let mut bounds = bucket_bounds(set, splitters);
    let m = splitters.len();
    let mut i = 0;
    while i < m {
        // Group of consecutive equal splitters [i, j).
        let mut j = i + 1;
        while j < m && splitters.get(j) == splitters.get(i) {
            j += 1;
        }
        let f = splitters.get(i);
        // Local run of strings equal to f: it ends at bounds[i+1] (plain
        // rule sends ties left) and starts where the equality begins.
        let end = bounds[i + 1];
        let mut start = end;
        while start > 0 && set.get(start - 1) == f {
            start -= 1;
        }
        let run = end - start;
        if run > 0 {
            // Spread the run over buckets i-1+0 ..= i-1+(j-i+... ): the
            // buckets delimited by these equal splitters are i..=j in
            // bounds terms — positions bounds[i+1..=j] move inside the run.
            let parts = j - i + 1;
            for (t, b) in (i + 1..=j).enumerate() {
                bounds[b] = start + (run * (t + 1)) / parts;
            }
        }
        i = j;
    }
    debug_assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
    bounds
}

/// Splitter-determination step of the merge-based algorithms: draw this
/// PE's regular sample, sort the global sample, select + gossip the
/// `comm.size() − 1` splitters. The [`crate::exchange::StringAllToAll`]
/// engine performs the bucket classification against them.
pub fn determine_splitters(
    comm: &Comm,
    set: &StringSet,
    cfg: &PartitionConfig,
    weights: Option<&[u32]>,
    truncate_to: Option<&[u32]>,
) -> StringSet {
    determine_splitters_for(comm, set, comm.size(), cfg, weights, truncate_to)
}

/// [`determine_splitters`] generalized to `k` target buckets: the sample
/// is still drawn and sorted over all of `comm`, but only `k − 1`
/// splitters are selected — MS2L's row exchange partitions the *global*
/// data into `k =` (grid columns) ranges this way.
pub fn determine_splitters_for(
    comm: &Comm,
    set: &StringSet,
    k: usize,
    cfg: &PartitionConfig,
    weights: Option<&[u32]>,
    truncate_to: Option<&[u32]>,
) -> StringSet {
    let v = cfg.v(comm.size());
    let mut rng = comm.rng();
    let sample = draw_sample(
        set,
        v,
        cfg.policy,
        weights,
        truncate_to,
        cfg.random_sampling.then_some(&mut rng),
    );
    // When sampling truncated strings (PDMS), comparing full local strings
    // against truncated splitters is safe since truncation preserves order
    // (splitters are distinguishing prefixes).
    select_k_splitters(
        comm,
        sample,
        k,
        cfg.central_sample_sort,
        cfg.mode,
        cfg.threads,
    )
}

/// Per-group splitter determination for the multi-level algorithms
/// (MSML): the sample never leaves the group.
///
/// Each PE of `group` draws a regular sample of its sorted `set`; the
/// samples are **gathered inside the group** (to the group's rank 0 via
/// the central path of [`select_k_splitters`]), sorted there, and the
/// `k − 1` order statistics broadcast back. Splitter-determination
/// traffic is thus `O(|group|·v)` sample strings confined to the group —
/// instead of the world-wide distributed sample sort of
/// [`determine_splitters_for`], which shuffles `O(p·v)` samples through
/// hQuick's `log p` hypercube rounds plus a global splitter gossip.
///
/// The oversampling default also scales with the fan-out `k` (the number
/// of ranges the splitters must cut the group's data into), not with the
/// group size: deeper levels partition into fewer, coarser ranges and
/// need proportionally fewer samples for the Theorem 2/3 balance bound.
pub fn determine_group_splitters(
    group: &Comm,
    set: &StringSet,
    k: usize,
    cfg: &PartitionConfig,
    weights: Option<&[u32]>,
    truncate_to: Option<&[u32]>,
) -> StringSet {
    let v = if cfg.oversampling == 0 {
        k.max(2)
    } else {
        cfg.oversampling
    };
    let mut rng = group.rng();
    let sample = draw_sample(
        set,
        v,
        cfg.policy,
        weights,
        truncate_to,
        cfg.random_sampling.then_some(&mut rng),
    );
    select_k_splitters(group, sample, k, true, cfg.mode, cfg.threads)
}

/// Full partitioning step: sample, sort sample, select splitters, compute
/// local bucket boundaries.
pub fn partition(
    comm: &Comm,
    set: &StringSet,
    cfg: &PartitionConfig,
    weights: Option<&[u32]>,
    truncate_to: Option<&[u32]>,
) -> Vec<usize> {
    let splitters = determine_splitters(comm, set, cfg, weights, truncate_to);
    if cfg.duplicate_tie_break {
        bucket_bounds_tie_break(set, &splitters)
    } else {
        bucket_bounds(set, &splitters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_net::runner::{run_spmd, RunConfig};
    use dss_strkit::sort::sort_with_lcp;
    use proptest::prelude::*;
    use rand::prelude::*;
    use std::time::Duration;

    fn cfg_run() -> RunConfig {
        RunConfig {
            recv_timeout: Duration::from_secs(30),
            ..RunConfig::default()
        }
    }

    fn sorted_set(rng: &mut StdRng, n: usize, max_len: usize) -> StringSet {
        let mut set = StringSet::new();
        for _ in 0..n {
            let len = rng.gen_range(0..=max_len);
            let s: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'f')).collect();
            set.push(&s);
        }
        let _ = sort_with_lcp(&mut set);
        set
    }

    #[test]
    fn string_sample_is_evenly_spaced() {
        let mut set = StringSet::new();
        for i in 0..100u32 {
            set.push(format!("{i:03}").as_bytes());
        }
        let sample = draw_sample(&set, 4, SamplingPolicy::Strings, None, None, None);
        assert_eq!(sample.len(), 4);
        assert_eq!(sample.get(0), b"019");
        assert_eq!(sample.get(3), b"079");
    }

    #[test]
    fn char_sample_tracks_char_mass() {
        // One huge string among tiny ones: character sampling must sample
        // inside/after the heavy region repeatedly.
        let mut set = StringSet::new();
        set.push(&[b'a'; 5]);
        set.push(&vec![b'b'; 1000]);
        set.push(&[b'c'; 5]);
        set.push(&[b'd'; 5]);
        let sample = draw_sample(&set, 3, SamplingPolicy::Chars, None, None, None);
        assert_eq!(sample.len(), 3);
        // All three char-rank targets fall within the heavy string's mass,
        // so the sampled strings start at or after it.
        assert!(sample.iter().all(|s| s[0] >= b'b'));
    }

    #[test]
    fn truncated_samples_are_cut() {
        let set = StringSet::from_strs(&["aaaa", "bbbb", "cccc"]);
        let trunc = vec![2u32, 2, 2];
        let sample = draw_sample(&set, 2, SamplingPolicy::Strings, None, Some(&trunc), None);
        for s in sample.iter() {
            assert_eq!(s.len(), 2);
        }
    }

    #[test]
    fn bounds_respect_splitters() {
        let set = StringSet::from_strs(&["a", "b", "b", "c", "d", "e"]);
        let splitters = StringSet::from_strs(&["b", "d"]);
        let bounds = bucket_bounds(&set, &splitters);
        // bucket 0: s ≤ "b" → a,b,b ; bucket 1: "b" < s ≤ "d" → c,d ; rest: e.
        assert_eq!(bounds, vec![0, 3, 5, 6]);
    }

    #[test]
    fn bounds_with_empty_set_and_empty_splitters() {
        let empty = StringSet::new();
        assert_eq!(
            bucket_bounds(&empty, &StringSet::from_strs(&["x"])),
            vec![0, 0, 0]
        );
        let set = StringSet::from_strs(&["a", "b"]);
        assert_eq!(bucket_bounds(&set, &StringSet::new()), vec![0, 2]);
    }

    /// End-to-end Theorem 2: with string-based sampling every bucket holds
    /// ≤ n/p + n/v strings.
    #[test]
    fn theorem2_string_bucket_bound() {
        let p = 4;
        let res = run_spmd(p, cfg_run(), |comm| {
            let mut rng = StdRng::seed_from_u64(100 + comm.rank() as u64);
            let set = sorted_set(&mut rng, 300, 8);
            let cfg = PartitionConfig {
                policy: SamplingPolicy::Strings,
                oversampling: 8,
                central_sample_sort: false,
                ..PartitionConfig::default()
            };
            let bounds = partition(comm, &set, &cfg, None, None);
            let sizes: Vec<usize> = bounds.windows(2).map(|w| w[1] - w[0]).collect();
            (set.len(), sizes)
        });
        let n: usize = res.values.iter().map(|(n, _)| n).sum();
        let v = 8;
        let bound = n / p + n / v;
        for dest in 0..p {
            let bucket: usize = res.values.iter().map(|(_, sizes)| sizes[dest]).sum();
            assert!(
                bucket <= bound,
                "bucket {dest} = {bucket} > n/p + n/v = {bound}"
            );
        }
    }

    /// End-to-end Theorem 3: with character-based sampling every bucket
    /// holds ≤ N/p + N/v + (p+v)·ℓ̂ characters.
    #[test]
    fn theorem3_char_bucket_bound() {
        let p = 4;
        let max_len = 40usize;
        let res = run_spmd(p, cfg_run(), |comm| {
            let mut rng = StdRng::seed_from_u64(7 + comm.rank() as u64);
            // Skewed lengths to stress the bound.
            let mut set = StringSet::new();
            for _ in 0..200 {
                let len = if rng.gen_bool(0.2) {
                    rng.gen_range(20..=max_len)
                } else {
                    rng.gen_range(0..5)
                };
                let s: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'e')).collect();
                set.push(&s);
            }
            let _ = sort_with_lcp(&mut set);
            let cfg = PartitionConfig {
                policy: SamplingPolicy::Chars,
                oversampling: 8,
                central_sample_sort: false,
                ..PartitionConfig::default()
            };
            let bounds = partition(comm, &set, &cfg, None, None);
            let chars: Vec<usize> = bounds
                .windows(2)
                .map(|w| (w[0]..w[1]).map(|i| set.get(i).len()).sum())
                .collect();
            (set.num_chars(), chars)
        });
        let total: usize = res.values.iter().map(|(n, _)| n).sum();
        let v = 8;
        let bound = total / p + total / v + (p + v) * max_len;
        for dest in 0..p {
            let bucket: usize = res.values.iter().map(|(_, c)| c[dest]).sum();
            assert!(
                bucket <= bound,
                "bucket {dest} = {bucket} chars > bound = {bound}"
            );
        }
    }

    #[test]
    fn central_and_distributed_splitters_both_partition() {
        for central in [false, true] {
            let res = run_spmd(3, cfg_run(), move |comm| {
                let mut rng = StdRng::seed_from_u64(31 + comm.rank() as u64);
                let set = sorted_set(&mut rng, 100, 6);
                let cfg = PartitionConfig {
                    policy: SamplingPolicy::Strings,
                    oversampling: 4,
                    central_sample_sort: central,
                    ..PartitionConfig::default()
                };
                let bounds = partition(comm, &set, &cfg, None, None);
                assert_eq!(bounds.len(), comm.size() + 1);
                assert_eq!(bounds[0], 0);
                assert_eq!(*bounds.last().expect("nonempty"), set.len());
                assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
                bounds
            });
            assert_eq!(res.values.len(), 3, "central={central}");
        }
    }

    #[test]
    fn splitters_are_identical_on_all_pes() {
        let res = run_spmd(4, cfg_run(), |comm| {
            let mut rng = StdRng::seed_from_u64(55 + comm.rank() as u64);
            let set = sorted_set(&mut rng, 64, 6);
            let sample = draw_sample(&set, 4, SamplingPolicy::Strings, None, None, None);
            let splitters = select_splitters(comm, sample, false, ExchangeMode::default(), 1);
            splitters.to_vecs()
        });
        for v in &res.values {
            assert_eq!(v, &res.values[0]);
            assert_eq!(v.len(), 3);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "splitters sorted");
        }
    }

    #[test]
    fn group_splitters_stay_inside_the_group() {
        // Two disjoint groups of 2 PEs with disjoint alphabets: each
        // group's splitters must be identical within the group and drawn
        // from that group's own data only.
        let res = run_spmd(4, cfg_run(), |comm| {
            let gid = comm.rank() / 2;
            let group = comm.split(gid as u64);
            let lead = if gid == 0 { b'a' } else { b'z' };
            let mut set = StringSet::new();
            for i in 0..50u32 {
                set.push(format!("{}{i:03}", lead as char).as_bytes());
            }
            let s =
                determine_group_splitters(&group, &set, 2, &PartitionConfig::default(), None, None);
            assert_eq!(s.len(), 1);
            s.to_vecs()
        });
        let v = &res.values;
        assert_eq!(v[0], v[1]);
        assert_eq!(v[2], v[3]);
        assert_eq!(v[0][0][0], b'a');
        assert_eq!(v[2][0][0], b'z');
    }

    #[test]
    fn group_splitters_handle_all_empty_groups() {
        // An all-empty group still gets exactly k − 1 (padded) splitters.
        let res = run_spmd(2, cfg_run(), |comm| {
            let set = StringSet::new();
            let s =
                determine_group_splitters(comm, &set, 3, &PartitionConfig::default(), None, None);
            s.len()
        });
        assert!(res.values.iter().all(|&n| n == 2));
    }

    #[test]
    fn tie_break_spreads_duplicate_runs() {
        // 90 copies of "dup" with splitters ["dup", "dup"]: the plain rule
        // dumps all 90 into bucket 0; tie breaking spreads them ~evenly
        // over the three buckets the equal splitters delimit.
        let set = StringSet::from_strs(&["dup"; 90]);
        let splitters = StringSet::from_strs(&["dup", "dup"]);
        let plain = bucket_bounds(&set, &splitters);
        assert_eq!(plain, vec![0, 90, 90, 90]);
        let spread = bucket_bounds_tie_break(&set, &splitters);
        assert_eq!(spread, vec![0, 30, 60, 90]);
    }

    #[test]
    fn tie_break_is_identity_when_nothing_equals_a_splitter() {
        let set = StringSet::from_strs(&["a", "b", "b", "c", "d", "e"]);
        let splitters = StringSet::from_strs(&["bb", "dd"]);
        assert_eq!(
            bucket_bounds_tie_break(&set, &splitters),
            bucket_bounds(&set, &splitters)
        );
    }

    #[test]
    fn tie_break_splits_runs_at_single_splitters_too() {
        // Even a unique splitter halves the run of strings equal to it.
        let set = StringSet::from_strs(&["a", "b", "b", "c", "d", "e"]);
        let splitters = StringSet::from_strs(&["b", "d"]);
        assert_eq!(bucket_bounds_tie_break(&set, &splitters), vec![0, 2, 4, 6]);
    }

    #[test]
    fn tie_break_splits_mixed_runs_only_at_equal_values() {
        // Run of "m" (4 copies) equal to the single splitter "m":
        // spread halves it; other strings stay put.
        let set = StringSet::from_strs(&["a", "m", "m", "m", "m", "z"]);
        let splitters = StringSet::from_strs(&["m"]);
        let spread = bucket_bounds_tie_break(&set, &splitters);
        // run = [1,5); parts = 2 -> boundary at 1 + 4/2 = 3.
        assert_eq!(spread, vec![0, 3, 6]);
    }

    #[test]
    fn random_sampling_still_partitions_correctly() {
        let res = run_spmd(4, cfg_run(), |comm| {
            let mut rng = StdRng::seed_from_u64(77 + comm.rank() as u64);
            let set = sorted_set(&mut rng, 120, 8);
            let cfg = PartitionConfig {
                random_sampling: true,
                oversampling: 6,
                ..PartitionConfig::default()
            };
            let bounds = partition(comm, &set, &cfg, None, None);
            assert_eq!(bounds[0], 0);
            assert_eq!(*bounds.last().expect("nonempty"), set.len());
            assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
            set.len()
        });
        assert_eq!(res.values.iter().sum::<usize>(), 480);
    }

    #[test]
    fn random_sampling_is_deterministic_per_seed() {
        let run = || {
            run_spmd(3, cfg_run(), |comm| {
                let mut rng = StdRng::seed_from_u64(5 + comm.rank() as u64);
                let set = sorted_set(&mut rng, 60, 6);
                let cfg = PartitionConfig {
                    random_sampling: true,
                    ..PartitionConfig::default()
                };
                partition(comm, &set, &cfg, None, None)
            })
            .values
        };
        assert_eq!(run(), run());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn tie_break_bounds_remain_valid(
            mut strs in proptest::collection::vec(
                proptest::collection::vec(b'a'..=b'b', 0..3), 0..60),
            mut splits in proptest::collection::vec(
                proptest::collection::vec(b'a'..=b'b', 0..3), 0..5)) {
            strs.sort();
            splits.sort();
            let set = StringSet::from_iter_bytes(strs.iter().map(|s| s.as_slice()));
            let splitters = StringSet::from_iter_bytes(splits.iter().map(|s| s.as_slice()));
            let bounds = bucket_bounds_tie_break(&set, &splitters);
            prop_assert_eq!(bounds[0], 0);
            prop_assert_eq!(*bounds.last().expect("nonempty"), set.len());
            prop_assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
            // Weakened bucket invariant under tie breaking: strings may
            // sit in any bucket whose bounding splitters they equal.
            for (b, w) in bounds.windows(2).enumerate() {
                for i in w[0]..w[1] {
                    let s = set.get(i);
                    if b > 0 {
                        prop_assert!(s >= splitters.get(b - 1));
                    }
                    if b < splitters.len() {
                        prop_assert!(s <= splitters.get(b));
                    }
                }
            }
        }


        #[test]
        fn bucket_bounds_cover_everything(mut strs in proptest::collection::vec(
            proptest::collection::vec(b'a'..=b'd', 0..6), 0..80),
            mut splits in proptest::collection::vec(
                proptest::collection::vec(b'a'..=b'd', 0..6), 0..6)) {
            strs.sort();
            splits.sort();
            let set = StringSet::from_iter_bytes(strs.iter().map(|s| s.as_slice()));
            let splitters = StringSet::from_iter_bytes(splits.iter().map(|s| s.as_slice()));
            let bounds = bucket_bounds(&set, &splitters);
            prop_assert_eq!(bounds[0], 0);
            prop_assert_eq!(*bounds.last().expect("nonempty"), set.len());
            prop_assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
            // Every string is in the right bucket.
            for (b, w) in bounds.windows(2).enumerate() {
                for i in w[0]..w[1] {
                    let s = set.get(i);
                    if b > 0 {
                        prop_assert!(s > splitters.get(b - 1));
                    }
                    if b < splitters.len() {
                        prop_assert!(s <= splitters.get(b));
                    }
                }
            }
        }
    }
}
