//! The exchange engine: step 3 of the merge-based algorithms — the
//! personalized all-to-all string exchange with the paper's LCP
//! compression — plus the shared "merge the received runs" step 4.
//!
//! [`StringAllToAll`] is the single codec-aware all-to-all implementation
//! of the crate. It owns the whole data-movement pipeline:
//!
//! * **splitter classification** — bucket bounds over the sorted local
//!   set, with optional duplicate tie-breaking (§VIII);
//! * **per-destination encoding** — plain, LCP-compressed or LCP-delta
//!   wire format, each destination buffer reserved to its exact encoded
//!   size so encoding never reallocates;
//! * **origin tagging** — PDMS-style origin tags ride along as a
//!   subslice, no per-bucket copy;
//! * **pooled decode scratch** — received runs are decoded into a ring of
//!   [`DecodedRun`]s owned by the engine, so repeated exchanges through
//!   the same engine (MS2L's two levels, hQuick's placement, benchmark
//!   loops) reach steady state with near-zero decode-side allocations.
//!
//! The engine is topology-agnostic: it exchanges over whatever
//! communicator it is handed — the world communicator for the
//! single-level algorithms, a row or column communicator of a
//! [`dss_net::GridComm`] for the two-level ones. Because every bucket is
//! a contiguous slice of the *sorted* local set, its run-local LCP array
//! is just the corresponding slice of the local LCP array (first entry
//! zeroed); LCP compression then transmits each string as `(lcp, suffix)`
//! — repeated prefixes cross the wire exactly once (Fig. 2, step 3).
//!
//! ## Exchange modes
//!
//! Every data-movement entry point runs in one of two [`ExchangeMode`]s:
//!
//! * [`ExchangeMode::Blocking`] — encode every bucket, run one
//!   [`Comm::alltoallv`], then decode (and merge) after the last byte has
//!   arrived. The four pipeline stages serialize.
//! * [`ExchangeMode::Pipelined`] — post all receives up front
//!   ([`Comm::begin_alltoallv`]), encode destination buckets one at a
//!   time and ship each the moment it is ready, and decode (+ merge, for
//!   the fused [`StringAllToAll::exchange_merge_bounds`]) every arriving
//!   run while later sends are still in flight. Encode, transfer, decode
//!   and merge overlap; bytes, messages and latency rounds are accounted
//!   identically to the blocking path, and the output (including merged
//!   LCP arrays and origin tags) is byte-identical.

use crate::output::SortedRun;
use crate::partition::{bucket_bounds, bucket_bounds_tie_break};
use dss_codec::wire::{self, DecodedRun};
use dss_net::trace::{self, cat};
use dss_net::Comm;
use dss_strkit::lcp::lcp_compare;
use dss_strkit::losertree::{parallel_lcp_merge_into, parallel_plain_merge_into, MergeRun};
use dss_strkit::{StrRef, StringSet};
use std::sync::OnceLock;

/// How [`StringAllToAll`] moves its buckets (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeMode {
    /// One blocking all-to-all; encode → transfer → decode → merge run
    /// strictly in sequence.
    Blocking,
    /// Non-blocking runtime underneath; encode/transfer/decode/merge
    /// overlap, with identical output and identical byte/message/round
    /// accounting.
    Pipelined,
}

/// Parses a `DSS_EXCHANGE_MODE` value: `blocking`/`pipelined`
/// (case-insensitive) map to their mode, `None` (unset) defaults to
/// [`ExchangeMode::Blocking`], and anything else **panics** with the
/// offending value — a typo like `DSS_EXCHANGE_MODE=piplined` must not
/// silently run the blocking path while CI believes it covered the
/// pipelined one.
pub fn parse_exchange_mode(raw: Option<&str>) -> ExchangeMode {
    match raw {
        None => ExchangeMode::Blocking,
        Some(v) if v.eq_ignore_ascii_case("blocking") => ExchangeMode::Blocking,
        Some(v) if v.eq_ignore_ascii_case("pipelined") => ExchangeMode::Pipelined,
        Some(v) => panic!("DSS_EXCHANGE_MODE must be 'blocking' or 'pipelined', got '{v}'"),
    }
}

impl ExchangeMode {
    /// The process-wide default mode: `DSS_EXCHANGE_MODE=pipelined` (or
    /// `blocking`, the unset default), read once and cached. This is the
    /// knob CI uses to force the whole test matrix through either path;
    /// unrecognized values panic (see [`parse_exchange_mode`]).
    pub fn from_env() -> ExchangeMode {
        static MODE: OnceLock<ExchangeMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("DSS_EXCHANGE_MODE") {
            Ok(v) => parse_exchange_mode(Some(&v)),
            Err(std::env::VarError::NotPresent) => parse_exchange_mode(None),
            Err(e) => panic!("DSS_EXCHANGE_MODE must be valid unicode: {e}"),
        })
    }

    /// Snapshot label (`"blocking"` / `"pipelined"`).
    pub fn label(&self) -> &'static str {
        match self {
            ExchangeMode::Blocking => "blocking",
            ExchangeMode::Pipelined => "pipelined",
        }
    }
}

impl Default for ExchangeMode {
    /// [`ExchangeMode::from_env`], so every config that derives `Default`
    /// honors the `DSS_EXCHANGE_MODE` knob.
    fn default() -> Self {
        ExchangeMode::from_env()
    }
}

/// Wire format of the exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangeCodec {
    /// Full strings, no LCP data (FKmerge, MS-simple, hQuick).
    Plain,
    /// First string full, rest as (lcp, suffix) — Algorithm MS.
    #[default]
    LcpCompressed,
    /// Like `LcpCompressed` with difference-coded LCP values (§VI-B).
    LcpDelta,
    /// Per-destination selection: each bucket ships in whichever of the
    /// three fixed formats encodes it smallest (exact sizes from one pass
    /// over data the classifier already touched, ties to the simpler
    /// codec), behind a 1-byte format tag. Short/low-LCP buckets stop
    /// paying the LCP-header overhead; long-LCP buckets keep the prefix
    /// compression. Decoded runs always carry exact run-local LCPs (they
    /// are recomputed after a plain-tagged decode), so downstream LCP
    /// merges — and the output — are byte-identical to the fixed codecs'.
    Auto,
}

impl ExchangeCodec {
    /// The codec an LCP-capable sorter config resolves to: [`Self::Auto`]
    /// when per-destination selection is on (it overrides `delta_lcps`),
    /// else the fixed LCP flavor the `delta_lcps` knob names.
    pub fn for_lcp_config(delta_lcps: bool, auto_codec: bool) -> Self {
        if auto_codec {
            ExchangeCodec::Auto
        } else if delta_lcps {
            ExchangeCodec::LcpDelta
        } else {
            ExchangeCodec::LcpCompressed
        }
    }
}

/// Wire tags of [`ExchangeCodec::Auto`] messages (first byte of the
/// buffer, ahead of the self-delimiting run formats of `dss_codec::wire`,
/// which carry no format discriminator of their own).
const AUTO_TAG_PLAIN: u8 = 0;
const AUTO_TAG_LCP: u8 = 1;
const AUTO_TAG_DELTA: u8 = 2;

/// Picks the cheapest format for one bucket from its exact encoded sizes;
/// ties prefer the simpler codec (plain over LCP-headed, raw LCPs over
/// delta-coded).
pub(crate) fn auto_pick(lens: wire::EncodedLens) -> ExchangeCodec {
    if lens.plain <= lens.lcp && lens.plain <= lens.lcp_delta {
        ExchangeCodec::Plain
    } else if lens.lcp <= lens.lcp_delta {
        ExchangeCodec::LcpCompressed
    } else {
        ExchangeCodec::LcpDelta
    }
}

/// Rebuilds the exact run-local LCP array of a plain-decoded run, so a
/// plain-tagged [`ExchangeCodec::Auto`] arrival feeds the LCP merges the
/// same values an LCP-tagged one would have carried on the wire.
fn recompute_run_lcps(run: &mut DecodedRun) {
    for i in 1..run.bounds.len() {
        let (po, pl) = run.bounds[i - 1];
        let (o, l) = run.bounds[i];
        run.lcps[i] = dss_strkit::lcp::lcp(&run.data[po..po + pl], &run.data[o..o + l]);
    }
    run.has_lcps = true;
}

/// What one exchange ships: the sorted local set plus its side arrays.
pub struct ExchangePayload<'a> {
    /// Sorted local set.
    pub set: &'a StringSet,
    /// Its LCP array (ignored by [`ExchangeCodec::Plain`]).
    pub lcps: &'a [u32],
    /// Per-string origin tags to ship along (PDMS).
    pub origins: Option<&'a [u64]>,
    /// Per-string transmit lengths (PDMS: approximate distinguishing
    /// prefixes). `None` sends full strings.
    pub truncate: Option<&'a [u32]>,
}

impl<'a> ExchangePayload<'a> {
    fn send_len(&self, i: usize) -> usize {
        let full = self.set.get(i).len();
        match self.truncate {
            Some(t) => (t[i] as usize).min(full),
            None => full,
        }
    }
}

/// The codec-aware personalized all-to-all engine (see module docs).
///
/// One engine instance can serve any number of exchanges over any
/// communicators; its scratch buffers (encode-side run-local LCPs, bucket
/// bounds, decode-side [`DecodedRun`] ring) are grown once and reused.
pub struct StringAllToAll {
    codec: ExchangeCodec,
    mode: ExchangeMode,
    /// Merge threads for the fused exchange+merge entry points (routes
    /// the k-way merges through the range-split parallel trees).
    threads: usize,
    /// Run-local LCP scratch, reused across destinations.
    run_lcps: Vec<u32>,
    /// Pooled decode scratch ring, indexed by source PE.
    runs: Vec<DecodedRun>,
}

impl StringAllToAll {
    /// Engine with the given wire codec and the process-default
    /// [`ExchangeMode`] (the `DSS_EXCHANGE_MODE` knob). Merge threads
    /// default to the `DSS_THREADS` knob.
    pub fn new(codec: ExchangeCodec) -> Self {
        Self::with_mode(codec, ExchangeMode::default())
    }

    /// Engine with an explicit exchange mode (merge threads still default
    /// to the `DSS_THREADS` knob).
    pub fn with_mode(codec: ExchangeCodec, mode: ExchangeMode) -> Self {
        Self {
            codec,
            mode,
            threads: dss_strkit::sort::threads_from_env(),
            run_lcps: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// Sets the number of threads the fused merge paths use (the
    /// range-split parallel loser trees; output stays byte-identical for
    /// every thread count).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be positive, got 0");
        self.threads = threads;
        self
    }

    /// The wire codec this engine encodes with.
    pub fn codec(&self) -> ExchangeCodec {
        self.codec
    }

    /// The exchange mode this engine moves data with.
    pub fn mode(&self) -> ExchangeMode {
        self.mode
    }

    /// The merge thread count of the fused exchange+merge entry points.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Classifies the sorted payload against `splitters` (`comm.size() − 1`
    /// of them, identical on every PE; `tie_break` spreads runs equal to a
    /// splitter per §VIII) and exchanges the buckets: bucket `i` travels
    /// to communicator rank `i`. Returns the decoded runs indexed by
    /// source rank; each run is sorted and carries its exact LCP array
    /// when an LCP codec is used.
    pub fn exchange_by_splitters(
        &mut self,
        comm: &Comm,
        payload: &ExchangePayload<'_>,
        splitters: &StringSet,
        tie_break: bool,
    ) -> &[DecodedRun] {
        let bounds = if tie_break {
            bucket_bounds_tie_break(payload.set, splitters)
        } else {
            bucket_bounds(payload.set, splitters)
        };
        self.exchange_bounds(comm, payload, &bounds)
    }

    /// Exchanges pre-computed buckets: `bounds[i]..bounds[i+1]` of the
    /// sorted payload travels to communicator rank `i`
    /// (`bounds.len() == comm.size() + 1`).
    pub fn exchange_bounds(
        &mut self,
        comm: &Comm,
        payload: &ExchangePayload<'_>,
        bounds: &[usize],
    ) -> &[DecodedRun] {
        let p = comm.size();
        debug_assert_eq!(bounds.len(), p + 1);
        if !matches!(self.codec, ExchangeCodec::Plain) {
            debug_assert_eq!(payload.lcps.len(), payload.set.len());
        }
        match self.mode {
            ExchangeMode::Blocking => {
                let mut msgs: Vec<Vec<u8>> = Vec::with_capacity(p);
                for dest in 0..p {
                    let (lo, hi) = (bounds[dest], bounds[dest + 1]);
                    msgs.push(self.encode_bucket(payload, lo, hi));
                }
                let received = {
                    // The blocking send window is the alltoallv itself;
                    // decodes start strictly after it, so the overlap
                    // ratio of this mode is exactly zero by construction.
                    let _w = trace::span(cat::SEND_WINDOW, "blocking");
                    comm.alltoallv(msgs)
                };
                self.decode_received(&received)
            }
            ExchangeMode::Pipelined => {
                self.ensure_runs(p);
                let mut ex = comm.begin_alltoallv();
                let r = comm.rank();
                {
                    // The pipelined send window spans the whole ship loop;
                    // decodes of early arrivals land inside it — that is
                    // the overlap the ratio measures.
                    let _w = trace::span(cat::SEND_WINDOW, "pipelined");
                    for i in 0..p {
                        let dest = (r + i) % p;
                        let buf = self.encode_bucket(payload, bounds[dest], bounds[dest + 1]);
                        ex.send(comm, dest, buf);
                        // Decode whatever has already landed while the
                        // remaining buckets are still being encoded/sent.
                        while let Some((src, buf)) = ex.poll_any(comm) {
                            self.decode_one(src, &buf);
                        }
                    }
                }
                while let Some((src, buf)) = ex.recv_any(comm) {
                    self.decode_one(src, &buf);
                }
                ex.finish(comm);
                &self.runs[..p]
            }
        }
    }

    /// Classifies, exchanges **and merges** in one call: the pipelined
    /// counterpart of `exchange_by_splitters` + `merge_received_*`, and
    /// the entry point every merge-based algorithm routes through.
    ///
    /// LCP codecs merge with the LCP loser tree (the result carries its
    /// exact LCP array); [`ExchangeCodec::Plain`] merges with the plain
    /// tree. In [`ExchangeMode::Blocking`] the phases run in sequence and
    /// the merge is attributed to `merge_phase` (when given) exactly as
    /// the unfused path would; in [`ExchangeMode::Pipelined`] arriving
    /// runs are decoded and merged *while later sends are still in
    /// flight*, so only the non-overlapped tail merge after the last
    /// arrival lands in `merge_phase`. Both modes return byte-identical
    /// results.
    pub fn exchange_merge_by_splitters(
        &mut self,
        comm: &Comm,
        payload: &ExchangePayload<'_>,
        splitters: &StringSet,
        tie_break: bool,
        merge_phase: Option<&str>,
    ) -> SortedRun {
        let bounds = if tie_break {
            bucket_bounds_tie_break(payload.set, splitters)
        } else {
            bucket_bounds(payload.set, splitters)
        };
        self.exchange_merge_bounds(comm, payload, &bounds, merge_phase)
    }

    /// [`Self::exchange_merge_by_splitters`] over pre-computed buckets.
    pub fn exchange_merge_bounds(
        &mut self,
        comm: &Comm,
        payload: &ExchangePayload<'_>,
        bounds: &[usize],
        merge_phase: Option<&str>,
    ) -> SortedRun {
        let lcp_merge = !matches!(self.codec, ExchangeCodec::Plain);
        match self.mode {
            ExchangeMode::Blocking => {
                let threads = self.threads;
                let runs = self.exchange_bounds(comm, payload, bounds);
                if let Some(phase) = merge_phase {
                    comm.set_phase(phase);
                }
                if lcp_merge {
                    merge_received_lcp(runs, threads)
                } else {
                    merge_received_plain(runs, threads)
                }
            }
            ExchangeMode::Pipelined => {
                self.exchange_merge_pipelined(comm, payload, bounds, merge_phase)
            }
        }
    }

    /// The overlapped path: receives posted up front, buckets encoded and
    /// shipped one at a time, arrivals decoded and incrementally merged
    /// between sends. Incremental merges combine only *adjacent* source
    /// ranges of equal width (a binary-counter cascade) and move handles
    /// only — characters stay in the decoded runs' arenas until
    /// [`SegmentAccumulator::finish`] copies each exactly once into the
    /// pre-sized output arena. Because every merge resolves equal strings
    /// to the lower source range — the loser trees' stream-index
    /// tie-break — the output reproduces the blocking k-way merge
    /// exactly, duplicates included.
    fn exchange_merge_pipelined(
        &mut self,
        comm: &Comm,
        payload: &ExchangePayload<'_>,
        bounds: &[usize],
        merge_phase: Option<&str>,
    ) -> SortedRun {
        let p = comm.size();
        let lcp_merge = !matches!(self.codec, ExchangeCodec::Plain);
        self.ensure_runs(p);
        let mut acc = SegmentAccumulator::new(lcp_merge);
        let mut ex = comm.begin_alltoallv();
        let r = comm.rank();
        {
            let _w = trace::span(cat::SEND_WINDOW, "pipelined");
            for i in 0..p {
                let dest = (r + i) % p;
                let buf = self.encode_bucket(payload, bounds[dest], bounds[dest + 1]);
                ex.send(comm, dest, buf);
                while let Some((src, buf)) = ex.poll_any(comm) {
                    self.decode_one(src, &buf);
                    acc.on_arrival(src, &self.runs);
                }
            }
        }
        while let Some((src, buf)) = ex.recv_any(comm) {
            self.decode_one(src, &buf);
            acc.on_arrival(src, &self.runs);
        }
        ex.finish(comm);
        if let Some(phase) = merge_phase {
            comm.set_phase(phase);
        }
        acc.finish(&self.runs)
    }

    /// Plain scatter: string `i` of (unsorted) `set` travels to
    /// communicator rank `dest_of[i]`, preserving relative order within
    /// each destination. hQuick's random placement step. Plain codec only
    /// — an arbitrary assignment has no sortedness to LCP-compress.
    pub fn scatter_plain(
        &mut self,
        comm: &Comm,
        set: &StringSet,
        dest_of: &[usize],
    ) -> &[DecodedRun] {
        debug_assert_eq!(dest_of.len(), set.len());
        debug_assert!(
            matches!(self.codec, ExchangeCodec::Plain),
            "scatter is plain-only"
        );
        let p = comm.size();
        // Bucket the indices per destination in one pass.
        let mut idxs: Vec<Vec<usize>> = vec![Vec::new(); p];
        for (i, &d) in dest_of.iter().enumerate() {
            idxs[d].push(i);
        }
        let encode = |list: &[usize]| -> Vec<u8> {
            let _g = trace::span_args(
                cat::ENCODE,
                "encode",
                [("strings", list.len() as u64), ("", 0)],
            );
            let strings = || ExactIter::new(list.iter().map(|&i| set.get(i)), list.len());
            let exact = wire::encoded_len_plain(strings(), None);
            let mut buf = Vec::with_capacity(exact);
            wire::encode_plain(strings(), None, &mut buf);
            debug_assert_eq!(buf.len(), exact);
            dss_strkit::copyvol::record_copied(buf.len());
            buf
        };
        match self.mode {
            ExchangeMode::Blocking => {
                let msgs: Vec<Vec<u8>> = idxs.iter().map(|list| encode(list)).collect();
                let received = {
                    let _w = trace::span(cat::SEND_WINDOW, "blocking");
                    comm.alltoallv(msgs)
                };
                self.decode_received(&received)
            }
            ExchangeMode::Pipelined => {
                self.ensure_runs(p);
                let mut ex = comm.begin_alltoallv();
                let r = comm.rank();
                {
                    let _w = trace::span(cat::SEND_WINDOW, "pipelined");
                    for i in 0..p {
                        let dest = (r + i) % p;
                        ex.send(comm, dest, encode(&idxs[dest]));
                        while let Some((src, buf)) = ex.poll_any(comm) {
                            self.decode_one(src, &buf);
                        }
                    }
                }
                while let Some((src, buf)) = ex.recv_any(comm) {
                    self.decode_one(src, &buf);
                }
                ex.finish(comm);
                &self.runs[..p]
            }
        }
    }

    /// Serializes one bucket with the engine codec, reserved to its exact
    /// encoded size so encoding never reallocates mid-run.
    fn encode_bucket(&mut self, payload: &ExchangePayload<'_>, lo: usize, hi: usize) -> Vec<u8> {
        let _g = trace::span_args(
            cat::ENCODE,
            "encode",
            [("strings", (hi - lo) as u64), ("", 0)],
        );
        // Origin tags ride along as a subslice — no per-bucket copy.
        let origins_slice: Option<&[u64]> = payload.origins.map(|o| &o[lo..hi]);
        let strings = || {
            ExactIter::new(
                (lo..hi).map(|i| &payload.set.get(i)[..payload.send_len(i)]),
                hi - lo,
            )
        };
        match self.codec {
            ExchangeCodec::Plain => {
                let exact = wire::encoded_len_plain(strings(), origins_slice);
                let mut buf = Vec::with_capacity(exact);
                wire::encode_plain(strings(), origins_slice, &mut buf);
                debug_assert_eq!(buf.len(), exact);
                dss_strkit::copyvol::record_copied(buf.len());
                buf
            }
            ExchangeCodec::LcpCompressed | ExchangeCodec::LcpDelta => {
                self.fill_run_lcps(payload, lo, hi);
                let delta = self.codec == ExchangeCodec::LcpDelta;
                let exact = wire::encoded_len_lcp(strings(), &self.run_lcps, origins_slice, delta);
                let mut buf = Vec::with_capacity(exact);
                wire::encode_lcp(strings(), &self.run_lcps, origins_slice, delta, &mut buf);
                debug_assert_eq!(buf.len(), exact);
                dss_strkit::copyvol::record_copied(buf.len());
                buf
            }
            ExchangeCodec::Auto => {
                self.fill_run_lcps(payload, lo, hi);
                let lens = wire::encoded_len_all(strings(), &self.run_lcps, origins_slice);
                let pick = auto_pick(lens);
                let (tag, exact) = match pick {
                    ExchangeCodec::Plain => (AUTO_TAG_PLAIN, lens.plain),
                    ExchangeCodec::LcpCompressed => (AUTO_TAG_LCP, lens.lcp),
                    _ => (AUTO_TAG_DELTA, lens.lcp_delta),
                };
                let mut buf = Vec::with_capacity(1 + exact);
                buf.push(tag);
                match pick {
                    ExchangeCodec::Plain => wire::encode_plain(strings(), origins_slice, &mut buf),
                    _ => wire::encode_lcp(
                        strings(),
                        &self.run_lcps,
                        origins_slice,
                        tag == AUTO_TAG_DELTA,
                        &mut buf,
                    ),
                }
                debug_assert_eq!(buf.len(), 1 + exact);
                dss_strkit::copyvol::record_copied(buf.len());
                buf
            }
        }
    }

    /// Run-local LCPs of bucket `[lo, hi)`: slice of the global array,
    /// truncated to the transmitted lengths, first entry 0.
    fn fill_run_lcps(&mut self, payload: &ExchangePayload<'_>, lo: usize, hi: usize) {
        self.run_lcps.clear();
        self.run_lcps.extend((lo..hi).enumerate().map(|(k, i)| {
            if k == 0 {
                0
            } else {
                payload.lcps[i]
                    .min(payload.send_len(i - 1) as u32)
                    .min(payload.send_len(i) as u32)
            }
        }));
    }

    /// Grows the pooled scratch ring to its high-water mark.
    fn ensure_runs(&mut self, p: usize) {
        if self.runs.len() < p {
            self.runs.resize_with(p, DecodedRun::default);
        }
    }

    /// Decodes one received buffer into ring entry `src`.
    fn decode_one(&mut self, src: usize, buf: &[u8]) {
        let _g = trace::span_args(
            cat::DECODE,
            "decode",
            [("src", src as u64), ("bytes", buf.len() as u64)],
        );
        let run = &mut self.runs[src];
        let mut pos = 0;
        match self.codec {
            ExchangeCodec::Plain => wire::decode_plain_into(buf, &mut pos, run),
            ExchangeCodec::LcpCompressed | ExchangeCodec::LcpDelta => {
                wire::decode_lcp_into(buf, &mut pos, run)
            }
            ExchangeCodec::Auto => {
                pos = 1;
                match buf.first().copied() {
                    Some(AUTO_TAG_PLAIN) => {
                        wire::decode_plain_into(buf, &mut pos, run).map(|()| {
                            // The LCP values a fixed codec would have
                            // shipped; keeps the merge inputs — and thus
                            // the output — independent of the tag choice.
                            recompute_run_lcps(run);
                        })
                    }
                    Some(AUTO_TAG_LCP | AUTO_TAG_DELTA) => {
                        wire::decode_lcp_into(buf, &mut pos, run)
                    }
                    _ => None,
                }
            }
        }
        .expect("well-formed exchange run");
        debug_assert_eq!(pos, buf.len());
        dss_strkit::copyvol::record_copied(run.data.len());
    }

    /// Decodes the received buffers into the pooled scratch ring, growing
    /// it only on its high-water mark.
    fn decode_received(&mut self, received: &[Vec<u8>]) -> &[DecodedRun] {
        let p = received.len();
        self.ensure_runs(p);
        for (src, buf) in received.iter().enumerate() {
            self.decode_one(src, buf);
        }
        &self.runs[..p]
    }
}

/// Incremental-merge state of one pipelined exchange: every decoded
/// source run becomes a leaf segment, adjacent segments of equal width
/// merge as soon as both are available (a binary-counter cascade, so
/// total merge work stays at the k-way tree's `O(n log p)`), and
/// [`SegmentAccumulator::finish`] folds whatever remains and materializes
/// the output.
///
/// Merged segments are **ropes**, not copies: a merge produces only the
/// output *order* — `(source rank, index)` pairs into the engine's
/// decoded-run ring — plus the exact merged LCP array. The character
/// payload stays in the runs' arenas untouched through every cascade
/// level and is copied exactly once, at [`SegmentAccumulator::finish`],
/// into an output arena pre-sized to the exact total. The old cascade
/// re-copied every string once per level (`O(n log p)` chars); the rope
/// cascade moves `O(n log p)` *handles* but `O(n)` chars.
///
/// Segments always cover disjoint source-rank ranges and merges only
/// ever combine *adjacent* ranges, the lower range on the left with
/// equal strings resolved to the left. Since the loser trees of the
/// blocking path break ties by stream index — and stable two-way merges
/// of adjacent ranges compose associatively under that rule — the
/// accumulated sequence (strings, LCP array and origin tags alike) is
/// exactly what the blocking path's single k-way merge over all `p` runs
/// produces, duplicates included.
struct SegmentAccumulator {
    lcp_merge: bool,
    /// Available segments, ordered by `lo`, ranges pairwise disjoint.
    segs: Vec<Segment>,
}

struct Segment {
    /// Covered source-rank range `[lo, hi)`.
    lo: usize,
    hi: usize,
    data: SegData,
}

enum SegData {
    /// The decoded run of source `lo`, still in the engine's ring.
    Leaf,
    /// Merge result of two or more adjacent sources: the output order
    /// over the (unmoved) decoded runs, not a copy of their bytes.
    Rope {
        /// Output position `k` holds string `idx` of `runs[src]`.
        order: Vec<(u32, u32)>,
        /// Exact LCP array of the merged sequence, first entry 0 (left
        /// empty for plain merges).
        lcps: Vec<u32>,
    },
}

/// Read-only merge view of one segment: a leaf resolves through the
/// decoded run directly, a rope through its `(src, idx)` order.
struct SegView<'a> {
    runs: &'a [DecodedRun],
    kind: SegViewKind<'a>,
}

enum SegViewKind<'a> {
    Leaf {
        src: u32,
    },
    Rope {
        order: &'a [(u32, u32)],
        lcps: &'a [u32],
    },
}

impl<'a> SegView<'a> {
    fn new(seg: &'a Segment, runs: &'a [DecodedRun]) -> Self {
        let kind = match &seg.data {
            SegData::Leaf => SegViewKind::Leaf {
                src: u32::try_from(seg.lo).expect("rank fits u32"),
            },
            SegData::Rope { order, lcps } => SegViewKind::Rope { order, lcps },
        };
        Self { runs, kind }
    }

    fn len(&self) -> usize {
        match &self.kind {
            SegViewKind::Leaf { src } => self.runs[*src as usize].len(),
            SegViewKind::Rope { order, .. } => order.len(),
        }
    }

    /// `(src, idx)` of output position `i`.
    fn item(&self, i: usize) -> (u32, u32) {
        match &self.kind {
            SegViewKind::Leaf { src } => (*src, i as u32),
            SegViewKind::Rope { order, .. } => order[i],
        }
    }

    fn bytes(&self, i: usize) -> &'a [u8] {
        let (src, idx) = self.item(i);
        let run = &self.runs[src as usize];
        let (off, len) = run.bounds[idx as usize];
        &run.data[off..off + len]
    }

    /// LCP of position `i` with position `i - 1` (0 at position 0).
    fn lcp(&self, i: usize) -> u32 {
        match &self.kind {
            SegViewKind::Leaf { src } => self.runs[*src as usize].lcps[i],
            SegViewKind::Rope { lcps, .. } => lcps[i],
        }
    }
}

impl SegmentAccumulator {
    fn new(lcp_merge: bool) -> Self {
        Self {
            lcp_merge,
            segs: Vec::new(),
        }
    }

    /// Registers the freshly decoded run of `src` and performs every
    /// merge the equal-width cascade allows before returning to the wait
    /// loop.
    fn on_arrival(&mut self, src: usize, runs: &[DecodedRun]) {
        let at = self.segs.partition_point(|s| s.lo < src);
        debug_assert!(
            at == self.segs.len() || self.segs[at].lo != src,
            "duplicate arrival"
        );
        self.segs.insert(
            at,
            Segment {
                lo: src,
                hi: src + 1,
                data: SegData::Leaf,
            },
        );
        loop {
            let adjacent_equal = (0..self.segs.len().saturating_sub(1)).find(|&i| {
                let (a, b) = (&self.segs[i], &self.segs[i + 1]);
                a.hi == b.lo && a.hi - a.lo == b.hi - b.lo
            });
            let Some(i) = adjacent_equal else { break };
            let data = merge_pair(&self.segs[i], &self.segs[i + 1], runs, self.lcp_merge);
            let (lo, hi) = (self.segs[i].lo, self.segs[i + 1].hi);
            self.segs.splice(i..i + 2, [Segment { lo, hi, data }]);
        }
    }

    /// Folds the remaining segments into one rope and materializes the
    /// final [`SortedRun`] — the only point where character payload is
    /// copied, once, into an arena pre-sized to the exact totals.
    fn finish(mut self, runs: &[DecodedRun]) -> SortedRun {
        let _g = trace::span(cat::MERGE, "materialize");
        // Leftover segments have strictly decreasing widths (binary
        // counter), so folding right-to-left always merges the two
        // smallest first and keeps total handle movement at O(n log p).
        while self.segs.len() > 1 {
            let b = self.segs.pop().expect("len > 1");
            let a = self.segs.pop().expect("len > 1");
            debug_assert_eq!(a.hi, b.lo, "segments cover adjacent ranges");
            let data = merge_pair(&a, &b, runs, self.lcp_merge);
            self.segs.push(Segment {
                lo: a.lo,
                hi: b.hi,
                data,
            });
        }
        let Some(seg) = self.segs.pop() else {
            return SortedRun {
                set: StringSet::new(),
                lcps: self.lcp_merge.then(Vec::new),
                origins: Some(Vec::new()),
                local_store: None,
            };
        };
        let total_chars: usize = (seg.lo..seg.hi).map(|s| runs[s].data.len()).sum();
        let have_origins = (seg.lo..seg.hi).all(|s| runs[s].origins.is_some());
        match seg.data {
            // A single leaf (p == 1, or one non-empty run): wholesale
            // handover with no merge walk — the run is already sorted
            // with run-local LCPs, first entry 0.
            SegData::Leaf => {
                let run = &runs[seg.lo];
                let mut set = StringSet::with_capacity(run.len(), total_chars);
                for &(off, len) in &run.bounds {
                    set.push(&run.data[off..off + len]);
                }
                dss_strkit::copyvol::record_copied(total_chars);
                SortedRun {
                    set,
                    lcps: self.lcp_merge.then(|| run.lcps.clone()),
                    origins: run.origins.clone(),
                    local_store: None,
                }
            }
            SegData::Rope { order, lcps } => {
                let mut set = StringSet::with_capacity(order.len(), total_chars);
                for &(src, idx) in &order {
                    let run = &runs[src as usize];
                    let (off, len) = run.bounds[idx as usize];
                    set.push(&run.data[off..off + len]);
                }
                dss_strkit::copyvol::record_copied(total_chars);
                let origins = have_origins.then(|| {
                    order
                        .iter()
                        .map(|&(src, idx)| {
                            runs[src as usize].origins.as_ref().expect("checked")[idx as usize]
                        })
                        .collect()
                });
                SortedRun {
                    set,
                    lcps: self.lcp_merge.then_some(lcps),
                    origins,
                    local_store: None,
                }
            }
        }
    }
}

/// Two-way merges adjacent segments `a` (lower range) and `b` into a
/// rope, moving handles and LCP values only — no character payload.
///
/// The LCP path carries the classic invariant: each side's head keeps
/// its LCP with the last *emitted* string (`ha`/`hb`, both 0 before the
/// first emission). Unequal values decide without touching a byte — the
/// longer-prefix side is smaller, and the loser's value is already the
/// LCP with the new output string. Equal values fall through to
/// [`lcp_compare`] from the common prefix, which also yields the loser's
/// updated LCP. Equal strings resolve to `a` — the lower source range,
/// matching the loser trees' tie-break by stream index, so the cascade
/// reproduces the blocking k-way merge byte-for-byte.
fn merge_pair(a: &Segment, b: &Segment, runs: &[DecodedRun], lcp_merge: bool) -> SegData {
    let a = SegView::new(a, runs);
    let b = SegView::new(b, runs);
    let (na, nb) = (a.len(), b.len());
    let _g = trace::span_args(
        cat::MERGE,
        "cascade",
        [("strings", (na + nb) as u64), ("", 0)],
    );
    let mut order = Vec::with_capacity(na + nb);
    let mut lcps = Vec::with_capacity(if lcp_merge { na + nb } else { 0 });
    let (mut i, mut j) = (0usize, 0usize);
    if lcp_merge {
        let (mut ha, mut hb) = (0u32, 0u32);
        while i < na && j < nb {
            let take_a = match ha.cmp(&hb) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => {
                    let (ord, full) = lcp_compare(a.bytes(i), b.bytes(j), ha);
                    if ord != std::cmp::Ordering::Greater {
                        hb = full;
                        true
                    } else {
                        ha = full;
                        false
                    }
                }
            };
            if take_a {
                order.push(a.item(i));
                lcps.push(ha);
                i += 1;
                if i < na {
                    ha = a.lcp(i);
                }
            } else {
                order.push(b.item(j));
                lcps.push(hb);
                j += 1;
                if j < nb {
                    hb = b.lcp(j);
                }
            }
        }
        while i < na {
            order.push(a.item(i));
            lcps.push(ha);
            i += 1;
            if i < na {
                ha = a.lcp(i);
            }
        }
        while j < nb {
            order.push(b.item(j));
            lcps.push(hb);
            j += 1;
            if j < nb {
                hb = b.lcp(j);
            }
        }
    } else {
        while i < na && j < nb {
            if a.bytes(i) <= b.bytes(j) {
                order.push(a.item(i));
                i += 1;
            } else {
                order.push(b.item(j));
                j += 1;
            }
        }
        order.extend((i..na).map(|k| a.item(k)));
        order.extend((j..nb).map(|k| b.item(k)));
    }
    SegData::Rope { order, lcps }
}

/// Adapter: attach an exact size to any iterator (the wire encoder needs
/// `ExactSizeIterator` and range-map chains lose it).
pub(crate) struct ExactIter<I> {
    inner: I,
    remaining: usize,
}

impl<I> ExactIter<I> {
    pub(crate) fn new(inner: I, len: usize) -> Self {
        Self {
            inner,
            remaining: len,
        }
    }
}

impl<'a, I: Iterator<Item = &'a [u8]>> Iterator for ExactIter<I> {
    type Item = &'a [u8];
    fn next(&mut self) -> Option<&'a [u8]> {
        let v = self.inner.next();
        if v.is_some() {
            self.remaining -= 1;
        }
        v
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<'a, I: Iterator<Item = &'a [u8]>> ExactSizeIterator for ExactIter<I> {}

/// Merges received runs with the LCP loser tree — the range-split
/// parallel tree when `threads > 1`, with byte-identical output for
/// every thread count. Returns the local output with its exact LCP array
/// (and merged origin tags if present). On the sequential path
/// (`threads == 1` or small inputs) the output arena is pre-sized to the
/// exact run totals by `merge_into` and never reallocates mid-merge.
pub fn merge_received_lcp(runs: &[DecodedRun], threads: usize) -> SortedRun {
    let _g = trace::span_args(cat::MERGE, "kway", [("runs", runs.len() as u64), ("", 0)]);
    let ref_vecs: Vec<Vec<StrRef>> = runs.iter().map(run_refs).collect();
    let views: Vec<MergeRun<'_>> = runs
        .iter()
        .zip(&ref_vecs)
        .map(|(r, refs)| MergeRun {
            arena: &r.data,
            refs,
            lcps: &r.lcps,
        })
        .collect();
    let mut out = StringSet::new();
    let merged = parallel_lcp_merge_into(&views, &mut out, threads);
    let origins = collect_origins(runs, &merged.sources);
    SortedRun {
        set: out,
        lcps: merged.lcps,
        origins,
        local_store: None,
    }
}

/// Merges received runs with the plain loser tree (no LCP information).
/// Thread routing and output pre-sizing match [`merge_received_lcp`].
pub fn merge_received_plain(runs: &[DecodedRun], threads: usize) -> SortedRun {
    let _g = trace::span_args(cat::MERGE, "kway", [("runs", runs.len() as u64), ("", 0)]);
    let ref_vecs: Vec<Vec<StrRef>> = runs.iter().map(run_refs).collect();
    let views: Vec<MergeRun<'_>> = runs
        .iter()
        .zip(&ref_vecs)
        .map(|(r, refs)| MergeRun {
            arena: &r.data,
            refs,
            lcps: &r.lcps,
        })
        .collect();
    let mut out = StringSet::new();
    let merged = parallel_plain_merge_into(&views, &mut out, threads);
    let origins = collect_origins(runs, &merged.sources);
    SortedRun {
        set: out,
        lcps: None,
        origins,
        local_store: None,
    }
}

fn run_refs(run: &DecodedRun) -> Vec<StrRef> {
    run.bounds
        .iter()
        .map(|&(off, len)| StrRef {
            begin: u32::try_from(off).expect("run under 4 GiB"),
            len: u32::try_from(len).expect("string under 4 GiB"),
        })
        .collect()
}

fn collect_origins(runs: &[DecodedRun], sources: &[(u32, u32)]) -> Option<Vec<u64>> {
    if runs.iter().any(|r| r.origins.is_none()) {
        return None;
    }
    Some(
        sources
            .iter()
            .map(|&(run, idx)| runs[run as usize].origins.as_ref().expect("checked")[idx as usize])
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_net::runner::{run_spmd, RunConfig};
    use dss_strkit::sort::sort_with_lcp;
    use std::time::Duration;

    fn cfg_run() -> RunConfig {
        RunConfig {
            recv_timeout: Duration::from_secs(30),
            ..RunConfig::default()
        }
    }

    /// Two PEs swap their buckets and each merges; the concatenation must
    /// be the global sorted order, for every codec.
    fn roundtrip(codec: ExchangeCodec, lcp_merge: bool) {
        let res = run_spmd(2, cfg_run(), move |comm| {
            let mut set = if comm.rank() == 0 {
                StringSet::from_strs(&["snow", "alpha", "sorted", "algae"])
            } else {
                StringSet::from_strs(&["sorter", "alps", "orange", "algo"])
            };
            let lcps = sort_with_lcp(&mut set).0;
            let splitters = StringSet::from_strs(&["oo"]);
            let mut engine = StringAllToAll::new(codec);
            let runs = engine.exchange_by_splitters(
                comm,
                &ExchangePayload {
                    set: &set,
                    lcps: &lcps,
                    origins: None,
                    truncate: None,
                },
                &splitters,
                false,
            );
            let merged = if lcp_merge {
                merge_received_lcp(runs, 1)
            } else {
                merge_received_plain(runs, 1)
            };
            if let Some(l) = &merged.lcps {
                dss_strkit::lcp::verify_lcp_array(&merged.set, l).expect("merged lcps");
            }
            merged.set.to_vecs()
        });
        let all: Vec<Vec<u8>> = res.values.into_iter().flatten().collect();
        let mut expect: Vec<&str> = vec![
            "snow", "alpha", "sorted", "algae", "sorter", "alps", "orange", "algo",
        ];
        expect.sort_unstable();
        assert_eq!(
            all,
            expect
                .iter()
                .map(|s| s.as_bytes().to_vec())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn parse_mode_accepts_known_values_and_defaults_to_blocking() {
        assert_eq!(parse_exchange_mode(None), ExchangeMode::Blocking);
        for v in ["blocking", "Blocking", "BLOCKING"] {
            assert_eq!(parse_exchange_mode(Some(v)), ExchangeMode::Blocking);
        }
        for v in ["pipelined", "Pipelined", "PIPELINED"] {
            assert_eq!(parse_exchange_mode(Some(v)), ExchangeMode::Pipelined);
        }
    }

    /// Regression: an unrecognized mode used to silently coerce to
    /// `Blocking`, so a typo in `DSS_EXCHANGE_MODE` could run an entire
    /// CI matrix through the wrong path. It must fail loudly instead.
    #[test]
    #[should_panic(
        expected = "DSS_EXCHANGE_MODE must be 'blocking' or 'pipelined', got 'piplined'"
    )]
    fn parse_mode_rejects_unrecognized_values() {
        parse_exchange_mode(Some("piplined"));
    }

    #[test]
    #[should_panic(expected = "got ''")]
    fn parse_mode_rejects_empty_string() {
        parse_exchange_mode(Some(""));
    }

    #[test]
    fn plain_roundtrip() {
        roundtrip(ExchangeCodec::Plain, false);
    }

    #[test]
    fn lcp_roundtrip() {
        roundtrip(ExchangeCodec::LcpCompressed, true);
    }

    #[test]
    fn lcp_delta_roundtrip() {
        roundtrip(ExchangeCodec::LcpDelta, true);
    }

    #[test]
    fn auto_roundtrip() {
        roundtrip(ExchangeCodec::Auto, true);
    }

    fn lcp_array_of(strings: &[Vec<u8>]) -> Vec<u32> {
        let mut lcps = vec![0u32];
        for w in strings.windows(2) {
            lcps.push(dss_strkit::lcp::lcp(&w[0], &w[1]));
        }
        lcps.truncate(strings.len());
        lcps
    }

    /// The Auto selection heuristic on fixed buckets: disjoint short
    /// strings make the LCP headers pure overhead (→ Plain); a shared
    /// prefix ≥ 128 chars makes every raw LCP a 2-byte varint while the
    /// deltas stay 1 byte (→ LcpDelta). Sizes are the exact encoder
    /// outputs, so the pick is provably minimal.
    #[test]
    fn auto_selects_plain_for_low_lcp_and_delta_for_high_lcp() {
        let low: Vec<Vec<u8>> = (b'a'..=b'z').map(|c| vec![c]).collect();
        let low_lcps = lcp_array_of(&low);
        assert!(low_lcps.iter().all(|&l| l == 0));
        let lens = wire::encoded_len_all(
            ExactIter::new(low.iter().map(|s| s.as_slice()), low.len()),
            &low_lcps,
            None,
        );
        assert!(lens.plain < lens.lcp && lens.plain < lens.lcp_delta);
        assert_eq!(auto_pick(lens), ExchangeCodec::Plain);

        let base = "q".repeat(160);
        let high: Vec<Vec<u8>> = (0..64)
            .map(|i| format!("{base}{i:03}").into_bytes())
            .collect();
        let high_lcps = lcp_array_of(&high);
        assert!(high_lcps[1..].iter().all(|&l| l >= 128));
        let lens = wire::encoded_len_all(
            ExactIter::new(high.iter().map(|s| s.as_slice()), high.len()),
            &high_lcps,
            None,
        );
        assert!(lens.lcp_delta < lens.lcp && lens.lcp_delta < lens.plain);
        assert_eq!(auto_pick(lens), ExchangeCodec::LcpDelta);
    }

    /// End-to-end wire accounting of Auto: on a uniformly low-LCP input it
    /// ships exactly the plain encoding plus one tag byte per message; on
    /// a uniformly high-LCP input exactly the delta encoding plus the tag.
    #[test]
    fn auto_codec_tracks_the_cheapest_fixed_codec_on_the_wire() {
        // Exchange-phase (bytes_sent, msgs_sent) for one codec on one
        // workload. Every bucket (self bucket included) is non-empty and
        // uniformly low- or high-LCP, so Auto picks the same format for
        // all of them and the accounting is exact.
        let measure = |codec: ExchangeCodec, high_lcp: bool| -> (u64, u64) {
            let res = run_spmd(2, cfg_run(), move |comm| {
                let mut set = StringSet::new();
                let r = comm.rank() as u32;
                if high_lcp {
                    // Both buckets: ≥ 128 shared chars, small LCP deltas.
                    let base = "q".repeat(160);
                    for d in 0..2u32 {
                        for i in 0..100u32 {
                            set.push(format!("{d}{base}{i:02}{r}").as_bytes());
                        }
                    }
                } else {
                    // Both buckets: pairwise-disjoint single characters.
                    for c in b'a'..=b'z' {
                        set.push(&[c]);
                    }
                }
                let lcps = sort_with_lcp(&mut set).0;
                let splitters = StringSet::from_strs(&[if high_lcp { "1" } else { "n" }]);
                comm.set_phase("exchange");
                let mut engine = StringAllToAll::new(codec);
                let _ = engine.exchange_by_splitters(
                    comm,
                    &ExchangePayload {
                        set: &set,
                        lcps: &lcps,
                        origins: None,
                        truncate: None,
                    },
                    &splitters,
                    false,
                );
            });
            let ph = res
                .stats
                .phases
                .iter()
                .find(|p| p.name == "exchange")
                .expect("phase");
            (ph.total.bytes_sent, ph.total.msgs_sent)
        };
        for high_lcp in [false, true] {
            let (auto, auto_msgs) = measure(ExchangeCodec::Auto, high_lcp);
            let best = if high_lcp {
                let (delta, _) = measure(ExchangeCodec::LcpDelta, high_lcp);
                let (raw, _) = measure(ExchangeCodec::LcpCompressed, high_lcp);
                assert!(delta < raw, "high-LCP: delta {delta} should beat raw {raw}");
                delta
            } else {
                let (plain, _) = measure(ExchangeCodec::Plain, high_lcp);
                let (raw, _) = measure(ExchangeCodec::LcpCompressed, high_lcp);
                assert!(plain < raw, "low-LCP: plain {plain} should beat raw {raw}");
                plain
            };
            assert_eq!(
                auto,
                best + auto_msgs,
                "Auto must ship the best fixed encoding plus one tag byte per \
                 message (high_lcp = {high_lcp})"
            );
        }
    }

    /// A mixed workload — one low-LCP bucket, one long-shared-prefix
    /// bucket — where every fixed codec pays on one side: per-destination
    /// selection must beat all three despite the tag bytes.
    #[test]
    fn auto_codec_beats_every_fixed_codec_on_mixed_buckets() {
        let measure = |codec: ExchangeCodec| -> (u64, Vec<Vec<Vec<u8>>>) {
            let res = run_spmd(2, cfg_run(), move |comm| {
                let mut set = StringSet::new();
                let r = comm.rank() as u32;
                // Bucket for PE 0: single characters — the one shape the
                // LCP formats can only inflate (lcp 0 + suffix_len + char
                // vs len + char), so Plain must win this bucket.
                for i in 0..300u32 {
                    set.push(&[b'!' + (i % 20) as u8]);
                }
                // Bucket for PE 1: 160-char shared prefix.
                let base = "q".repeat(160);
                for i in 0..300u32 {
                    set.push(format!("{base}{:03}{r}", i).as_bytes());
                }
                let lcps = sort_with_lcp(&mut set).0;
                let splitters = StringSet::from_strs(&["5"]);
                comm.set_phase("exchange");
                let mut engine = StringAllToAll::new(codec);
                let runs = engine.exchange_by_splitters(
                    comm,
                    &ExchangePayload {
                        set: &set,
                        lcps: &lcps,
                        origins: None,
                        truncate: None,
                    },
                    &splitters,
                    false,
                );
                let merged = if matches!(codec, ExchangeCodec::Plain) {
                    merge_received_plain(runs, 1)
                } else {
                    merge_received_lcp(runs, 1)
                };
                if let Some(l) = &merged.lcps {
                    dss_strkit::lcp::verify_lcp_array(&merged.set, l).expect("merged lcps");
                }
                merged.set.to_vecs()
            });
            for (rank, v) in res.values.iter().enumerate() {
                assert!(v.windows(2).all(|w| w[0] <= w[1]), "rank {rank} sorted");
            }
            let bytes = res
                .stats
                .phases
                .iter()
                .find(|p| p.name == "exchange")
                .expect("phase")
                .total
                .bytes_sent;
            (bytes, res.values)
        };
        let (auto, auto_out) = measure(ExchangeCodec::Auto);
        for fixed in [
            ExchangeCodec::Plain,
            ExchangeCodec::LcpCompressed,
            ExchangeCodec::LcpDelta,
        ] {
            let (bytes, out) = measure(fixed);
            assert!(
                auto < bytes,
                "Auto {auto} should undercut fixed {fixed:?} {bytes} on mixed buckets"
            );
            // Same per-PE output regardless of the wire format.
            assert_eq!(auto_out, out, "output differs from {fixed:?}");
        }
    }

    #[test]
    fn lcp_compression_sends_fewer_bytes_on_shared_prefixes() {
        let run = |codec: ExchangeCodec| -> u64 {
            let res = run_spmd(2, cfg_run(), move |comm| {
                // Long shared prefixes within each bucket; every string is
                // destined for the *other* PE so the data actually travels.
                let mut set = StringSet::new();
                for i in 0..200u32 {
                    set.push(format!("shared_prefix_{:02}_{:03}", 1 - comm.rank(), i).as_bytes());
                }
                let lcps = sort_with_lcp(&mut set).0;
                let splitters = StringSet::from_strs(&["shared_prefix_00_z"]);
                comm.set_phase("exchange");
                let mut engine = StringAllToAll::new(codec);
                let _ = engine.exchange_by_splitters(
                    comm,
                    &ExchangePayload {
                        set: &set,
                        lcps: &lcps,
                        origins: None,
                        truncate: None,
                    },
                    &splitters,
                    false,
                );
            });
            res.stats
                .phases
                .iter()
                .find(|p| p.name == "exchange")
                .expect("phase")
                .total
                .bytes_sent
        };
        let plain = run(ExchangeCodec::Plain);
        let compressed = run(ExchangeCodec::LcpCompressed);
        assert!(
            compressed * 2 < plain,
            "lcp-compressed {compressed} vs plain {plain}"
        );
    }

    /// Builds a DecodedRun the way the wire would deliver it: sorted, flat
    /// payload, exact run-local LCP array.
    fn decoded_run_of(strs: &[&str]) -> DecodedRun {
        let mut set = dss_strkit::StringSet::from_strs(strs);
        let lcps = sort_with_lcp(&mut set).0;
        let mut run = DecodedRun {
            has_lcps: true,
            lcps,
            ..DecodedRun::default()
        };
        for s in set.iter() {
            run.bounds.push((run.data.len(), s.len()));
            run.data.extend_from_slice(s);
        }
        run
    }

    /// The merge output arena is reserved to the exact totals up front:
    /// `StringSet::reserve` is exact, so any mid-merge growth would leave
    /// capacity above length. Guards the allocation-lean merge path.
    #[test]
    fn merge_output_arena_never_reallocates() {
        let runs = vec![
            decoded_run_of(&["snow", "sorbet", "sorter", "soul"]),
            decoded_run_of(&["algae", "algo", "alpha", "alps", "orange"]),
            decoded_run_of(&["order", "organ", "sorted"]),
        ];
        let expect_chars: usize = runs.iter().map(|r| r.data.len()).sum();
        let expect_n: usize = runs.iter().map(|r| r.len()).sum();
        for plain in [false, true] {
            let merged = if plain {
                merge_received_plain(&runs, 1)
            } else {
                merge_received_lcp(&runs, 1)
            };
            assert_eq!(merged.set.len(), expect_n);
            assert_eq!(merged.set.arena_len(), expect_chars);
            assert_eq!(
                merged.set.arena_capacity(),
                merged.set.arena_len(),
                "arena grew mid-merge (plain={plain})"
            );
            assert_eq!(merged.set.refs_capacity(), merged.set.len());
            assert!(merged.set.to_vecs().windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn truncation_limits_transmitted_prefixes() {
        let res = run_spmd(2, cfg_run(), |comm| {
            let mut set = StringSet::new();
            for i in 0..50u32 {
                set.push(
                    format!(
                        "{:02}_plus_long_tail_that_should_not_travel",
                        i + 50 * comm.rank() as u32
                    )
                    .as_bytes(),
                );
            }
            let lcps = sort_with_lcp(&mut set).0;
            let trunc: Vec<u32> = vec![3; set.len()];
            let origins: Vec<u64> = (0..set.len() as u64).collect();
            let splitters = StringSet::from_strs(&["50"]);
            let mut engine = StringAllToAll::new(ExchangeCodec::LcpCompressed);
            let runs = engine.exchange_by_splitters(
                comm,
                &ExchangePayload {
                    set: &set,
                    lcps: &lcps,
                    origins: Some(&origins),
                    truncate: Some(&trunc),
                },
                &splitters,
                false,
            );
            let merged = merge_received_lcp(runs, 1);
            assert!(merged.set.iter().all(|s| s.len() == 3));
            assert_eq!(
                merged.origins.as_ref().map(Vec::len),
                Some(merged.set.len())
            );
            merged.set.len()
        });
        assert_eq!(res.values.iter().sum::<usize>(), 100);
    }

    /// Scatter: strings land on their assigned PE in input order.
    #[test]
    fn scatter_routes_by_destination() {
        let res = run_spmd(3, cfg_run(), |comm| {
            let p = comm.size();
            let mut set = StringSet::new();
            for i in 0..30u32 {
                set.push(format!("r{}i{:02}", comm.rank(), i).as_bytes());
            }
            let dest_of: Vec<usize> = (0..set.len()).map(|i| i % p).collect();
            let mut engine = StringAllToAll::new(ExchangeCodec::Plain);
            let runs = engine.scatter_plain(comm, &set, &dest_of);
            // Run `src` holds exactly the strings src assigned to us, in order.
            let r = comm.rank();
            for (src, run) in runs.iter().enumerate() {
                let expect: Vec<Vec<u8>> = (0..30usize)
                    .filter(|i| i % p == r)
                    .map(|i| format!("r{src}i{i:02}").into_bytes())
                    .collect();
                let got: Vec<Vec<u8>> = run.iter().map(|s| s.to_vec()).collect();
                assert_eq!(got, expect, "src {src}");
            }
            runs.iter().map(|r| r.len()).sum::<usize>()
        });
        assert_eq!(res.values.iter().sum::<usize>(), 90);
    }

    /// The same engine run twice with identical data must not grow its
    /// pooled decode scratch: every `DecodedRun` buffer keeps its exact
    /// capacity from the first round.
    #[test]
    fn pooled_decode_scratch_is_stable_across_rounds() {
        let res = run_spmd(2, cfg_run(), |comm| {
            let mut set = StringSet::new();
            for i in 0..200u32 {
                set.push(format!("steady_{:03}_{}", i, comm.rank()).as_bytes());
            }
            let lcps = sort_with_lcp(&mut set).0;
            let splitters = StringSet::from_strs(&["steady_100"]);
            let payload = ExchangePayload {
                set: &set,
                lcps: &lcps,
                origins: None,
                truncate: None,
            };
            let mut engine = StringAllToAll::new(ExchangeCodec::LcpCompressed);
            let caps: Vec<(usize, usize, usize)> = engine
                .exchange_by_splitters(comm, &payload, &splitters, false)
                .iter()
                .map(|r| (r.data.capacity(), r.bounds.capacity(), r.lcps.capacity()))
                .collect();
            for round in 0..3 {
                let runs = engine.exchange_by_splitters(comm, &payload, &splitters, false);
                let now: Vec<(usize, usize, usize)> = runs
                    .iter()
                    .map(|r| (r.data.capacity(), r.bounds.capacity(), r.lcps.capacity()))
                    .collect();
                assert_eq!(caps, now, "scratch grew in round {round}");
            }
        });
        assert_eq!(res.values.len(), 2);
    }
}
