//! FKmerge — the Fischer–Kurpicz distributed string mergesort (§II-C),
//! the only prior distributed-memory string sorter and the paper's main
//! baseline.
//!
//! Per the paper's description: sort locally, choose p−1 samples
//! *equidistantly* from the sorted local set, gather all p(p−1) samples on
//! PE 0, sort them there, pick the splitters equidistantly from the
//! sorted sample, exchange buckets (no LCP compression), and merge with an
//! ordinary (not LCP-aware) loser tree.
//!
//! The centralized sample sort needs a quadratic sample and puts Θ(p²)
//! strings and p−1 message latencies on PE 0 — the bottleneck the paper
//! holds responsible for FKmerge's scalability collapse beyond ~320 cores.

use crate::exchange::{ExchangeCodec, ExchangeMode, ExchangePayload, StringAllToAll};
use crate::output::SortedRun;
use crate::partition::{self, PartitionConfig, SamplingPolicy};
use crate::DistSorter;
use dss_net::Comm;
use dss_strkit::sort::{par_sort_with_lcp, threads_from_env};
use dss_strkit::StringSet;

/// The FKmerge baseline (deterministic sampling; centralized sample sort).
#[derive(Debug, Clone, Copy)]
pub struct FkMerge {
    /// Blocking or pipelined exchange (defaults to the
    /// `DSS_EXCHANGE_MODE` knob). The centralized sample sort itself is
    /// FKmerge's defining bottleneck and stays as-is.
    pub mode: ExchangeMode,
    /// Shared-memory threads per PE for the local sort and the k-way
    /// merge (defaults to the `DSS_THREADS` knob).
    pub threads: usize,
}

impl Default for FkMerge {
    fn default() -> Self {
        Self {
            mode: ExchangeMode::default(),
            threads: threads_from_env(),
        }
    }
}

impl FkMerge {
    /// Overrides the shared-memory thread count (local sort + merge).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be positive, got 0");
        self.threads = threads;
        self
    }
}

impl DistSorter for FkMerge {
    fn name(&self) -> &'static str {
        "FKmerge"
    }

    fn sort(&self, comm: &Comm, mut input: StringSet) -> SortedRun {
        comm.set_phase("local_sort");
        let (lcps, _) = par_sort_with_lcp(&mut input, self.threads);
        if comm.size() == 1 {
            return SortedRun::plain(input);
        }
        comm.set_phase("partition");
        let cfg = PartitionConfig {
            policy: SamplingPolicy::Strings,
            // Deterministic sampling needs p−1 samples per PE ([15]).
            oversampling: comm.size() - 1,
            central_sample_sort: true,
            mode: self.mode,
            threads: self.threads,
            ..PartitionConfig::default()
        };
        let splitters = partition::determine_splitters(comm, &input, &cfg, None, None);
        comm.set_phase("exchange");
        let mut engine =
            StringAllToAll::with_mode(ExchangeCodec::Plain, self.mode).with_threads(self.threads);
        engine.exchange_merge_by_splitters(
            comm,
            &ExchangePayload {
                set: &input,
                lcps: &lcps,
                origins: None,
                truncate: None,
            },
            &splitters,
            false,
            Some("merge"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_net::runner::{run_spmd, RunConfig};
    use rand::prelude::*;
    use std::time::Duration;

    fn cfg_run() -> RunConfig {
        RunConfig {
            recv_timeout: Duration::from_secs(30),
            ..RunConfig::default()
        }
    }

    fn check(p: usize, shards: Vec<Vec<Vec<u8>>>) {
        let mut expect: Vec<Vec<u8>> = shards.iter().flatten().cloned().collect();
        expect.sort();
        let shards_ref = &shards;
        let res = run_spmd(p, cfg_run(), move |comm| {
            let set =
                StringSet::from_iter_bytes(shards_ref[comm.rank()].iter().map(|s| s.as_slice()));
            FkMerge::default().sort(comm, set).set.to_vecs()
        });
        let got: Vec<Vec<u8>> = res.values.into_iter().flatten().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn sorts_random_shards() {
        let mut rng = StdRng::seed_from_u64(17);
        for p in [1usize, 2, 3, 5] {
            let shards: Vec<Vec<Vec<u8>>> = (0..p)
                .map(|_| {
                    (0..60)
                        .map(|_| {
                            let len = rng.gen_range(0..12);
                            (0..len).map(|_| rng.gen_range(b'a'..=b'f')).collect()
                        })
                        .collect()
                })
                .collect();
            check(p, shards);
        }
    }

    #[test]
    fn survives_duplicates_unlike_the_original() {
        // The paper reports the original FKmerge implementation crashes on
        // inputs with many repeated strings; ours must simply sort them.
        let shards: Vec<Vec<Vec<u8>>> = (0..4)
            .map(|r| {
                (0..50)
                    .map(|i| {
                        if i % 3 == 0 {
                            b"repeated".to_vec()
                        } else {
                            format!("s{r}-{i}").into_bytes()
                        }
                    })
                    .collect()
            })
            .collect();
        check(4, shards);
    }

    #[test]
    fn centralized_sample_sort_is_the_bottleneck() {
        // PE 0 must receive p−1 sample messages: its partition-phase
        // latency rounds are linear in p, unlike the hQuick-based path.
        let res = run_spmd(5, cfg_run(), |comm| {
            let mut set = StringSet::new();
            for i in 0..40u32 {
                set.push(format!("k{}{}", comm.rank(), i).as_bytes());
            }
            let _ = FkMerge::default().sort(comm, set);
        });
        let part = res
            .stats
            .phases
            .iter()
            .find(|p| p.name == "partition")
            .expect("partition phase");
        assert!(part.max.rounds >= 4, "rounds {}", part.max.rounds);
    }
}
