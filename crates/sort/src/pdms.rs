//! PDMS — Distributed Prefix-Doubling String Merge Sort (§VI).
//!
//! Refines MS for the regime D ≪ N: Step 1+ε (between local sorting and
//! splitter determination) approximates every string's distinguishing
//! prefix length with the duplicate-detection-driven prefix doubling of
//! [`dss_dedup`]; only those prefixes are sampled, exchanged and merged.
//!
//! PDMS does not solve exactly the same problem as MS: it "only computes
//! the permutation without completely executing it". The output holds the
//! sorted (approximate) distinguishing prefixes plus origin tags
//! identifying the source PE and local index of each full string; the
//! full strings stay on their original PE in sorted order
//! ([`SortedRun::local_store`]), so suffixes and associated information
//! remain queryable — sufficient for suffix sorting, pattern search and
//! search-tree construction (the paper's listed applications).
//!
//! PDMS-Golomb Golomb-codes the fingerprint traffic of the duplicate
//! detection; plain PDMS ships raw fingerprints (§VII-C).

use crate::exchange::{ExchangeCodec, ExchangeMode, ExchangePayload, StringAllToAll};
use crate::output::{origin_tag, SortedRun};
use crate::partition::{self, PartitionConfig};
use crate::DistSorter;
use dss_dedup::prefix_doubling::{approx_dist_prefixes, PrefixDoublingConfig};
use dss_net::Comm;
use dss_strkit::sort::{par_sort_with_lcp, threads_from_env};
use dss_strkit::StringSet;

/// Configuration of PDMS.
#[derive(Debug, Clone, Copy)]
pub struct PdmsConfig {
    /// Step 1+ε parameters (growth factor 1+ε, initial guess, fingerprint
    /// width, Golomb coding).
    pub pd: PrefixDoublingConfig,
    /// Sampling/splitter policy. The paper's experiments use string-based
    /// sampling; `SamplingPolicy::DistPrefix` balances the approximated
    /// distinguishing-prefix characters instead (§VI: "knowing the
    /// distinguishing prefix lengths also aids splitter determination").
    pub partition: PartitionConfig,
    /// Difference-code LCPs on the wire (§VI-B extension).
    pub delta_lcps: bool,
    /// Pick the wire codec per destination bucket instead
    /// ([`ExchangeCodec::Auto`]); overrides `delta_lcps`.
    pub auto_codec: bool,
    /// Blocking or pipelined exchange (defaults to the
    /// `DSS_EXCHANGE_MODE` knob).
    pub mode: ExchangeMode,
    /// Shared-memory threads per PE for the local sort and the k-way
    /// merge (defaults to the `DSS_THREADS` knob).
    pub threads: usize,
}

impl Default for PdmsConfig {
    fn default() -> Self {
        Self {
            pd: PrefixDoublingConfig::default(),
            partition: PartitionConfig::default(),
            delta_lcps: false,
            auto_codec: false,
            mode: ExchangeMode::default(),
            threads: threads_from_env(),
        }
    }
}

/// Step 1+ε front-end shared by flat PDMS and the PD grid variants
/// ([`crate::PdMs2l`], [`crate::PdMsml`]): the approximated
/// distinguishing-prefix lengths plus everything the downstream exchange
/// derives from them.
pub(crate) struct PrefixFront {
    /// `approx[i].min(len(sᵢ))` — characters of string `i` that cross the
    /// wire ([`ExchangePayload::truncate`]).
    pub trunc: Vec<u32>,
    /// `approx[i]` — splitter sampling weights under
    /// [`crate::partition::SamplingPolicy::DistPrefix`].
    pub weights: Vec<u32>,
    /// `origin_tag(rank, i)` for every local string — the permutation
    /// payload that rides next to the truncated prefixes.
    pub origins: Vec<u64>,
}

/// Runs Step 1+ε over a locally sorted set and derives the truncation
/// lengths, sampling weights and origin tags. Collective.
pub(crate) fn prefix_front(
    comm: &Comm,
    set: &StringSet,
    lcps: &[u32],
    cfg: &PrefixDoublingConfig,
) -> PrefixFront {
    let (approx, _) = approx_dist_prefixes(comm, set, lcps, cfg);
    let trunc = (0..set.len())
        .map(|i| approx[i].min(set.get(i).len() as u32))
        .collect();
    let origins = (0..set.len()).map(|i| origin_tag(comm.rank(), i)).collect();
    PrefixFront {
        trunc,
        weights: approx,
        origins,
    }
}

/// Distributed Prefix-Doubling String Merge Sort.
#[derive(Debug, Default, Clone, Copy)]
pub struct Pdms {
    pub cfg: PdmsConfig,
}

impl Pdms {
    /// The PDMS-Golomb variant.
    pub fn golomb() -> Self {
        Self {
            cfg: PdmsConfig {
                pd: PrefixDoublingConfig {
                    golomb: true,
                    ..PrefixDoublingConfig::default()
                },
                ..PdmsConfig::default()
            },
        }
    }

    /// PDMS with a custom configuration.
    pub fn with_config(cfg: PdmsConfig) -> Self {
        Self { cfg }
    }

    /// Overrides the shared-memory thread count (local sort + merge).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be positive, got 0");
        self.cfg.threads = threads;
        self
    }
}

impl DistSorter for Pdms {
    fn name(&self) -> &'static str {
        if self.cfg.pd.golomb {
            "PDMS-Golomb"
        } else {
            "PDMS"
        }
    }

    fn sort(&self, comm: &Comm, mut input: StringSet) -> SortedRun {
        self.cfg.pd.validate();
        comm.set_phase("local_sort");
        let (lcps, _) = par_sort_with_lcp(&mut input, self.cfg.threads);
        if comm.size() == 1 {
            let origins = (0..input.len()).map(|i| origin_tag(0, i)).collect();
            return SortedRun {
                lcps: Some(lcps),
                origins: Some(origins),
                local_store: Some(input.clone()),
                set: input,
            };
        }

        // Step 1+ε: approximate distinguishing prefix lengths.
        comm.set_phase("prefix_doubling");
        let front = prefix_front(comm, &input, &lcps, &self.cfg.pd);

        // Step 2: splitters over the truncated strings, weighted by the
        // approximate distinguishing prefix lengths when requested.
        comm.set_phase("partition");
        // One mode (and thread count) for every byte this run moves: the
        // sample sort follows the algorithm's exchange mode and threads.
        let mut pcfg = self.cfg.partition;
        pcfg.mode = self.cfg.mode;
        pcfg.threads = self.cfg.threads;
        let splitters = partition::determine_splitters(
            comm,
            &input,
            &pcfg,
            Some(&front.weights),
            Some(&front.trunc),
        );

        // Step 3: exchange only the distinguishing prefixes, tagged with
        // their origin, LCP-compressed.
        comm.set_phase("exchange");
        let codec = ExchangeCodec::for_lcp_config(self.cfg.delta_lcps, self.cfg.auto_codec);
        let mut engine =
            StringAllToAll::with_mode(codec, self.cfg.mode).with_threads(self.cfg.threads);
        // Step 4 rides along: the LCP loser-tree merge of the prefix runs
        // (overlapped with the transfers in pipelined mode).
        let mut out = engine.exchange_merge_by_splitters(
            comm,
            &ExchangePayload {
                set: &input,
                lcps: &lcps,
                origins: Some(&front.origins),
                truncate: Some(&front.trunc),
            },
            &splitters,
            self.cfg.partition.duplicate_tie_break,
            Some("merge"),
        );
        out.local_store = Some(input);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::origin_parts;
    use crate::partition::SamplingPolicy;
    use dss_net::runner::{run_spmd, RunConfig};
    use rand::prelude::*;
    use std::time::Duration;

    fn cfg_run() -> RunConfig {
        RunConfig {
            recv_timeout: Duration::from_secs(30),
            ..RunConfig::default()
        }
    }

    /// Full PDMS validation: reconstruct the permutation via origins and
    /// check it sorts the original input.
    fn check(p: usize, shards: Vec<Vec<Vec<u8>>>, sorter: Pdms) {
        let mut expect: Vec<Vec<u8>> = shards.iter().flatten().cloned().collect();
        expect.sort();
        let shards_ref = &shards;
        let res = run_spmd(p, cfg_run(), move |comm| {
            let set =
                StringSet::from_iter_bytes(shards_ref[comm.rank()].iter().map(|s| s.as_slice()));
            let out = sorter.sort(comm, set);
            if let Some(l) = &out.lcps {
                dss_strkit::lcp::verify_lcp_array(&out.set, l).expect("output lcps");
            }
            assert!(dss_strkit::checker::is_sorted(&out.set), "prefixes sorted");
            (
                out.set.to_vecs(),
                out.origins.expect("pdms reports origins"),
                out.local_store.expect("pdms keeps local store").to_vecs(),
            )
        });
        // Reconstruct full strings through the origin tags.
        let stores: Vec<&Vec<Vec<u8>>> = res.values.iter().map(|(_, _, s)| s).collect();
        let mut reconstructed: Vec<Vec<u8>> = Vec::new();
        for (prefixes, origins, _) in &res.values {
            assert_eq!(prefixes.len(), origins.len());
            for (pref, &tag) in prefixes.iter().zip(origins) {
                let (pe, idx) = origin_parts(tag);
                let full = &stores[pe][idx];
                assert!(
                    full.starts_with(pref),
                    "prefix {:?} not a prefix of its origin {:?}",
                    String::from_utf8_lossy(pref),
                    String::from_utf8_lossy(full)
                );
                reconstructed.push(full.clone());
            }
        }
        assert_eq!(reconstructed, expect, "origin permutation sorts the input");
    }

    fn random_shards(p: usize, n: usize, seed: u64) -> Vec<Vec<Vec<u8>>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..p)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        let len = rng.gen_range(0..14);
                        (0..len).map(|_| rng.gen_range(b'a'..=b'e')).collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn pdms_sorts_various_pe_counts() {
        for p in [1usize, 2, 3, 4] {
            check(p, random_shards(p, 60, p as u64), Pdms::default());
        }
    }

    #[test]
    fn pdms_golomb_sorts() {
        check(4, random_shards(4, 60, 44), Pdms::golomb());
    }

    #[test]
    fn pdms_with_dist_prefix_sampling_sorts() {
        let sorter = Pdms::with_config(PdmsConfig {
            partition: PartitionConfig {
                policy: SamplingPolicy::DistPrefix,
                ..PartitionConfig::default()
            },
            ..PdmsConfig::default()
        });
        check(4, random_shards(4, 60, 45), sorter);
    }

    #[test]
    fn handles_duplicates_prefixes_and_empties() {
        let shards = vec![
            vec![b"dup".to_vec(); 30],
            vec![],
            {
                let mut v = vec![b"dup".to_vec(); 10];
                v.push(b"du".to_vec());
                v.push(b"d".to_vec());
                v.push(Vec::new());
                v
            },
            random_shards(1, 40, 46).remove(0),
        ];
        check(4, shards, Pdms::default());
    }

    #[test]
    fn transmits_only_prefixes_on_low_dn_input() {
        // Long strings with tiny distinguishing prefixes: the exchange
        // volume of PDMS must be a small fraction of MS's.
        let make_shards = |p: usize| -> Vec<Vec<Vec<u8>>> {
            (0..p)
                .map(|r| {
                    (0..100)
                        .map(|i| {
                            let mut s = format!("{:03}", r * 100 + i).into_bytes();
                            s.extend(std::iter::repeat_n(b'x', 300));
                            s
                        })
                        .collect()
                })
                .collect()
        };
        let shards = make_shards(4);
        check(4, shards.clone(), Pdms::default());
        let shards_ref = &shards;
        let exchange_bytes = |alg: crate::Algorithm| -> u64 {
            let res = run_spmd(4, cfg_run(), move |comm| {
                let set = StringSet::from_iter_bytes(
                    shards_ref[comm.rank()].iter().map(|s| s.as_slice()),
                );
                let _ = alg.instance().sort(comm, set);
            });
            res.stats
                .phases
                .iter()
                .filter(|ph| ph.name == "exchange")
                .map(|ph| ph.total.bytes_sent)
                .sum()
        };
        let pdms = exchange_bytes(crate::Algorithm::Pdms);
        let ms = exchange_bytes(crate::Algorithm::Ms);
        assert!(
            pdms * 5 < ms,
            "PDMS exchange {pdms} should be ≪ MS exchange {ms}"
        );
    }
}
