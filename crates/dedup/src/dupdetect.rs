//! Distributed duplicate detection on fingerprints.
//!
//! Input: each PE holds a list of `u64` fingerprints. Output: for each
//! fingerprint, whether its value occurs exactly once across *all* PEs.
//!
//! Protocol (one personalized all-to-all each way):
//! 1. truncate fingerprints to `fp_bits` and range-partition them to
//!    owner PEs (owner = value·p / 2^fp_bits, so each owner receives a
//!    contiguous, Golomb-friendly value range);
//! 2. each sender sorts its per-owner list (remembering the permutation)
//!    and ships it raw (8 B/fp) or Golomb-coded (≈ fp_bits − log₂k + 2
//!    bits/fp) — the PDMS vs PDMS-Golomb distinction;
//! 3. owners count multiplicities across all received lists and reply a
//!    bitmap, one bit per fingerprint in received order;
//! 4. senders map the bits back through their permutation.
//!
//! Guarantee: "unique" answers are exact; "duplicate" answers may be
//! false positives with probability ≈ k²/2^fp_bits for k global
//! fingerprints (one-sided error, the safe side for PDMS).

use dss_codec::bitio::{BitReader, BitWriter};
use dss_codec::golomb;
use dss_net::Comm;

/// Configuration of one duplicate-detection round.
#[derive(Debug, Clone, Copy)]
pub struct DedupConfig {
    /// Fingerprint width in bits (values are truncated to this). Use
    /// [`recommended_fp_bits`] to pick it from the global element count.
    pub fp_bits: u32,
    /// Golomb-code the fingerprint streams (PDMS-Golomb) instead of raw
    /// little-endian u64s (PDMS).
    pub golomb: bool,
    /// Route the all-to-alls through the hypercube (log p rounds, more
    /// volume) instead of directly (p−1 rounds, minimal volume). Only
    /// honoured for power-of-two communicators.
    pub latency_optimal: bool,
}

impl Default for DedupConfig {
    fn default() -> Self {
        Self {
            fp_bits: 64,
            golomb: false,
            latency_optimal: false,
        }
    }
}

/// Counters for one detection round.
#[derive(Debug, Default, Clone, Copy)]
pub struct DedupStats {
    /// Fingerprints this PE sent.
    pub fps_sent: u64,
    /// Payload bytes in the fingerprint direction (this PE).
    pub fp_bytes_sent: u64,
    /// Payload bytes in the reply direction (this PE).
    pub reply_bytes_sent: u64,
}

/// Picks a fingerprint width for `global_count` elements: two bits of
/// slack per doubling plus a constant, clamped to `[16, 64]`. With
/// `2·log₂ n + 8` bits the expected number of colliding pairs is ≈ 2⁻⁸·n⁰,
/// i.e. false-positive rate well below 1 per round.
pub fn recommended_fp_bits(global_count: u64) -> u32 {
    let log = 64 - global_count.max(1).leading_zeros();
    (2 * log + 8).clamp(16, 64)
}

fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

fn owner_of(fp: u64, p: usize, bits: u32) -> usize {
    if bits >= 64 {
        ((fp as u128 * p as u128) >> 64) as usize
    } else {
        ((fp as u128 * p as u128) >> bits) as usize
    }
}

/// Lower end of the fingerprint value range owned by PE `r`.
fn range_base(r: usize, p: usize, bits: u32) -> u64 {
    // Smallest v with owner(v) == r: ceil(r · 2^bits / p).
    let span = if bits >= 64 {
        1u128 << 64
    } else {
        1u128 << bits
    };
    ((r as u128 * span).div_ceil(p as u128)) as u64
}

fn exchange(comm: &Comm, msgs: Vec<Vec<u8>>, cfg: &DedupConfig) -> Vec<Vec<u8>> {
    if cfg.latency_optimal && comm.size().is_power_of_two() {
        comm.alltoallv_hypercube(msgs)
    } else {
        comm.alltoallv(msgs)
    }
}

/// Runs one round of distributed duplicate detection.
///
/// Returns `unique[i]` for each input fingerprint: `true` means the value
/// `fps[i] & mask(fp_bits)` occurs exactly once globally (exact); `false`
/// means it occurs more than once *or* collided (one-sided error).
pub fn global_uniqueness(comm: &Comm, fps: &[u64], cfg: &DedupConfig) -> (Vec<bool>, DedupStats) {
    let p = comm.size();
    let m = mask(cfg.fp_bits);
    let mut stats = DedupStats {
        fps_sent: fps.len() as u64,
        ..DedupStats::default()
    };

    // Order fingerprints by (owner, value); remember the permutation.
    let mut order: Vec<u32> = (0..fps.len() as u32).collect();
    order.sort_unstable_by_key(|&i| fps[i as usize] & m);
    let mut per_dest_counts = vec![0usize; p];
    for &i in &order {
        per_dest_counts[owner_of(fps[i as usize] & m, p, cfg.fp_bits)] += 1;
    }

    // Serialize one sorted run per destination.
    let mut msgs: Vec<Vec<u8>> = Vec::with_capacity(p);
    let mut cursor = 0usize;
    for (dest, &k) in per_dest_counts.iter().enumerate().take(p) {
        let vals: Vec<u64> = order[cursor..cursor + k]
            .iter()
            .map(|&i| fps[i as usize] & m)
            .collect();
        cursor += k;
        let payload = if cfg.golomb {
            let base = range_base(dest, p, cfg.fp_bits);
            let normalized: Vec<u64> = vals.iter().map(|v| v - base).collect();
            let span = (range_base(dest + 1, p, cfg.fp_bits).wrapping_sub(base)).max(1);
            golomb::golomb_encode_auto(&normalized, span)
        } else {
            let mut buf = Vec::with_capacity(8 + vals.len() * 8);
            buf.extend_from_slice(&(vals.len() as u64).to_le_bytes());
            for v in &vals {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            buf
        };
        stats.fp_bytes_sent += payload.len() as u64;
        msgs.push(payload);
    }

    // Ship fingerprints; decode the per-source sorted lists.
    let received = exchange(comm, msgs, cfg);
    let decoded: Vec<Vec<u64>> = received
        .iter()
        .map(|buf| {
            if cfg.golomb {
                let base = range_base(comm.rank(), p, cfg.fp_bits);
                let vals = golomb::golomb_decode_auto(buf).expect("well-formed golomb stream");
                vals.into_iter().map(|v| v + base).collect()
            } else {
                let n = u64::from_le_bytes(buf[..8].try_into().expect("count")) as usize;
                let mut vals = Vec::with_capacity(n);
                for c in buf[8..8 + n * 8].chunks_exact(8) {
                    vals.push(u64::from_le_bytes(c.try_into().expect("8 bytes")));
                }
                vals
            }
        })
        .collect();

    // Count multiplicities across the p sorted lists with a merge-style
    // sweep (the lists are sorted, so a value is duplicated iff it equals
    // a neighbour in the merged order).
    let mut all: Vec<(u64, u32, u32)> = Vec::with_capacity(decoded.iter().map(Vec::len).sum());
    for (src, vals) in decoded.iter().enumerate() {
        for (j, &v) in vals.iter().enumerate() {
            all.push((v, src as u32, j as u32));
        }
    }
    all.sort_unstable_by_key(|&(v, _, _)| v);
    let mut reply_bits: Vec<BitWriter> = decoded.iter().map(|_| BitWriter::new()).collect();
    // Pre-size: one bit per fingerprint, in received order. We fill by
    // (src, idx) so build per-source bool vecs first.
    let mut unique_flags: Vec<Vec<bool>> = decoded.iter().map(|v| vec![false; v.len()]).collect();
    let mut i = 0;
    while i < all.len() {
        let mut j = i + 1;
        while j < all.len() && all[j].0 == all[i].0 {
            j += 1;
        }
        let is_unique = j - i == 1;
        for &(_, src, idx) in &all[i..j] {
            unique_flags[src as usize][idx as usize] = is_unique;
        }
        i = j;
    }
    for (src, flags) in unique_flags.iter().enumerate() {
        for &b in flags {
            reply_bits[src].write_bit(b);
        }
    }

    // Reply bitmaps (the receiver knows how many bits it expects).
    let replies: Vec<Vec<u8>> = reply_bits
        .into_iter()
        .map(|w| {
            let buf = w.into_bytes();
            stats.reply_bytes_sent += buf.len() as u64;
            buf
        })
        .collect();
    let reply_received = exchange(comm, replies, cfg);

    // Unpack through the permutation.
    let mut unique = vec![false; fps.len()];
    let mut cursor = 0usize;
    for dest in 0..p {
        let k = per_dest_counts[dest];
        let mut r = BitReader::new(&reply_received[dest]);
        for &i in &order[cursor..cursor + k] {
            unique[i as usize] = r.read_bit().expect("reply bitmap long enough");
        }
        cursor += k;
    }
    (unique, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_net::runner::{run_spmd, RunConfig};
    use std::collections::HashMap;
    use std::time::Duration;

    fn cfg_run() -> RunConfig {
        RunConfig {
            recv_timeout: Duration::from_secs(20),
            ..RunConfig::default()
        }
    }

    /// Oracle check on arbitrary per-PE fingerprint lists.
    fn check(p: usize, per_pe: Vec<Vec<u64>>, dcfg: DedupConfig) {
        assert_eq!(per_pe.len(), p);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        let m = super::mask(dcfg.fp_bits);
        for pe in &per_pe {
            for &v in pe {
                *counts.entry(v & m).or_default() += 1;
            }
        }
        let per_pe_ref = &per_pe;
        let res = run_spmd(p, cfg_run(), move |comm| {
            let fps = per_pe_ref[comm.rank()].clone();
            global_uniqueness(comm, &fps, &dcfg).0
        });
        for (r, uniq) in res.values.iter().enumerate() {
            for (i, &u) in uniq.iter().enumerate() {
                let v = per_pe_ref[r][i] & m;
                let expect = counts[&v] == 1;
                assert_eq!(u, expect, "p={p} rank={r} idx={i} fp={v:x}");
            }
        }
    }

    #[test]
    fn detects_cross_pe_duplicates() {
        check(
            3,
            vec![vec![10, 20, 30], vec![20, 40], vec![50, 10, 60]],
            DedupConfig::default(),
        );
    }

    #[test]
    fn detects_local_duplicates() {
        check(2, vec![vec![7, 7, 8], vec![9]], DedupConfig::default());
    }

    #[test]
    fn all_unique_and_all_duplicate() {
        check(
            4,
            (0..4).map(|r| vec![r as u64 * 100]).collect(),
            DedupConfig::default(),
        );
        check(
            4,
            (0..4).map(|_| vec![42u64]).collect(),
            DedupConfig::default(),
        );
    }

    #[test]
    fn empty_inputs() {
        check(3, vec![vec![], vec![], vec![]], DedupConfig::default());
        check(3, vec![vec![], vec![5], vec![]], DedupConfig::default());
    }

    #[test]
    fn golomb_variant_agrees() {
        let per_pe: Vec<Vec<u64>> = (0..4)
            .map(|r| (0..200u64).map(|i| (i * 37 + r * 1000) % 500).collect())
            .collect();
        check(
            4,
            per_pe.clone(),
            DedupConfig {
                golomb: true,
                ..DedupConfig::default()
            },
        );
        check(4, per_pe, DedupConfig::default());
    }

    #[test]
    fn golomb_large_values_near_range_top() {
        let big = u64::MAX;
        check(
            2,
            vec![vec![big, big - 1, 3], vec![big, 17]],
            DedupConfig {
                golomb: true,
                ..DedupConfig::default()
            },
        );
    }

    #[test]
    fn truncated_fingerprints_collide_safely() {
        // With 16-bit fingerprints, 0x1_0005 and 0x5 collide: both must be
        // reported duplicate (never unique).
        let cfg = DedupConfig {
            fp_bits: 16,
            ..DedupConfig::default()
        };
        check(2, vec![vec![0x1_0005], vec![0x5]], cfg);
    }

    #[test]
    fn hypercube_routing_agrees() {
        let per_pe: Vec<Vec<u64>> = (0..4)
            .map(|r| (0..50u64).map(|i| i * 11 + r as u64 * 3).collect())
            .collect();
        check(
            4,
            per_pe,
            DedupConfig {
                latency_optimal: true,
                ..DedupConfig::default()
            },
        );
    }

    #[test]
    fn golomb_sends_fewer_bytes_on_dense_sets() {
        // Dense fingerprints in a 20-bit space: Golomb must beat raw u64s.
        let per_pe: Vec<Vec<u64>> = (0..2)
            .map(|r| (0..2000u64).map(|i| (i * 211 + r * 7) & 0xf_ffff).collect())
            .collect();
        let per_pe_ref = &per_pe;
        let run = |golomb: bool| {
            run_spmd(2, cfg_run(), move |comm| {
                let fps = per_pe_ref[comm.rank()].clone();
                let cfg = DedupConfig {
                    fp_bits: 20,
                    golomb,
                    ..DedupConfig::default()
                };
                global_uniqueness(comm, &fps, &cfg).1
            })
        };
        let raw_bytes: u64 = run(false).values.iter().map(|s| s.fp_bytes_sent).sum();
        let gol_bytes: u64 = run(true).values.iter().map(|s| s.fp_bytes_sent).sum();
        assert!(
            gol_bytes * 2 < raw_bytes,
            "golomb {gol_bytes} vs raw {raw_bytes}"
        );
    }

    #[test]
    fn recommended_bits_scale_with_count() {
        assert_eq!(recommended_fp_bits(0), 16);
        assert!(recommended_fp_bits(1 << 20) >= 48);
        assert_eq!(recommended_fp_bits(u64::MAX), 64);
    }

    #[test]
    fn owner_ranges_partition_the_space() {
        for bits in [16u32, 20, 40, 64] {
            for p in [1usize, 2, 3, 5, 8] {
                // range_base is monotone and owner() maps each base to
                // its own PE.
                let mut prev = 0u64;
                for r in 0..p {
                    let b = super::range_base(r, p, bits);
                    assert!(r == 0 || b >= prev);
                    assert_eq!(super::owner_of(b, p, bits), r, "bits={bits} p={p} r={r}");
                    prev = b;
                }
                // Top of the space maps to the last PE.
                assert_eq!(super::owner_of(super::mask(bits), p, bits), p - 1);
            }
        }
    }
}
