//! Step 1+ε: approximating distinguishing prefix lengths (§VI-A).
//!
//! After local sorting, every PE holds a sorted string set with its LCP
//! array. The goal is an upper bound `approx[i] ≥ DIST(sᵢ)` for every
//! string, as tight as the geometric growth allows, using O(log p) bits of
//! communication per string (Theorem 6).
//!
//! Iteration with current prefix length ℓ, over the still-*active* strings:
//!
//! 1. **Local grouping.** Strings whose ℓ-prefixes coincide locally are
//!    recognised for free from the LCP array (a run of entries ≥ ℓ). A
//!    group of ≥ 2 active strings is duplicated by definition — nothing is
//!    sent for it and every member stays active.
//! 2. **Fingerprinting.** Each group with exactly one active member sends
//!    one fingerprint of the ℓ-prefix to the duplicate detection.
//! 3. **Resolution.** Unique ⇒ `approx = min(ℓ, len+1)`, deactivate.
//!    Strings with `len < ℓ` whose prefix (the whole string) is still
//!    duplicated can never become unique ⇒ `approx = len+1`, deactivate
//!    (exact duplicates / prefix-of relationships).
//! 4. ℓ ← ℓ·(1+ε) until no PE has active strings.
//!
//! One-sidedness of the duplicate detection makes the result safe:
//! `approx[i] ≥ DIST(sᵢ)` always; fingerprint collisions only inflate it.

use crate::dupdetect::{global_uniqueness, recommended_fp_bits, DedupConfig};
use dss_net::collectives::ReduceOp;
use dss_net::Comm;
use dss_strkit::checker::{hash_bytes, mix64};
use dss_strkit::StringSet;

/// Configuration of the distinguishing-prefix approximation.
#[derive(Debug, Clone, Copy)]
pub struct PrefixDoublingConfig {
    /// Initial guess ℓ₀ in characters; `None` ⇒ auto (Θ(log p / log σ),
    /// scaled by `log2(σ)` ≈ 8 for byte alphabets, min 4). An explicit
    /// `Some(0)` is rejected by [`Self::validate`].
    pub initial: Option<u32>,
    /// Growth factor 1+ε as a rational `num/den` (default 2/1 — doubling).
    /// `num ≤ den` means ε ≤ 0 and is rejected by [`Self::validate`].
    pub growth_num: u32,
    /// See `growth_num`.
    pub growth_den: u32,
    /// Fingerprint width of the underlying duplicate detection. `None` ⇒
    /// auto-select from the global string count; explicit widths must be
    /// in `1..=64` ([`Self::validate`]).
    pub fp_bits: Option<u32>,
    /// Golomb-code the fingerprint traffic (PDMS-Golomb).
    pub golomb: bool,
    /// Latency-reduced hypercube routing for the fingerprint all-to-alls.
    pub latency_optimal: bool,
}

impl Default for PrefixDoublingConfig {
    fn default() -> Self {
        Self {
            initial: None,
            growth_num: 2,
            growth_den: 1,
            fp_bits: None,
            golomb: false,
            latency_optimal: false,
        }
    }
}

impl PrefixDoublingConfig {
    /// Rejects nonsensical knob values with a panic naming the offender,
    /// following the repo's fail-loud knob policy: a typo must not
    /// silently hang the sorter or fall back to defaults.
    ///
    /// Every sorter that embeds this config calls `validate` up front, so
    /// a bad value fails before any communication happens — even on
    /// degenerate runs (p = 1, empty shards) that would never reach the
    /// doubling loop.
    pub fn validate(&self) {
        assert!(
            self.growth_den > 0,
            "PrefixDoublingConfig::growth_den = 0: the growth factor 1+\u{3b5} = \
             growth_num/growth_den needs a positive denominator"
        );
        assert!(
            self.growth_num > self.growth_den,
            "PrefixDoublingConfig growth factor {}/{} has \u{3b5} \u{2264} 0: the prefix \
             length \u{2113} would never grow and Step 1+\u{3b5} would loop forever \
             (need growth_num > growth_den)",
            self.growth_num,
            self.growth_den
        );
        if let Some(initial) = self.initial {
            assert!(
                initial > 0,
                "PrefixDoublingConfig::initial = Some(0): a zero-character initial guess \
                 fingerprints empty prefixes; use None for the automatic \u{398}(log p) guess"
            );
        }
        if let Some(bits) = self.fp_bits {
            assert!(
                (1..=64).contains(&bits),
                "PrefixDoublingConfig::fp_bits = Some({bits}): fingerprint width must be in \
                 1..=64 (zero-width fingerprints make every string a duplicate; fingerprints \
                 are u64); use None to auto-select from the global string count"
            );
        }
    }
}

/// Counters of one approximation run.
#[derive(Debug, Default, Clone, Copy)]
pub struct PrefixDoublingStats {
    /// Number of ℓ-iterations executed.
    pub iterations: u32,
    /// Fingerprints this PE sent over all iterations.
    pub fps_sent: u64,
    /// Prefix characters hashed locally (the O(D̂) local work term).
    pub chars_hashed: u64,
}

/// Fingerprint of the `plen`-prefix of a string.
///
/// Hashes the raw bytes plus the *effective* prefix length, so a complete
/// string of length `plen` and a longer string's `plen`-prefix get equal
/// fingerprints exactly when their first `plen` characters agree — the
/// 0-terminator semantics of the paper fall out of `plen = min(ℓ, len)`.
#[inline]
pub(crate) fn prefix_fp(s: &[u8], plen: usize) -> u64 {
    mix64(hash_bytes(&s[..plen]) ^ (plen as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Approximates distinguishing prefix lengths for a **locally sorted**
/// set with its LCP array. Collective: every PE calls it.
///
/// Returns `approx[i] ∈ [1, len(sᵢ)+1]` with `approx[i] ≥ DIST(sᵢ)`;
/// a value of `len+1` means the full string (with terminator) is needed
/// (exact duplicates and prefix-of cases).
pub fn approx_dist_prefixes(
    comm: &Comm,
    set: &StringSet,
    lcps: &[u32],
    cfg: &PrefixDoublingConfig,
) -> (Vec<u32>, PrefixDoublingStats) {
    cfg.validate();
    let n = set.len();
    debug_assert_eq!(lcps.len(), n);
    debug_assert!(dss_strkit::checker::is_sorted(set), "input must be sorted");
    let mut stats = PrefixDoublingStats::default();

    // Worst-case default: the whole string plus terminator.
    let mut approx: Vec<u32> = (0..n).map(|i| set.get(i).len() as u32 + 1).collect();
    let mut active: Vec<u32> = (0..n as u32).collect();

    let global_n = comm.allreduce_u64(n as u64, ReduceOp::Sum);
    let fp_bits = cfg.fp_bits.unwrap_or_else(|| recommended_fp_bits(global_n));
    let dedup_cfg = DedupConfig {
        fp_bits,
        golomb: cfg.golomb,
        latency_optimal: cfg.latency_optimal,
    };
    let mut ell: u64 = match cfg.initial {
        // Θ(log p / log σ) characters; for byte data log σ ≈ 8, and tiny
        // initial guesses only waste rounds, so start at ≥ 4.
        None => (((64 - (comm.size() as u64).leading_zeros()) as u64).div_ceil(8)).max(4),
        Some(initial) => initial as u64,
    };

    loop {
        let globally_active = comm.allreduce_u64(active.len() as u64, ReduceOp::Sum);
        if globally_active == 0 {
            break;
        }
        stats.iterations += 1;

        // Group active strings by their effective ℓ-prefix. Active
        // strings need not be adjacent in the sorted order, so the running
        // minimum LCP since the group representative decides membership:
        // the group continues while `min ≥ plen` and the effective prefix
        // lengths agree. Groups are the unit of communication — exactly
        // **one** fingerprint per locally repeated prefix crosses the wire
        // ("communicating repetitions of the same prefixes only once"),
        // but it *must* cross even for groups of ≥ 2: another PE may hold
        // a solo string with the same prefix that would otherwise be
        // declared unique.
        struct Group {
            first: usize,   // index in `active` of the first member
            members: usize, // number of active members
        }
        let mut groups: Vec<Group> = Vec::new();
        let mut rep: Option<(usize, usize)> = None; // (string idx, plen)
        let mut run_min_lcp = u32::MAX;
        let mut prev_scanned = 0usize;
        for (a_pos, &ai) in active.iter().enumerate() {
            let i = ai as usize;
            let plen = (ell as usize).min(set.get(i).len());
            let same_group = match rep {
                Some((_, rep_plen)) => {
                    for &l in &lcps[prev_scanned + 1..=i] {
                        run_min_lcp = run_min_lcp.min(l);
                    }
                    rep_plen == plen && run_min_lcp as usize >= plen
                }
                None => false,
            };
            prev_scanned = i;
            if same_group {
                groups.last_mut().expect("group open").members += 1;
            } else {
                groups.push(Group {
                    first: a_pos,
                    members: 1,
                });
                rep = Some((i, plen));
                run_min_lcp = u32::MAX;
            }
        }

        // One fingerprint per group.
        let mut fps: Vec<u64> = Vec::with_capacity(groups.len());
        for g in &groups {
            let i = active[g.first] as usize;
            let s = set.get(i);
            let plen = (ell as usize).min(s.len());
            fps.push(prefix_fp(s, plen));
            stats.chars_hashed += plen as u64;
        }
        stats.fps_sent += fps.len() as u64;

        let (unique, _) = global_uniqueness(comm, &fps, &dedup_cfg);

        let mut next_active: Vec<u32> = Vec::with_capacity(active.len());
        for (g, is_unique) in groups.iter().zip(&unique) {
            for m in 0..g.members {
                let ai = active[g.first + m];
                let i = ai as usize;
                let len = set.get(i).len() as u64;
                if g.members == 1 && *is_unique {
                    // Prefix proven globally unique: DIST ≤ min(ℓ, len+1).
                    approx[i] = (ell.min(len + 1)) as u32;
                } else if len < ell {
                    // The whole string (with terminator) is duplicated —
                    // exact duplicate or exact prefix of a longer string;
                    // approx stays at its len+1 cap.
                } else {
                    next_active.push(ai);
                }
            }
        }
        active = next_active;
        ell = (ell * cfg.growth_num as u64).div_ceil(cfg.growth_den as u64);
    }
    (approx, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_net::runner::{run_spmd, RunConfig};
    use dss_strkit::lcp::dist_prefixes_naive;
    use dss_strkit::sort::sort_with_lcp;
    use std::time::Duration;

    fn cfg_run() -> RunConfig {
        RunConfig {
            recv_timeout: Duration::from_secs(30),
            ..RunConfig::default()
        }
    }

    /// Runs the approximation over `p` PEs and validates the guarantees:
    /// approx ≥ true DIST (capped), and approx-length prefixes are unique
    /// among non-duplicate strings.
    fn check(p: usize, shards: Vec<Vec<&'static str>>, cfg: PrefixDoublingConfig) {
        // Global truth.
        let mut all: Vec<&str> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        let global = StringSet::from_strs(&all);
        let truth = dist_prefixes_naive(&global);
        let truth_of = |s: &[u8]| -> u32 {
            let i = (0..global.len())
                .find(|&i| global.get(i) == s)
                .expect("string in global set");
            truth[i]
        };
        let shards_ref = &shards;
        let res = run_spmd(p, cfg_run(), move |comm| {
            let mut set = StringSet::from_strs(&shards_ref[comm.rank()]);
            let (lcps, _) = sort_with_lcp(&mut set);
            let (approx, stats) = approx_dist_prefixes(comm, &set, &lcps, &cfg);
            let strs = set.to_vecs();
            (strs, approx, stats.iterations)
        });
        for (strs, approx, _) in &res.values {
            for (s, &a) in strs.iter().zip(approx) {
                let t = truth_of(s);
                assert!(
                    a >= t,
                    "approx {a} < true DIST {t} for {:?}",
                    String::from_utf8_lossy(s)
                );
                assert!(
                    a <= s.len() as u32 + 1,
                    "approx {a} beyond len+1 for {:?}",
                    String::from_utf8_lossy(s)
                );
            }
        }
    }

    #[test]
    fn paper_example_three_pes() {
        check(
            3,
            vec![
                vec!["alpha", "order", "alps", "algae"],
                vec!["sorter", "snow", "algo", "sorbet"],
                vec!["sorted", "orange", "soul", "organ"],
            ],
            PrefixDoublingConfig::default(),
        );
    }

    #[test]
    fn exact_duplicates_cap_at_full_length() {
        let res = run_spmd(2, cfg_run(), |comm| {
            let mut set = StringSet::from_strs(&["dup", "unique_one"]);
            if comm.rank() == 1 {
                set = StringSet::from_strs(&["dup", "other"]);
            }
            let (lcps, _) = sort_with_lcp(&mut set);
            let (approx, _) =
                approx_dist_prefixes(comm, &set, &lcps, &PrefixDoublingConfig::default());
            (set.to_vecs(), approx)
        });
        for (strs, approx) in &res.values {
            for (s, &a) in strs.iter().zip(approx) {
                if s == b"dup" {
                    assert_eq!(a, 4, "dup needs len+1");
                }
            }
        }
    }

    #[test]
    fn local_duplicates_send_one_representative_fingerprint() {
        let res = run_spmd(1, cfg_run(), |comm| {
            let mut set = StringSet::from_strs(&["same", "same", "same"]);
            let (lcps, _) = sort_with_lcp(&mut set);
            let (approx, stats) =
                approx_dist_prefixes(comm, &set, &lcps, &PrefixDoublingConfig::default());
            (approx, stats.fps_sent)
        });
        let (approx, fps_sent) = &res.values[0];
        assert_eq!(approx, &vec![5, 5, 5]);
        // The three equal strings form one group per round: exactly one
        // fingerprint is sent per round (two rounds: ℓ = 4, then ℓ = 8
        // caps them at len+1), never three.
        assert_eq!(*fps_sent, 2);
    }

    #[test]
    fn solo_prefix_against_remote_group_is_not_unique() {
        // Regression: PE 0 holds two strings sharing "dcca"; PE 1 holds a
        // *single* string sharing it too. The group sends one fingerprint,
        // so PE 1's solo must be seen as duplicated at ℓ=4 and end up with
        // approx ≥ its true DIST of 6.
        let res = run_spmd(2, cfg_run(), |comm| {
            let strs = if comm.rank() == 0 {
                vec!["dccadabbdedae", "dccadxyzaaaaa"]
            } else {
                vec!["dccadedaceabe"]
            };
            let mut set = StringSet::from_strs(&strs);
            let (lcps, _) = sort_with_lcp(&mut set);
            let (approx, _) =
                approx_dist_prefixes(comm, &set, &lcps, &PrefixDoublingConfig::default());
            (set.to_vecs(), approx)
        });
        for (strs, approx) in &res.values {
            for (s, &a) in strs.iter().zip(approx) {
                assert!(
                    a >= 6,
                    "approx {a} too small for {:?}",
                    String::from_utf8_lossy(s)
                );
            }
        }
    }

    #[test]
    fn prefix_of_relation() {
        check(
            2,
            vec![vec!["abc"], vec!["abcdef", "xyz"]],
            PrefixDoublingConfig::default(),
        );
    }

    #[test]
    fn empty_and_single_pe_inputs() {
        check(2, vec![vec![], vec![]], PrefixDoublingConfig::default());
        check(
            2,
            vec![vec!["only"], vec![]],
            PrefixDoublingConfig::default(),
        );
        check(
            1,
            vec![vec!["a", "b", "c"]],
            PrefixDoublingConfig::default(),
        );
    }

    #[test]
    fn long_shared_prefixes_across_pes() {
        // 64-char shared prefix across PEs: needs several doublings.
        let a: &'static str = "0000000000000000000000000000000000000000000000000000000000000000A";
        let b: &'static str = "0000000000000000000000000000000000000000000000000000000000000000B";
        check(2, vec![vec![a], vec![b]], PrefixDoublingConfig::default());
    }

    #[test]
    fn golomb_and_raw_agree() {
        let shards = vec![
            vec!["tree", "trie", "trunk", "apple"],
            vec!["treat", "apple", "trick"],
        ];
        check(2, shards.clone(), PrefixDoublingConfig::default());
        check(
            2,
            shards,
            PrefixDoublingConfig {
                golomb: true,
                ..PrefixDoublingConfig::default()
            },
        );
    }

    #[test]
    fn growth_factor_controls_tightness() {
        // With ε = 0.5 (growth 3/2) the bound is at most 1.5× above the
        // power-of-two start, i.e. tighter on average than doubling.
        let res = run_spmd(1, cfg_run(), |comm| {
            let strs: Vec<String> = (0..64).map(|i| format!("{:030}x{i:02}", 0)).collect();
            let refs: Vec<&str> = strs.iter().map(|s| s.as_str()).collect();
            let mut set = StringSet::from_strs(&refs);
            let (lcps, _) = sort_with_lcp(&mut set);
            let tight = approx_dist_prefixes(
                comm,
                &set,
                &lcps,
                &PrefixDoublingConfig {
                    growth_num: 3,
                    growth_den: 2,
                    ..PrefixDoublingConfig::default()
                },
            )
            .0;
            let doubled =
                approx_dist_prefixes(comm, &set, &lcps, &PrefixDoublingConfig::default()).0;
            let t: u64 = tight.iter().map(|&v| v as u64).sum();
            let d: u64 = doubled.iter().map(|&v| v as u64).sum();
            (t, d)
        });
        let (t, d) = res.values[0];
        assert!(t <= d, "3/2 growth {t} should be ≤ doubling {d}");
    }

    #[test]
    #[should_panic(expected = "PrefixDoublingConfig growth factor 1/1 has ε ≤ 0")]
    fn growth_factor_one_panics() {
        PrefixDoublingConfig {
            growth_num: 1,
            growth_den: 1,
            ..PrefixDoublingConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "PrefixDoublingConfig growth factor 2/3 has ε ≤ 0")]
    fn shrinking_growth_factor_panics() {
        PrefixDoublingConfig {
            growth_num: 2,
            growth_den: 3,
            ..PrefixDoublingConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "PrefixDoublingConfig::growth_den = 0")]
    fn zero_growth_denominator_panics() {
        PrefixDoublingConfig {
            growth_den: 0,
            ..PrefixDoublingConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "PrefixDoublingConfig::initial = Some(0)")]
    fn zero_initial_guess_panics() {
        PrefixDoublingConfig {
            initial: Some(0),
            ..PrefixDoublingConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "PrefixDoublingConfig::fp_bits = Some(0)")]
    fn zero_width_fingerprints_panic() {
        PrefixDoublingConfig {
            fp_bits: Some(0),
            ..PrefixDoublingConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "PrefixDoublingConfig::fp_bits = Some(65)")]
    fn oversized_fingerprints_panic() {
        PrefixDoublingConfig {
            fp_bits: Some(65),
            ..PrefixDoublingConfig::default()
        }
        .validate();
    }

    #[test]
    fn explicit_valid_knobs_pass_validation() {
        PrefixDoublingConfig {
            initial: Some(8),
            growth_num: 3,
            growth_den: 2,
            fp_bits: Some(32),
            ..PrefixDoublingConfig::default()
        }
        .validate();
        PrefixDoublingConfig::default().validate();
    }

    #[test]
    fn stats_report_work() {
        let res = run_spmd(2, cfg_run(), |comm| {
            let strs = if comm.rank() == 0 {
                vec!["aaaa", "bbbb"]
            } else {
                vec!["cccc", "dddd"]
            };
            let mut set = StringSet::from_strs(&strs);
            let (lcps, _) = sort_with_lcp(&mut set);
            let (_, stats) =
                approx_dist_prefixes(comm, &set, &lcps, &PrefixDoublingConfig::default());
            stats
        });
        for s in &res.values {
            assert!(s.iterations >= 1);
            assert!(s.fps_sent >= 2);
            assert!(s.chars_hashed >= 8);
        }
    }
}
