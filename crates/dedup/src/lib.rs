//! # dss-dedup — communication-efficient duplicate detection & Step 1+ε
//!
//! PDMS (§VI of the paper) bounds each string's distinguishing prefix by
//! testing geometrically growing prefixes for global uniqueness. The test
//! is the communication-efficient duplicate detection of Sanders, Schlag
//! and Müller: hash the prefix to a fingerprint, route fingerprints to
//! hash-designated owner PEs, count multiplicities, and reply one bit per
//! fingerprint. Errors are one-sided — a fingerprint collision can only
//! declare a truly unique prefix "duplicate", which merely grows the
//! prefix further; anything declared *unique* really is unique.
//!
//! * [`dupdetect`] — the fingerprint exchange itself, with optional
//!   Golomb coding of the (range-partitioned, sorted) fingerprint streams
//!   and bitmap replies: this is what separates PDMS-Golomb from PDMS.
//! * [`prefix_doubling`] — Step 1+ε: iterate ℓ ← ℓ·(1+ε) over still-
//!   ambiguous strings, using the local LCP array to recognise locally
//!   repeated prefixes without sending them (they are duplicates by
//!   definition), until every string has a proven-unique prefix or is
//!   capped at its full length.

pub mod dupdetect;
pub mod estimate;
pub mod prefix_doubling;

pub use dupdetect::{global_uniqueness, recommended_fp_bits, DedupConfig, DedupStats};
pub use estimate::{
    estimate_dist_by_gossip, estimate_dist_by_prefix_sampling, recommend_suffix_strategy,
    DnEstimate,
};
pub use prefix_doubling::{approx_dist_prefixes, PrefixDoublingConfig, PrefixDoublingStats};

pub(crate) use prefix_doubling::prefix_fp as prefix_doubling_fp;
