//! Estimating D/n without running a full sort — §VIII of the paper:
//!
//! "The algorithm for approximating distinguishing prefixes … is an
//! overkill if we only need information on global values like D/n or its
//! variance. These values can be approximated more efficiently by
//! sampling. A simple approach is to gossip a small sample of the input
//! strings. … More efficiently, we can take a Bernoulli sample of
//! prefixes of keys rather than input strings. This allows us to still
//! use distributed hashing and thus makes the algorithm more scalable."
//!
//! Both estimators are implemented:
//!
//! * [`estimate_dist_by_gossip`] — gossip s random strings per PE; every
//!   PE computes the distinguishing prefixes *within the sample* locally.
//!   Biased low (fewer neighbours than the full set; the paper notes a
//!   sample of Θ(ε⁻²·n·d̂/D) is needed when a few strings dominate D).
//! * [`estimate_dist_by_prefix_sampling`] — Bernoulli-sample (string,
//!   prefix-length) pairs at geometric lengths and run one round of the
//!   distributed duplicate detection over all sampled fingerprints;
//!   `P(DIST > ℓ)` is estimated from the duplicate fraction per level and
//!   integrated into `E[DIST]`. Scales like the duplicate detection
//!   itself (distributed hashing; no central gather).
//!
//! The motivating application (§VI): "when D/n is small, we can use
//! string sorting based algorithms [for suffix sorting], otherwise more
//! sophisticated algorithms are better" — see [`recommend_suffix_strategy`].

use crate::dupdetect::{global_uniqueness, recommended_fp_bits, DedupConfig};
use dss_codec::wire;
use dss_net::collectives::ReduceOp;
use dss_net::Comm;
use dss_strkit::lcp::dist_prefixes_from_sorted;
use dss_strkit::sort::sort_with_lcp;
use dss_strkit::StringSet;

/// Result of a D/n estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DnEstimate {
    /// Estimated mean distinguishing prefix length (D/n).
    pub mean_dist: f64,
    /// Estimated standard deviation of DIST (gossip estimator only;
    /// 0 for the prefix-sampling estimator).
    pub std_dist: f64,
    /// Number of sampled elements the estimate is based on (global).
    pub samples: u64,
}

/// Gossip estimator: each PE contributes `sample_per_pe` random strings;
/// the union is broadcast to everyone (O(β·s·p·ℓ̂) volume, one gossip),
/// and DIST statistics are computed locally within the sample.
pub fn estimate_dist_by_gossip(comm: &Comm, set: &StringSet, sample_per_pe: usize) -> DnEstimate {
    let mut rng = comm.rng();
    let n = set.len();
    let take = sample_per_pe.min(n);
    let mut buf = Vec::new();
    // Sample *without* replacement (partial Fisher–Yates): a string drawn
    // twice would look like an exact duplicate and inflate DIST to len+1.
    let mut pool: Vec<usize> = (0..n).collect();
    for k in 0..take {
        let j = k + rng.next_index(n - k);
        pool.swap(k, j);
    }
    let idxs = &pool[..take];
    let strings: Vec<&[u8]> = idxs.iter().map(|&i| set.get(i)).collect();
    wire::encode_plain(strings.into_iter(), None, &mut buf);
    let parts = comm.allgatherv(buf);
    let mut sample = StringSet::new();
    for part in &parts {
        let mut pos = 0;
        let run = wire::decode_plain(part, &mut pos).expect("well-formed sample");
        for s in run.iter() {
            sample.push(s);
        }
    }
    let m = sample.len();
    if m == 0 {
        return DnEstimate {
            mean_dist: 0.0,
            std_dist: 0.0,
            samples: 0,
        };
    }
    let (lcps, _) = sort_with_lcp(&mut sample);
    let dists = dist_prefixes_from_sorted(&lcps, &sample.lens());
    let sum: f64 = dists.iter().map(|&d| d as f64).sum();
    let mean = sum / m as f64;
    let var: f64 = dists
        .iter()
        .map(|&d| {
            let x = d as f64 - mean;
            x * x
        })
        .sum::<f64>()
        / m as f64;
    DnEstimate {
        mean_dist: mean,
        std_dist: var.sqrt(),
        samples: m as u64,
    }
}

/// Per-level outcome of the Bernoulli prefix-sampling estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelEstimate {
    /// Prefix length ℓ of this level.
    pub level: u32,
    /// Sampled prefixes at this level (global).
    pub sampled: u64,
    /// Fraction of them that were globally unique.
    pub unique_fraction: f64,
}

/// Bernoulli prefix-sampling estimator: at geometric prefix lengths
/// ℓ = 1, 2, 4, … every string's ℓ-prefix is sampled with probability
/// `rate`; one distributed duplicate detection over all sampled
/// fingerprints yields per-level unique fractions, integrated into
/// `E[DIST] ≈ Σ (ℓ_k − ℓ_{k−1}) · P(DIST > ℓ_{k−1})`.
///
/// Because a duplicated prefix is only *observed* duplicated when another
/// copy is sampled too, small rates bias the unique fractions up (and the
/// estimate down); `rate = 1` is exact up to fingerprint collisions.
pub fn estimate_dist_by_prefix_sampling(
    comm: &Comm,
    set: &StringSet,
    rate: f64,
) -> (DnEstimate, Vec<LevelEstimate>) {
    let mut rng = comm.rng();
    let global_n = comm.allreduce_u64(set.len() as u64, ReduceOp::Sum);
    let max_len = comm.allreduce_u64(
        set.iter().map(|s| s.len() as u64).max().unwrap_or(0),
        ReduceOp::Max,
    );
    let cfg = DedupConfig {
        fp_bits: recommended_fp_bits(global_n.max(1)),
        golomb: true,
        latency_optimal: false,
    };
    // Geometric levels 1, 2, 4, …, ≥ max_len + 1 (to catch duplicates).
    let mut levels: Vec<u64> = Vec::new();
    let mut ell = 1u64;
    while ell <= max_len {
        levels.push(ell);
        ell *= 2;
    }
    levels.push(max_len + 1);
    // Sample (string, level) pairs; fingerprint = salted prefix hash, so
    // different levels live in disjoint fingerprint families.
    let mut fps: Vec<u64> = Vec::new();
    let mut fp_level: Vec<u32> = Vec::new();
    let threshold = (rate.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
    for i in 0..set.len() {
        let s = set.get(i);
        for (li, &ell) in levels.iter().enumerate() {
            if (ell as usize) > s.len() + 1 {
                break;
            }
            if rng.next_u64() <= threshold {
                let plen = (ell as usize).min(s.len());
                fps.push(super::prefix_doubling_fp(s, plen));
                fp_level.push(li as u32);
            }
        }
    }
    let (unique, _) = global_uniqueness(comm, &fps, &cfg);
    // Per-level tallies, combined across PEs.
    let mut sampled = vec![0u64; levels.len()];
    let mut uniq = vec![0u64; levels.len()];
    for (k, &li) in fp_level.iter().enumerate() {
        sampled[li as usize] += 1;
        if unique[k] {
            uniq[li as usize] += 1;
        }
    }
    let mut per_level = Vec::with_capacity(levels.len());
    for (li, &ell) in levels.iter().enumerate() {
        let s_glob = comm.allreduce_u64(sampled[li], ReduceOp::Sum);
        let u_glob = comm.allreduce_u64(uniq[li], ReduceOp::Sum);
        per_level.push(LevelEstimate {
            level: ell as u32,
            sampled: s_glob,
            unique_fraction: if s_glob == 0 {
                1.0
            } else {
                u_glob as f64 / s_glob as f64
            },
        });
    }
    // E[DIST] ≈ Σ (ℓ_k − ℓ_{k−1}) · P(DIST > ℓ_{k−1});   P(DIST > 0) = 1.
    let mut mean = 0.0f64;
    let mut prev_level = 0u64;
    let mut prev_dup_frac = 1.0f64;
    for le in &per_level {
        mean += (le.level as u64 - prev_level) as f64 * prev_dup_frac;
        prev_level = le.level as u64;
        prev_dup_frac = 1.0 - le.unique_fraction;
    }
    let samples: u64 = per_level.iter().map(|l| l.sampled).sum();
    (
        DnEstimate {
            mean_dist: mean,
            std_dist: 0.0,
            samples,
        },
        per_level,
    )
}

/// The §VI application: pick a suffix-sorting strategy from a D/n
/// estimate — "when D/n is small, we can use string sorting based
/// algorithms, otherwise more sophisticated algorithms are better".
pub fn recommend_suffix_strategy(estimate: &DnEstimate, text_len: u64) -> &'static str {
    // Suffix instances have n = text_len suffixes; string-sorting them is
    // attractive while the total distinguishing prefix volume stays far
    // below the quadratic worst case.
    if estimate.mean_dist * (text_len as f64) < 0.05 * (text_len as f64) * (text_len as f64) {
        "string-sorting (PDMS on suffixes)"
    } else {
        "dedicated suffix-array construction (e.g. difference cover)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_gen::Workload;
    use dss_net::runner::{run_spmd, RunConfig};
    use dss_strkit::lcp::total_dist_prefix;
    use std::time::Duration;

    fn cfg_run() -> RunConfig {
        RunConfig {
            recv_timeout: Duration::from_secs(30),
            ..RunConfig::default()
        }
    }

    /// Exact global D/n for a workload (oracle).
    fn true_mean_dist(w: &Workload, p: usize, seed: u64) -> f64 {
        let mut all = StringSet::new();
        for r in 0..p {
            all.extend_from(&w.generate(r, p, seed));
        }
        let n = all.len();
        let (lcps, _) = sort_with_lcp(&mut all);
        total_dist_prefix(&lcps, &all.lens()) as f64 / n as f64
    }

    #[test]
    fn gossip_estimator_tracks_the_ratio_family() {
        // D/N inputs have near-constant DIST; even the biased gossip
        // estimator should land close.
        for r in [0.2f64, 0.8] {
            let w = Workload::DnRatio {
                n_per_pe: 400,
                len: 100,
                r,
                sigma: 16,
            };
            let truth = true_mean_dist(&w, 4, 3);
            let res = run_spmd(4, cfg_run(), move |comm| {
                let set = w.generate(comm.rank(), comm.size(), 3);
                estimate_dist_by_gossip(comm, &set, 100)
            });
            for est in &res.values {
                assert!(
                    (est.mean_dist - truth).abs() / truth < 0.25,
                    "r={r}: estimate {} vs truth {truth}",
                    est.mean_dist
                );
                assert!(est.samples >= 400);
            }
        }
    }

    #[test]
    fn gossip_estimates_agree_across_pes() {
        let res = run_spmd(3, cfg_run(), |comm| {
            let w = Workload::Web { n_per_pe: 200 };
            let set = w.generate(comm.rank(), comm.size(), 9);
            estimate_dist_by_gossip(comm, &set, 50)
        });
        for est in &res.values {
            assert_eq!(est.mean_dist, res.values[0].mean_dist);
        }
    }

    #[test]
    fn prefix_sampling_at_rate_one_matches_oracle() {
        let w = Workload::DnRatio {
            n_per_pe: 300,
            len: 64,
            r: 0.5,
            sigma: 16,
        };
        let truth = true_mean_dist(&w, 3, 5);
        let res = run_spmd(3, cfg_run(), move |comm| {
            let set = w.generate(comm.rank(), comm.size(), 5);
            estimate_dist_by_prefix_sampling(comm, &set, 1.0).0
        });
        for est in &res.values {
            // Geometric levels overshoot DIST by up to 2x; the estimate
            // must bracket the truth within that envelope.
            assert!(
                est.mean_dist >= truth * 0.9 && est.mean_dist <= truth * 2.2,
                "estimate {} vs truth {truth}",
                est.mean_dist
            );
        }
    }

    #[test]
    fn prefix_sampling_separates_low_and_high_dn() {
        let run_for = |r: f64| -> f64 {
            let w = Workload::DnRatio {
                n_per_pe: 300,
                len: 80,
                r,
                sigma: 16,
            };
            let res = run_spmd(2, cfg_run(), move |comm| {
                let set = w.generate(comm.rank(), comm.size(), 6);
                estimate_dist_by_prefix_sampling(comm, &set, 0.5).0
            });
            res.values[0].mean_dist
        };
        let low = run_for(0.1);
        let high = run_for(0.9);
        assert!(
            high > 3.0 * low,
            "high-D/N estimate {high} must dwarf low-D/N estimate {low}"
        );
    }

    #[test]
    fn prefix_sampling_levels_are_monotone_in_uniqueness() {
        let res = run_spmd(2, cfg_run(), |comm| {
            let w = Workload::Dna { n_per_pe: 300 };
            let set = w.generate(comm.rank(), comm.size(), 7);
            estimate_dist_by_prefix_sampling(comm, &set, 1.0).1
        });
        let levels = &res.values[0];
        // Longer prefixes can only become *more* unique (up to sampling
        // noise at rate 1 there is none, modulo fp collisions).
        for w2 in levels.windows(2) {
            assert!(
                w2[1].unique_fraction >= w2[0].unique_fraction - 0.02,
                "uniqueness must not drop: {:?}",
                levels
            );
        }
    }

    #[test]
    fn empty_input_estimates_zero() {
        let res = run_spmd(2, cfg_run(), |comm| {
            let set = StringSet::new();
            let g = estimate_dist_by_gossip(comm, &set, 10);
            let (p, _) = estimate_dist_by_prefix_sampling(comm, &set, 1.0);
            (g, p)
        });
        for (g, p) in &res.values {
            assert_eq!(g.samples, 0);
            assert_eq!(p.samples, 0);
        }
    }

    #[test]
    fn recommendation_switches_with_dn() {
        let low = DnEstimate {
            mean_dist: 12.0,
            std_dist: 1.0,
            samples: 100,
        };
        let high = DnEstimate {
            mean_dist: 4000.0,
            std_dist: 10.0,
            samples: 100,
        };
        assert!(recommend_suffix_strategy(&low, 10_000).contains("PDMS"));
        assert!(recommend_suffix_strategy(&high, 10_000).contains("difference cover"));
    }
}
