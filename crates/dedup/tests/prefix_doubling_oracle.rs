//! Oracle test for Step 1+ε: over many random multi-PE instances, every
//! approximated distinguishing prefix length must dominate the true
//! `DIST` computed by the O(n²) definition — the one-sided-error
//! guarantee PDMS's correctness rests on — while staying within the
//! geometric-growth envelope.

use dss_dedup::prefix_doubling::{approx_dist_prefixes, PrefixDoublingConfig};
use dss_net::runner::{run_spmd, RunConfig};
use dss_strkit::lcp::dist_prefixes_naive;
use dss_strkit::sort::sort_with_lcp;
use dss_strkit::StringSet;
use rand::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

fn cfg_run() -> RunConfig {
    RunConfig {
        recv_timeout: Duration::from_secs(30),
        ..RunConfig::default()
    }
}

fn random_shards(p: usize, n: usize, max_len: usize, sigma: u8, seed: u64) -> Vec<Vec<Vec<u8>>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..p)
        .map(|_| {
            (0..n)
                .map(|_| {
                    let len = rng.gen_range(0..=max_len);
                    (0..len)
                        .map(|_| rng.gen_range(b'a'..b'a' + sigma))
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn check_instance(p: usize, shards: Vec<Vec<Vec<u8>>>, cfg: PrefixDoublingConfig) {
    // Ground truth over the global multiset.
    let mut all: Vec<Vec<u8>> = shards.iter().flatten().cloned().collect();
    all.sort();
    let global = StringSet::from_iter_bytes(all.iter().map(|s| s.as_slice()));
    let truth = dist_prefixes_naive(&global);
    let mut truth_of: HashMap<Vec<u8>, u32> = HashMap::new();
    for (i, s) in global.iter().enumerate() {
        // Equal strings share the same DIST; insert once.
        truth_of.entry(s.to_vec()).or_insert(truth[i]);
    }
    let shards_ref = &shards;
    let res = run_spmd(p, cfg_run(), move |comm| {
        let mut set =
            StringSet::from_iter_bytes(shards_ref[comm.rank()].iter().map(|s| s.as_slice()));
        let (lcps, _) = sort_with_lcp(&mut set);
        let (approx, stats) = approx_dist_prefixes(comm, &set, &lcps, &cfg);
        (set.to_vecs(), approx, stats.iterations)
    });
    for (rank, (strs, approx, _)) in res.values.iter().enumerate() {
        for (s, &a) in strs.iter().zip(approx) {
            let t = truth_of[s];
            assert!(
                a >= t,
                "PE{rank}: approx {a} < DIST {t} for {:?}",
                String::from_utf8_lossy(s)
            );
            assert!(
                a <= s.len() as u32 + 1,
                "PE{rank}: approx {a} exceeds len+1 for {:?}",
                String::from_utf8_lossy(s)
            );
        }
    }
}

#[test]
fn oracle_many_random_instances() {
    for seed in 0..12u64 {
        let p = 2 + (seed as usize % 3);
        let sigma = [2u8, 3, 26][(seed % 3) as usize];
        let shards = random_shards(p, 50, 12, sigma, seed * 31 + 1);
        check_instance(p, shards, PrefixDoublingConfig::default());
    }
}

#[test]
fn oracle_with_golomb_and_slow_growth() {
    for seed in 0..6u64 {
        let shards = random_shards(3, 40, 10, 3, seed * 7 + 100);
        check_instance(
            3,
            shards.clone(),
            PrefixDoublingConfig {
                golomb: true,
                ..PrefixDoublingConfig::default()
            },
        );
        check_instance(
            3,
            shards,
            PrefixDoublingConfig {
                growth_num: 3,
                growth_den: 2,
                ..PrefixDoublingConfig::default()
            },
        );
    }
}

#[test]
fn oracle_duplicate_heavy() {
    // Small alphabet, short strings → many exact duplicates and
    // prefix-of relationships across PEs.
    for seed in 0..8u64 {
        let shards = random_shards(4, 60, 5, 2, seed * 13 + 7);
        check_instance(4, shards, PrefixDoublingConfig::default());
    }
}

#[test]
fn oracle_tiny_fingerprints_stay_safe() {
    // 16-bit fingerprints force frequent collisions: approximations may
    // inflate but must never dip below DIST.
    for seed in 0..4u64 {
        let shards = random_shards(3, 80, 8, 3, seed + 500);
        check_instance(
            3,
            shards,
            PrefixDoublingConfig {
                fp_bits: Some(16),
                ..PrefixDoublingConfig::default()
            },
        );
    }
}
