//! Hypercube topology helpers.
//!
//! hQuick (§IV) arranges `2^⌊log p⌋` PEs as a d-dimensional hypercube and
//! peels one dimension per iteration; these helpers keep the bit fiddling
//! in one place.

/// Largest `d` with `2^d ≤ p`; the paper's `d = ⌊log p⌋` (0 for `p = 1`).
pub fn hypercube_dim(p: usize) -> u32 {
    debug_assert!(p >= 1);
    usize::BITS - 1 - p.leading_zeros()
}

/// Number of PEs used by the hypercube algorithms: `2^⌊log p⌋ ≥ p/2`.
pub fn hypercube_size(p: usize) -> usize {
    1 << hypercube_dim(p)
}

/// Communication partner of `rank` across dimension `dim`.
pub fn partner(rank: usize, dim: u32) -> usize {
    rank ^ (1 << dim)
}

/// Whether `rank` is in the lower half of its subcube along `dim`.
pub fn is_lower(rank: usize, dim: u32) -> bool {
    rank & (1 << dim) == 0
}

/// Identifier of the `i`-dimensional subcube containing `rank` (its high
/// bits above dimension `i`).
pub fn subcube_id(rank: usize, dims: u32) -> usize {
    rank >> dims
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_and_sizes() {
        assert_eq!(hypercube_dim(1), 0);
        assert_eq!(hypercube_dim(2), 1);
        assert_eq!(hypercube_dim(3), 1);
        assert_eq!(hypercube_dim(4), 2);
        assert_eq!(hypercube_dim(20), 4);
        assert_eq!(hypercube_size(20), 16);
        assert_eq!(hypercube_size(1280), 1024);
    }

    #[test]
    fn partners_are_symmetric() {
        for p in [2usize, 4, 8, 16] {
            let d = hypercube_dim(p);
            for r in 0..p {
                for k in 0..d {
                    let q = partner(r, k);
                    assert_eq!(partner(q, k), r);
                    assert_ne!(is_lower(r, k), is_lower(q, k));
                }
            }
        }
    }

    #[test]
    fn subcube_ids_group_correctly() {
        // In an 8-cube split along 2 low dims: {0..3} and {4..7}.
        assert_eq!(subcube_id(3, 2), 0);
        assert_eq!(subcube_id(4, 2), 1);
        assert_eq!(subcube_id(7, 2), 1);
    }
}
