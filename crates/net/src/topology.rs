//! Topology views over a communicator: hypercube helpers and the r×c
//! grid view used by multi-level algorithms.
//!
//! ## Hypercube
//!
//! hQuick (§IV) arranges `2^⌊log p⌋` PEs as a d-dimensional hypercube and
//! peels one dimension per iteration; these helpers keep the bit fiddling
//! in one place.
//!
//! ## Grid view
//!
//! The follow-up work on multi-level string sorting (Kurpicz, Mehnert,
//! Sanders, Schimek: "Scalable Distributed String Sorting", 2024) replaces
//! the single-level all-to-all — where every PE talks to all `p − 1` peers
//! — with grid communication: the `p = r·c` PEs form an r×c grid, data
//! first moves *within rows* (`c − 1` partners) into the right column,
//! then *within columns* (`r − 1` partners) to its final PE, cutting the
//! per-PE partner count from `Θ(p)` to `O(r + c)` (`O(√p)` for a square
//! grid).
//!
//! [`grid_view`] builds that view from two [`Comm::split`] calls. The rank
//! mapping is **column-major** and deterministic:
//!
//! ```text
//! world rank v  ⇔  (row, col) = (v mod r, v ⌊/⌋ r),   v = col·r + row
//! ```
//!
//! so each *column* is a contiguous world-rank block. A two-phase
//! row-then-column exchange that routes global bucket `j` into column `j`
//! and then orders each column internally therefore leaves the
//! world-rank-ordered concatenation globally sorted — the output
//! invariant every distributed sorter promises.
//!
//! Accounting follows the collective rules of [`crate::comm`]: each of the
//! two splits performs one counted all-gather of the color (`⌈log p⌉`
//! latency rounds, `O(p)` volume), and traffic on the row/column
//! communicators is metered exactly like any other communicator traffic.

use crate::comm::Comm;

/// Largest `d` with `2^d ≤ p`; the paper's `d = ⌊log p⌋` (0 for `p = 1`).
pub fn hypercube_dim(p: usize) -> u32 {
    debug_assert!(p >= 1);
    usize::BITS - 1 - p.leading_zeros()
}

/// Number of PEs used by the hypercube algorithms: `2^⌊log p⌋ ≥ p/2`.
pub fn hypercube_size(p: usize) -> usize {
    1 << hypercube_dim(p)
}

/// Communication partner of `rank` across dimension `dim`.
pub fn partner(rank: usize, dim: u32) -> usize {
    rank ^ (1 << dim)
}

/// Whether `rank` is in the lower half of its subcube along `dim`.
pub fn is_lower(rank: usize, dim: u32) -> bool {
    rank & (1 << dim) == 0
}

/// Identifier of the `i`-dimensional subcube containing `rank` (its high
/// bits above dimension `i`).
pub fn subcube_id(rank: usize, dims: u32) -> usize {
    rank >> dims
}

// ---------------------------------------------------------------------
// grid view
// ---------------------------------------------------------------------

/// Picks the r×c factorization the grid algorithms use for `p` PEs: the
/// **largest `r ≤ √p` dividing `p`** (so `r ≤ c` and the grid is as close
/// to square as `p` allows — square grids minimize `r + c`, the per-PE
/// partner count of a two-level exchange).
///
/// Returns `None` when no grid with `r, c ≥ 2` exists (`p < 4` or `p`
/// prime); callers fall back to their single-level variant.
pub fn grid_dims(p: usize) -> Option<(usize, usize)> {
    if p < 4 {
        return None;
    }
    let mut r = 1usize;
    while (r + 1) * (r + 1) <= p {
        r += 1;
    }
    while r >= 2 {
        if p.is_multiple_of(r) {
            return Some((r, p / r));
        }
        r -= 1;
    }
    None
}

/// The r×c grid view of a communicator: this PE's row and column
/// subcommunicators plus the deterministic rank mapping (see the module
/// docs). Built by [`grid_view`].
pub struct GridComm {
    rows: usize,
    cols: usize,
    /// This PE's row communicator (size `cols`; rank within it = column).
    pub row: Comm,
    /// This PE's column communicator (size `rows`; rank within it = row).
    pub col: Comm,
}

impl GridComm {
    /// Number of grid rows `r`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of grid columns `c`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// This PE's row index (its rank within its column communicator).
    pub fn my_row(&self) -> usize {
        self.col.rank()
    }

    /// This PE's column index (its rank within its row communicator).
    pub fn my_col(&self) -> usize {
        self.row.rank()
    }

    /// Rank (in the communicator the grid was built from) of the PE at
    /// `(row, col)` — the inverse of the column-major mapping.
    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        col * self.rows + row
    }
}

/// Splits `comm` into an `rows × cols` grid view (requires
/// `rows · cols == comm.size()`).
///
/// Rank `v` of `comm` sits at `(row, col) = (v mod rows, v / rows)`:
/// columns are contiguous rank blocks, rows are strided. Two counted
/// [`Comm::split`] all-gathers build the row and column communicators;
/// because `split` orders members by parent rank, the rank *within* the
/// row communicator equals the column index and vice versa — no further
/// renumbering needed.
pub fn grid_view(comm: &Comm, rows: usize, cols: usize) -> GridComm {
    assert!(rows >= 1 && cols >= 1);
    assert_eq!(
        rows * cols,
        comm.size(),
        "grid {rows}x{cols} must tile the communicator exactly"
    );
    let v = comm.rank();
    let (my_row, my_col) = (v % rows, v / rows);
    let row = comm.split(my_row as u64);
    let col = comm.split(my_col as u64);
    debug_assert_eq!(row.size(), cols);
    debug_assert_eq!(col.size(), rows);
    debug_assert_eq!(row.rank(), my_col);
    debug_assert_eq!(col.rank(), my_row);
    GridComm {
        rows,
        cols,
        row,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_and_sizes() {
        assert_eq!(hypercube_dim(1), 0);
        assert_eq!(hypercube_dim(2), 1);
        assert_eq!(hypercube_dim(3), 1);
        assert_eq!(hypercube_dim(4), 2);
        assert_eq!(hypercube_dim(20), 4);
        assert_eq!(hypercube_size(20), 16);
        assert_eq!(hypercube_size(1280), 1024);
    }

    #[test]
    fn partners_are_symmetric() {
        for p in [2usize, 4, 8, 16] {
            let d = hypercube_dim(p);
            for r in 0..p {
                for k in 0..d {
                    let q = partner(r, k);
                    assert_eq!(partner(q, k), r);
                    assert_ne!(is_lower(r, k), is_lower(q, k));
                }
            }
        }
    }

    #[test]
    fn subcube_ids_group_correctly() {
        // In an 8-cube split along 2 low dims: {0..3} and {4..7}.
        assert_eq!(subcube_id(3, 2), 0);
        assert_eq!(subcube_id(4, 2), 1);
        assert_eq!(subcube_id(7, 2), 1);
    }

    #[test]
    fn grid_dims_prefers_near_square_factorizations() {
        assert_eq!(grid_dims(4), Some((2, 2)));
        assert_eq!(grid_dims(6), Some((2, 3)));
        assert_eq!(grid_dims(12), Some((3, 4)));
        assert_eq!(grid_dims(16), Some((4, 4)));
        assert_eq!(grid_dims(18), Some((3, 6)));
        assert_eq!(grid_dims(64), Some((8, 8)));
        // No nontrivial grid: tiny or prime PE counts.
        for p in [0usize, 1, 2, 3, 5, 7, 11, 13, 97] {
            assert_eq!(grid_dims(p), None, "p={p}");
        }
        // r ≤ c always, and r·c = p.
        for p in 4..200usize {
            if let Some((r, c)) = grid_dims(p) {
                assert!(r >= 2 && r <= c && r * c == p, "p={p} -> {r}x{c}");
            }
        }
    }

    #[test]
    fn grid_view_mapping_and_routing() {
        use crate::runner::{run_spmd, RunConfig};
        use crate::Tag;
        let (r, c) = (2usize, 3usize);
        let res = run_spmd(r * c, RunConfig::default(), move |comm| {
            let g = grid_view(comm, r, c);
            assert_eq!((g.rows(), g.cols()), (r, c));
            assert_eq!(g.row.size(), c);
            assert_eq!(g.col.size(), r);
            // Column-major mapping: v = col·r + row.
            assert_eq!(comm.rank(), g.rank_of(g.my_row(), g.my_col()));
            assert_eq!(g.my_row(), comm.rank() % r);
            assert_eq!(g.my_col(), comm.rank() / r);
            // Row and column comms route independently even with the same
            // tag in flight everywhere: ring-pass the world rank in both.
            let t = Tag::user(3);
            g.row.send((g.my_col() + 1) % c, t, vec![comm.rank() as u8]);
            let from_row = g.row.recv((g.my_col() + c - 1) % c, t);
            g.col.send((g.my_row() + 1) % r, t, vec![comm.rank() as u8]);
            let from_col = g.col.recv((g.my_row() + r - 1) % r, t);
            let expect_row = g.rank_of(g.my_row(), (g.my_col() + c - 1) % c);
            let expect_col = g.rank_of((g.my_row() + r - 1) % r, g.my_col());
            assert_eq!(from_row, vec![expect_row as u8]);
            assert_eq!(from_col, vec![expect_col as u8]);
            (g.my_row(), g.my_col())
        });
        // Every grid position is occupied exactly once.
        let mut seen: Vec<(usize, usize)> = res.values;
        seen.sort_unstable();
        let expect: Vec<(usize, usize)> =
            (0..c).flat_map(|j| (0..r).map(move |i| (i, j))).collect();
        let mut expect = expect;
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }
}
