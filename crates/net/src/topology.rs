//! Topology views over a communicator: hypercube helpers and the r×c
//! grid view used by multi-level algorithms.
//!
//! ## Hypercube
//!
//! hQuick (§IV) arranges `2^⌊log p⌋` PEs as a d-dimensional hypercube and
//! peels one dimension per iteration; these helpers keep the bit fiddling
//! in one place.
//!
//! ## Grid view
//!
//! The follow-up work on multi-level string sorting (Kurpicz, Mehnert,
//! Sanders, Schimek: "Scalable Distributed String Sorting", 2024) replaces
//! the single-level all-to-all — where every PE talks to all `p − 1` peers
//! — with grid communication: the `p = r·c` PEs form an r×c grid, data
//! first moves *within rows* (`c − 1` partners) into the right column,
//! then *within columns* (`r − 1` partners) to its final PE, cutting the
//! per-PE partner count from `Θ(p)` to `O(r + c)` (`O(√p)` for a square
//! grid).
//!
//! [`grid_view`] builds that view from two [`Comm::split`] calls. The rank
//! mapping is **column-major** and deterministic:
//!
//! ```text
//! world rank v  ⇔  (row, col) = (v mod r, v ⌊/⌋ r),   v = col·r + row
//! ```
//!
//! so each *column* is a contiguous world-rank block. A two-phase
//! row-then-column exchange that routes global bucket `j` into column `j`
//! and then orders each column internally therefore leaves the
//! world-rank-ordered concatenation globally sorted — the output
//! invariant every distributed sorter promises.
//!
//! Accounting follows the collective rules of [`crate::comm`]: each of the
//! two splits performs one counted all-gather of the color (`⌈log p⌉`
//! latency rounds, `O(p)` volume), and traffic on the row/column
//! communicators is metered exactly like any other communicator traffic.

use crate::comm::Comm;

/// Largest `d` with `2^d ≤ p`; the paper's `d = ⌊log p⌋` (0 for `p = 1`).
pub fn hypercube_dim(p: usize) -> u32 {
    debug_assert!(p >= 1);
    usize::BITS - 1 - p.leading_zeros()
}

/// Number of PEs used by the hypercube algorithms: `2^⌊log p⌋ ≥ p/2`.
pub fn hypercube_size(p: usize) -> usize {
    1 << hypercube_dim(p)
}

/// Communication partner of `rank` across dimension `dim`.
pub fn partner(rank: usize, dim: u32) -> usize {
    rank ^ (1 << dim)
}

/// Whether `rank` is in the lower half of its subcube along `dim`.
pub fn is_lower(rank: usize, dim: u32) -> bool {
    rank & (1 << dim) == 0
}

/// Identifier of the `i`-dimensional subcube containing `rank` (its high
/// bits above dimension `i`).
pub fn subcube_id(rank: usize, dims: u32) -> usize {
    rank >> dims
}

// ---------------------------------------------------------------------
// grid view
// ---------------------------------------------------------------------

/// Picks the r×c factorization the grid algorithms use for `p` PEs: the
/// **largest `r ≤ √p` dividing `p`** (so `r ≤ c` and the grid is as close
/// to square as `p` allows — square grids minimize `r + c`, the per-PE
/// partner count of a two-level exchange).
///
/// Returns `None` when no grid with `r, c ≥ 2` exists (`p < 4` or `p`
/// prime); callers fall back to their single-level variant.
pub fn grid_dims(p: usize) -> Option<(usize, usize)> {
    if p < 4 {
        return None;
    }
    let mut r = 1usize;
    while (r + 1) * (r + 1) <= p {
        r += 1;
    }
    while r >= 2 {
        if p.is_multiple_of(r) {
            return Some((r, p / r));
        }
        r -= 1;
    }
    None
}

/// The r×c grid view of a communicator: this PE's row and column
/// subcommunicators plus the deterministic rank mapping (see the module
/// docs). Built by [`grid_view`].
pub struct GridComm {
    rows: usize,
    cols: usize,
    /// This PE's row communicator (size `cols`; rank within it = column).
    pub row: Comm,
    /// This PE's column communicator (size `rows`; rank within it = row).
    pub col: Comm,
}

impl GridComm {
    /// Number of grid rows `r`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of grid columns `c`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// This PE's row index (its rank within its column communicator).
    pub fn my_row(&self) -> usize {
        self.col.rank()
    }

    /// This PE's column index (its rank within its row communicator).
    pub fn my_col(&self) -> usize {
        self.row.rank()
    }

    /// Rank (in the communicator the grid was built from) of the PE at
    /// `(row, col)` — the inverse of the column-major mapping.
    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        col * self.rows + row
    }
}

/// Splits `comm` into an `rows × cols` grid view (requires
/// `rows · cols == comm.size()`).
///
/// Rank `v` of `comm` sits at `(row, col) = (v mod rows, v / rows)`:
/// columns are contiguous rank blocks, rows are strided. Two counted
/// [`Comm::split`] all-gathers build the row and column communicators;
/// because `split` orders members by parent rank, the rank *within* the
/// row communicator equals the column index and vice versa — no further
/// renumbering needed.
pub fn grid_view(comm: &Comm, rows: usize, cols: usize) -> GridComm {
    assert!(rows >= 1 && cols >= 1);
    assert_eq!(
        rows * cols,
        comm.size(),
        "grid {rows}x{cols} must tile the communicator exactly"
    );
    let v = comm.rank();
    let (my_row, my_col) = (v % rows, v / rows);
    let row = comm.split(my_row as u64);
    let col = comm.split(my_col as u64);
    debug_assert_eq!(row.size(), cols);
    debug_assert_eq!(col.size(), rows);
    debug_assert_eq!(row.rank(), my_col);
    debug_assert_eq!(col.rank(), my_row);
    GridComm {
        rows,
        cols,
        row,
        col,
    }
}

// ---------------------------------------------------------------------
// multi-level grid view
// ---------------------------------------------------------------------

/// Ascending prime factorization of `p` by trial division (`[]` for
/// `p < 2`).
fn prime_factors(mut p: usize) -> Vec<usize> {
    let mut factors = Vec::new();
    let mut d = 2usize;
    while d * d <= p {
        while p.is_multiple_of(d) {
            factors.push(d);
            p /= d;
        }
        d += 1;
    }
    if p > 1 {
        factors.push(p);
    }
    factors
}

/// Picks the level fan-outs `d₁ ≥ d₂ ≥ … ≥ dₗ` (each ≥ 2, product `p`)
/// a multi-level grid algorithm uses for `p` PEs.
///
/// Starts from the prime factorization — the *deepest* factorization,
/// which minimizes the per-PE exchange partner count `Σ(dᵢ − 1)` (for
/// any composite `d = a·b` with `a, b ≥ 2`, `(a−1) + (b−1) ≤ d − 1`) —
/// and then repeatedly merges the two smallest factors while the merged
/// fan-out stays `≤ max_level_size`. More merging means fewer levels,
/// i.e. fewer rounds of moving the payload, at the price of more
/// partners per level: `max_level_size` is that latency/volume dial.
/// `max_level_size = 0` (or anything `< 4`) disables merging and yields
/// the full prime factorization; prime factors larger than
/// `max_level_size` cannot be split and are kept as their own level
/// (the fall-back to fewer, larger levels).
///
/// Returns `None` when no multi-level grid with every `dᵢ ≥ 2` exists
/// (`p < 4` or `p` prime); callers fall back to their single-level
/// variant, exactly like [`grid_dims`].
///
/// ```
/// use dss_net::topology::multi_grid_dims;
/// assert_eq!(multi_grid_dims(8, 0), Some(vec![2, 2, 2])); // Σ(dᵢ−1) = 3
/// assert_eq!(multi_grid_dims(27, 0), Some(vec![3, 3, 3])); // Σ(dᵢ−1) = 6
/// assert_eq!(multi_grid_dims(12, 0), Some(vec![3, 2, 2]));
/// assert_eq!(multi_grid_dims(12, 4), Some(vec![4, 3]));
/// assert_eq!(multi_grid_dims(7, 0), None); // prime: single-level fallback
/// ```
pub fn multi_grid_dims(p: usize, max_level_size: usize) -> Option<Vec<usize>> {
    if p < 4 {
        return None;
    }
    let mut factors = prime_factors(p);
    if factors.len() < 2 {
        return None; // prime
    }
    // Merge the two smallest factors while the result respects the cap,
    // but never below two levels (a one-level "grid" is no grid at all).
    while factors.len() > 2 && factors[0] * factors[1] <= max_level_size {
        let merged = factors[0] * factors[1];
        factors.splice(0..2, [merged]);
        factors.sort_unstable();
    }
    factors.sort_unstable_by(|a, b| b.cmp(a));
    Some(factors)
}

/// Factors `p` into **exactly** `levels` fan-outs (each ≥ 2, descending,
/// product `p`), as balanced as the prime factorization of `p` allows:
/// starting from the primes, the two smallest factors are merged until
/// `levels` remain. Returns `None` when `p` has fewer than `levels`
/// prime factors (counted with multiplicity) — i.e. when no such tiling
/// exists; `levels = 1` yields `[p]` for any `p ≥ 2`.
///
/// ```
/// use dss_net::topology::factor_into_levels;
/// assert_eq!(factor_into_levels(16, 2), Some(vec![4, 4]));
/// assert_eq!(factor_into_levels(12, 3), Some(vec![3, 2, 2]));
/// assert_eq!(factor_into_levels(8, 4), None); // 8 = 2·2·2 has only 3 factors
/// ```
pub fn factor_into_levels(p: usize, levels: usize) -> Option<Vec<usize>> {
    if levels == 0 {
        return None;
    }
    let mut factors = prime_factors(p);
    if factors.len() < levels {
        return None;
    }
    while factors.len() > levels {
        let merged = factors[0] * factors[1];
        factors.splice(0..2, [merged]);
        factors.sort_unstable();
    }
    factors.sort_unstable_by(|a, b| b.cmp(a));
    Some(factors)
}

/// One level of a [`MultiGridComm`] (see [`multi_grid_view`] for the
/// rank mapping): at level `i` the PEs holding one contiguous data range
/// form a *block* of `bᵢ` consecutive parent ranks, cut into `dᵢ`
/// *sub-blocks* of `bᵢ₊₁ = bᵢ/dᵢ` ranks each.
pub struct MultiGridLevel {
    /// Fan-out `dᵢ`: how many sub-ranges this level's exchange scatters
    /// the block's data into.
    pub dim: usize,
    /// Block size `bᵢ = p / (d₁·…·dᵢ₋₁)`.
    pub block: usize,
    /// The exchange communicator: the `dᵢ` PEs sharing this PE's offset
    /// within their sub-block, one per sub-block of the block. Its rank
    /// equals this PE's sub-block (= bucket) index, so bucket `j` of the
    /// level's partition travels to exchange-comm rank `j`.
    pub exchange: Comm,
    /// The sampling communicator covering the whole block (size `bᵢ`,
    /// rank = offset within the block), over which this level's
    /// splitters are determined per group. `None` at level 0, where the
    /// block is the base communicator itself, and at the last level,
    /// where the block coincides with [`MultiGridLevel::exchange`] —
    /// [`MultiGridComm::sampling_comm`] resolves both.
    sampling: Option<Comm>,
}

/// The ℓ-level grid view of a communicator built by [`multi_grid_view`]:
/// one [`MultiGridLevel`] per fan-out `dᵢ` of the factorization
/// `p = d₁·d₂·…·dₗ`.
pub struct MultiGridComm {
    levels: Vec<MultiGridLevel>,
}

impl MultiGridComm {
    /// The per-level views, outermost (whole communicator) first.
    pub fn levels(&self) -> &[MultiGridLevel] {
        &self.levels
    }

    /// The level fan-outs `[d₁, …, dₗ]`.
    pub fn dims(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.dim).collect()
    }

    /// Per-PE exchange partner count over all levels: `Σ(dᵢ − 1)` —
    /// the headline quantity a multi-level exchange minimizes (vs
    /// `p − 1` for a single-level all-to-all).
    pub fn partners_per_pe(&self) -> usize {
        self.levels.iter().map(|l| l.dim - 1).sum()
    }

    /// The communicator spanning level `i`'s block — the group inside
    /// which that level's splitters are sampled. `base` must be the
    /// communicator this view was built from; it *is* the block at
    /// level 0, and at the last level the block coincides with the
    /// exchange communicator (sub-blocks of size 1).
    pub fn sampling_comm<'a>(&'a self, i: usize, base: &'a Comm) -> &'a Comm {
        debug_assert_eq!(base.size(), self.levels[0].block);
        if i == 0 {
            base
        } else if i + 1 == self.levels.len() {
            &self.levels[i].exchange
        } else {
            self.levels[i].sampling.as_ref().expect("inner level")
        }
    }
}

/// Splits `comm` into the ℓ-level grid view for the factorization
/// `dims = [d₁, …, dₗ]` (requires `d₁·…·dₗ == comm.size()`, every
/// `dᵢ ≥ 2`, `ℓ ≥ 2`).
///
/// The rank mapping generalizes the column-major [`grid_view`]: at
/// level `i` with block size `bᵢ` (`b₁ = p`, `bᵢ₊₁ = bᵢ/dᵢ`), rank `v`
/// sits in block `⌊v/bᵢ⌋` at offset `o = v mod bᵢ`, i.e. in sub-block
/// `g = ⌊o/bᵢ₊₁⌋` at offset `u = o mod bᵢ₊₁`. Blocks and sub-blocks are
/// contiguous rank ranges, so routing the block's `j`-th sub-range into
/// sub-block `j` at every level leaves the rank-ordered concatenation
/// globally sorted. For `dims = [c, r]` this is exactly [`grid_view`]'s
/// `(row, col) = (v mod r, v / r)` with the row communicator as level 1
/// and the column communicator as level 2.
///
/// Each level's exchange communicator joins the `dᵢ` PEs with equal
/// `(block, u)` across the block's sub-blocks; because [`Comm::split`]
/// orders members by parent rank, its rank equals the sub-block index
/// `g` — asserted per level, no renumbering needed. `2ℓ − 2` counted
/// splits build the view (the last level's block doubles as its own
/// exchange communicator, and level 0's block is `comm` itself) — the
/// same two splits as [`grid_view`] when `ℓ = 2`.
pub fn multi_grid_view(comm: &Comm, dims: &[usize]) -> MultiGridComm {
    assert!(dims.len() >= 2, "a multi-level grid needs >= 2 levels");
    assert!(dims.iter().all(|&d| d >= 2), "level fan-outs must be >= 2");
    assert_eq!(
        dims.iter().product::<usize>(),
        comm.size(),
        "grid levels {dims:?} must tile the communicator exactly"
    );
    let v = comm.rank();
    let mut levels = Vec::with_capacity(dims.len());
    let mut block = comm.size();
    for (i, &d) in dims.iter().enumerate() {
        let sub = block / d;
        let block_idx = v / block;
        let o = v % block;
        let (g, u) = (o / sub, o % sub);
        let last = i + 1 == dims.len();
        // The block communicator (contiguous ranks, rank = offset).
        let sampling = (i > 0 && !last).then(|| {
            let s = comm.split(block_idx as u64);
            debug_assert_eq!(s.size(), block);
            debug_assert_eq!(s.rank(), o);
            s
        });
        // The exchange communicator: same block, same sub-block offset
        // u, one member per sub-block. At the last level sub == 1, so
        // its color ranges over the blocks and it is the block itself.
        let exchange = comm.split((block_idx * sub + u) as u64);
        debug_assert_eq!(exchange.size(), d);
        debug_assert_eq!(exchange.rank(), g);
        levels.push(MultiGridLevel {
            dim: d,
            block,
            exchange,
            sampling,
        });
        block = sub;
    }
    MultiGridComm { levels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_and_sizes() {
        assert_eq!(hypercube_dim(1), 0);
        assert_eq!(hypercube_dim(2), 1);
        assert_eq!(hypercube_dim(3), 1);
        assert_eq!(hypercube_dim(4), 2);
        assert_eq!(hypercube_dim(20), 4);
        assert_eq!(hypercube_size(20), 16);
        assert_eq!(hypercube_size(1280), 1024);
    }

    #[test]
    fn partners_are_symmetric() {
        for p in [2usize, 4, 8, 16] {
            let d = hypercube_dim(p);
            for r in 0..p {
                for k in 0..d {
                    let q = partner(r, k);
                    assert_eq!(partner(q, k), r);
                    assert_ne!(is_lower(r, k), is_lower(q, k));
                }
            }
        }
    }

    #[test]
    fn subcube_ids_group_correctly() {
        // In an 8-cube split along 2 low dims: {0..3} and {4..7}.
        assert_eq!(subcube_id(3, 2), 0);
        assert_eq!(subcube_id(4, 2), 1);
        assert_eq!(subcube_id(7, 2), 1);
    }

    #[test]
    fn grid_dims_prefers_near_square_factorizations() {
        assert_eq!(grid_dims(4), Some((2, 2)));
        assert_eq!(grid_dims(6), Some((2, 3)));
        assert_eq!(grid_dims(12), Some((3, 4)));
        assert_eq!(grid_dims(16), Some((4, 4)));
        assert_eq!(grid_dims(18), Some((3, 6)));
        assert_eq!(grid_dims(64), Some((8, 8)));
        // No nontrivial grid: tiny or prime PE counts.
        for p in [0usize, 1, 2, 3, 5, 7, 11, 13, 97] {
            assert_eq!(grid_dims(p), None, "p={p}");
        }
        // r ≤ c always, and r·c = p.
        for p in 4..200usize {
            if let Some((r, c)) = grid_dims(p) {
                assert!(r >= 2 && r <= c && r * c == p, "p={p} -> {r}x{c}");
            }
        }
    }

    #[test]
    fn multi_grid_dims_factorizations() {
        // Uncapped: full prime factorization, descending.
        assert_eq!(multi_grid_dims(8, 0), Some(vec![2, 2, 2]));
        assert_eq!(multi_grid_dims(12, 0), Some(vec![3, 2, 2]));
        assert_eq!(multi_grid_dims(16, 0), Some(vec![2, 2, 2, 2]));
        assert_eq!(multi_grid_dims(27, 0), Some(vec![3, 3, 3]));
        assert_eq!(multi_grid_dims(60, 0), Some(vec![5, 3, 2, 2]));
        // Caps merge small factors into larger levels.
        assert_eq!(multi_grid_dims(16, 4), Some(vec![4, 4]));
        assert_eq!(multi_grid_dims(12, 4), Some(vec![4, 3]));
        assert_eq!(multi_grid_dims(64, 4), Some(vec![4, 4, 4]));
        // A prime factor above the cap stays as its own level.
        assert_eq!(multi_grid_dims(14, 4), Some(vec![7, 2]));
        // Never merged below two levels, even with a huge cap.
        assert_eq!(multi_grid_dims(6, usize::MAX), Some(vec![3, 2]));
        // No multi-level grid: tiny or prime PE counts.
        for p in [0usize, 1, 2, 3, 5, 7, 11, 13, 97] {
            assert_eq!(multi_grid_dims(p, 0), None, "p={p}");
        }
        // Structural invariants + minimal partner count when uncapped.
        for p in 4..300usize {
            if let Some(d) = multi_grid_dims(p, 0) {
                assert!(d.len() >= 2 && d.windows(2).all(|w| w[0] >= w[1]));
                assert!(d.iter().all(|&x| x >= 2));
                assert_eq!(d.iter().product::<usize>(), p, "p={p}");
                // Deepest factorization beats any two-level grid on
                // Σ(dᵢ−1).
                if let Some((r, c)) = grid_dims(p) {
                    let multi: usize = d.iter().map(|x| x - 1).sum();
                    assert!(multi <= r + c - 2, "p={p}");
                }
            }
        }
    }

    #[test]
    fn factor_into_levels_exact_counts() {
        assert_eq!(factor_into_levels(16, 2), Some(vec![4, 4]));
        assert_eq!(factor_into_levels(16, 3), Some(vec![4, 2, 2]));
        assert_eq!(factor_into_levels(16, 4), Some(vec![2, 2, 2, 2]));
        assert_eq!(factor_into_levels(12, 2), Some(vec![4, 3]));
        assert_eq!(factor_into_levels(12, 3), Some(vec![3, 2, 2]));
        assert_eq!(factor_into_levels(30, 3), Some(vec![5, 3, 2]));
        assert_eq!(factor_into_levels(7, 1), Some(vec![7]));
        // Impossible tilings.
        assert_eq!(factor_into_levels(8, 4), None);
        assert_eq!(factor_into_levels(7, 2), None);
        assert_eq!(factor_into_levels(1, 1), None);
        assert_eq!(factor_into_levels(12, 0), None);
    }

    #[test]
    fn multi_grid_view_mapping_invariants() {
        use crate::runner::{run_spmd, RunConfig};
        // 12 = 3×2×2: check every level's comm sizes, ranks and block
        // arithmetic against the closed-form mapping.
        let dims = vec![3usize, 2, 2];
        let p: usize = dims.iter().product();
        let dims_ref = &dims;
        let res = run_spmd(p, RunConfig::default(), move |comm| {
            let g = multi_grid_view(comm, dims_ref);
            assert_eq!(g.dims(), *dims_ref);
            assert_eq!(g.partners_per_pe(), 2 + 1 + 1);
            let v = comm.rank();
            let mut block = p;
            let mut coords = Vec::new();
            for (i, level) in g.levels().iter().enumerate() {
                let sub = block / level.dim;
                let o = v % block;
                assert_eq!(level.block, block);
                assert_eq!(level.exchange.size(), level.dim);
                assert_eq!(level.exchange.rank(), o / sub);
                let s = g.sampling_comm(i, comm);
                assert_eq!(s.size(), block);
                assert_eq!(s.rank(), o);
                coords.push(o / sub);
                block = sub;
            }
            coords
        });
        // The per-level sub-block coordinates enumerate 0..p in mixed
        // radix, i.e. every PE has a distinct coordinate tuple and rank
        // order equals lexicographic coordinate order.
        let coords = res.values;
        for (v, c) in coords.iter().enumerate() {
            let mut rank = 0usize;
            let mut block = p;
            for (i, &g) in c.iter().enumerate() {
                let sub = block / dims[i];
                rank += g * sub;
                block = sub;
            }
            assert_eq!(rank, v, "coords {c:?}");
        }
    }

    #[test]
    fn multi_grid_view_matches_grid_view_at_two_levels() {
        use crate::runner::{run_spmd, RunConfig};
        // dims = [c, r] must reproduce grid_view's row/column comms:
        // level 1 exchange ≙ row comm (size c, rank = col), level 2
        // exchange ≙ column comm (size r, rank = row).
        let (r, c) = (2usize, 3usize);
        let res = run_spmd(r * c, RunConfig::default(), move |comm| {
            let g2 = grid_view(comm, r, c);
            let gm = multi_grid_view(comm, &[c, r]);
            let l = gm.levels();
            assert_eq!(l[0].exchange.size(), g2.row.size());
            assert_eq!(l[0].exchange.rank(), g2.row.rank());
            assert_eq!(l[1].exchange.size(), g2.col.size());
            assert_eq!(l[1].exchange.rank(), g2.col.rank());
            true
        });
        assert!(res.values.iter().all(|&ok| ok));
    }

    #[test]
    fn grid_view_mapping_and_routing() {
        use crate::runner::{run_spmd, RunConfig};
        use crate::Tag;
        let (r, c) = (2usize, 3usize);
        let res = run_spmd(r * c, RunConfig::default(), move |comm| {
            let g = grid_view(comm, r, c);
            assert_eq!((g.rows(), g.cols()), (r, c));
            assert_eq!(g.row.size(), c);
            assert_eq!(g.col.size(), r);
            // Column-major mapping: v = col·r + row.
            assert_eq!(comm.rank(), g.rank_of(g.my_row(), g.my_col()));
            assert_eq!(g.my_row(), comm.rank() % r);
            assert_eq!(g.my_col(), comm.rank() / r);
            // Row and column comms route independently even with the same
            // tag in flight everywhere: ring-pass the world rank in both.
            let t = Tag::user(3);
            g.row.send((g.my_col() + 1) % c, t, vec![comm.rank() as u8]);
            let from_row = g.row.recv((g.my_col() + c - 1) % c, t);
            g.col.send((g.my_row() + 1) % r, t, vec![comm.rank() as u8]);
            let from_col = g.col.recv((g.my_row() + r - 1) % r, t);
            let expect_row = g.rank_of(g.my_row(), (g.my_col() + c - 1) % c);
            let expect_col = g.rank_of((g.my_row() + r - 1) % r, g.my_col());
            assert_eq!(from_row, vec![expect_row as u8]);
            assert_eq!(from_col, vec![expect_col as u8]);
            (g.my_row(), g.my_col())
        });
        // Every grid position is occupied exactly once.
        let mut seen: Vec<(usize, usize)> = res.values;
        seen.sort_unstable();
        let expect: Vec<(usize, usize)> =
            (0..c).flat_map(|j| (0..r).map(move |i| (i, j))).collect();
        let mut expect = expect;
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }
}
