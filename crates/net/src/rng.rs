//! Minimal deterministic RNG (splitmix64).
//!
//! The distributed algorithms need per-PE randomness (hQuick's random
//! placement, pivot sampling, fingerprint salts). A 10-line splitmix64
//! keeps `dss-net` and `dss-sort` free of heavyweight dependencies while
//! staying reproducible: seeds derive deterministically from
//! `(run seed, world rank)`.

/// splitmix64 — passes BigCrush, one u64 of state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (bound > 0), via Lemire's method.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` index into a slice of length `len`.
    pub fn next_index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = SplitMix64::new(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.next_index(8)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
