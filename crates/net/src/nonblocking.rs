//! Non-blocking point-to-point runtime: `isend`/`irecv` handles with
//! `test`/`wait`/`wait_any` progress semantics, and the
//! [`PendingExchange`] building block for pipelined personalized
//! all-to-alls.
//!
//! The blocking layer ([`Comm::send`]/[`Comm::recv`]) serializes a PE's
//! timeline: while a receive blocks, the CPU idles even though the data
//! it could be encoding, decoding or merging is already local. This
//! module exposes the machinery to overlap that work with transfers:
//!
//! * [`Comm::isend`] starts a send and returns a [`SendHandle`]. The
//!   simulated transport is eagerly buffered (unbounded channels), so —
//!   as with a buffered `MPI_Isend` — the handle completes immediately;
//!   it exists so call sites read like their MPI counterparts and keep
//!   working if the transport ever gains backpressure.
//! * [`Comm::irecv`] posts a receive request into the PE's in-flight
//!   queue and returns a [`RecvHandle`]. The request is completed through
//!   [`Comm::test`] (non-blocking poll), [`Comm::wait`] (block on one
//!   handle) or [`Comm::wait_any`] (block until any of a set completes).
//! * [`Comm::begin_alltoallv`] posts one receive per peer and returns a
//!   [`PendingExchange`]: feed it destination buffers as they become
//!   ready ([`PendingExchange::send`]) and consume arrivals while later
//!   sends are still in flight ([`PendingExchange::poll_any`] /
//!   [`PendingExchange::recv_any`]).
//!
//! ## Ordering guarantee
//!
//! Messages with the same `(source, destination, tag)` key on the same
//! communicator are delivered in send order — byte-identical FIFO
//! streams. Posted requests with the same key complete in posting order
//! (the matching engine routes each arrival to the earliest posted
//! unfilled request, and parks unexpected arrivals in arrival order).
//!
//! ## Accounting rules
//!
//! Identical to the blocking path: every payload byte to another PE is
//! counted exactly once on each side (`isend` at start time, receive
//! completion when the payload is handed back); self-messages are free.
//! Like `raw_send`/`raw_recv`, the primitives here contribute **no
//! latency rounds** — composite operations charge their critical-path
//! depth explicitly, as the collectives do ([`PendingExchange::finish`]
//! adds the direct all-to-all's `p − 1` rounds, matching
//! [`Comm::alltoallv`]). Wall time inside any of these calls is
//! attributed to `comm_ns`; time between calls (the overlapped encode /
//! decode / merge work) to `compute_ns`.

use crate::comm::{Comm, PeCore, Tag};
use crate::trace::{self, cat, SpanGuard};
use std::time::Instant;

/// Handle of a started send. The channel transport buffers eagerly, so
/// the operation is complete from construction (see module docs).
#[derive(Debug)]
#[must_use = "a send handle should be completed with wait() or test()"]
pub struct SendHandle(());

impl SendHandle {
    /// Whether the send has completed (always, on this transport).
    pub fn test(&self) -> bool {
        true
    }

    /// Blocks until the send has completed (a no-op on this transport).
    pub fn wait(self) {}
}

/// Handle of a posted receive. Complete it with [`Comm::test`],
/// [`Comm::wait`] or [`Comm::wait_any`] on the communicator that posted
/// it.
#[derive(Debug)]
#[must_use = "a posted receive must be completed with wait()/test()/wait_any()"]
pub struct RecvHandle {
    slot: usize,
    src: usize,
    done: bool,
}

impl RecvHandle {
    /// Communicator rank this handle receives from.
    pub fn src(&self) -> usize {
        self.src
    }

    /// Whether the payload has already been taken out of this handle.
    pub fn is_done(&self) -> bool {
        self.done
    }
}

impl Comm {
    /// Starts a non-blocking send of `payload` to communicator rank
    /// `dst`. Bytes are counted at start time, exactly like
    /// [`Comm::send`]; self-sends are free local moves.
    pub fn isend(&self, dst: usize, tag: Tag, payload: Vec<u8>) -> SendHandle {
        let _g = trace::span_args(
            cat::SEND,
            "isend",
            [("dst", dst as u64), ("bytes", payload.len() as u64)],
        );
        self.enter();
        self.raw_send(dst, tag.0, payload, true);
        self.exit();
        SendHandle(())
    }

    /// Posts a non-blocking receive from communicator rank `src` with
    /// `tag` and returns its handle. Adds no latency round by itself
    /// (see the module accounting rules).
    pub fn irecv(&self, src: usize, tag: Tag) -> RecvHandle {
        self.enter();
        let h = self.post_recv(src, tag.0);
        self.exit();
        h
    }

    /// Slot posting without the metrics enter/exit fences (for composite
    /// operations that fence once around a batch of posts).
    fn post_recv(&self, src: usize, tag: u64) -> RecvHandle {
        let count = src != self.rank();
        let comm_id = self.comm_id();
        let slot = self.with_core(|core| core.post_slot(comm_id, src as u32, tag, count));
        RecvHandle {
            slot,
            src,
            done: false,
        }
    }

    /// Non-blocking progress + completion check: drains every
    /// already-arrived envelope, then returns the payload if `h` has
    /// completed. Returns `None` if the message has not arrived yet, or
    /// if the handle was already consumed.
    pub fn test(&self, h: &mut RecvHandle) -> Option<Vec<u8>> {
        if h.done {
            return None;
        }
        let _g = trace::span_args(cat::WAIT, "test", [("src", h.src as u64), ("", 0)]);
        self.enter();
        let out = self.with_core(|core| {
            core.try_progress();
            core.slot_ready(h.slot).then(|| core.take_slot(h.slot))
        });
        self.exit();
        if out.is_some() {
            h.done = true;
        }
        out
    }

    /// Blocks until `h` completes and returns its payload.
    ///
    /// # Panics
    /// If the handle was already consumed, or on receive timeout (likely
    /// deadlock, as with [`Comm::recv`]).
    pub fn wait(&self, mut h: RecvHandle) -> Vec<u8> {
        assert!(!h.done, "receive handle already completed");
        h.done = true;
        let _g = trace::span_args(cat::WAIT, "wait", [("src", h.src as u64), ("", 0)]);
        self.enter();
        let payload = self.wait_slot(h.slot, h.src);
        self.exit();
        payload
    }

    /// Blocks until any not-yet-consumed handle in `handles` completes;
    /// returns its index and payload and marks it consumed. Returns
    /// `None` when every handle has already been consumed.
    ///
    /// Ready handles are preferred in slice order, so equal-key handles
    /// resolve in posting order.
    pub fn wait_any(&self, handles: &mut [RecvHandle]) -> Option<(usize, Vec<u8>)> {
        if handles.iter().all(|h| h.done) {
            return None;
        }
        let _g = trace::span(cat::WAIT, "wait_any");
        self.enter();
        // The stall clock starts only after the first miss — a wait that
        // finds a message already delivered (or deliverable) is not
        // blocked time.
        let mut stalled: Option<(SpanGuard, Instant)> = None;
        let (i, payload) = loop {
            let ready = self.with_core(|core| {
                core.try_progress();
                handles
                    .iter()
                    .position(|h| !h.done && core.slot_ready(h.slot))
                    .map(|i| (i, core.take_slot(handles[i].slot)))
            });
            if let Some(hit) = ready {
                break hit;
            }
            if stalled.is_none() {
                stalled = Some((trace::span(cat::STALL, "wait_any"), Instant::now()));
            }
            self.block_for_progress("wait_any");
        };
        if let Some((_span, t0)) = stalled {
            self.with_core(|core| core.metrics.add_stall(t0.elapsed().as_nanos() as u64));
        }
        self.exit();
        handles[i].done = true;
        Some((i, payload))
    }

    /// Blocking completion of one slot (metrics fences owned by caller).
    fn wait_slot(&self, slot: usize, src: usize) -> Vec<u8> {
        // Drain already-arrived envelopes before deciding this is a
        // stall: a message sitting undelivered in the mailbox is routing
        // work, not blocked time.
        let ready = self.with_core(|core| {
            core.try_progress();
            core.slot_ready(slot).then(|| core.take_slot(slot))
        });
        if let Some(payload) = ready {
            return payload;
        }
        let _stall = trace::span_args(cat::STALL, "wait", [("src", src as u64), ("", 0)]);
        let t0 = Instant::now();
        loop {
            self.block_for_progress(&format!("wait(src={src})"));
            let ready = self.with_core(|core| core.slot_ready(slot).then(|| core.take_slot(slot)));
            if let Some(payload) = ready {
                self.with_core(|core| core.metrics.add_stall(t0.elapsed().as_nanos() as u64));
                return payload;
            }
        }
    }

    /// One blocking progress step with the standard deadlock diagnostics.
    fn block_for_progress(&self, what: &str) {
        let timed_out = self.with_core(|core| core.progress_blocking().err());
        if let Some(timeout) = timed_out {
            panic!(
                "PE {} (comm {}, rank {}): {what} timed out after {timeout:?} — likely deadlock",
                self.world_rank(),
                self.comm_id(),
                self.rank(),
            );
        }
    }

    /// Begins a non-blocking personalized all-to-all: posts one receive
    /// per peer under a fresh collective tag and returns the
    /// [`PendingExchange`] that completes it. SPMD-collective — every
    /// member must call it at the same logical point, exactly once per
    /// exchange, and send exactly one message to every rank (empty
    /// buffers included, so message counts match [`Comm::alltoallv`]).
    pub fn begin_alltoallv(&self) -> PendingExchange {
        self.enter();
        let tag = Tag::coll(self.next_coll_tag());
        let p = self.size();
        let r = self.rank();
        let recvs = (0..p)
            .map(|src| (src != r).then(|| self.post_recv(src, tag.0)))
            .collect();
        self.exit();
        PendingExchange {
            tag,
            comm_id: self.comm_id(),
            size: p,
            rank: r,
            recvs,
            self_msg: None,
            sent: vec![false; p],
            outstanding: p,
        }
    }
}

/// One in-flight personalized all-to-all, created by
/// [`Comm::begin_alltoallv`].
///
/// The caller streams destination buffers in with [`send`] as each one
/// is ready (encode → transfer overlap) and drains arrivals with
/// [`poll_any`] / [`recv_any`] while later sends are still in flight
/// (transfer → decode/merge overlap). [`finish`] checks completion and
/// charges the direct algorithm's `p − 1` latency rounds, so a pipelined
/// exchange reports byte, message and round counts identical to the
/// blocking [`Comm::alltoallv`].
///
/// [`send`]: PendingExchange::send
/// [`poll_any`]: PendingExchange::poll_any
/// [`recv_any`]: PendingExchange::recv_any
/// [`finish`]: PendingExchange::finish
#[must_use = "a pending exchange must be drained and finished"]
pub struct PendingExchange {
    tag: Tag,
    /// Id of the creating communicator — every driving call re-checks it.
    comm_id: u64,
    size: usize,
    rank: usize,
    /// Receive handle per source rank (`None` at this PE's own rank).
    recvs: Vec<Option<RecvHandle>>,
    /// The self-addressed buffer (free local move, never on the wire).
    self_msg: Option<Vec<u8>>,
    sent: Vec<bool>,
    /// Messages (including the self-message) not yet handed back.
    outstanding: usize,
}

impl PendingExchange {
    /// Ships this PE's buffer for rank `dst` (exactly once per
    /// destination). Remote buffers go out immediately via
    /// [`Comm::isend`]; the self buffer is kept aside and surfaces
    /// through [`PendingExchange::poll_any`]/[`recv_any`] like any other
    /// arrival.
    ///
    /// [`recv_any`]: PendingExchange::recv_any
    pub fn send(&mut self, comm: &Comm, dst: usize, payload: Vec<u8>) {
        self.check_comm(comm);
        assert!(!self.sent[dst], "one message per destination");
        self.sent[dst] = true;
        if dst == self.rank {
            self.self_msg = Some(payload);
        } else {
            comm.isend(dst, self.tag, payload).wait();
        }
    }

    /// Non-blocking: the next available arrival as `(source rank,
    /// payload)`, or `None` if nothing new has landed yet. One channel
    /// drain per call (not per handle), so polling between sends stays
    /// cheap on the hot exchange path.
    pub fn poll_any(&mut self, comm: &Comm) -> Option<(usize, Vec<u8>)> {
        self.check_comm(comm);
        if let Some(payload) = self.self_msg.take() {
            self.outstanding -= 1;
            return Some((self.rank, payload));
        }
        if self.outstanding == 0 || self.recvs.iter().all(Option::is_none) {
            return None;
        }
        comm.enter();
        let hit = comm.with_core(|core| {
            core.try_progress();
            self.take_ready(core)
        });
        comm.exit();
        hit
    }

    /// Blocking: the next arrival as `(source rank, payload)`, or `None`
    /// once all `p` messages (including the self-message) have been
    /// handed back. Ship the self-message before draining with this —
    /// blocking on a buffer that was never sent would dead-wait.
    pub fn recv_any(&mut self, comm: &Comm) -> Option<(usize, Vec<u8>)> {
        self.check_comm(comm);
        if self.outstanding == 0 {
            return None;
        }
        if let Some(payload) = self.self_msg.take() {
            self.outstanding -= 1;
            return Some((self.rank, payload));
        }
        debug_assert!(
            self.recvs.iter().any(Option::is_some),
            "recv_any before the self-message was sent"
        );
        comm.enter();
        let mut stalled: Option<(SpanGuard, Instant)> = None;
        let hit = loop {
            let ready = comm.with_core(|core| {
                core.try_progress();
                self.take_ready(core)
            });
            if let Some(hit) = ready {
                break hit;
            }
            if stalled.is_none() {
                stalled = Some((trace::span(cat::STALL, "recv_any"), Instant::now()));
            }
            comm.block_for_progress("PendingExchange::recv_any");
        };
        if let Some((_span, t0)) = stalled {
            comm.with_core(|core| core.metrics.add_stall(t0.elapsed().as_nanos() as u64));
        }
        comm.exit();
        Some(hit)
    }

    /// Hands back the first completed outstanding receive, if any
    /// (progress must have been driven by the caller).
    fn take_ready(&mut self, core: &mut PeCore) -> Option<(usize, Vec<u8>)> {
        for src in 0..self.size {
            if let Some(h) = &self.recvs[src] {
                if core.slot_ready(h.slot) {
                    let payload = core.take_slot(h.slot);
                    self.recvs[src] = None;
                    self.outstanding -= 1;
                    return Some((src, payload));
                }
            }
        }
        None
    }

    /// Completes the exchange: asserts every message was sent and every
    /// arrival consumed, then charges the direct all-to-all's `p − 1`
    /// latency rounds (identical to [`Comm::alltoallv`] accounting).
    pub fn finish(self, comm: &Comm) {
        self.check_comm(comm);
        assert!(
            self.sent.iter().all(|&s| s),
            "pending exchange finished before sending to every rank"
        );
        assert_eq!(
            self.outstanding, 0,
            "pending exchange has undrained arrivals"
        );
        if self.size > 1 {
            comm.enter();
            comm.add_rounds(self.size as u64 - 1);
            comm.exit();
        }
    }

    /// Number of arrivals (including the self-message) not yet returned.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    fn check_comm(&self, comm: &Comm) {
        // A hard check on the communicator *id*: same-shaped siblings
        // (e.g. the row and column comms of a square grid) would pass a
        // size/rank comparison and then dead-wait under the wrong tags.
        assert_eq!(
            comm.comm_id(),
            self.comm_id,
            "PendingExchange must be driven by the communicator that created it"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::oversub_scale;
    use crate::runner::{run_spmd, RunConfig};
    use std::time::{Duration, Instant};

    fn cfg() -> RunConfig {
        RunConfig {
            recv_timeout: Duration::from_secs(20),
            // These test closures are single-threaded; pin the accounting
            // scale so assertions don't depend on the DSS_THREADS default.
            threads_per_pe: 1,
            ..RunConfig::default()
        }
    }

    #[test]
    fn irecv_wait_matches_blocking_recv() {
        let res = run_spmd(2, cfg(), |comm| {
            let other = 1 - comm.rank();
            let h = comm.irecv(other, Tag::user(1));
            comm.isend(other, Tag::user(1), vec![comm.rank() as u8; 3])
                .wait();
            comm.wait(h)
        });
        assert_eq!(res.values[0], vec![1, 1, 1]);
        assert_eq!(res.values[1], vec![0, 0, 0]);
        assert_eq!(res.stats.total_bytes_sent(), 6);
        assert_eq!(res.stats.totals().msgs_sent, 2);
        // Primitives add no latency rounds (composites charge their own).
        assert_eq!(res.stats.totals().rounds, 0);
    }

    #[test]
    fn test_polls_without_blocking() {
        let res = run_spmd(2, cfg(), |comm| {
            if comm.rank() == 0 {
                // Nothing has been sent yet: test must answer None, not block.
                let mut h = comm.irecv(1, Tag::user(2));
                let early = comm.test(&mut h);
                comm.isend(1, Tag::user(3), vec![7]).wait();
                let late = comm.wait(h);
                (early.is_none(), late)
            } else {
                let go = comm.recv(0, Tag::user(3));
                comm.isend(0, Tag::user(2), vec![go[0] + 1]).wait();
                (true, vec![])
            }
        });
        assert_eq!(res.values[0], (true, vec![8]));
    }

    #[test]
    fn same_key_handles_complete_in_posting_order() {
        let res = run_spmd(2, cfg(), |comm| {
            if comm.rank() == 0 {
                for i in 0..5u8 {
                    comm.isend(1, Tag::user(9), vec![i]).wait();
                }
                Vec::new()
            } else {
                // Post all five before any completion; complete them in a
                // scrambled order — each handle must still carry the
                // message matching its posting position.
                let mut hs: Vec<RecvHandle> = (0..5).map(|_| comm.irecv(0, Tag::user(9))).collect();
                let mut out = vec![0u8; 5];
                for &i in &[3usize, 0, 4, 2, 1] {
                    let h = std::mem::replace(&mut hs[i], comm.irecv(1, Tag::user(99)));
                    out[i] = comm.wait(h)[0];
                }
                // Drain the dummy handles with matching self-sends.
                for _ in 0..5 {
                    comm.isend(1, Tag::user(99), Vec::new()).wait();
                }
                for h in hs {
                    let _ = comm.wait(h);
                }
                out
            }
        });
        assert_eq!(res.values[1], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wait_any_returns_every_arrival_exactly_once() {
        let res = run_spmd(4, cfg(), |comm| {
            let r = comm.rank();
            let p = comm.size();
            let mut hs: Vec<RecvHandle> = (0..p)
                .filter(|&s| s != r)
                .map(|s| comm.irecv(s, Tag::user(5)))
                .collect();
            for dst in 0..p {
                if dst != r {
                    comm.isend(dst, Tag::user(5), vec![r as u8]).wait();
                }
            }
            let mut seen = Vec::new();
            while let Some((_, payload)) = comm.wait_any(&mut hs) {
                seen.push(payload[0]);
            }
            assert!(comm.wait_any(&mut hs).is_none());
            seen.sort_unstable();
            seen
        });
        for (r, v) in res.values.iter().enumerate() {
            let expect: Vec<u8> = (0..4u8).filter(|&s| s as usize != r).collect();
            assert_eq!(v, &expect, "rank {r}");
        }
    }

    /// Compute performed while a transfer is in flight lands in
    /// `compute_ns`, not `comm_ns` — the accounting that makes overlap
    /// visible. The bound scales with `oversub_scale` so it also holds on
    /// a 1-core host, where "overlap" is time-slicing.
    #[test]
    fn overlapped_compute_is_attributed_to_compute() {
        let p = 2;
        let res = run_spmd(p, cfg(), move |comm| {
            comm.set_phase("pipeline");
            let other = 1 - comm.rank();
            let h = comm.irecv(other, Tag::user(7));
            comm.isend(other, Tag::user(7), vec![0u8; 64 << 10]).wait();
            // Overlapped "encode/merge" work while the payload is in flight.
            let t = Instant::now();
            while t.elapsed() < Duration::from_millis(20) {
                std::hint::spin_loop();
            }
            let got = comm.wait(h);
            got.len()
        });
        assert!(res.values.iter().all(|&n| n == 64 << 10));
        let phase = res
            .stats
            .phases
            .iter()
            .find(|ph| ph.name == "pipeline")
            .expect("phase");
        let want = (15_000_000f64 * oversub_scale(p, 1)) as u64;
        assert!(
            phase.max.compute_ns >= want,
            "overlapped compute {}ns, want >= {want}ns",
            phase.max.compute_ns
        );
    }

    #[test]
    fn pending_exchange_matches_alltoallv_payloads_and_accounting() {
        for p in [1usize, 2, 4, 5] {
            let pipelined = run_spmd(p, cfg(), |comm| {
                comm.set_phase("x");
                let r = comm.rank();
                let p = comm.size();
                let mut ex = comm.begin_alltoallv();
                let mut out: Vec<Vec<u8>> = vec![Vec::new(); p];
                for i in 0..p {
                    let dst = (r + i) % p;
                    ex.send(comm, dst, vec![r as u8, dst as u8, 42]);
                    while let Some((src, payload)) = ex.poll_any(comm) {
                        out[src] = payload;
                    }
                }
                while let Some((src, payload)) = ex.recv_any(comm) {
                    out[src] = payload;
                }
                ex.finish(comm);
                out
            });
            let blocking = run_spmd(p, cfg(), |comm| {
                comm.set_phase("x");
                let msgs: Vec<Vec<u8>> = (0..comm.size())
                    .map(|dst| vec![comm.rank() as u8, dst as u8, 42])
                    .collect();
                comm.alltoallv(msgs)
            });
            assert_eq!(pipelined.values, blocking.values, "p={p}");
            let cell = |s: &crate::NetStats| {
                let ph = s.phases.iter().find(|ph| ph.name == "x").expect("phase");
                (ph.total, ph.max)
            };
            let (pt, pm) = cell(&pipelined.stats);
            let (bt, bm) = cell(&blocking.stats);
            assert_eq!(pt.bytes_sent, bt.bytes_sent, "p={p}");
            assert_eq!(pt.bytes_recv, bt.bytes_recv, "p={p}");
            assert_eq!(pt.msgs_sent, bt.msgs_sent, "p={p}");
            assert_eq!(pm.rounds, bm.rounds, "p={p}");
            assert_eq!(pm.msgs_sent, bm.msgs_sent, "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "one message per destination")]
    fn pending_exchange_rejects_duplicate_destination() {
        run_spmd(2, cfg(), |comm| {
            let mut ex = comm.begin_alltoallv();
            ex.send(comm, 0, vec![1]);
            ex.send(comm, 0, vec![2]);
        });
    }
}
