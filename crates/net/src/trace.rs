//! Span-level tracing facade: re-exports the `dss-trace` recorder the
//! whole runtime is instrumented with.
//!
//! ## Capturing a trace
//!
//! Set `DSS_TRACE=on` (or `DSS_TRACE=spans=N` to cap per-thread buffers
//! at `N` spans; any other value panics, per the workspace's fail-loud
//! knob policy) and run anything that goes through [`run_spmd`] — the
//! runner calls [`init_from_env`] before spawning PEs. Programmatic
//! capture works too:
//!
//! ```
//! use dss_net::runner::{run_spmd, RunConfig};
//! use dss_net::trace;
//!
//! trace::reset();
//! trace::enable(1 << 16);
//! run_spmd(2, RunConfig::default(), |comm| {
//!     comm.set_phase("demo");
//!     comm.barrier();
//! });
//! trace::disable();
//! let t = trace::take();
//! let json = trace::chrome_trace_json(&t).expect("balanced spans");
//! assert!(json.contains("\"barrier\""));
//! ```
//!
//! Write the JSON to a file and load it at <https://ui.perfetto.dev>:
//! one track per PE thread (plus sort workers), spans nested
//! run → phase → collective → wait → stall. `perfsnap --trace <path>`
//! does all of this for a benchmark run.
//!
//! ## What gets recorded
//!
//! | category ([`cat`]) | emitted by |
//! |---|---|
//! | `run` | `run_spmd` (caller thread) and each PE thread's lifetime |
//! | `phase` | `Comm::set_phase` boundaries |
//! | `coll` | every collective (barrier, alltoallv, …) |
//! | `send` / `wait` | point-to-point send/isend and recv/wait/test |
//! | `stall` | time blocked with **no** matching message ready |
//! | `send-window` | the exchange engine's send section (overlap denominator) |
//! | `encode` / `decode` / `merge` | exchange engine per-bucket work |
//! | `sort-task` | work-stealing local-sort tasks (worker id, size) |
//! | `algo` | one span per distributed sorter run (ms, ms2l, msml) |
//!
//! Stall time is *also* accounted unconditionally (tracing on or off) in
//! [`PhaseCounters::stall_ns`](crate::metrics::PhaseCounters::stall_ns),
//! so [`NetStats::phase_report`](crate::metrics::NetStats::phase_report)
//! can attribute per-phase comm time to genuine waiting even without a
//! trace. The overlap ratio ([`overlap_ratio`], windows = `send-window`,
//! work = `decode` + `merge`) is the measured form of the pipelined
//! exchange's claim: receive-side work happens *inside* the send window,
//! which wall-clock alone cannot show on an oversubscribed host.
//!
//! [`run_spmd`]: crate::runner::run_spmd

pub use dss_trace::{
    cat, chrome_trace_json, disable, enable, enabled, init_from_env, now_ns, overlap,
    overlap_ratio, pair_spans, parse_dss_trace, reset, span, span_args, take, Event, EventKind,
    Span, SpanGuard, ThreadTrace, Trace, TraceConfig, DEFAULT_SPAN_CAP,
};
