//! Collective operations over [`Comm`], built on point-to-point messages
//! with the textbook algorithms, so rounds and volumes match the cost
//! table of §II:
//!
//! | operation            | algorithm            | rounds      | volume |
//! |----------------------|----------------------|-------------|--------|
//! | barrier              | dissemination        | ⌈log p⌉     | O(p)   |
//! | broadcast            | binomial tree        | ⌈log p⌉     | O(h)   |
//! | reduce / allreduce   | binomial tree (+bcast)| ⌈log p⌉ (2×)| O(h)  |
//! | gatherv              | direct to root       | p−1 at root | O(h)   |
//! | allgatherv (gossip)  | Bruck doubling       | ⌈log p⌉     | O(h)   |
//! | alltoallv            | direct exchange      | p−1         | O(h)   |
//! | alltoallv_hypercube  | dimension-wise       | log p       | O(h·log p) |
//!
//! `gatherv` is deliberately the *linear* centralized algorithm — that is
//! what FKmerge's sample-sorting bottleneck uses and what the paper
//! criticizes; the efficient algorithms never gather payloads centrally.
//!
//! Reduction operators must be associative and commutative (all uses here
//! are sums/max/min/fingerprint-combines/median selection).

use crate::comm::{Comm, Tag};
use crate::trace::{self, cat};

#[inline]
fn ceil_log2(p: usize) -> u32 {
    debug_assert!(p >= 1);
    usize::BITS - (p - 1).leading_zeros()
}

/// Reduction ops for the `u64` convenience wrappers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// Encodes a `u64` slice as little-endian bytes.
pub fn u64s_to_bytes(vals: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes little-endian bytes into `u64`s.
pub fn bytes_to_u64s(bytes: &[u8]) -> Vec<u64> {
    assert_eq!(bytes.len() % 8, 0, "malformed u64 payload");
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

impl Comm {
    /// Dissemination barrier: ⌈log p⌉ rounds, every PE synchronized.
    pub fn barrier(&self) {
        let _g = trace::span(cat::COLL, "barrier");
        let p = self.size();
        if p == 1 {
            return;
        }
        self.enter();
        let tag = Tag::coll(self.next_coll_tag()).0;
        let r = self.rank();
        let mut k = 1usize;
        while k < p {
            let dst = (r + k) % p;
            let src = (r + p - k) % p;
            self.raw_send(dst, tag, Vec::new(), true);
            let _ = self.raw_recv(src, tag, true);
            k <<= 1;
        }
        self.add_rounds(ceil_log2(p) as u64);
        self.exit();
    }

    /// Binomial-tree broadcast from `root`. Every PE returns the payload.
    pub fn broadcast(&self, root: usize, data: Vec<u8>) -> Vec<u8> {
        let _g = trace::span_args(
            cat::COLL,
            "broadcast",
            [("bytes", data.len() as u64), ("", 0)],
        );
        let p = self.size();
        if p == 1 {
            return data;
        }
        self.enter();
        let tag = Tag::coll(self.next_coll_tag()).0;
        let r = self.rank();
        let vr = (r + p - root) % p;
        let d = ceil_log2(p);
        let mut data = data;
        let first_send_bit = if vr == 0 {
            0
        } else {
            let b = 63 - (vr as u64).leading_zeros();
            let parent_vr = vr - (1 << b);
            data = self.raw_recv((parent_vr + root) % p, tag, true);
            b + 1
        };
        for k in first_send_bit..d {
            let child_vr = vr + (1 << k);
            if child_vr < p {
                self.raw_send((child_vr + root) % p, tag, data.clone(), true);
            }
        }
        self.add_rounds(d as u64);
        self.exit();
        data
    }

    /// Binomial-tree reduction to `root` with a binary combining operator
    /// (must be associative + commutative). Non-roots return `None`.
    pub fn reduce(
        &self,
        root: usize,
        data: Vec<u8>,
        mut op: impl FnMut(Vec<u8>, Vec<u8>) -> Vec<u8>,
    ) -> Option<Vec<u8>> {
        let _g = trace::span_args(cat::COLL, "reduce", [("bytes", data.len() as u64), ("", 0)]);
        let p = self.size();
        if p == 1 {
            return Some(data);
        }
        self.enter();
        let tag = Tag::coll(self.next_coll_tag()).0;
        let r = self.rank();
        let vr = (r + p - root) % p;
        let d = ceil_log2(p);
        let mut acc = data;
        let mut sent = false;
        for k in 0..d {
            if vr & (1 << k) != 0 {
                let parent_vr = vr - (1 << k);
                self.raw_send((parent_vr + root) % p, tag, acc, true);
                acc = Vec::new();
                sent = true;
                break;
            } else if vr + (1 << k) < p {
                let child = self.raw_recv(((vr + (1 << k)) + root) % p, tag, true);
                acc = op(acc, child);
            }
        }
        self.add_rounds(d as u64);
        self.exit();
        if sent {
            None
        } else {
            debug_assert_eq!(vr, 0);
            Some(acc)
        }
    }

    /// Reduce + broadcast: every PE returns the combined value.
    pub fn allreduce(&self, data: Vec<u8>, op: impl FnMut(Vec<u8>, Vec<u8>) -> Vec<u8>) -> Vec<u8> {
        let _g = trace::span(cat::COLL, "allreduce");
        let v = self.reduce(0, data, op).unwrap_or_default();
        self.broadcast(0, v)
    }

    /// Direct gather of variable-size payloads to `root`: returns, at the
    /// root only, the payloads indexed by source rank. Linear latency at
    /// the root — the centralized bottleneck FKmerge exhibits.
    pub fn gatherv(&self, root: usize, data: Vec<u8>) -> Option<Vec<Vec<u8>>> {
        let _g = trace::span_args(
            cat::COLL,
            "gatherv",
            [("bytes", data.len() as u64), ("", 0)],
        );
        let p = self.size();
        self.enter();
        let tag = Tag::coll(self.next_coll_tag()).0;
        let r = self.rank();
        let result = if r == root {
            let mut out: Vec<Vec<u8>> = (0..p).map(|_| Vec::new()).collect();
            out[root] = data;
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = self.raw_recv(src, tag, true);
                }
            }
            self.add_rounds(p as u64 - 1);
            Some(out)
        } else {
            self.raw_send(root, tag, data, true);
            self.add_rounds(1);
            None
        };
        self.exit();
        result
    }

    /// All-gather (the paper's "gossiping"): Bruck doubling, ⌈log p⌉
    /// rounds. Returns all payloads indexed by source rank, on every PE.
    pub fn allgatherv(&self, data: Vec<u8>) -> Vec<Vec<u8>> {
        let _g = trace::span_args(
            cat::COLL,
            "allgatherv",
            [("bytes", data.len() as u64), ("", 0)],
        );
        let p = self.size();
        if p == 1 {
            return vec![data];
        }
        self.enter();
        let tag = Tag::coll(self.next_coll_tag()).0;
        let r = self.rank();
        let mut blocks: Vec<Option<Vec<u8>>> = (0..p).map(|_| None).collect();
        blocks[r] = Some(data);
        let mut k = 1usize;
        while k < p {
            // Send blocks [r, r+min(k, p-k)) to (r - k); receive the
            // corresponding window from (r + k).
            let send_count = k.min(p - k);
            let dst = (r + p - k) % p;
            let src = (r + k) % p;
            let mut frame = Vec::new();
            frame.extend_from_slice(&(send_count as u32).to_le_bytes());
            for i in 0..send_count {
                let origin = (r + i) % p;
                let b = blocks[origin].as_ref().expect("block present by induction");
                frame.extend_from_slice(&(origin as u32).to_le_bytes());
                frame.extend_from_slice(&(b.len() as u32).to_le_bytes());
                frame.extend_from_slice(b);
            }
            self.raw_send(dst, tag, frame, true);
            let incoming = self.raw_recv(src, tag, true);
            let mut pos = 0usize;
            let count = read_u32(&incoming, &mut pos) as usize;
            for _ in 0..count {
                let origin = read_u32(&incoming, &mut pos) as usize;
                let len = read_u32(&incoming, &mut pos) as usize;
                blocks[origin] = Some(incoming[pos..pos + len].to_vec());
                pos += len;
            }
            k <<= 1;
        }
        self.add_rounds(ceil_log2(p) as u64);
        self.exit();
        blocks
            .into_iter()
            .map(|b| b.expect("all blocks present after ⌈log p⌉ Bruck steps"))
            .collect()
    }

    /// Personalized all-to-all, direct algorithm: p−1 rounds, minimal
    /// volume (the low-volume end of the paper's tradeoff). `msgs[i]` goes
    /// to rank `i`; returns received payloads indexed by source.
    pub fn alltoallv(&self, mut msgs: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let _g = trace::span_args(
            cat::COLL,
            "alltoallv",
            [
                ("bytes", msgs.iter().map(|m| m.len() as u64).sum()),
                ("", 0),
            ],
        );
        let p = self.size();
        assert_eq!(msgs.len(), p, "need one message per destination");
        if p == 1 {
            return msgs;
        }
        self.enter();
        let tag = Tag::coll(self.next_coll_tag()).0;
        let r = self.rank();
        let mut out: Vec<Vec<u8>> = (0..p).map(|_| Vec::new()).collect();
        out[r] = std::mem::take(&mut msgs[r]);
        for i in 1..p {
            let dst = (r + i) % p;
            self.raw_send(dst, tag, std::mem::take(&mut msgs[dst]), true);
        }
        for i in 1..p {
            let src = (r + p - i) % p;
            out[src] = self.raw_recv(src, tag, true);
        }
        self.add_rounds(p as u64 - 1);
        self.exit();
        out
    }

    /// Personalized all-to-all along hypercube dimensions: log p rounds at
    /// the cost of up to log p× volume (messages are forwarded). Requires
    /// a power-of-two communicator. The low-latency end of the tradeoff
    /// (used by the latency-reduced PDMS variant of Theorem 6).
    pub fn alltoallv_hypercube(&self, msgs: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let _g = trace::span_args(
            cat::COLL,
            "alltoallv_hypercube",
            [
                ("bytes", msgs.iter().map(|m| m.len() as u64).sum()),
                ("", 0),
            ],
        );
        let p = self.size();
        assert_eq!(msgs.len(), p);
        assert!(p.is_power_of_two(), "hypercube all-to-all needs 2^d PEs");
        if p == 1 {
            return msgs;
        }
        self.enter();
        let tag_base = self.next_coll_tag();
        let r = self.rank();
        let d = ceil_log2(p);
        // In transit: (original source, final destination, payload).
        let mut in_transit: Vec<(u32, u32, Vec<u8>)> = msgs
            .into_iter()
            .enumerate()
            .map(|(dst, m)| (r as u32, dst as u32, m))
            .collect();
        for k in 0..d {
            let partner = r ^ (1 << k);
            let tag = Tag::coll(tag_base).0 ^ ((k as u64 + 1) << 32);
            let (keep, forward): (Vec<_>, Vec<_>) = in_transit
                .into_iter()
                .partition(|(_, dst, _)| (*dst as usize) & (1 << k) == r & (1 << k));
            let mut frame = Vec::new();
            frame.extend_from_slice(&(forward.len() as u32).to_le_bytes());
            for (src, dst, m) in &forward {
                frame.extend_from_slice(&src.to_le_bytes());
                frame.extend_from_slice(&dst.to_le_bytes());
                frame.extend_from_slice(&(m.len() as u32).to_le_bytes());
                frame.extend_from_slice(m);
            }
            self.raw_send(partner, tag, frame, true);
            let incoming = self.raw_recv(partner, tag, true);
            in_transit = keep;
            let mut pos = 0usize;
            let count = read_u32(&incoming, &mut pos) as usize;
            for _ in 0..count {
                let src = read_u32(&incoming, &mut pos);
                let dst = read_u32(&incoming, &mut pos);
                let len = read_u32(&incoming, &mut pos) as usize;
                in_transit.push((src, dst, incoming[pos..pos + len].to_vec()));
                pos += len;
            }
        }
        self.add_rounds(d as u64);
        self.exit();
        let mut out: Vec<Vec<u8>> = (0..p).map(|_| Vec::new()).collect();
        for (src, dst, m) in in_transit {
            debug_assert_eq!(dst as usize, r, "message not at its destination");
            out[src as usize] = m;
        }
        out
    }

    // ------------------------------------------------------------------
    // typed conveniences
    // ------------------------------------------------------------------

    /// All-gather of one `u64` per PE.
    pub fn allgather_u64(&self, v: u64) -> Vec<u64> {
        self.allgatherv(v.to_le_bytes().to_vec())
            .into_iter()
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte block")))
            .collect()
    }

    /// All-reduce of one `u64`.
    pub fn allreduce_u64(&self, v: u64, op: ReduceOp) -> u64 {
        let out = self.allreduce(v.to_le_bytes().to_vec(), |a, b| {
            let x = u64::from_le_bytes(a.try_into().expect("8 bytes"));
            let y = u64::from_le_bytes(b.try_into().expect("8 bytes"));
            op.apply(x, y).to_le_bytes().to_vec()
        });
        u64::from_le_bytes(out.try_into().expect("8 bytes"))
    }

    /// Broadcast of a `u64` slice from `root`.
    pub fn broadcast_u64s(&self, root: usize, vals: &[u64]) -> Vec<u64> {
        bytes_to_u64s(&self.broadcast(root, u64s_to_bytes(vals)))
    }

    /// Exclusive prefix sum of one `u64` per PE (rank 0 gets 0), plus the
    /// global total. Implemented over the gossip primitive: O(log p)
    /// rounds, O(8p) volume.
    pub fn exclusive_scan_sum_u64(&self, v: u64) -> (u64, u64) {
        let all = self.allgather_u64(v);
        let prefix: u64 = all[..self.rank()].iter().sum();
        let total: u64 = all.iter().sum();
        (prefix, total)
    }
}

#[inline]
fn read_u32(buf: &[u8], pos: &mut usize) -> u32 {
    let v = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().expect("4 bytes"));
    *pos += 4;
    v
}
