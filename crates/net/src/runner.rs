//! SPMD execution: spawn `p` PE threads, run one closure on each, collect
//! results and aggregated communication statistics.
//!
//! Panics on any PE broadcast a poison pill to all mailboxes, so the other
//! PEs abort their blocked receives instead of deadlocking; the runner
//! then propagates the panic to the caller.

use crate::comm::{Comm, Envelope, PeCore, WorldShared};
use crate::metrics::{NetStats, PeMetrics};
use crate::rng::SplitMix64;
use crossbeam::channel::unbounded;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one SPMD run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Seed all per-PE RNGs derive from.
    pub seed: u64,
    /// Receive timeout before a PE declares a deadlock.
    pub recv_timeout: Duration,
    /// Stack size per PE thread.
    pub stack_size: usize,
    /// Worker threads each PE uses for its local phases; feeds the
    /// oversubscription correction `min(1, cores / (p·t))` applied to
    /// compute-time accounting (see [`crate::metrics::oversub_scale`]).
    /// Defaults to the `DSS_THREADS` knob, matching what the sorters'
    /// default configurations actually spawn.
    pub threads_per_pe: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            seed: 0xD55_C0DE,
            recv_timeout: Duration::from_secs(120),
            stack_size: 4 << 20,
            threads_per_pe: dss_strkit::sort::threads_from_env(),
        }
    }
}

/// Result of an SPMD run.
pub struct SpmdResult<T> {
    /// Per-PE return values, indexed by world rank.
    pub values: Vec<T>,
    /// Aggregated communication statistics.
    pub stats: NetStats,
    /// Raw per-PE metrics (diagnostics).
    pub pe_metrics: Vec<PeMetrics>,
}

/// Runs `f` on `p` PE threads and collects results.
///
/// `f` is invoked once per PE with that PE's world communicator. Panics in
/// any PE abort the whole run (propagated to the caller).
pub fn run_spmd<T, F>(p: usize, cfg: RunConfig, f: F) -> SpmdResult<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    assert!(p >= 1, "need at least one PE");
    // Apply the DSS_TRACE knob (once per process; panics on bad values).
    crate::trace::init_from_env();
    let _run_span = crate::trace::span_args(
        crate::trace::cat::RUN,
        "run_spmd",
        [("pes", p as u64), ("", 0)],
    );
    let start = Instant::now();
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded::<Envelope>();
        senders.push(tx);
        receivers.push(rx);
    }
    let world = Arc::new(WorldShared { senders, size: p });
    // Oversubscription correction for compute-time accounting (see
    // `metrics::oversub_scale`): p PEs × the worker threads each spawns.
    let oversub_scale = crate::metrics::oversub_scale(p, cfg.threads_per_pe);
    let f = &f;
    let outcome: Vec<(T, PeMetrics)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| {
                let world = Arc::clone(&world);
                let seed = SplitMix64::new(cfg.seed ^ 0x5eed_0000).next_u64();
                let recv_timeout = cfg.recv_timeout;
                scope
                    .builder()
                    .name(format!("pe{rank}"))
                    .stack_size(cfg.stack_size)
                    .spawn(move |_| {
                        // Creation order matters for span nesting: the PE's
                        // lifetime span opens before its first phase span.
                        let run_span = crate::trace::span_args(
                            crate::trace::cat::RUN,
                            "pe",
                            [("rank", rank as u64), ("", 0)],
                        );
                        let phase_span = crate::trace::span(crate::trace::cat::PHASE, "main");
                        let core = PeCore {
                            world_rank: rank,
                            world,
                            rx,
                            pending: Vec::new(),
                            metrics: PeMetrics::with_scale(oversub_scale),
                            seed,
                            recv_timeout,
                            slots: Vec::new(),
                            posted: Vec::new(),
                            free_slots: Vec::new(),
                            phase_span,
                            run_span,
                        };
                        let mut comm = Comm::world(core);
                        match catch_unwind(AssertUnwindSafe(|| f(&mut comm))) {
                            Ok(v) => {
                                let metrics = comm.take_metrics();
                                (v, metrics)
                            }
                            Err(e) => {
                                comm.world_shared().poison_all();
                                resume_unwind(e);
                            }
                        }
                    })
                    .expect("spawn PE thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(e) => resume_unwind(e),
            })
            .collect()
    })
    .expect("SPMD scope");
    let wall = start.elapsed();
    let (values, pe_metrics): (Vec<T>, Vec<PeMetrics>) = outcome.into_iter().unzip();
    let stats = NetStats::aggregate(&pe_metrics, wall);
    SpmdResult {
        values,
        stats,
        pe_metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::ReduceOp;
    use crate::comm::Tag;

    fn cfg() -> RunConfig {
        RunConfig {
            recv_timeout: Duration::from_secs(20),
            // These test closures are single-threaded; pin the accounting
            // scale so assertions don't depend on the DSS_THREADS default.
            threads_per_pe: 1,
            ..RunConfig::default()
        }
    }

    #[test]
    fn point_to_point_ring() {
        for p in [1usize, 2, 3, 5, 8] {
            let res = run_spmd(p, cfg(), |comm| {
                let r = comm.rank();
                let next = (r + 1) % comm.size();
                let prev = (r + comm.size() - 1) % comm.size();
                comm.send(next, Tag::user(1), vec![r as u8]);
                let got = comm.recv(prev, Tag::user(1));
                got[0] as usize
            });
            for (r, v) in res.values.iter().enumerate() {
                assert_eq!(*v, (r + p - 1) % p, "p={p} rank={r}");
            }
        }
    }

    #[test]
    fn message_matching_is_by_source_and_tag() {
        let res = run_spmd(3, cfg(), |comm| match comm.rank() {
            0 => {
                comm.send(2, Tag::user(7), vec![70]);
                comm.send(2, Tag::user(8), vec![80]);
                0
            }
            1 => {
                comm.send(2, Tag::user(7), vec![17]);
                0
            }
            _ => {
                // Receive out of arrival order on purpose.
                let b = comm.recv(0, Tag::user(8));
                let a = comm.recv(1, Tag::user(7));
                let c = comm.recv(0, Tag::user(7));
                (b[0] as usize) * 10000 + (a[0] as usize) * 100 + c[0] as usize
            }
        });
        assert_eq!(res.values[2], 80_0000 + 17_00 + 70);
    }

    #[test]
    fn broadcast_from_every_root() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            for root in 0..p {
                let res = run_spmd(p, cfg(), |comm| {
                    let data = if comm.rank() == root {
                        vec![42, root as u8]
                    } else {
                        Vec::new()
                    };
                    comm.broadcast(root, data)
                });
                for v in res.values {
                    assert_eq!(v, vec![42, root as u8], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn reduce_and_allreduce_sum() {
        for p in [1usize, 2, 5, 8, 13] {
            let res = run_spmd(p, cfg(), |comm| {
                comm.allreduce_u64(comm.rank() as u64 + 1, ReduceOp::Sum)
            });
            let expect = (p * (p + 1) / 2) as u64;
            assert!(res.values.iter().all(|&v| v == expect), "p={p}");
        }
    }

    #[test]
    fn allreduce_max_min() {
        let res = run_spmd(6, cfg(), |comm| {
            let max = comm.allreduce_u64(comm.rank() as u64, ReduceOp::Max);
            let min = comm.allreduce_u64(comm.rank() as u64 + 10, ReduceOp::Min);
            (max, min)
        });
        assert!(res.values.iter().all(|&v| v == (5, 10)));
    }

    #[test]
    fn gatherv_collects_at_root() {
        let res = run_spmd(5, cfg(), |comm| {
            let data = vec![comm.rank() as u8; comm.rank() + 1];
            comm.gatherv(2, data)
        });
        for (r, v) in res.values.iter().enumerate() {
            if r == 2 {
                let parts = v.as_ref().expect("root receives");
                for (src, part) in parts.iter().enumerate() {
                    assert_eq!(part, &vec![src as u8; src + 1]);
                }
            } else {
                assert!(v.is_none());
            }
        }
    }

    #[test]
    fn allgatherv_all_sizes() {
        for p in [1usize, 2, 3, 4, 6, 8, 11] {
            let res = run_spmd(p, cfg(), |comm| {
                comm.allgatherv(vec![comm.rank() as u8; comm.rank() % 3 + 1])
            });
            for v in res.values {
                assert_eq!(v.len(), p);
                for (src, part) in v.iter().enumerate() {
                    assert_eq!(part, &vec![src as u8; src % 3 + 1], "p={p}");
                }
            }
        }
    }

    #[test]
    fn alltoallv_permutes_payloads() {
        for p in [1usize, 2, 4, 7] {
            let res = run_spmd(p, cfg(), |comm| {
                let msgs: Vec<Vec<u8>> = (0..p)
                    .map(|dst| vec![comm.rank() as u8, dst as u8])
                    .collect();
                comm.alltoallv(msgs)
            });
            for (r, v) in res.values.iter().enumerate() {
                for (src, m) in v.iter().enumerate() {
                    assert_eq!(m, &vec![src as u8, r as u8], "p={p}");
                }
            }
        }
    }

    #[test]
    fn alltoallv_hypercube_matches_direct() {
        for p in [1usize, 2, 4, 8] {
            let res = run_spmd(p, cfg(), |comm| {
                let msgs: Vec<Vec<u8>> = (0..p)
                    .map(|dst| vec![comm.rank() as u8, dst as u8, 99])
                    .collect();
                comm.alltoallv_hypercube(msgs)
            });
            for (r, v) in res.values.iter().enumerate() {
                for (src, m) in v.iter().enumerate() {
                    assert_eq!(m, &vec![src as u8, r as u8, 99], "p={p}");
                }
            }
        }
    }

    #[test]
    fn scan_and_barrier() {
        let res = run_spmd(6, cfg(), |comm| {
            comm.barrier();
            let (prefix, total) = comm.exclusive_scan_sum_u64(comm.rank() as u64 + 1);
            comm.barrier();
            (prefix, total)
        });
        for (r, &(prefix, total)) in res.values.iter().enumerate() {
            assert_eq!(total, 21);
            assert_eq!(prefix, (r * (r + 1) / 2) as u64);
        }
    }

    #[test]
    fn split_forms_independent_subgroups() {
        let res = run_spmd(8, cfg(), |comm| {
            let color = (comm.rank() % 2) as u64;
            let sub = comm.split(color);
            // Within each subgroup, sum the world ranks.
            let sum = sub.allreduce_u64(comm.rank() as u64, ReduceOp::Sum);
            (sub.size(), sub.rank(), sum)
        });
        for (r, &(size, sub_rank, sum)) in res.values.iter().enumerate() {
            assert_eq!(size, 4);
            assert_eq!(sub_rank, r / 2);
            assert_eq!(sum, if r % 2 == 0 { 2 + 4 + 6 } else { 1 + 3 + 5 + 7 });
        }
    }

    #[test]
    fn nested_splits() {
        let res = run_spmd(8, cfg(), |comm| {
            let half = comm.split((comm.rank() / 4) as u64);
            let quarter = half.split((half.rank() / 2) as u64);
            quarter.allreduce_u64(comm.rank() as u64, ReduceOp::Sum)
        });
        let expect = [1, 1, 5, 5, 9, 9, 13, 13];
        for (r, &v) in res.values.iter().enumerate() {
            assert_eq!(v, expect[r], "rank {r}");
        }
    }

    #[test]
    fn byte_accounting_is_exact_for_p2p() {
        let res = run_spmd(2, cfg(), |comm| {
            comm.set_phase("payload");
            if comm.rank() == 0 {
                comm.send(1, Tag::user(0), vec![0u8; 1000]);
            } else {
                let _ = comm.recv(0, Tag::user(0));
            }
        });
        let phase = res
            .stats
            .phases
            .iter()
            .find(|p| p.name == "payload")
            .expect("phase exists");
        assert_eq!(phase.total.bytes_sent, 1000);
        assert_eq!(phase.total.bytes_recv, 1000);
        assert_eq!(phase.total.msgs_sent, 1);
        assert_eq!(phase.max.rounds, 1);
    }

    #[test]
    fn self_messages_are_free() {
        let res = run_spmd(1, cfg(), |comm| {
            comm.send(0, Tag::user(3), vec![1, 2, 3]);
            comm.recv(0, Tag::user(3))
        });
        assert_eq!(res.values[0], vec![1, 2, 3]);
        assert_eq!(res.stats.total_bytes_sent(), 0);
    }

    #[test]
    fn alltoallv_counts_exclude_self() {
        let res = run_spmd(4, cfg(), |comm| {
            let msgs: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 100]).collect();
            comm.alltoallv(msgs);
        });
        // 4 PEs × 3 remote messages × 100 B.
        assert_eq!(res.stats.total_bytes_sent(), 1200);
        assert_eq!(res.stats.totals().msgs_sent, 12);
    }

    #[test]
    fn exchange_is_one_round() {
        let res = run_spmd(2, cfg(), |comm| {
            let got = comm.exchange(1 - comm.rank(), Tag::user(9), vec![comm.rank() as u8]);
            got[0]
        });
        assert_eq!(res.values, vec![1, 0]);
        assert_eq!(res.stats.bottleneck().rounds, 1);
    }

    #[test]
    #[should_panic]
    fn pe_panic_propagates() {
        run_spmd(4, cfg(), |comm| {
            if comm.rank() == 2 {
                panic!("boom");
            }
            // Other PEs block; the poison pill must wake them up.
            let _ = comm.recv(2, Tag::user(0));
        });
    }

    #[test]
    fn deterministic_rng_per_rank() {
        let a = run_spmd(4, cfg(), |comm| comm.rng().next_u64());
        let b = run_spmd(4, cfg(), |comm| comm.rng().next_u64());
        assert_eq!(a.values, b.values);
        // Different ranks get different streams.
        assert_ne!(a.values[0], a.values[1]);
    }

    #[test]
    fn compute_vs_comm_time_split() {
        let res = run_spmd(2, cfg(), |comm| {
            comm.set_phase("spin");
            let t = Instant::now();
            while t.elapsed() < Duration::from_millis(20) {
                std::hint::spin_loop();
            }
            comm.barrier();
        });
        let phase = res
            .stats
            .phases
            .iter()
            .find(|p| p.name == "spin")
            .expect("phase");
        // Compute spans are scaled by cores/(p·t) when the host
        // oversubscribes; apply the same scale to the bound so the test is
        // meaningful on any machine, including 1-core hosts.
        let want = (15_000_000f64 * crate::metrics::oversub_scale(2, 1)) as u64;
        assert!(
            phase.max.compute_ns >= want,
            "compute {}ns, want >= {want}ns",
            phase.max.compute_ns
        );
    }

    /// With `threads_per_pe` configured, compute attribution shrinks by
    /// exactly the extra oversubscription factor: the same single-threaded
    /// spin is charged `min(1, cores/(p·t))` of its wall time. Scaled
    /// bounds keep this green on 1-core hosts.
    #[test]
    fn compute_attribution_scales_with_threads_per_pe() {
        let spin = |comm: &mut crate::comm::Comm| {
            comm.set_phase("spin");
            let t = Instant::now();
            while t.elapsed() < Duration::from_millis(20) {
                std::hint::spin_loop();
            }
            comm.barrier();
        };
        let threaded = run_spmd(
            2,
            RunConfig {
                threads_per_pe: 4,
                ..cfg()
            },
            spin,
        );
        let phase = threaded
            .stats
            .phases
            .iter()
            .find(|p| p.name == "spin")
            .expect("phase");
        let scale = crate::metrics::oversub_scale(2, 4);
        let want_min = (15_000_000f64 * scale) as u64;
        // Upper bound uses the single-thread scale: a 4-thread-per-PE run
        // must be charged at most what a 1-thread run would be (strictly
        // less whenever the host has fewer than 8 cores), plus slack for
        // scheduling noise on the 20 ms spin.
        let want_max = (90_000_000f64 * crate::metrics::oversub_scale(2, 1)) as u64;
        assert!(
            phase.max.compute_ns >= want_min,
            "compute {}ns, want >= {want_min}ns",
            phase.max.compute_ns
        );
        assert!(
            phase.max.compute_ns <= want_max,
            "compute {}ns, want <= {want_max}ns",
            phase.max.compute_ns
        );
    }
}
