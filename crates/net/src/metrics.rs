//! Communication metrics and the α–β cost model.
//!
//! Every PE tracks, per algorithm *phase* (a label set by the algorithm,
//! e.g. `"local_sort"`, `"exchange"`), the bytes and messages it sent and
//! received, the latency rounds it contributed to the critical path, and
//! the wall time it spent computing vs. waiting in communication calls.
//!
//! The harness folds the per-PE records into a [`NetStats`] and evaluates
//! the paper's cost model: each phase costs
//! `max_PE(compute) + α·max_PE(rounds) + β·max_PE(bytes)`, phases add up.
//! "Rounds" is the number of sequential message latencies an operation
//! puts on the critical path (log p for tree collectives, p−1 for the
//! direct all-to-all), matching the O(α…) terms of Theorems 1–6.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Oversubscription correction for compute-time accounting: with `p` PEs
/// of `threads_per_pe` worker threads each on this host's cores,
/// wall-clock compute spans overstate CPU use by `p·t / cores`, so they
/// are scaled by `min(1, cores / (p·t))`.
///
/// The threads-per-PE factor matters: a PE running a `t`-way parallel
/// local sort occupies `t` hardware threads for the span's duration, so
/// assuming one thread per PE (the old signature) would silently
/// overstate compute the moment PEs go multi-threaded.
///
/// Timing-sensitive tests must scale their compute/overlap assertions by
/// this factor instead of assuming real concurrency — on a 1-core host
/// every "parallel" phase is in fact time-sliced.
pub fn oversub_scale(p: usize, threads_per_pe: usize) -> f64 {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (cores as f64 / (p * threads_per_pe.max(1)) as f64).min(1.0)
}

/// Counters for one phase on one PE.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseCounters {
    /// Payload bytes sent to other PEs (self-delivery is free and uncounted).
    pub bytes_sent: u64,
    /// Payload bytes received from other PEs.
    pub bytes_recv: u64,
    /// Messages sent to other PEs.
    pub msgs_sent: u64,
    /// Sequential message rounds contributed to the critical path.
    pub rounds: u64,
    /// Nanoseconds spent in user code (oversubscription-corrected wall).
    pub compute_ns: u64,
    /// Nanoseconds spent inside communication calls (incl. waiting).
    pub comm_ns: u64,
    /// Nanoseconds of `comm_ns` spent *blocked with no matching message
    /// ready* — the stall share of communication time. A phase with high
    /// `comm_ns` but low `stall_ns` is bandwidth/copy bound; high
    /// `stall_ns` means the PE sat waiting on peers (skew or latency).
    pub stall_ns: u64,
    /// Raw per-thread CPU nanoseconds in user code (diagnostic; may be
    /// tick-quantized on sandboxed kernels).
    pub cpu_ns: u64,
}

impl PhaseCounters {
    fn absorb(&mut self, o: &PhaseCounters) {
        self.bytes_sent += o.bytes_sent;
        self.bytes_recv += o.bytes_recv;
        self.msgs_sent += o.msgs_sent;
        self.rounds += o.rounds;
        self.compute_ns += o.compute_ns;
        self.comm_ns += o.comm_ns;
        self.stall_ns += o.stall_ns;
        self.cpu_ns += o.cpu_ns;
    }

    fn max_with(&mut self, o: &PhaseCounters) {
        self.bytes_sent = self.bytes_sent.max(o.bytes_sent);
        self.bytes_recv = self.bytes_recv.max(o.bytes_recv);
        self.msgs_sent = self.msgs_sent.max(o.msgs_sent);
        self.rounds = self.rounds.max(o.rounds);
        self.compute_ns = self.compute_ns.max(o.compute_ns);
        self.comm_ns = self.comm_ns.max(o.comm_ns);
        self.stall_ns = self.stall_ns.max(o.stall_ns);
        self.cpu_ns = self.cpu_ns.max(o.cpu_ns);
    }
}

/// Per-PE metrics: ordered list of phases (in first-seen order).
///
/// Compute time is wall time between communication calls, scaled by the
/// oversubscription factor `min(1, host cores / p)`: exact when each PE
/// thread has its own core, and an unbiased estimate in the lockstep
/// compute phases of SPMD algorithms beyond that (all PEs crunch
/// concurrently, so each receives `cores/p` of the machine). The
/// per-thread CPU clock ([`crate::cputime`]) is also sampled into
/// `cpu_ns` as a cross-check, but many sandboxed kernels quantize it to
/// scheduler ticks (10 ms), too coarse to be the primary source.
#[derive(Debug, Clone)]
pub struct PeMetrics {
    phases: Vec<(String, PhaseCounters)>,
    cur: usize,
    boundary_wall: Instant,
    boundary_cpu: u64,
    /// Multiplier applied to wall-clock compute spans.
    oversub_scale: f64,
}

impl Default for PeMetrics {
    fn default() -> Self {
        Self::with_scale(1.0)
    }
}

impl PeMetrics {
    /// Creates metrics with the given oversubscription scale factor.
    pub fn with_scale(oversub_scale: f64) -> Self {
        Self {
            phases: vec![("main".to_string(), PhaseCounters::default())],
            cur: 0,
            boundary_wall: Instant::now(),
            boundary_cpu: crate::cputime::thread_cpu_ns(),
            oversub_scale,
        }
    }

    /// Switches the active phase, flushing elapsed compute time first.
    pub fn set_phase(&mut self, name: &str) {
        self.flush_compute();
        if let Some(i) = self.phases.iter().position(|(n, _)| n == name) {
            self.cur = i;
        } else {
            self.phases
                .push((name.to_string(), PhaseCounters::default()));
            self.cur = self.phases.len() - 1;
        }
    }

    /// Name of the active phase.
    pub fn current_phase(&self) -> &str {
        &self.phases[self.cur].0
    }

    #[inline]
    fn advance_boundary(&mut self) -> (u64, u64) {
        let now_wall = Instant::now();
        let now_cpu = crate::cputime::thread_cpu_ns();
        let wall = (now_wall - self.boundary_wall).as_nanos() as u64;
        let cpu = now_cpu.saturating_sub(self.boundary_cpu);
        self.boundary_wall = now_wall;
        self.boundary_cpu = now_cpu;
        (wall, cpu)
    }

    /// Attributes time since the last boundary to compute.
    pub fn flush_compute(&mut self) {
        let (wall, cpu) = self.advance_boundary();
        let c = &mut self.phases[self.cur].1;
        c.compute_ns += (wall as f64 * self.oversub_scale) as u64;
        c.cpu_ns += cpu;
    }

    /// Attributes wall time since the last boundary to communication.
    pub fn flush_comm(&mut self) {
        let (wall, _) = self.advance_boundary();
        self.phases[self.cur].1.comm_ns += wall;
    }

    /// Records an outgoing message.
    pub fn on_send(&mut self, bytes: usize) {
        let c = &mut self.phases[self.cur].1;
        c.bytes_sent += bytes as u64;
        c.msgs_sent += 1;
    }

    /// Records an incoming message.
    pub fn on_recv(&mut self, bytes: usize) {
        self.phases[self.cur].1.bytes_recv += bytes as u64;
    }

    /// Adds latency rounds to the critical path.
    pub fn add_rounds(&mut self, rounds: u64) {
        self.phases[self.cur].1.rounds += rounds;
    }

    /// Attributes `ns` of the current phase's communication time to
    /// stalling (blocked with no matching message ready). Callers record
    /// this *in addition to* the enclosing `flush_comm` span; `stall_ns`
    /// is a sub-account of `comm_ns`, not an extra cost.
    pub fn add_stall(&mut self, ns: u64) {
        self.phases[self.cur].1.stall_ns += ns;
    }

    /// Iterates over `(phase name, counters)`.
    pub fn phases(&self) -> impl Iterator<Item = (&str, &PhaseCounters)> {
        self.phases.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Sum of counters over all phases.
    pub fn totals(&self) -> PhaseCounters {
        let mut t = PhaseCounters::default();
        for (_, c) in &self.phases {
            t.absorb(c);
        }
        t
    }
}

/// Aggregated per-phase view across all PEs.
#[derive(Debug, Clone, Default)]
pub struct PhaseSummary {
    /// Phase label.
    pub name: String,
    /// Sums over PEs.
    pub total: PhaseCounters,
    /// Per-PE maxima (the bottleneck values `h` of the paper's analysis).
    pub max: PhaseCounters,
}

/// α–β machine parameters for the modeled time.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Message startup latency (the paper's α), nanoseconds.
    pub alpha_ns: f64,
    /// Time per payload *byte* (the paper's β·8), nanoseconds.
    pub beta_ns_per_byte: f64,
}

impl Default for CostModel {
    /// α = 5 µs, β = 1 ns/B (≈ 1 GB/s effective per-PE bandwidth); see
    /// DESIGN.md §6 for the calibration rationale.
    fn default() -> Self {
        Self {
            alpha_ns: 5_000.0,
            beta_ns_per_byte: 1.0,
        }
    }
}

/// Aggregated statistics of one SPMD run.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Number of PEs.
    pub num_pes: usize,
    /// Per-phase summaries, in first-seen order.
    pub phases: Vec<PhaseSummary>,
    /// Wall time of the whole run (includes thread oversubscription noise).
    pub wall: Duration,
}

impl NetStats {
    /// Folds per-PE metrics into phase summaries.
    pub fn aggregate(pe_metrics: &[PeMetrics], wall: Duration) -> Self {
        let mut order: Vec<String> = Vec::new();
        let mut map: BTreeMap<String, PhaseSummary> = BTreeMap::new();
        for m in pe_metrics {
            for (name, c) in m.phases() {
                if !map.contains_key(name) {
                    order.push(name.to_string());
                    map.insert(
                        name.to_string(),
                        PhaseSummary {
                            name: name.to_string(),
                            ..PhaseSummary::default()
                        },
                    );
                }
                let s = map.get_mut(name).expect("phase just inserted");
                s.total.absorb(c);
                s.max.max_with(c);
            }
        }
        Self {
            num_pes: pe_metrics.len(),
            phases: order
                .into_iter()
                .map(|n| map.remove(&n).expect("ordered phase exists"))
                .collect(),
            wall,
        }
    }

    /// Totals over all phases.
    pub fn totals(&self) -> PhaseCounters {
        let mut t = PhaseCounters::default();
        for p in &self.phases {
            t.absorb(&p.total);
        }
        t
    }

    /// Bottleneck totals (sum over phases of per-phase maxima).
    pub fn bottleneck(&self) -> PhaseCounters {
        let mut t = PhaseCounters::default();
        for p in &self.phases {
            t.absorb(&p.max);
        }
        t
    }

    /// Total bytes sent across all PEs (the numerator of the paper's
    /// "bytes sent per string" plots).
    pub fn total_bytes_sent(&self) -> u64 {
        self.totals().bytes_sent
    }

    /// Modeled execution time under the α–β model:
    /// `Σ_phases (max compute + α·max rounds + β·max(sent, recv))`.
    pub fn modeled_time(&self, model: &CostModel) -> Duration {
        let mut ns = 0f64;
        for p in &self.phases {
            ns += p.max.compute_ns as f64;
            ns += model.alpha_ns * p.max.rounds as f64;
            ns += model.beta_ns_per_byte * p.max.bytes_sent.max(p.max.bytes_recv) as f64;
        }
        Duration::from_nanos(ns as u64)
    }

    /// Per-phase modeled time (diagnostics / ablation output).
    pub fn modeled_phase_times(&self, model: &CostModel) -> Vec<(String, Duration)> {
        self.phases
            .iter()
            .map(|p| {
                let ns = p.max.compute_ns as f64
                    + model.alpha_ns * p.max.rounds as f64
                    + model.beta_ns_per_byte * p.max.bytes_sent.max(p.max.bytes_recv) as f64;
                (p.name.clone(), Duration::from_nanos(ns as u64))
            })
            .collect()
    }

    /// Human-readable per-phase breakdown with stall attribution: one row
    /// per phase with bottleneck (per-PE max) compute/comm/stall times
    /// and total bytes/messages, plus a totals row. The `stall%` column
    /// is stall as a share of comm — the direct answer to "was this
    /// phase's comm time copying bytes or waiting on peers?".
    pub fn phase_report(&self) -> String {
        fn ms(ns: u64) -> f64 {
            ns as f64 / 1e6
        }
        fn pct(part: u64, whole: u64) -> f64 {
            if whole == 0 {
                0.0
            } else {
                100.0 * part as f64 / whole as f64
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>12} {:>12} {:>12} {:>7} {:>12} {:>8}\n",
            "phase", "compute_ms", "comm_ms", "stall_ms", "stall%", "bytes", "msgs"
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "{:<14} {:>12.3} {:>12.3} {:>12.3} {:>6.1}% {:>12} {:>8}\n",
                p.name,
                ms(p.max.compute_ns),
                ms(p.max.comm_ns),
                ms(p.max.stall_ns),
                pct(p.max.stall_ns, p.max.comm_ns),
                p.total.bytes_sent,
                p.total.msgs_sent,
            ));
        }
        let b = self.bottleneck();
        let t = self.totals();
        out.push_str(&format!(
            "{:<14} {:>12.3} {:>12.3} {:>12.3} {:>6.1}% {:>12} {:>8}\n",
            "TOTAL",
            ms(b.compute_ns),
            ms(b.comm_ns),
            ms(b.stall_ns),
            pct(b.stall_ns, b.comm_ns),
            t.bytes_sent,
            t.msgs_sent,
        ));
        out
    }

    /// [`Self::phase_report`] as machine-readable JSON: an array of
    /// per-phase objects with both bottleneck (`max_*`) and summed
    /// (`total_*`) counters.
    pub fn phase_report_json(&self) -> String {
        let mut out = String::from("[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                concat!(
                    "{{\"phase\":\"{}\",",
                    "\"max_compute_ns\":{},\"max_comm_ns\":{},\"max_stall_ns\":{},",
                    "\"max_rounds\":{},",
                    "\"total_bytes_sent\":{},\"total_bytes_recv\":{},",
                    "\"total_msgs_sent\":{},\"total_stall_ns\":{}}}"
                ),
                p.name.escape_default(),
                p.max.compute_ns,
                p.max.comm_ns,
                p.max.stall_ns,
                p.max.rounds,
                p.total.bytes_sent,
                p.total.bytes_recv,
                p.total.msgs_sent,
                p.total.stall_ns,
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the oversubscription formula `min(1, cores / (p·t))` against
    /// the host's actual core count — valid on any machine, including
    /// 1-core hosts (where every scale with p·t > 1 shrinks below 1).
    #[test]
    fn oversub_scale_accounts_for_threads_per_pe() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1) as f64;
        for (p, t) in [(1, 1), (2, 1), (1, 4), (2, 4), (4, 8), (16, 16)] {
            let want = (cores / (p * t) as f64).min(1.0);
            let got = oversub_scale(p, t);
            assert!((got - want).abs() < 1e-12, "p={p} t={t}: {got} vs {want}");
        }
        // t worker threads per PE must shrink the correction exactly as if
        // there were p·t single-threaded PEs.
        assert_eq!(oversub_scale(2, 4).to_bits(), oversub_scale(8, 1).to_bits());
        // A zero thread count is treated as 1 (defensive; validated knobs
        // never produce it).
        assert_eq!(oversub_scale(2, 0).to_bits(), oversub_scale(2, 1).to_bits());
        assert!(oversub_scale(1, 1) <= 1.0 && oversub_scale(1, 1) > 0.0);
    }

    #[test]
    fn phases_accumulate_in_order() {
        let mut m = PeMetrics::default();
        m.on_send(100);
        m.set_phase("exchange");
        m.on_send(50);
        m.on_recv(70);
        m.add_rounds(3);
        m.set_phase("main"); // back to the first phase
        m.on_send(1);
        let phases: Vec<_> = m.phases().collect();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, "main");
        assert_eq!(phases[0].1.bytes_sent, 101);
        assert_eq!(phases[1].1.bytes_sent, 50);
        assert_eq!(phases[1].1.bytes_recv, 70);
        assert_eq!(phases[1].1.rounds, 3);
        assert_eq!(m.totals().bytes_sent, 151);
    }

    #[test]
    fn aggregate_takes_sums_and_maxima() {
        let mut a = PeMetrics::default();
        a.on_send(10);
        let mut b = PeMetrics::default();
        b.on_send(30);
        b.add_rounds(2);
        let stats = NetStats::aggregate(&[a, b], Duration::from_millis(1));
        assert_eq!(stats.num_pes, 2);
        assert_eq!(stats.phases.len(), 1);
        assert_eq!(stats.phases[0].total.bytes_sent, 40);
        assert_eq!(stats.phases[0].max.bytes_sent, 30);
        assert_eq!(stats.phases[0].max.rounds, 2);
        assert_eq!(stats.total_bytes_sent(), 40);
    }

    #[test]
    fn modeled_time_applies_alpha_beta() {
        let mut a = PeMetrics::default();
        a.on_send(1000);
        a.add_rounds(4);
        let stats = NetStats::aggregate(&[a], Duration::ZERO);
        let model = CostModel {
            alpha_ns: 1000.0,
            beta_ns_per_byte: 2.0,
        };
        let t = stats.modeled_time(&model);
        // compute≈0 + 4*1000 + 1000*2 = 6000 ns (compute may add noise ns).
        assert!(t >= Duration::from_nanos(6000));
        assert!(t < Duration::from_nanos(6000) + Duration::from_millis(5));
    }

    /// Satellite pin for the `Comm::set_phase` double-flush fix: one
    /// phase switch must charge the elapsed interval to compute exactly
    /// once. With scale 1.0, compute is raw wall, so the sum of per-phase
    /// compute can never exceed the wall clock of the whole sequence —
    /// any double-charge of a busy interval breaks the inequality.
    #[test]
    fn phase_switch_charges_elapsed_compute_exactly_once() {
        fn busy(d: Duration) {
            let t0 = Instant::now();
            while t0.elapsed() < d {
                std::hint::black_box(0u64);
            }
        }
        let start = Instant::now();
        let mut m = PeMetrics::with_scale(1.0);
        busy(Duration::from_millis(3));
        m.set_phase("a");
        busy(Duration::from_millis(3));
        m.set_phase("b");
        m.flush_compute();
        let elapsed = start.elapsed().as_nanos() as u64;
        let per_phase: Vec<u64> = m.phases().map(|(_, c)| c.compute_ns).collect();
        let total: u64 = per_phase.iter().sum();
        assert!(
            total <= elapsed,
            "phases charged {total} ns compute out of {elapsed} ns wall — \
             some interval was counted more than once"
        );
        // Each busy interval landed in the phase that was active while it
        // ran ("main" and "a"), not in the phase being switched to.
        assert!(per_phase[0] >= 3_000_000, "main got {} ns", per_phase[0]);
        assert!(per_phase[1] >= 3_000_000, "a got {} ns", per_phase[1]);
    }

    #[test]
    fn stall_is_a_sub_account_of_comm() {
        let mut a = PeMetrics::default();
        a.set_phase("exchange");
        a.add_stall(500);
        let mut b = PeMetrics::default();
        b.set_phase("exchange");
        b.add_stall(1200);
        let stats = NetStats::aggregate(&[a, b], Duration::ZERO);
        let exch = stats.phases.iter().find(|p| p.name == "exchange").unwrap();
        assert_eq!(exch.total.stall_ns, 1700);
        assert_eq!(exch.max.stall_ns, 1200);
        assert_eq!(stats.totals().stall_ns, 1700);
        assert_eq!(stats.bottleneck().stall_ns, 1200);
    }

    #[test]
    fn phase_report_lists_phases_and_stall_share() {
        let mut a = PeMetrics::default();
        a.set_phase("exchange");
        a.on_send(4096);
        a.add_stall(250);
        let stats = NetStats::aggregate(&[a], Duration::ZERO);
        let report = stats.phase_report();
        assert!(report.contains("stall%"), "{report}");
        assert!(report.contains("exchange"), "{report}");
        assert!(report.contains("TOTAL"), "{report}");
        let json = stats.phase_report_json();
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"phase\":\"exchange\""), "{json}");
        assert!(json.contains("\"total_bytes_sent\":4096"), "{json}");
        assert!(json.contains("\"max_stall_ns\":250"), "{json}");
    }

    #[test]
    fn distinct_phases_per_pe_union() {
        let mut a = PeMetrics::default();
        a.set_phase("x");
        a.on_send(5);
        let mut b = PeMetrics::default();
        b.set_phase("y");
        b.on_send(7);
        let stats = NetStats::aggregate(&[a, b], Duration::ZERO);
        let names: Vec<_> = stats.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["main", "x", "y"]);
    }
}
