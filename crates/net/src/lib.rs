//! # dss-net — SPMD message-passing runtime (the MPI stand-in)
//!
//! The paper's model of computation (§II) is a distributed-memory machine
//! with `p` PEs where sending `m` bits costs `α + βm`. This crate provides
//! that machine: each PE is an OS thread, point-to-point messages are
//! length-counted byte buffers over channels, and all collectives are
//! implemented *on top of* point-to-point with the textbook algorithms
//! (binomial trees for broadcast/reduce/gather, Bruck doubling for
//! all-gather, direct and hypercube personalized all-to-all, dissemination
//! barrier), so that message rounds and volumes match what a real MPI job
//! would incur.
//!
//! Every PE keeps per-phase counters — bytes sent/received, messages,
//! latency rounds on the critical path, compute vs. communication wall
//! time — which the harness aggregates into exact "bytes sent per string"
//! numbers and an α–β modeled time (see [`metrics`]). Measured volumes are
//! substrate-independent facts; modeled times reproduce the *shape* of the
//! paper's scaling plots.
//!
//! ## Quick start
//!
//! ```
//! use dss_net::runner::{run_spmd, RunConfig};
//!
//! let result = run_spmd(4, RunConfig::default(), |comm| {
//!     // SPMD code: every PE runs this closure.
//!     let hello = format!("hi from {}", comm.rank()).into_bytes();
//!     let all = comm.allgatherv(hello);
//!     all.len()
//! });
//! assert_eq!(result.values, vec![4, 4, 4, 4]);
//! ```

pub mod collectives;
pub mod comm;
pub mod cputime;
pub mod metrics;
pub mod nonblocking;
pub mod rng;
pub mod runner;
pub mod topology;
pub mod trace;

pub use comm::{Comm, Tag};
pub use metrics::{CostModel, NetStats, PhaseSummary};
pub use nonblocking::{PendingExchange, RecvHandle, SendHandle};
pub use rng::SplitMix64;
pub use runner::{run_spmd, RunConfig, SpmdResult};
pub use topology::{
    factor_into_levels, grid_dims, grid_view, multi_grid_dims, multi_grid_view, GridComm,
    MultiGridComm, MultiGridLevel,
};
