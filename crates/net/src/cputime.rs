//! Per-thread CPU clock.
//!
//! The simulator runs p PE threads on however many host cores exist; when
//! p exceeds the core count, wall-clock measurements of "compute" inflate
//! by the oversubscription factor and would corrupt the scaling curves.
//! `CLOCK_THREAD_CPUTIME_ID` counts only the nanoseconds this thread
//! actually spent on a CPU, making the modeled-time compute term
//! oversubscription-immune.
//!
//! `std` exposes no thread CPU clock and `libc` is outside the approved
//! dependency set, so on Linux/x86-64 we issue the `clock_gettime`
//! syscall directly; elsewhere we fall back to a monotonic wall clock
//! (correct results, noisier timings — documented in DESIGN.md).

/// Nanoseconds of CPU time consumed by the calling thread.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn thread_cpu_ns() -> u64 {
    const SYS_CLOCK_GETTIME: i64 = 228;
    const CLOCK_THREAD_CPUTIME_ID: i64 = 3;
    let mut ts = [0i64; 2]; // struct timespec { tv_sec, tv_nsec }
    let ret: i64;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_CLOCK_GETTIME => ret,
            in("rdi") CLOCK_THREAD_CPUTIME_ID,
            in("rsi") ts.as_mut_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    if ret != 0 {
        return fallback_ns();
    }
    ts[0] as u64 * 1_000_000_000 + ts[1] as u64
}

/// Fallback for other platforms: monotonic wall time (documented
/// limitation: compute measurements include scheduling delays there).
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn thread_cpu_ns() -> u64 {
    fallback_ns()
}

fn fallback_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn monotone_and_advancing_under_load() {
        // Many kernels (and most sandboxes) quantize the thread CPU clock
        // to scheduler ticks (10ms), so spin until it visibly advances.
        let a = thread_cpu_ns();
        let t = Instant::now();
        let mut x = 0u64;
        loop {
            for _ in 0..10_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            if thread_cpu_ns() > a || t.elapsed() > Duration::from_secs(2) {
                break;
            }
        }
        std::hint::black_box(x);
        let b = thread_cpu_ns();
        assert!(b > a, "CPU clock never advanced: {a} -> {b}");
    }

    #[test]
    fn sleep_consumes_little_cpu() {
        let a = thread_cpu_ns();
        std::thread::sleep(Duration::from_millis(50));
        let b = thread_cpu_ns();
        // Sleeping must cost (almost) no CPU on the real clock — allow one
        // scheduler tick of slop; the fallback clock is exempt.
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(b - a <= 20_000_000, "sleep consumed {}ns CPU", b - a);
        #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
        let _ = (a, b);
    }

    #[test]
    fn threads_have_independent_clocks() {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            // A fresh thread's CPU clock starts near zero, independent of
            // how much this thread has burned.
            let here = thread_cpu_ns();
            let there = std::thread::spawn(thread_cpu_ns).join().expect("join");
            assert!(
                there <= here.max(20_000_000),
                "fresh thread {there} vs busy thread {here}"
            );
        }
    }
}
