//! Communicators and point-to-point messaging.
//!
//! A [`Comm`] is the SPMD handle a PE uses to talk to its peers — the
//! moral equivalent of an `MPI_Comm`. Messages are tagged byte buffers
//! delivered through per-PE unbounded channels; a receive filters by
//! `(communicator, source, tag)` and parks out-of-order arrivals in a
//! pending list (MPI-style matching).
//!
//! [`Comm::split`] creates subcommunicators (hQuick's hypercube subcubes),
//! which route through the same world mailboxes but match on their own
//! communicator id.
//!
//! ## Accounting rules
//!
//! * every payload byte sent to *another* PE is counted (self-delivery is
//!   free, as local data movement is not communication);
//! * a bare [`Comm::recv`] contributes one latency round; collectives
//!   instead add their critical-path depth explicitly (see
//!   [`collectives`](crate::collectives));
//! * wall time inside any communication call is attributed to `comm_ns`,
//!   time between calls to `compute_ns`, per phase.

use crate::metrics::PeMetrics;
use crate::rng::SplitMix64;
use crate::trace::{self, cat, SpanGuard};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Communicator id reserved for the poison pill broadcast on PE panic.
pub(crate) const POISON_COMM: u64 = u64::MAX;

/// Message tag. User tags live in their own namespace, distinct from the
/// sequence tags collectives generate internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tag(pub(crate) u64);

impl Tag {
    const USER_BIT: u64 = 1 << 63;

    /// A user-level tag (p2p protocols of the algorithms).
    pub fn user(t: u64) -> Self {
        debug_assert!(t < Self::USER_BIT);
        Tag(t | Self::USER_BIT)
    }

    pub(crate) fn coll(seq: u64) -> Self {
        debug_assert!(seq < Self::USER_BIT);
        Tag(seq)
    }
}

pub(crate) struct Envelope {
    pub comm: u64,
    /// Sender's rank *within* the destination communicator.
    pub src: u32,
    pub tag: u64,
    pub payload: Vec<u8>,
}

/// Shared world state: one mailbox sender per PE.
pub struct WorldShared {
    pub(crate) senders: Vec<Sender<Envelope>>,
    pub(crate) size: usize,
}

impl WorldShared {
    /// Sends the poison pill to every PE (called on panic, so blocked
    /// receives fail fast instead of deadlocking the run).
    pub(crate) fn poison_all(&self) {
        for s in &self.senders {
            // Ignore failures: the receiver may already be gone.
            let _ = s.send(Envelope {
                comm: POISON_COMM,
                src: 0,
                tag: 0,
                payload: Vec::new(),
            });
        }
    }
}

/// A posted (not yet completed) receive request: the matching engine of
/// both the blocking `recv` and the non-blocking `irecv` paths.
pub(crate) struct RecvSlot {
    comm: u64,
    src: u32,
    tag: u64,
    /// Filled once a matching envelope is routed here.
    payload: Option<Vec<u8>>,
    /// Whether consuming the payload counts `bytes_recv` (false for
    /// self-receives, which are free local moves).
    count: bool,
}

/// Per-PE endpoint state, shared by all communicators of this PE.
pub(crate) struct PeCore {
    pub world_rank: usize,
    pub world: Arc<WorldShared>,
    pub rx: Receiver<Envelope>,
    pub pending: Vec<Envelope>,
    pub metrics: PeMetrics,
    pub seed: u64,
    pub recv_timeout: Duration,
    /// Slab of receive requests (`None` = free slot, recycled via
    /// `free_slots`).
    pub(crate) slots: Vec<Option<RecvSlot>>,
    /// Live slot ids in posting order — the FIFO tie-breaker when several
    /// requests with the same `(comm, src, tag)` key are in flight.
    pub(crate) posted: Vec<usize>,
    pub(crate) free_slots: Vec<usize>,
    /// Trace span of the current metrics phase (inert when tracing is
    /// off). Declared before `run_span` so struct drop closes the phase
    /// span first, keeping the per-thread begin/end stream balanced even
    /// when a PE unwinds mid-phase.
    pub phase_span: SpanGuard,
    /// Trace span covering this PE thread's whole lifetime.
    pub run_span: SpanGuard,
}

impl PeCore {
    /// Posts a receive request for `(comm, src, tag)`. If a matching
    /// envelope is already parked, the earliest-arrived one completes the
    /// request immediately.
    pub(crate) fn post_slot(&mut self, comm: u64, src: u32, tag: u64, count: bool) -> usize {
        let mut slot = RecvSlot {
            comm,
            src,
            tag,
            payload: None,
            count,
        };
        if let Some(i) = self
            .pending
            .iter()
            .position(|e| e.comm == comm && e.src == src && e.tag == tag)
        {
            // `remove` (not `swap_remove`) keeps later same-key envelopes
            // in arrival order — the per-(src, dst, tag) FIFO guarantee.
            slot.payload = Some(self.pending.remove(i).payload);
        }
        let id = match self.free_slots.pop() {
            Some(id) => {
                self.slots[id] = Some(slot);
                id
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.posted.push(id);
        id
    }

    /// Routes an arrived envelope to the earliest-posted matching unfilled
    /// request, parking it in arrival order otherwise. Panics on the
    /// poison pill so blocked PEs abort instead of deadlocking.
    pub(crate) fn deliver(&mut self, env: Envelope) {
        if env.comm == POISON_COMM {
            panic!("peer PE panicked; aborting this PE");
        }
        for &id in &self.posted {
            let slot = self.slots[id].as_mut().expect("posted slot is live");
            if slot.payload.is_none()
                && slot.comm == env.comm
                && slot.src == env.src
                && slot.tag == env.tag
            {
                slot.payload = Some(env.payload);
                return;
            }
        }
        self.pending.push(env);
    }

    /// Whether the request has a payload waiting to be taken.
    pub(crate) fn slot_ready(&self, id: usize) -> bool {
        self.slots[id].as_ref().is_some_and(|s| s.payload.is_some())
    }

    /// Consumes a completed request: frees the slot and records the
    /// receive in the metrics (unless it was a self-receive).
    pub(crate) fn take_slot(&mut self, id: usize) -> Vec<u8> {
        let slot = self.slots[id].take().expect("slot is live");
        let payload = slot.payload.expect("slot completed");
        self.posted.retain(|&x| x != id);
        self.free_slots.push(id);
        if slot.count {
            self.metrics.on_recv(payload.len());
        }
        payload
    }

    /// Routes every already-arrived envelope without blocking.
    pub(crate) fn try_progress(&mut self) {
        loop {
            match self.rx.try_recv() {
                Ok(env) => self.deliver(env),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return,
            }
        }
    }

    /// Blocks for one more envelope and routes it. `Err` means the
    /// receive timeout elapsed (the caller panics with its own context).
    pub(crate) fn progress_blocking(&mut self) -> Result<(), Duration> {
        let timeout = self.recv_timeout;
        match self.rx.recv_timeout(timeout) {
            Ok(env) => {
                self.deliver(env);
                Ok(())
            }
            Err(RecvTimeoutError::Timeout) => Err(timeout),
            Err(RecvTimeoutError::Disconnected) => {
                panic!("world mailbox disconnected — runner tore down mid-operation")
            }
        }
    }
}

/// Membership of one communicator.
struct CommGroup {
    id: u64,
    /// World ranks of the members, in communicator rank order.
    members: Vec<u32>,
    /// This PE's rank within the communicator.
    my_rank: usize,
    /// Sequence numbers for collective tags and for child communicators.
    coll_seq: Cell<u64>,
    split_seq: Cell<u64>,
}

/// The SPMD communicator handle (per PE; not `Send` — each PE thread owns
/// its own).
pub struct Comm {
    core: Rc<RefCell<PeCore>>,
    group: Rc<CommGroup>,
}

impl Comm {
    /// Builds the world communicator for one PE (runner-internal).
    pub(crate) fn world(core: PeCore) -> Self {
        let size = core.world.size;
        let my_rank = core.world_rank;
        Self {
            core: Rc::new(RefCell::new(core)),
            group: Rc::new(CommGroup {
                id: 0,
                members: (0..size as u32).collect(),
                my_rank,
                coll_seq: Cell::new(0),
                split_seq: Cell::new(0),
            }),
        }
    }

    /// Rank of this PE within the communicator.
    pub fn rank(&self) -> usize {
        self.group.my_rank
    }

    /// Number of PEs in the communicator.
    pub fn size(&self) -> usize {
        self.group.members.len()
    }

    /// Rank of this PE in the world communicator.
    pub fn world_rank(&self) -> usize {
        self.core.borrow().world_rank
    }

    /// Whether this PE is rank 0 of the communicator.
    pub fn is_root(&self) -> bool {
        self.group.my_rank == 0
    }

    /// Deterministic per-(run, communicator, rank) RNG.
    pub fn rng(&self) -> SplitMix64 {
        let core = self.core.borrow();
        let mut mixer = SplitMix64::new(
            core.seed ^ self.group.id.rotate_left(17) ^ (self.group.my_rank as u64) << 1,
        );
        let s = mixer.next_u64();
        SplitMix64::new(s)
    }

    /// Switches the metrics phase label (SPMD-collective by convention:
    /// call it on every PE at the same point). `PeMetrics::set_phase`
    /// itself flushes elapsed compute into the outgoing phase, exactly
    /// once.
    pub fn set_phase(&self, name: &str) {
        let mut core = self.core.borrow_mut();
        core.metrics.set_phase(name);
        // Close the outgoing phase's span *before* opening the new one —
        // a direct assignment would record Begin(new) and only then drop
        // the old guard, crossing the spans.
        core.phase_span = SpanGuard::inert();
        core.phase_span = trace::span(cat::PHASE, name);
    }

    /// Runs `f` with the raw per-PE metrics (diagnostics).
    pub fn with_metrics<R>(&self, f: impl FnOnce(&PeMetrics) -> R) -> R {
        f(&self.core.borrow().metrics)
    }

    // ------------------------------------------------------------------
    // point-to-point
    // ------------------------------------------------------------------

    /// Sends `payload` to communicator rank `dst` (non-blocking; the
    /// channel buffers). Counts bytes unless `dst` is this PE.
    pub fn send(&self, dst: usize, tag: Tag, payload: Vec<u8>) {
        let _g = trace::span_args(
            cat::SEND,
            "send",
            [("dst", dst as u64), ("bytes", payload.len() as u64)],
        );
        self.enter();
        self.raw_send(dst, tag.0, payload, true);
        self.exit();
    }

    /// Receives the message from `src` with `tag` (blocking). Adds one
    /// latency round.
    pub fn recv(&self, src: usize, tag: Tag) -> Vec<u8> {
        let _g = trace::span_args(cat::WAIT, "recv", [("src", src as u64), ("", 0)]);
        self.enter();
        let p = self.raw_recv(src, tag.0, true);
        {
            let mut core = self.core.borrow_mut();
            core.metrics.add_rounds(1);
        }
        self.exit();
        p
    }

    /// Simultaneous exchange with a partner (MPI sendrecv): one round.
    pub fn exchange(&self, partner: usize, tag: Tag, payload: Vec<u8>) -> Vec<u8> {
        let _g = trace::span_args(
            cat::SEND,
            "sendrecv",
            [("partner", partner as u64), ("bytes", payload.len() as u64)],
        );
        self.enter();
        self.raw_send(partner, tag.0, payload, true);
        let p = self.raw_recv(partner, tag.0, true);
        {
            let mut core = self.core.borrow_mut();
            core.metrics.add_rounds(1);
        }
        self.exit();
        p
    }

    // ------------------------------------------------------------------
    // internals used by the collectives module
    // ------------------------------------------------------------------

    pub(crate) fn enter(&self) {
        self.core.borrow_mut().metrics.flush_compute();
    }

    pub(crate) fn exit(&self) {
        self.core.borrow_mut().metrics.flush_comm();
    }

    pub(crate) fn add_rounds(&self, rounds: u64) {
        self.core.borrow_mut().metrics.add_rounds(rounds);
    }

    /// Fresh tag for one collective operation (same sequence on every
    /// member because collectives are SPMD-ordered).
    pub(crate) fn next_coll_tag(&self) -> u64 {
        let t = self.group.coll_seq.get();
        self.group.coll_seq.set(t + 1);
        t
    }

    pub(crate) fn raw_send(&self, dst: usize, tag: u64, payload: Vec<u8>, count: bool) {
        let mut core = self.core.borrow_mut();
        if dst == self.group.my_rank {
            // Self-delivery: free local move, routed like an arrival so a
            // posted receive request matches it.
            core.deliver(Envelope {
                comm: self.group.id,
                src: self.group.my_rank as u32,
                tag,
                payload,
            });
            return;
        }
        if count {
            core.metrics.on_send(payload.len());
        }
        let dst_world = self.group.members[dst] as usize;
        core.world.senders[dst_world]
            .send(Envelope {
                comm: self.group.id,
                src: self.group.my_rank as u32,
                tag,
                payload,
            })
            .expect("mailbox closed: peer PE terminated early");
    }

    pub(crate) fn raw_recv(&self, src: usize, tag: u64, count: bool) -> Vec<u8> {
        let mut core = self.core.borrow_mut();
        let comm_id = self.group.id;
        let count = count && src != self.group.my_rank;
        let id = core.post_slot(comm_id, src as u32, tag, count);
        if !core.slot_ready(id) {
            // Drain already-arrived envelopes first: a message sitting in
            // the mailbox is delivery latency, not a stall.
            core.try_progress();
        }
        if !core.slot_ready(id) {
            // Genuinely blocked: nothing matching has arrived anywhere.
            let _stall = trace::span_args(cat::STALL, "recv", [("src", src as u64), ("tag", tag)]);
            let t0 = Instant::now();
            loop {
                if let Err(timeout) = core.progress_blocking() {
                    panic!(
                        "PE {} (comm {comm_id}, rank {}): recv(src={src}, tag={tag}) timed out \
                         after {timeout:?} — likely deadlock",
                        core.world_rank, self.group.my_rank,
                    );
                }
                if core.slot_ready(id) {
                    break;
                }
            }
            core.metrics.add_stall(t0.elapsed().as_nanos() as u64);
        }
        core.take_slot(id)
    }

    // ------------------------------------------------------------------
    // internals used by the non-blocking runtime (see `nonblocking`)
    // ------------------------------------------------------------------

    /// Id of this communicator (slot keys are `(comm id, src, tag)`).
    pub(crate) fn comm_id(&self) -> u64 {
        self.group.id
    }

    /// Runs `f` with exclusive access to the per-PE endpoint state.
    pub(crate) fn with_core<R>(&self, f: impl FnOnce(&mut PeCore) -> R) -> R {
        f(&mut self.core.borrow_mut())
    }

    // ------------------------------------------------------------------
    // communicator management
    // ------------------------------------------------------------------

    /// Splits the communicator: PEs passing the same `color` form a new
    /// communicator, ordered by their rank in `self`. Involves one
    /// all-gather of colors (counted, like a real `MPI_Comm_split`).
    pub fn split(&self, color: u64) -> Comm {
        let colors = self.allgather_u64(color);
        let members: Vec<u32> = (0..self.size())
            .filter(|&i| colors[i] == color)
            .map(|i| self.group.members[i])
            .collect();
        let my_rank = (0..self.size())
            .filter(|&i| colors[i] == color)
            .position(|i| i == self.group.my_rank)
            .expect("calling PE is a member of its own color class");
        let seq = self.group.split_seq.get();
        self.group.split_seq.set(seq + 1);
        let id = crate::rng::SplitMix64::new(self.group.id ^ (seq << 32) ^ color.rotate_left(7))
            .next_u64()
            // Avoid colliding with the reserved ids.
            & !(1 << 63);
        Comm {
            core: Rc::clone(&self.core),
            group: Rc::new(CommGroup {
                id,
                members,
                my_rank,
                coll_seq: Cell::new(0),
                split_seq: Cell::new(0),
            }),
        }
    }

    /// Extracts a clone of this PE's metrics (runner-internal). Also
    /// closes the PE's phase and run trace spans, while still on the PE
    /// thread, so drained event streams end balanced.
    pub(crate) fn take_metrics(&self) -> PeMetrics {
        let mut core = self.core.borrow_mut();
        core.phase_span = SpanGuard::inert();
        core.run_span = SpanGuard::inert();
        core.metrics.flush_compute();
        core.metrics.clone()
    }

    pub(crate) fn world_shared(&self) -> Arc<WorldShared> {
        Arc::clone(&self.core.borrow().world)
    }
}
