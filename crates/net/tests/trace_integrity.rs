//! Trace-integrity pins over the net layer: every drained stream pairs
//! cleanly, span counts for deterministic categories are reproducible
//! across runs, and a receive that genuinely blocks is attributed to
//! stall — both as a `stall` span and in `NetStats`.
//!
//! The recorder is process-global, so every test here serializes on one
//! lock and resets the recorder before touching it.

use dss_net::runner::{run_spmd, RunConfig};
use dss_net::trace::{self, cat};
use dss_net::Tag;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn cfg() -> RunConfig {
    RunConfig {
        recv_timeout: Duration::from_secs(60),
        ..RunConfig::default()
    }
}

/// Categories whose span counts are load-order independent: they mark
/// algorithmic structure, not scheduling. `stall`, `wait` and
/// `sort-task` are deliberately absent — those depend on timing.
const DETERMINISTIC_CATS: &[&str] = &[
    cat::ALGO,
    cat::PHASE,
    cat::COLL,
    cat::ENCODE,
    cat::DECODE,
    cat::MERGE,
    cat::SEND,
    cat::SEND_WINDOW,
];

fn traced<T: Send + 'static>(p: usize, f: impl Fn(&mut dss_net::Comm) -> T + Sync) -> trace::Trace {
    trace::reset();
    trace::enable(trace::DEFAULT_SPAN_CAP);
    run_spmd(p, cfg(), f);
    trace::disable();
    trace::take()
}

/// A run that exercises phases, collectives and point-to-point traffic.
fn workload(comm: &mut dss_net::Comm) {
    comm.set_phase("warmup");
    comm.barrier();
    let r = comm.rank() as u64;
    let sum = comm.allreduce_u64(r, dss_net::collectives::ReduceOp::Sum);
    assert_eq!(sum as usize, comm.size() * (comm.size() - 1) / 2);
    comm.set_phase("ring");
    let p = comm.size();
    let next = (comm.rank() + 1) % p;
    let prev = (comm.rank() + p - 1) % p;
    comm.send(next, Tag::user(7), vec![r as u8; 64]);
    let got = comm.recv(prev, Tag::user(7));
    assert_eq!(got, vec![prev as u8; 64]);
    comm.barrier();
}

fn cat_counts(trace: &trace::Trace) -> BTreeMap<&'static str, usize> {
    let spans = trace::pair_spans(trace).expect("balanced trace");
    let mut counts = BTreeMap::new();
    for s in spans {
        if DETERMINISTIC_CATS.contains(&s.cat) {
            *counts.entry(s.cat).or_insert(0) += 1;
        }
    }
    counts
}

#[test]
fn every_stream_pairs_cleanly_and_covers_the_layers() {
    let _g = lock();
    let trace = traced(4, workload);
    let spans = trace::pair_spans(&trace).expect("every thread's stream must balance");
    // One track per PE plus the driver thread's run_spmd span.
    assert!(trace.threads.len() >= 5, "threads: {}", trace.threads.len());
    assert_eq!(trace.dropped, 0);
    let has = |c: &str| spans.iter().any(|s| s.cat == c);
    for c in [cat::RUN, cat::PHASE, cat::COLL, cat::SEND, cat::WAIT] {
        assert!(has(c), "expected at least one '{c}' span");
    }
    // Phase spans must mirror set_phase: main + warmup + ring per PE.
    let phases = spans.iter().filter(|s| s.cat == cat::PHASE).count();
    assert_eq!(phases, 3 * 4);
    // Collectives nest inside the active phase span on the same track.
    let coll = spans
        .iter()
        .find(|s| s.cat == cat::COLL)
        .expect("coll span");
    assert!(coll.depth >= 2, "coll depth: {}", coll.depth);
}

#[test]
fn deterministic_categories_repeat_exactly() {
    let _g = lock();
    let a = cat_counts(&traced(4, workload));
    let b = cat_counts(&traced(4, workload));
    assert!(!a.is_empty());
    assert_eq!(a, b, "span counts must not depend on scheduling");
}

#[test]
fn blocked_receive_is_attributed_to_stall() {
    let _g = lock();
    trace::reset();
    trace::enable(trace::DEFAULT_SPAN_CAP);
    let res = run_spmd(2, cfg(), |comm| {
        if comm.rank() == 1 {
            std::thread::sleep(Duration::from_millis(25));
            comm.send(0, Tag::user(1), vec![9u8; 8]);
        } else {
            comm.recv(1, Tag::user(1));
        }
    });
    trace::disable();
    let trace = trace::take();
    let spans = trace::pair_spans(&trace).expect("balanced");
    let stall: Vec<_> = spans.iter().filter(|s| s.cat == cat::STALL).collect();
    assert!(!stall.is_empty(), "rank 0 blocked 25ms with nothing to do");
    assert!(
        stall.iter().any(|s| s.dur_ns >= 10_000_000),
        "stall spans too short: {stall:?}"
    );
    // The same block shows up in the metrics stall account, inside comm.
    let totals = res.stats.totals();
    assert!(
        totals.stall_ns >= 10_000_000,
        "stall_ns: {}",
        totals.stall_ns
    );
    assert!(
        totals.stall_ns <= totals.comm_ns,
        "stall must be a sub-account of comm"
    );
}

#[test]
fn disabled_runs_record_nothing() {
    let _g = lock();
    trace::reset();
    assert!(!trace::enabled());
    run_spmd(4, cfg(), workload);
    let trace = trace::take();
    assert_eq!(trace.len(), 0);
    assert!(trace.is_empty());
}
