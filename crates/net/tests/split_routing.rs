//! Property test for nested `Comm::split` routing — the grid's
//! row/column case is a split of a split, so the communicator-id matching
//! must keep sibling subcommunicators fully isolated even when every leaf
//! uses the *same* user tag at the same time, and the latency accounting
//! of collectives run on nested communicators must stay additive.

use dss_net::collectives::ReduceOp;
use dss_net::runner::{run_spmd, RunConfig};
use dss_net::Tag;
use proptest::prelude::*;
use std::time::Duration;

fn cfg() -> RunConfig {
    RunConfig {
        recv_timeout: Duration::from_secs(30),
        ..RunConfig::default()
    }
}

fn ceil_log2(p: usize) -> u64 {
    (usize::BITS - (p - 1).leading_zeros()) as u64
}

/// Members of the leaf communicator of `rank`, in world-rank order, under
/// the two nested color assignments.
fn leaf_members(colors: &[u64], subcolors: &[u64], rank: usize) -> Vec<usize> {
    (0..colors.len())
        .filter(|&i| colors[i] == colors[rank] && subcolors[i] == subcolors[rank])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Split-of-a-split: every PE ring-passes its world rank inside its
    /// leaf communicator with one shared tag, and every leaf runs an
    /// allreduce — messages must never cross sibling subcommunicators and
    /// every PE's "nested" phase must account exactly the sum of the
    /// collective rounds it ran on each nesting level.
    #[test]
    fn nested_split_isolates_and_accounts(
        p in 2usize..8,
        colors in proptest::collection::vec(0u64..3, 8..9),
        subcolors in proptest::collection::vec(0u64..2, 8..9),
    ) {
        let colors = colors[..p].to_vec();
        let subcolors = subcolors[..p].to_vec();
        let (colors_ref, subcolors_ref) = (&colors, &subcolors);
        let res = run_spmd(p, cfg(), move |comm| {
            let rank = comm.rank();
            let sub = comm.split(colors_ref[rank]);
            let leaf = sub.split(subcolors_ref[rank]);
            let members = leaf_members(colors_ref, subcolors_ref, rank);
            assert_eq!(leaf.size(), members.len());
            let my = members.iter().position(|&m| m == rank).expect("member");
            assert_eq!(leaf.rank(), my, "split keeps parent rank order");

            // Ring p2p with the SAME tag in every leaf simultaneously:
            // only communicator-id matching keeps the rings apart.
            let t = Tag::user(7);
            let next = (my + 1) % members.len();
            let prev = (my + members.len() - 1) % members.len();
            leaf.send(next, t, vec![rank as u8]);
            let got = leaf.recv(prev, t);
            assert_eq!(got, vec![members[prev] as u8], "ring crossed leaves");

            // Collective isolation: the leaf-wide max of world ranks.
            let max = leaf.allreduce_u64(rank as u64, ReduceOp::Max);
            assert_eq!(max, *members.last().expect("nonempty") as u64);

            // Latency additivity: one barrier per nesting level inside a
            // dedicated phase accounts ⌈log₂⌉ rounds per level, summed.
            comm.set_phase("nested");
            comm.barrier();
            sub.barrier();
            leaf.barrier();
            let expect = [comm.size(), sub.size(), leaf.size()]
                .iter()
                .filter(|&&s| s > 1)
                .map(|&s| ceil_log2(s))
                .sum::<u64>();
            let got_rounds = comm.with_metrics(|m| {
                m.phases()
                    .find(|(n, _)| *n == "nested")
                    .map(|(_, c)| c.rounds)
                    .expect("phase recorded")
            });
            assert_eq!(got_rounds, expect, "collective rounds must add up");
            got_rounds
        });
        prop_assert_eq!(res.values.len(), p);
    }
}
