//! Property test for the non-blocking runtime's ordering contract:
//! `isend`/`irecv` must deliver byte-identical payloads in FIFO order
//! per `(source, destination, tag)` stream, no matter how the sends are
//! interleaved across destinations and tags, and no matter through which
//! mix of `test` / `wait` / `wait_any` the receiver completes its
//! posted requests.

use dss_net::runner::{run_spmd, RunConfig};
use dss_net::{RecvHandle, SplitMix64, Tag};
use proptest::prelude::*;
use std::time::Duration;

fn cfg() -> RunConfig {
    RunConfig {
        recv_timeout: Duration::from_secs(30),
        ..RunConfig::default()
    }
}

/// Deterministic payload of message `seq` on the `(src, dst, tag)`
/// stream: both sides derive it independently, so the receiver can
/// verify byte identity without shipping expectations around.
fn payload_of(seed: u64, src: usize, dst: usize, tag: u64, seq: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(
        seed ^ ((src as u64) << 48) ^ ((dst as u64) << 32) ^ (tag << 16) ^ seq as u64,
    );
    let len = (rng.next_u64() % 24) as usize;
    (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect()
}

const TAGS: u64 = 2;

/// One posted receive with the stream position it was posted for.
struct Posted {
    src: usize,
    tag: u64,
    seq: usize,
    handle: Option<RecvHandle>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every PE sends `n_msgs` messages to every PE (itself included) on
    /// each of two tags, in a seed-scrambled interleaving; every PE posts
    /// all receives up front (the in-flight queue) and completes them in
    /// scrambled order through a seed-chosen mix of the three completion
    /// primitives. Handle `k` of each stream must yield exactly payload
    /// `k` of that stream.
    #[test]
    fn isend_irecv_is_fifo_per_src_dst_tag(
        p in 2usize..5,
        n_msgs in 1usize..5,
        seed in any::<u64>(),
    ) {
        let res = run_spmd(p, cfg(), move |comm| {
            let r = comm.rank();
            let p = comm.size();
            let mut rng = SplitMix64::new(seed ^ 0xF1F0 ^ ((r as u64) << 8));

            // Post every receive up front, in per-stream FIFO order:
            // the k-th posted handle of stream (src, tag) must carry
            // message k of that stream.
            let mut posted: Vec<Posted> = Vec::new();
            for src in 0..p {
                for tag in 0..TAGS {
                    for seq in 0..n_msgs {
                        posted.push(Posted {
                            src,
                            tag,
                            seq,
                            handle: Some(comm.irecv(src, Tag::user(tag))),
                        });
                    }
                }
            }

            // Randomized interleaving of the sends: pick a random stream
            // with messages left each step, keeping per-stream seqs in
            // send order (that order is what FIFO must preserve).
            let streams = p * TAGS as usize;
            let mut next_seq = vec![0usize; streams];
            let mut remaining = streams * n_msgs;
            while remaining > 0 {
                let s = loop {
                    let s = (rng.next_u64() % streams as u64) as usize;
                    if next_seq[s] < n_msgs {
                        break s;
                    }
                };
                let (dst, tag) = (s / TAGS as usize, s as u64 % TAGS);
                comm.isend(dst, Tag::user(tag), payload_of(seed, r, dst, tag, next_seq[s]))
                    .wait();
                next_seq[s] += 1;
                remaining -= 1;
            }

            // Complete in scrambled order with a random primitive each
            // step; every completion is verified against its ordinal.
            let mut order: Vec<usize> = (0..posted.len()).collect();
            for i in (1..order.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let mut checked = 0usize;
            for &i in &order {
                if posted[i].handle.is_none() {
                    continue; // already consumed by a wait_any below
                }
                let (got_src, got_tag, got_seq, got) = match rng.next_u64() % 3 {
                    0 => {
                        // Non-blocking poll until the arrival lands.
                        let q = &mut posted[i];
                        let h = q.handle.as_mut().expect("outstanding");
                        let v = loop {
                            if let Some(v) = comm.test(h) {
                                break v;
                            }
                        };
                        q.handle = None;
                        (q.src, q.tag, q.seq, v)
                    }
                    1 => {
                        // Blocking wait on this handle alone.
                        let q = &mut posted[i];
                        let h = q.handle.take().expect("outstanding");
                        (q.src, q.tag, q.seq, comm.wait(h))
                    }
                    _ => {
                        // Blocking wait over *all* outstanding handles;
                        // whichever completes is verified and retired.
                        let idxs: Vec<usize> = (0..posted.len())
                            .filter(|&k| posted[k].handle.is_some())
                            .collect();
                        let mut hs: Vec<RecvHandle> = idxs
                            .iter()
                            .map(|&k| posted[k].handle.take().expect("outstanding"))
                            .collect();
                        let (w, v) = comm.wait_any(&mut hs).expect("outstanding handles");
                        let winner = idxs[w];
                        for (&k, h) in idxs.iter().zip(hs) {
                            if !h.is_done() {
                                posted[k].handle = Some(h);
                            }
                        }
                        let q = &posted[winner];
                        (q.src, q.tag, q.seq, v)
                    }
                };
                prop_assert_eq!(
                    &got,
                    &payload_of(seed, got_src, r, got_tag, got_seq),
                    "stream (src={}, dst={}, tag={}) seq {}",
                    got_src,
                    r,
                    got_tag,
                    got_seq
                );
                checked += 1;
            }
            // A wait_any above may have completed a handle whose own loop
            // turn had already passed, leaving its neighbour outstanding:
            // drain and verify the leftovers.
            for q in &mut posted {
                if let Some(h) = q.handle.take() {
                    let got = comm.wait(h);
                    prop_assert_eq!(
                        &got,
                        &payload_of(seed, q.src, r, q.tag, q.seq),
                        "drained stream (src={}, dst={}, tag={}) seq {}",
                        q.src,
                        r,
                        q.tag,
                        q.seq
                    );
                    checked += 1;
                }
            }
            prop_assert_eq!(checked, streams * n_msgs);
            prop_assert!(posted.iter().all(|q| q.handle.is_none()));
        });
        prop_assert_eq!(res.values.len(), p);
    }
}
